// Subpopulation fairness audits beyond the W/U dichotomy.
//
// The paper cautions that repairing fairness for one partition "may lead
// to imbalances in the treatment of other unidentified subpopulations"
// (§I, citing Martinez et al. and Krishnaswamy et al.). This module
// audits that side effect: given any alternative partition of the
// deployment data (e.g. a second demographic attribute, or the cross
// product of two), it reports per-subgroup selection rates and error
// profiles plus worst-pair disparity measures.

#ifndef FAIRDRIFT_FAIRNESS_INTERSECTIONAL_H_
#define FAIRDRIFT_FAIRNESS_INTERSECTIONAL_H_

#include <string>
#include <vector>

#include "ml/metrics.h"
#include "util/status.h"

namespace fairdrift {

/// Metrics of one subgroup in an audit partition.
struct SubgroupStats {
  int subgroup = 0;
  size_t size = 0;
  ConfusionCounts counts;

  double SelectionRate() const { return counts.SelectionRate(); }
  double TPR() const { return counts.TPR(); }
  double FPR() const { return counts.FPR(); }
};

/// Result of auditing a prediction vector against a partition.
struct SubgroupAudit {
  std::vector<SubgroupStats> subgroups;  ///< one entry per non-empty subgroup
  /// min over subgroup pairs of SR_a / SR_b (the worst pairwise disparate
  /// impact); 1 = parity, 0 = some subgroup entirely unselected.
  double worst_pair_di = 1.0;
  /// max over subgroup pairs of |TPR_a - TPR_b|.
  double worst_pair_tpr_gap = 0.0;
  /// max over subgroup pairs of |FPR_a - FPR_b|.
  double worst_pair_fpr_gap = 0.0;
};

/// Audits predictions over an arbitrary subgroup partition. `subgroups`
/// holds non-negative subgroup ids per tuple; subgroups smaller than
/// `min_subgroup_size` are skipped in the pairwise measures (tiny cells
/// make rates meaningless). Fails on shape mismatch or non-binary labels.
Result<SubgroupAudit> AuditSubgroups(const std::vector<int>& y_true,
                                     const std::vector<int>& y_pred,
                                     const std::vector<int>& subgroups,
                                     size_t min_subgroup_size = 10);

/// Combines two partitions into their cross product (e.g. race x gender):
/// id = a * (max_b + 1) + b. Fails on length mismatch or negative ids.
Result<std::vector<int>> CrossPartition(const std::vector<int>& a,
                                        const std::vector<int>& b);

/// Renders an audit as an aligned text table.
std::string FormatSubgroupAudit(const SubgroupAudit& audit);

}  // namespace fairdrift

#endif  // FAIRDRIFT_FAIRNESS_INTERSECTIONAL_H_
