#include "fairness/report.h"

#include "util/string_util.h"

namespace fairdrift {

Result<FairnessReport> EvaluateFairness(const std::vector<int>& y_true,
                                        const std::vector<int>& y_pred,
                                        const std::vector<int>& groups) {
  Result<GroupedPredictionStats> stats =
      ComputeGroupStats(y_true, y_pred, groups);
  if (!stats.ok()) return stats.status();

  FairnessReport report;
  report.stats = stats.value();
  report.di_star = DisparateImpactStar(report.stats);
  report.aod_star = AverageOddsDifferenceStar(report.stats);
  report.favors_minority = FavorsMinority(report.stats);

  const ConfusionCounts& c = report.stats.overall;
  report.balanced_accuracy = 0.5 * (c.TPR() + c.TNR());
  report.accuracy = c.total() > 0.0 ? (c.tp + c.tn) / c.total() : 0.0;

  // A model that outputs only one class is flagged as degenerate: the paper
  // marks such models "useless" regardless of apparent fairness gains.
  double sr = c.SelectionRate();
  report.degenerate = (sr <= 0.0 || sr >= 1.0);
  return report;
}

std::string FormatReport(const FairnessReport& report) {
  std::string out = StrFormat(
      "DI*=%.3f AOD*=%.3f BalAcc=%.3f Acc=%.3f", report.di_star,
      report.aod_star, report.balanced_accuracy, report.accuracy);
  if (report.favors_minority) out += " [favors-minority]";
  if (report.degenerate) out += " [DEGENERATE]";
  return out;
}

namespace {
void AccumulateCounts(const ConfusionCounts& src, ConfusionCounts* dst) {
  dst->tp += src.tp;
  dst->fp += src.fp;
  dst->tn += src.tn;
  dst->fn += src.fn;
}
}  // namespace

FairnessReport AverageReports(const std::vector<FairnessReport>& reports) {
  FairnessReport avg;
  if (reports.empty()) return avg;
  for (const FairnessReport& r : reports) {
    avg.di_star += r.di_star;
    avg.aod_star += r.aod_star;
    avg.balanced_accuracy += r.balanced_accuracy;
    avg.accuracy += r.accuracy;
    avg.favors_minority = avg.favors_minority || r.favors_minority;
    avg.degenerate = avg.degenerate || r.degenerate;
    // Pool the confusion counts across trials: pooled rates are the
    // tuple-weighted averages of the per-trial rates.
    AccumulateCounts(r.stats.majority.counts, &avg.stats.majority.counts);
    AccumulateCounts(r.stats.minority.counts, &avg.stats.minority.counts);
    AccumulateCounts(r.stats.overall, &avg.stats.overall);
    avg.stats.majority.size += r.stats.majority.size;
    avg.stats.minority.size += r.stats.minority.size;
  }
  double n = static_cast<double>(reports.size());
  avg.di_star /= n;
  avg.aod_star /= n;
  avg.balanced_accuracy /= n;
  avg.accuracy /= n;
  return avg;
}

}  // namespace fairdrift
