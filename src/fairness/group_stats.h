// Per-group prediction statistics: the building blocks of every group
// fairness metric in the paper (selection rates, TPR/FPR per group).

#ifndef FAIRDRIFT_FAIRNESS_GROUP_STATS_H_
#define FAIRDRIFT_FAIRNESS_GROUP_STATS_H_

#include <vector>

#include "ml/metrics.h"
#include "util/status.h"

namespace fairdrift {

/// Confusion counts of one group plus its size.
struct GroupStats {
  ConfusionCounts counts;
  size_t size = 0;

  double SelectionRate() const { return counts.SelectionRate(); }
  double TPR() const { return counts.TPR(); }
  double TNR() const { return counts.TNR(); }
  double FPR() const { return counts.FPR(); }
  double FNR() const { return counts.FNR(); }
};

/// Statistics for the two-group (W, U) setting of the paper.
struct GroupedPredictionStats {
  GroupStats majority;  ///< group 0 (W)
  GroupStats minority;  ///< group 1 (U)
  ConfusionCounts overall;
};

/// Tallies per-group and overall confusion statistics.
/// `groups` uses 0 for the majority W and 1 for the minority U; any other
/// id is counted only in `overall`. Fails on shape mismatch/empty input.
Result<GroupedPredictionStats> ComputeGroupStats(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    const std::vector<int>& groups);

}  // namespace fairdrift

#endif  // FAIRDRIFT_FAIRNESS_GROUP_STATS_H_
