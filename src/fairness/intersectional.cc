#include "fairness/intersectional.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/string_util.h"

namespace fairdrift {

Result<SubgroupAudit> AuditSubgroups(const std::vector<int>& y_true,
                                     const std::vector<int>& y_pred,
                                     const std::vector<int>& subgroups,
                                     size_t min_subgroup_size) {
  if (y_true.empty() || y_true.size() != y_pred.size() ||
      y_true.size() != subgroups.size()) {
    return Status::InvalidArgument("AuditSubgroups: shape mismatch or empty");
  }
  std::map<int, SubgroupStats> cells;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if ((y_true[i] != 0 && y_true[i] != 1) ||
        (y_pred[i] != 0 && y_pred[i] != 1)) {
      return Status::InvalidArgument("AuditSubgroups: non-binary labels");
    }
    if (subgroups[i] < 0) {
      return Status::OutOfRange("AuditSubgroups: negative subgroup id");
    }
    SubgroupStats& s = cells[subgroups[i]];
    s.subgroup = subgroups[i];
    ++s.size;
    if (y_true[i] == 1) {
      (y_pred[i] == 1 ? s.counts.tp : s.counts.fn) += 1.0;
    } else {
      (y_pred[i] == 1 ? s.counts.fp : s.counts.tn) += 1.0;
    }
  }

  SubgroupAudit audit;
  for (const auto& [id, stats] : cells) audit.subgroups.push_back(stats);

  // Pairwise disparities over subgroups large enough to trust.
  std::vector<const SubgroupStats*> large;
  for (const SubgroupStats& s : audit.subgroups) {
    if (s.size >= min_subgroup_size) large.push_back(&s);
  }
  for (size_t a = 0; a < large.size(); ++a) {
    for (size_t b = a + 1; b < large.size(); ++b) {
      double sr_a = large[a]->SelectionRate();
      double sr_b = large[b]->SelectionRate();
      double di;
      if (sr_a == 0.0 && sr_b == 0.0) {
        di = 1.0;
      } else if (sr_a == 0.0 || sr_b == 0.0) {
        di = 0.0;
      } else {
        di = std::min(sr_a / sr_b, sr_b / sr_a);
      }
      audit.worst_pair_di = std::min(audit.worst_pair_di, di);
      audit.worst_pair_tpr_gap = std::max(
          audit.worst_pair_tpr_gap, std::fabs(large[a]->TPR() - large[b]->TPR()));
      audit.worst_pair_fpr_gap = std::max(
          audit.worst_pair_fpr_gap, std::fabs(large[a]->FPR() - large[b]->FPR()));
    }
  }
  return audit;
}

Result<std::vector<int>> CrossPartition(const std::vector<int>& a,
                                        const std::vector<int>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("CrossPartition: length mismatch");
  }
  int max_b = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 0 || b[i] < 0) {
      return Status::OutOfRange("CrossPartition: negative subgroup id");
    }
    max_b = std::max(max_b, b[i]);
  }
  std::vector<int> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] * (max_b + 1) + b[i];
  }
  return out;
}

std::string FormatSubgroupAudit(const SubgroupAudit& audit) {
  std::string out = StrFormat(
      "worst-pair DI*: %.3f   worst TPR gap: %.3f   worst FPR gap: %.3f\n",
      audit.worst_pair_di, audit.worst_pair_tpr_gap,
      audit.worst_pair_fpr_gap);
  out += "  subgroup |    n | SelRate |   TPR |   FPR\n";
  for (const SubgroupStats& s : audit.subgroups) {
    out += StrFormat("  %8d | %4zu |   %.3f | %.3f | %.3f\n", s.subgroup,
                     s.size, s.SelectionRate(), s.TPR(), s.FPR());
  }
  return out;
}

}  // namespace fairdrift
