#include "fairness/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fairdrift {

double DisparateImpact(const GroupedPredictionStats& stats) {
  double sr_u = stats.minority.SelectionRate();
  double sr_w = stats.majority.SelectionRate();
  if (sr_w <= 0.0) {
    return sr_u <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return sr_u / sr_w;
}

double DisparateImpactStar(const GroupedPredictionStats& stats) {
  double di = DisparateImpact(stats);
  if (di <= 0.0) return 0.0;
  if (std::isinf(di)) return 0.0;
  return std::min(di, 1.0 / di);
}

bool FavorsMinority(const GroupedPredictionStats& stats) {
  return DisparateImpact(stats) > 1.0;
}

double AverageOddsDifference(const GroupedPredictionStats& stats) {
  double d_fpr = stats.minority.FPR() - stats.majority.FPR();
  double d_tpr = stats.minority.TPR() - stats.majority.TPR();
  return 0.5 * (d_fpr + d_tpr);
}

double AverageOddsDifferenceStar(const GroupedPredictionStats& stats) {
  return 1.0 - std::fabs(AverageOddsDifference(stats));
}

double SelectionRateDifference(const GroupedPredictionStats& stats) {
  return std::fabs(stats.minority.SelectionRate() -
                   stats.majority.SelectionRate());
}

double EqualizedOddsFnrDifference(const GroupedPredictionStats& stats) {
  return std::fabs(stats.minority.FNR() - stats.majority.FNR());
}

double EqualizedOddsFprDifference(const GroupedPredictionStats& stats) {
  return std::fabs(stats.minority.FPR() - stats.majority.FPR());
}

const char* FairnessObjectiveName(FairnessObjective objective) {
  switch (objective) {
    case FairnessObjective::kDisparateImpact:
      return "DI";
    case FairnessObjective::kEqualizedOddsFnr:
      return "EO-FNR";
    case FairnessObjective::kEqualizedOddsFpr:
      return "EO-FPR";
  }
  return "?";
}

double ObjectiveGap(const GroupedPredictionStats& stats,
                    FairnessObjective objective) {
  switch (objective) {
    case FairnessObjective::kDisparateImpact:
      return SelectionRateDifference(stats);
    case FairnessObjective::kEqualizedOddsFnr:
      return EqualizedOddsFnrDifference(stats);
    case FairnessObjective::kEqualizedOddsFpr:
      return EqualizedOddsFprDifference(stats);
  }
  return 0.0;
}

}  // namespace fairdrift
