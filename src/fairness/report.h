// Evaluation report: everything a bench row or example needs to print
// about one (method, learner, dataset) evaluation.

#ifndef FAIRDRIFT_FAIRNESS_REPORT_H_
#define FAIRDRIFT_FAIRNESS_REPORT_H_

#include <string>
#include <vector>

#include "fairness/metrics.h"
#include "util/status.h"

namespace fairdrift {

/// One evaluated model on one deployment split.
struct FairnessReport {
  double di_star = 0.0;       ///< DI* = min(DI, 1/DI), 1 is parity.
  double aod_star = 0.0;      ///< AOD* = 1 - |AOD|, 1 is parity.
  double balanced_accuracy = 0.0;
  double accuracy = 0.0;
  bool favors_minority = false;  ///< raw DI > 1 (striped bars in the paper).
  /// The model collapsed to a single predicted class — rendered with
  /// crisscross bars in the paper ("useless predictions").
  bool degenerate = false;
  GroupedPredictionStats stats;
};

/// Computes the full report from labels, predictions, and groups.
Result<FairnessReport> EvaluateFairness(const std::vector<int>& y_true,
                                        const std::vector<int>& y_pred,
                                        const std::vector<int>& groups);

/// One-line rendering: "DI*=0.82 AOD*=0.93 BalAcc=0.71 [favors-minority]".
std::string FormatReport(const FairnessReport& report);

/// Averages reports across experiment trials (flags are OR-ed).
FairnessReport AverageReports(const std::vector<FairnessReport>& reports);

}  // namespace fairdrift

#endif  // FAIRDRIFT_FAIRNESS_REPORT_H_
