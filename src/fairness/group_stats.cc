#include "fairness/group_stats.h"

#include "data/dataset.h"
#include "util/string_util.h"

namespace fairdrift {

Result<GroupedPredictionStats> ComputeGroupStats(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    const std::vector<int>& groups) {
  if (y_true.empty() || y_true.size() != y_pred.size() ||
      y_true.size() != groups.size()) {
    return Status::InvalidArgument(
        StrFormat("ComputeGroupStats: sizes %zu/%zu/%zu", y_true.size(),
                  y_pred.size(), groups.size()));
  }
  GroupedPredictionStats out;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if ((y_true[i] != 0 && y_true[i] != 1) ||
        (y_pred[i] != 0 && y_pred[i] != 1)) {
      return Status::InvalidArgument("ComputeGroupStats: non-binary labels");
    }
    ConfusionCounts* cell = nullptr;
    if (groups[i] == kMajorityGroup) {
      cell = &out.majority.counts;
      ++out.majority.size;
    } else if (groups[i] == kMinorityGroup) {
      cell = &out.minority.counts;
      ++out.minority.size;
    }
    auto tally = [&](ConfusionCounts* c) {
      if (y_true[i] == 1) {
        (y_pred[i] == 1 ? c->tp : c->fn) += 1.0;
      } else {
        (y_pred[i] == 1 ? c->fp : c->tn) += 1.0;
      }
    };
    if (cell != nullptr) tally(cell);
    tally(&out.overall);
  }
  return out;
}

}  // namespace fairdrift
