// Group fairness metrics used in the paper's evaluation.
//
// Raw metrics:
//   DI  = SR_U / SR_W                       (disparate impact)
//   AOD = ((FPR_U - FPR_W) + (TPR_U - TPR_W)) / 2
// Reported transformations ("higher is better", paper §IV):
//   DI*  = min(DI, 1/DI)       in [0, 1], 1 = parity
//   AOD* = 1 - |AOD|           in [0, 1], 1 = parity
// Plus the Equalized-Odds component differences used in Figs. 8-9.

#ifndef FAIRDRIFT_FAIRNESS_METRICS_H_
#define FAIRDRIFT_FAIRNESS_METRICS_H_

#include "fairness/group_stats.h"
#include "util/status.h"

namespace fairdrift {

/// Raw disparate impact SR_U / SR_W. Returns +inf when SR_W is 0 while
/// SR_U > 0, and 1 when both selection rates are 0.
double DisparateImpact(const GroupedPredictionStats& stats);

/// Normalized DI* = min(DI, 1/DI) in [0, 1].
double DisparateImpactStar(const GroupedPredictionStats& stats);

/// True when the raw DI exceeds 1 (bias favoring the minority group) —
/// rendered as striped bars in the paper's charts.
bool FavorsMinority(const GroupedPredictionStats& stats);

/// Raw average odds difference.
double AverageOddsDifference(const GroupedPredictionStats& stats);

/// Normalized AOD* = 1 - |AOD| in [0, 1].
double AverageOddsDifferenceStar(const GroupedPredictionStats& stats);

/// |SR_U - SR_W| — statistical parity difference (Fig. 8a target).
double SelectionRateDifference(const GroupedPredictionStats& stats);

/// |FNR_U - FNR_W| — Equalized Odds by FNR (Fig. 8b target).
double EqualizedOddsFnrDifference(const GroupedPredictionStats& stats);

/// |FPR_U - FPR_W| — Equalized Odds by FPR (Fig. 8c target).
double EqualizedOddsFprDifference(const GroupedPredictionStats& stats);

/// Fairness targets CONFAIR / OMN can optimize (paper §III-B, Fig. 8).
enum class FairnessObjective {
  kDisparateImpact,    ///< close the selection-rate gap
  kEqualizedOddsFnr,   ///< close the FNR gap
  kEqualizedOddsFpr,   ///< close the FPR gap
};

/// Name for reports ("DI", "EO-FNR", "EO-FPR").
const char* FairnessObjectiveName(FairnessObjective objective);

/// The group gap associated with `objective` (lower is fairer).
double ObjectiveGap(const GroupedPredictionStats& stats,
                    FairnessObjective objective);

}  // namespace fairdrift

#endif  // FAIRDRIFT_FAIRNESS_METRICS_H_
