#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/binary_io.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace fairdrift {

Result<QuantileBinner> QuantileBinner::Fit(const Matrix& x, int max_bins) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("QuantileBinner: empty matrix");
  }
  if (max_bins < 2 || max_bins > 256) {
    return Status::OutOfRange("QuantileBinner: max_bins must be in [2, 256]");
  }
  QuantileBinner binner;
  binner.cuts_.resize(x.cols());
  size_t n = x.rows();
  for (size_t j = 0; j < x.cols(); ++j) {
    std::vector<double> vals = x.Col(j);
    std::sort(vals.begin(), vals.end());
    std::vector<double>& cuts = binner.cuts_[j];
    for (int b = 1; b < max_bins; ++b) {
      double q = static_cast<double>(b) / max_bins;
      double pos = q * static_cast<double>(n - 1);
      size_t lo = static_cast<size_t>(pos);
      size_t hi = std::min(lo + 1, n - 1);
      double frac = pos - static_cast<double>(lo);
      double cut = vals[lo] * (1.0 - frac) + vals[hi] * frac;
      // A useful cut must separate something: strictly above the minimum
      // and strictly below the maximum (constant features get no cuts).
      if (cut < vals.back() && (cuts.empty() || cut > cuts.back())) {
        cuts.push_back(cut);
      }
    }
    // A constant feature produces zero cuts: a single bin, never split.
  }
  return binner;
}

uint8_t QuantileBinner::BinOf(size_t j, double v) const {
  const std::vector<double>& cuts = cuts_[j];
  // First cut strictly greater than v == index of the containing bin.
  size_t bin = static_cast<size_t>(
      std::upper_bound(cuts.begin(), cuts.end(), v) - cuts.begin());
  return static_cast<uint8_t>(bin);
}

std::vector<uint8_t> QuantileBinner::Transform(const Matrix& x) const {
  assert(x.cols() == cuts_.size());
  std::vector<uint8_t> out(x.rows() * x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    for (size_t j = 0; j < x.cols(); ++j) {
      out[i * x.cols() + j] = BinOf(j, row[j]);
    }
  }
  return out;
}

namespace {

double LeafValue(double g, double h, double lambda) {
  return -g / (h + lambda);
}

double ScoreTerm(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

Result<RegressionTree> RegressionTree::Fit(
    const QuantileBinner& binner, const std::vector<uint8_t>& binned,
    size_t num_rows, const std::vector<GradientPair>& gpairs,
    const std::vector<size_t>& row_indices,
    const RegressionTreeOptions& options) {
  if (row_indices.empty()) {
    return Status::InvalidArgument("RegressionTree: no training rows");
  }
  if (gpairs.size() != num_rows ||
      binned.size() != num_rows * binner.num_features()) {
    return Status::InvalidArgument("RegressionTree: shape mismatch");
  }
  RegressionTree tree;
  tree.num_features_ = binner.num_features();
  std::vector<size_t> rows = row_indices;  // mutable working copy
  tree.GrowNode(binner, binned, gpairs, &rows, 0, rows.size(), 0, options);
  return tree;
}

int RegressionTree::GrowNode(const QuantileBinner& binner,
                             const std::vector<uint8_t>& binned,
                             const std::vector<GradientPair>& gpairs,
                             std::vector<size_t>* rows, size_t begin,
                             size_t end, int depth,
                             const RegressionTreeOptions& options) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  double g_total = 0.0;
  double h_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const GradientPair& gp = gpairs[(*rows)[i]];
    g_total += gp.grad;
    h_total += gp.hess;
  }
  nodes_[static_cast<size_t>(node_id)].value =
      LeafValue(g_total, h_total, options.l2_lambda);

  if (depth >= options.max_depth || end - begin < 2) return node_id;

  // Best split search over per-feature gradient histograms. Features are
  // independent tasks: each fills a private histogram and writes its best
  // candidate into its own slot; the cross-feature winner is then picked
  // in ascending feature order with the same strict-greater rule the
  // sequential scan used, so the chosen split — and therefore the tree —
  // is bitwise identical for every worker count.
  size_t num_features = binner.num_features();
  double parent_score = ScoreTerm(g_total, h_total, options.l2_lambda);

  struct SplitCandidate {
    double gain;
    int bin = -1;
  };
  std::vector<SplitCandidate> candidates(num_features);
  for (SplitCandidate& c : candidates) c.gain = options.min_split_gain;

  auto scan_feature = [&](size_t j) {
    int nbins = binner.NumBins(j);
    if (nbins < 2) return;
    // Per-invocation histograms: at most 256 bins, negligible next to the
    // O(rows) accumulation they serve.
    std::vector<double> hist_g(static_cast<size_t>(nbins), 0.0);
    std::vector<double> hist_h(static_cast<size_t>(nbins), 0.0);
    for (size_t i = begin; i < end; ++i) {
      size_t r = (*rows)[i];
      uint8_t b = binned[r * num_features + j];
      hist_g[b] += gpairs[r].grad;
      hist_h[b] += gpairs[r].hess;
    }
    SplitCandidate& best = candidates[j];
    double gl = 0.0;
    double hl = 0.0;
    for (int b = 0; b + 1 < nbins; ++b) {
      gl += hist_g[static_cast<size_t>(b)];
      hl += hist_h[static_cast<size_t>(b)];
      double gr = g_total - gl;
      double hr = h_total - hl;
      if (hl < options.min_child_hessian || hr < options.min_child_hessian) {
        continue;
      }
      double gain = 0.5 * (ScoreTerm(gl, hl, options.l2_lambda) +
                           ScoreTerm(gr, hr, options.l2_lambda) -
                           parent_score);
      if (gain > best.gain) {
        best.gain = gain;
        best.bin = b;
      }
    }
  };

  // Only fan out when the node has enough accumulation work to amortize
  // the dispatch; the parallel and inline paths compute identical slots.
  constexpr size_t kParallelHistogramWork = 1 << 14;
  if (num_features >= 2 &&
      (end - begin) * num_features >= kParallelHistogramWork) {
    ParallelForChunks(
        0, num_features,
        [&](size_t, size_t feature_begin, size_t feature_end) {
          for (size_t j = feature_begin; j < feature_end; ++j) {
            scan_feature(j);
          }
        },
        options.pool, /*chunk_size=*/1);
  } else {
    for (size_t j = 0; j < num_features; ++j) scan_feature(j);
  }

  double best_gain = options.min_split_gain;
  size_t best_feature = 0;
  int best_bin = -1;
  for (size_t j = 0; j < num_features; ++j) {
    if (candidates[j].bin >= 0 && candidates[j].gain > best_gain) {
      best_gain = candidates[j].gain;
      best_feature = j;
      best_bin = candidates[j].bin;
    }
  }
  if (best_bin < 0) return node_id;

  // Partition rows in place: bin <= best_bin goes left.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    size_t r = (*rows)[i];
    if (binned[r * num_features + best_feature] <=
        static_cast<uint8_t>(best_bin)) {
      std::swap((*rows)[i], (*rows)[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return node_id;  // Degenerate: stay a leaf.

  {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    node.is_leaf = false;
    node.feature = best_feature;
    node.bin_cut = static_cast<uint8_t>(best_bin);
    node.cut = binner.CutValue(best_feature, best_bin);
  }
  int left =
      GrowNode(binner, binned, gpairs, rows, begin, mid, depth + 1, options);
  int right =
      GrowNode(binner, binned, gpairs, rows, mid, end, depth + 1, options);
  nodes_[static_cast<size_t>(node_id)].left = left;
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

double RegressionTree::PredictRow(const double* row,
                                  size_t num_features) const {
  assert(num_features == num_features_);
  (void)num_features;
  size_t id = 0;
  while (!nodes_[id].is_leaf) {
    const Node& node = nodes_[id];
    id = static_cast<size_t>(row[node.feature] <= node.cut ? node.left
                                                           : node.right);
  }
  return nodes_[id].value;
}

std::vector<double> RegressionTree::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    out[i] = PredictRow(x.RowPtr(i), x.cols());
  }
  return out;
}

size_t RegressionTree::num_leaves() const {
  size_t leaves = 0;
  for (const Node& n : nodes_) {
    if (n.is_leaf) ++leaves;
  }
  return leaves;
}

void RegressionTree::SerializeTo(BinaryWriter* w) const {
  w->WriteU64(num_features_);
  w->WriteU64(nodes_.size());
  for (const Node& n : nodes_) {
    w->WriteU8(n.is_leaf ? 1 : 0);
    w->WriteDouble(n.value);
    w->WriteU64(n.feature);
    w->WriteDouble(n.cut);
    w->WriteU8(n.bin_cut);
    w->WriteI32(n.left);
    w->WriteI32(n.right);
  }
}

Result<RegressionTree> RegressionTree::DeserializeFrom(BinaryReader* r) {
  RegressionTree tree;
  Result<uint64_t> num_features = r->ReadU64();
  if (!num_features.ok()) return num_features.status();
  tree.num_features_ = num_features.value();
  Result<uint64_t> count = r->ReadU64();
  if (!count.ok()) return count.status();
  // Each node occupies kNodeWireBytes; dividing keeps a hostile count
  // from reserving gigabytes up front.
  constexpr size_t kNodeWireBytes = 1 + 8 + 8 + 8 + 1 + 4 + 4;  // 34
  if (count.value() > r->remaining() / kNodeWireBytes) {
    return Status::DataLoss("RegressionTree: implausible node count");
  }
  tree.nodes_.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    Node n;
    Result<uint8_t> is_leaf = r->ReadU8();
    if (!is_leaf.ok()) return is_leaf.status();
    n.is_leaf = is_leaf.value() != 0;
    Result<double> value = r->ReadDouble();
    if (!value.ok()) return value.status();
    n.value = value.value();
    Result<uint64_t> feature = r->ReadU64();
    if (!feature.ok()) return feature.status();
    n.feature = feature.value();
    Result<double> cut = r->ReadDouble();
    if (!cut.ok()) return cut.status();
    n.cut = cut.value();
    Result<uint8_t> bin_cut = r->ReadU8();
    if (!bin_cut.ok()) return bin_cut.status();
    n.bin_cut = bin_cut.value();
    Result<int32_t> left = r->ReadI32();
    if (!left.ok()) return left.status();
    n.left = left.value();
    Result<int32_t> right = r->ReadI32();
    if (!right.ok()) return right.status();
    n.right = right.value();
    int64_t max_child = static_cast<int64_t>(count.value());
    int64_t self = static_cast<int64_t>(i);
    if (!n.is_leaf) {
      // GrowNode appends a node before growing its children, so every
      // valid child index exceeds its parent's — requiring that here
      // rules out cycles (traversal always terminates) alongside the
      // range check.
      if (n.left <= self || n.left >= max_child || n.right <= self ||
          n.right >= max_child) {
        return Status::DataLoss("RegressionTree: child index out of range");
      }
      if (n.feature >= tree.num_features_) {
        return Status::DataLoss("RegressionTree: split feature out of range");
      }
    }
    tree.nodes_.push_back(n);
  }
  if (tree.nodes_.empty()) {
    return Status::DataLoss("RegressionTree: empty node list");
  }
  return tree;
}

}  // namespace fairdrift
