// Gradient-boosted trees for binary classification (the paper's "XGB").
//
// Second-order boosting on the logistic loss with shrinkage, row
// subsampling, and histogram trees. Sample weights multiply both gradient
// and hessian, which is exactly how XGBoost consumes `sample_weight`.

#ifndef FAIRDRIFT_ML_GBT_H_
#define FAIRDRIFT_ML_GBT_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace fairdrift {

class ThreadPool;    // util/parallel.h; only pointers appear in this header
class BinaryWriter;  // util/binary_io.h
class BinaryReader;  // util/binary_io.h

/// Hyperparameters for GradientBoostedTrees.
struct GbtOptions {
  int num_rounds = 60;
  double learning_rate = 0.2;
  int max_depth = 4;
  double l2_lambda = 1.0;
  double min_split_gain = 0.0;
  double min_child_hessian = 1.0;
  double subsample = 0.8;  ///< Row fraction per round; 1.0 disables.
  int max_bins = 32;
  uint64_t seed = 42;
  /// Pool for the row-wise gradient/prediction passes (global pool when
  /// null). Models are bitwise identical for every worker count: the
  /// passes use the fixed-block deterministic reductions of
  /// util/parallel.h.
  ThreadPool* pool = nullptr;
};

/// Boosted ensemble: score(x) = base + sum_k eta * tree_k(x),
/// p(y=1|x) = sigmoid(score).
class GradientBoostedTrees final : public Classifier {
 public:
  explicit GradientBoostedTrees(GbtOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y,
             const std::vector<double>& w) override;
  Result<std::vector<double>> PredictProba(const Matrix& x) const override;
  Status PredictProbaInto(const Matrix& x, double* out,
                          ThreadPool* pool = nullptr) const override;
  std::unique_ptr<Classifier> CloneUnfitted() const override;
  std::string name() const override { return "XGB"; }
  bool is_fitted() const override { return fitted_; }

  /// Number of trees actually grown.
  size_t num_trees() const { return trees_.size(); }

  /// Width of the design matrix the ensemble was fitted on (0 when the
  /// ensemble has no trees).
  size_t input_dim() const {
    return trees_.empty() ? 0 : trees_.front().num_features();
  }

  /// Training log-loss after each boosting round (diagnostics / tests).
  const std::vector<double>& training_loss_curve() const {
    return loss_curve_;
  }

  /// Appends the fitted ensemble (base score + trees) to `w` for snapshot
  /// persistence (ml/model_io.h). Fails when unfitted.
  Status SaveFittedTo(BinaryWriter* w) const;

  /// Rebuilds a fitted ensemble from SaveFittedTo's payload. Training
  /// hyperparameters and the loss curve are not persisted.
  static Result<std::unique_ptr<GradientBoostedTrees>> LoadFittedFrom(
      BinaryReader* r);

 private:
  GbtOptions options_;
  std::vector<RegressionTree> trees_;
  double base_score_ = 0.0;
  bool fitted_ = false;
  std::vector<double> loss_curve_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_GBT_H_
