// Decision-threshold tuning on validation data.
//
// The paper tunes hyperparameters on the validation split; for the binary
// learners here the decision threshold is the main free knob after
// training, optimized for balanced accuracy (the paper's utility metric).

#ifndef FAIRDRIFT_ML_THRESHOLD_H_
#define FAIRDRIFT_ML_THRESHOLD_H_

#include <vector>

#include "util/status.h"

namespace fairdrift {

/// Criterion maximized by threshold tuning.
enum class ThresholdCriterion {
  kBalancedAccuracy,
  kAccuracy,
};

/// Sweeps candidate thresholds over the distinct predicted probabilities
/// and returns the one maximizing `criterion` on (y_true, proba).
/// Fails on empty/mismatched inputs.
Result<double> TuneThreshold(
    const std::vector<int>& y_true, const std::vector<double>& proba,
    ThresholdCriterion criterion = ThresholdCriterion::kBalancedAccuracy);

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_THRESHOLD_H_
