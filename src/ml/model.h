// Classifier interface.
//
// All learners in the library train on a dense design matrix with binary
// labels and *per-tuple weights* — weights are the lever every reweighing
// intervention (CONFAIR, KAM, OMN) pulls, so first-class support is
// non-negotiable. The paper's experiments use binary targets throughout.

#ifndef FAIRDRIFT_ML_MODEL_H_
#define FAIRDRIFT_ML_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

class ThreadPool;  // util/parallel.h; only pointers appear in this header

/// Abstract binary probabilistic classifier with weighted training.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on design matrix `x` (n x d), labels `y` in {0,1}, and
  /// non-negative tuple weights `w` (empty = all ones). Refitting is
  /// allowed and resets previous state.
  virtual Status Fit(const Matrix& x, const std::vector<int>& y,
                     const std::vector<double>& w) = 0;

  /// P(y=1 | x) for every row. Requires a successful Fit.
  virtual Result<std::vector<double>> PredictProba(const Matrix& x) const = 0;

  /// PredictProba into a caller-owned span of x.rows() doubles. The
  /// serving batch workers call this with recycled scratch storage so a
  /// steady-state scoring pass allocates nothing; results are bitwise
  /// identical to PredictProba. `pool` overrides the learner's configured
  /// prediction pool when non-null (the serving path passes its own —
  /// scored inline on a 0-worker pool, the pass is fully allocation-
  /// free). The base implementation falls back to PredictProba + copy;
  /// the library's learners override it with a real span pass.
  virtual Status PredictProbaInto(const Matrix& x, double* out,
                                  ThreadPool* pool = nullptr) const;

  /// Hard labels using the decision threshold.
  Result<std::vector<int>> Predict(const Matrix& x) const;

  /// Decision threshold on P(y=1); default 0.5, tunable on validation data.
  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  /// Fresh unfitted copy with identical hyperparameters (used by tuners and
  /// multi-model strategies that train many models of the same family).
  virtual std::unique_ptr<Classifier> CloneUnfitted() const = 0;

  /// Short learner name ("LR", "XGB") for reports.
  virtual std::string name() const = 0;

  /// Whether Fit has completed successfully.
  virtual bool is_fitted() const = 0;

 protected:
  /// Validates the (x, y, w) triple and materializes unit weights when `w`
  /// is empty. Shared by learner implementations.
  static Result<std::vector<double>> CheckTrainingInputs(
      const Matrix& x, const std::vector<int>& y, const std::vector<double>& w);

  double threshold_ = 0.5;
};

/// Learner families used in the paper's evaluation, plus the naive-Bayes
/// family of the fairness lineage (Calders & Verwer, paper ref. [1]) used
/// by this library's extended model-agnosticism studies.
enum class LearnerKind {
  kLogisticRegression,  ///< "LR" in the paper.
  kGradientBoosting,    ///< "XGB" in the paper.
  kNaiveBayes,          ///< "NB": weighted Gaussian naive Bayes.
};

/// Name of a learner kind ("LR" / "XGB" / "NB").
const char* LearnerKindName(LearnerKind kind);

/// Instantiates a learner with library-default hyperparameters.
/// `rng_seed` seeds stochastic learners (subsampling in boosting).
std::unique_ptr<Classifier> MakeLearner(LearnerKind kind,
                                        uint64_t rng_seed = 42);

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_MODEL_H_
