#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"
#include "util/binary_io.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticRegression::Fit(const Matrix& x, const std::vector<int>& y,
                               const std::vector<double>& w) {
  Result<std::vector<double>> wr = CheckTrainingInputs(x, y, w);
  if (!wr.ok()) return wr.status();
  const std::vector<double> weights = std::move(wr).value();

  size_t n = x.rows();
  size_t d = x.cols();
  fitted_ = false;
  beta_.assign(d, 0.0);

  // Initialize the intercept at the weighted log-odds of the base rate.
  double wpos = 0.0;
  double wtot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    wtot += weights[i];
    if (y[i] == 1) wpos += weights[i];
  }
  if (wtot <= 0.0) {
    return Status::InvalidArgument("LogisticRegression: zero total weight");
  }
  double rate = std::clamp(wpos / wtot, 1e-6, 1.0 - 1e-6);
  intercept_ = std::log(rate / (1.0 - rate));

  // Damped Newton (IRLS). The system has d+1 unknowns (beta, intercept).
  // The three row-wise passes per iteration (margins, gradient, Hessian)
  // run on the pool; the gradient/Hessian reductions accumulate into one
  // fixed slot per kReductionChunk block and reduce in block order, so the
  // fitted model is bitwise identical for every worker count.
  std::vector<double> z(n);  // margins
  std::vector<double> p(n);  // probabilities
  const size_t dim1 = d + 1;
  // Bounded-slot blocks: each block carries a (d+1)^2 Hessian partial, so
  // the block count is capped (a function of n only — determinism holds).
  const size_t chunk_size = BoundedReductionChunk(n);
  const size_t chunks = ReductionChunks(n, chunk_size);
  const size_t hstride = dim1 * dim1;
  std::vector<double> grad_partial(chunks * dim1);
  std::vector<double> hess_partial(chunks * hstride);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    ParallelForChunks(
        0, n,
        [&](size_t, size_t cb, size_t ce) {
          for (size_t i = cb; i < ce; ++i) {
            const double* row = x.RowPtr(i);
            double acc = intercept_;
            for (size_t j = 0; j < d; ++j) acc += beta_[j] * row[j];
            z[i] = acc;
            p[i] = Sigmoid(acc);
          }
        },
        options_.pool);

    // Per-chunk partials of the gradient and the Hessian's upper triangle.
    ParallelForChunks(
        0, n,
        [&](size_t c, size_t cb, size_t ce) {
          double* g = grad_partial.data() + c * dim1;
          double* h = hess_partial.data() + c * hstride;
          std::fill(g, g + dim1, 0.0);
          std::fill(h, h + hstride, 0.0);
          for (size_t i = cb; i < ce; ++i) {
            const double* row = x.RowPtr(i);
            double r = weights[i] * (p[i] - static_cast<double>(y[i]));
            for (size_t j = 0; j < d; ++j) g[j] += r * row[j];
            g[d] += r;
            double s = weights[i] * p[i] * (1.0 - p[i]);
            if (s <= 0.0) continue;
            for (size_t a = 0; a < d; ++a) {
              double sa = s * row[a];
              double* ha = h + a * dim1;
              for (size_t b = a; b < d; ++b) ha[b] += sa * row[b];
              ha[d] += sa;
            }
            h[d * dim1 + d] += s;
          }
        },
        options_.pool, chunk_size);

    // Gradient of the negative penalized log-likelihood (chunk order).
    std::vector<double> grad(dim1, 0.0);
    for (size_t c = 0; c < chunks; ++c) {
      const double* g = grad_partial.data() + c * dim1;
      for (size_t j = 0; j < dim1; ++j) grad[j] += g[j];
    }
    for (size_t j = 0; j < d; ++j) grad[j] += options_.l2_lambda * beta_[j];

    // Hessian: X^T diag(w p (1-p)) X  + lambda I (intercept unpenalized).
    Matrix hess(dim1, dim1, 0.0);
    for (size_t c = 0; c < chunks; ++c) {
      const double* h = hess_partial.data() + c * hstride;
      for (size_t a = 0; a < dim1; ++a) {
        for (size_t b = a; b < dim1; ++b) {
          hess.At(a, b) += h[a * dim1 + b];
        }
      }
    }
    for (size_t a = 0; a < d + 1; ++a) {
      for (size_t b = a + 1; b < d + 1; ++b) {
        hess.At(b, a) = hess.At(a, b);
      }
    }
    for (size_t j = 0; j < d; ++j) hess.At(j, j) += options_.l2_lambda;

    Result<std::vector<double>> step = RidgeSolve(hess, grad, 1e-8);
    if (!step.ok()) {
      return Status::NumericalError("LogisticRegression: Newton step failed (" +
                                    step.status().ToString() + ")");
    }

    // Damped update with simple step halving against divergence.
    double max_update = 0.0;
    double scale = 1.0;
    for (double v : step.value()) max_update = std::max(max_update, std::fabs(v));
    if (max_update > 10.0) scale = 10.0 / max_update;
    for (size_t j = 0; j < d; ++j) beta_[j] -= scale * step.value()[j];
    intercept_ -= scale * step.value()[d];

    if (scale * max_update < options_.tolerance) break;
  }

  for (double b : beta_) {
    if (!std::isfinite(b)) {
      return Status::NumericalError("LogisticRegression: diverged");
    }
  }
  if (!std::isfinite(intercept_)) {
    return Status::NumericalError("LogisticRegression: intercept diverged");
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> LogisticRegression::PredictProba(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  FAIRDRIFT_RETURN_IF_ERROR(PredictProbaInto(x, out.data()));
  return out;
}

Status LogisticRegression::PredictProbaInto(const Matrix& x, double* out,
                                            ThreadPool* pool) const {
  if (!fitted_) {
    return Status::FailedPrecondition("LogisticRegression: not fitted");
  }
  if (x.cols() != beta_.size()) {
    return Status::InvalidArgument(StrFormat(
        "LogisticRegression: %zu features, model expects %zu", x.cols(),
        beta_.size()));
  }
  // Chunk boundaries are fixed (kReductionChunk), so the serial
  // ParallelForEach bypass and every worker count write identical bits.
  ParallelForEach(0, ReductionChunks(x.rows()),
                  pool != nullptr ? pool : options_.pool,
                  [&](size_t chunk) {
                    size_t b = chunk * kReductionChunk;
                    size_t e = std::min(x.rows(), b + kReductionChunk);
                    for (size_t i = b; i < e; ++i) {
                      const double* row = x.RowPtr(i);
                      double acc = intercept_;
                      for (size_t j = 0; j < beta_.size(); ++j) {
                        acc += beta_[j] * row[j];
                      }
                      out[i] = Sigmoid(acc);
                    }
                  });
  return Status::OK();
}

std::unique_ptr<Classifier> LogisticRegression::CloneUnfitted() const {
  return std::make_unique<LogisticRegression>(options_);
}

Status LogisticRegression::SaveFittedTo(BinaryWriter* w) const {
  if (!fitted_) {
    return Status::FailedPrecondition("LogisticRegression: not fitted");
  }
  w->WriteDoubleVector(beta_);
  w->WriteDouble(intercept_);
  return Status::OK();
}

Result<std::unique_ptr<LogisticRegression>> LogisticRegression::LoadFittedFrom(
    BinaryReader* r) {
  Result<std::vector<double>> beta = r->ReadDoubleVector();
  if (!beta.ok()) return beta.status();
  Result<double> intercept = r->ReadDouble();
  if (!intercept.ok()) return intercept.status();
  auto model = std::make_unique<LogisticRegression>();
  model->beta_ = std::move(beta).value();
  model->intercept_ = intercept.value();
  model->fitted_ = true;
  return model;
}

}  // namespace fairdrift
