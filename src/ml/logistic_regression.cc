#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticRegression::Fit(const Matrix& x, const std::vector<int>& y,
                               const std::vector<double>& w) {
  Result<std::vector<double>> wr = CheckTrainingInputs(x, y, w);
  if (!wr.ok()) return wr.status();
  const std::vector<double> weights = std::move(wr).value();

  size_t n = x.rows();
  size_t d = x.cols();
  fitted_ = false;
  beta_.assign(d, 0.0);

  // Initialize the intercept at the weighted log-odds of the base rate.
  double wpos = 0.0;
  double wtot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    wtot += weights[i];
    if (y[i] == 1) wpos += weights[i];
  }
  if (wtot <= 0.0) {
    return Status::InvalidArgument("LogisticRegression: zero total weight");
  }
  double rate = std::clamp(wpos / wtot, 1e-6, 1.0 - 1e-6);
  intercept_ = std::log(rate / (1.0 - rate));

  // Damped Newton (IRLS). The system has d+1 unknowns (beta, intercept).
  std::vector<double> z(n);  // margins
  std::vector<double> p(n);  // probabilities
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      const double* row = x.RowPtr(i);
      double acc = intercept_;
      for (size_t j = 0; j < d; ++j) acc += beta_[j] * row[j];
      z[i] = acc;
      p[i] = Sigmoid(acc);
    }

    // Gradient of the negative penalized log-likelihood.
    std::vector<double> grad(d + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double r = weights[i] * (p[i] - static_cast<double>(y[i]));
      const double* row = x.RowPtr(i);
      for (size_t j = 0; j < d; ++j) grad[j] += r * row[j];
      grad[d] += r;
    }
    for (size_t j = 0; j < d; ++j) grad[j] += options_.l2_lambda * beta_[j];

    // Hessian: X^T diag(w p (1-p)) X  + lambda I (intercept unpenalized).
    Matrix hess(d + 1, d + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double s = weights[i] * p[i] * (1.0 - p[i]);
      if (s <= 0.0) continue;
      const double* row = x.RowPtr(i);
      for (size_t a = 0; a < d; ++a) {
        double sa = s * row[a];
        for (size_t b = a; b < d; ++b) {
          hess.At(a, b) += sa * row[b];
        }
        hess.At(a, d) += sa;
      }
      hess.At(d, d) += s;
    }
    for (size_t a = 0; a < d + 1; ++a) {
      for (size_t b = a + 1; b < d + 1; ++b) {
        hess.At(b, a) = hess.At(a, b);
      }
    }
    for (size_t j = 0; j < d; ++j) hess.At(j, j) += options_.l2_lambda;

    Result<std::vector<double>> step = RidgeSolve(hess, grad, 1e-8);
    if (!step.ok()) {
      return Status::NumericalError("LogisticRegression: Newton step failed (" +
                                    step.status().ToString() + ")");
    }

    // Damped update with simple step halving against divergence.
    double max_update = 0.0;
    double scale = 1.0;
    for (double v : step.value()) max_update = std::max(max_update, std::fabs(v));
    if (max_update > 10.0) scale = 10.0 / max_update;
    for (size_t j = 0; j < d; ++j) beta_[j] -= scale * step.value()[j];
    intercept_ -= scale * step.value()[d];

    if (scale * max_update < options_.tolerance) break;
  }

  for (double b : beta_) {
    if (!std::isfinite(b)) {
      return Status::NumericalError("LogisticRegression: diverged");
    }
  }
  if (!std::isfinite(intercept_)) {
    return Status::NumericalError("LogisticRegression: intercept diverged");
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> LogisticRegression::PredictProba(
    const Matrix& x) const {
  if (!fitted_) {
    return Status::FailedPrecondition("LogisticRegression: not fitted");
  }
  if (x.cols() != beta_.size()) {
    return Status::InvalidArgument(StrFormat(
        "LogisticRegression: %zu features, model expects %zu", x.cols(),
        beta_.size()));
  }
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double acc = intercept_;
    for (size_t j = 0; j < beta_.size(); ++j) acc += beta_[j] * row[j];
    out[i] = Sigmoid(acc);
  }
  return out;
}

std::unique_ptr<Classifier> LogisticRegression::CloneUnfitted() const {
  return std::make_unique<LogisticRegression>(options_);
}

}  // namespace fairdrift
