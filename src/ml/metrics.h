// Classification metrics: confusion counts, accuracy, balanced accuracy,
// log-loss, ROC AUC. The fairness layer composes these per group.

#ifndef FAIRDRIFT_ML_METRICS_H_
#define FAIRDRIFT_ML_METRICS_H_

#include <vector>

#include "util/status.h"

namespace fairdrift {

/// Binary confusion-matrix counts.
struct ConfusionCounts {
  double tp = 0.0;
  double fp = 0.0;
  double tn = 0.0;
  double fn = 0.0;

  double total() const { return tp + fp + tn + fn; }
  /// True positive rate (sensitivity); 1 when no positives exist.
  double TPR() const { return tp + fn > 0.0 ? tp / (tp + fn) : 1.0; }
  /// True negative rate (specificity); 1 when no negatives exist.
  double TNR() const { return tn + fp > 0.0 ? tn / (tn + fp) : 1.0; }
  /// False positive rate.
  double FPR() const { return 1.0 - TNR(); }
  /// False negative rate.
  double FNR() const { return 1.0 - TPR(); }
  /// Fraction of tuples predicted positive (selection rate).
  double SelectionRate() const {
    return total() > 0.0 ? (tp + fp) / total() : 0.0;
  }
};

/// Tallies confusion counts; predictions/labels must be equal length with
/// values in {0,1}. Optional weights (empty = unweighted).
Result<ConfusionCounts> ComputeConfusion(const std::vector<int>& y_true,
                                         const std::vector<int>& y_pred,
                                         const std::vector<double>& w = {});

/// Plain accuracy.
Result<double> Accuracy(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred);

/// Balanced accuracy (TPR + TNR) / 2 — the paper's utility metric.
Result<double> BalancedAccuracy(const std::vector<int>& y_true,
                                const std::vector<int>& y_pred);

/// Weighted negative log-likelihood of probabilistic predictions.
Result<double> LogLoss(const std::vector<int>& y_true,
                       const std::vector<double>& proba,
                       const std::vector<double>& w = {});

/// Area under the ROC curve via the rank statistic; 0.5 when one class is
/// absent.
Result<double> RocAuc(const std::vector<int>& y_true,
                      const std::vector<double>& proba);

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_METRICS_H_
