#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/string_util.h"

namespace fairdrift {

namespace {

Status CheckLabels(const std::vector<int>& y_true,
                   const std::vector<int>& y_pred) {
  if (y_true.size() != y_pred.size()) {
    return Status::InvalidArgument(StrFormat(
        "metrics: %zu labels vs %zu predictions", y_true.size(),
        y_pred.size()));
  }
  if (y_true.empty()) {
    return Status::InvalidArgument("metrics: empty input");
  }
  for (size_t i = 0; i < y_true.size(); ++i) {
    if ((y_true[i] != 0 && y_true[i] != 1) ||
        (y_pred[i] != 0 && y_pred[i] != 1)) {
      return Status::InvalidArgument("metrics: labels must be binary");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ConfusionCounts> ComputeConfusion(const std::vector<int>& y_true,
                                         const std::vector<int>& y_pred,
                                         const std::vector<double>& w) {
  FAIRDRIFT_RETURN_IF_ERROR(CheckLabels(y_true, y_pred));
  if (!w.empty() && w.size() != y_true.size()) {
    return Status::InvalidArgument("metrics: weight length mismatch");
  }
  ConfusionCounts c;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double wi = w.empty() ? 1.0 : w[i];
    if (y_true[i] == 1) {
      (y_pred[i] == 1 ? c.tp : c.fn) += wi;
    } else {
      (y_pred[i] == 1 ? c.fp : c.tn) += wi;
    }
  }
  return c;
}

Result<double> Accuracy(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred) {
  Result<ConfusionCounts> c = ComputeConfusion(y_true, y_pred);
  if (!c.ok()) return c.status();
  return (c.value().tp + c.value().tn) / c.value().total();
}

Result<double> BalancedAccuracy(const std::vector<int>& y_true,
                                const std::vector<int>& y_pred) {
  Result<ConfusionCounts> c = ComputeConfusion(y_true, y_pred);
  if (!c.ok()) return c.status();
  return 0.5 * (c.value().TPR() + c.value().TNR());
}

Result<double> LogLoss(const std::vector<int>& y_true,
                       const std::vector<double>& proba,
                       const std::vector<double>& w) {
  if (y_true.size() != proba.size() || y_true.empty()) {
    return Status::InvalidArgument("LogLoss: shape mismatch or empty");
  }
  double loss = 0.0;
  double wtot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double wi = w.empty() ? 1.0 : w[i];
    double p = std::clamp(proba[i], 1e-12, 1.0 - 1e-12);
    loss -= wi * (y_true[i] == 1 ? std::log(p) : std::log(1.0 - p));
    wtot += wi;
  }
  if (wtot <= 0.0) {
    return Status::InvalidArgument("LogLoss: zero total weight");
  }
  return loss / wtot;
}

Result<double> RocAuc(const std::vector<int>& y_true,
                      const std::vector<double>& proba) {
  if (y_true.size() != proba.size() || y_true.empty()) {
    return Status::InvalidArgument("RocAuc: shape mismatch or empty");
  }
  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  size_t n = y_true.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return proba[a] < proba[b]; });

  double pos = 0.0;
  double neg = 0.0;
  for (int y : y_true) {
    (y == 1 ? pos : neg) += 1.0;
  }
  if (pos == 0.0 || neg == 0.0) return 0.5;

  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && proba[order[j + 1]] == proba[order[i]]) ++j;
    double midrank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) {
      if (y_true[order[k]] == 1) rank_sum_pos += midrank;
    }
    i = j + 1;
  }
  return (rank_sum_pos - pos * (pos + 1.0) / 2.0) / (pos * neg);
}

}  // namespace fairdrift
