#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)

}  // namespace

Status GaussianNaiveBayes::Fit(const Matrix& x, const std::vector<int>& y,
                               const std::vector<double>& w) {
  Result<std::vector<double>> checked = CheckTrainingInputs(x, y, w);
  if (!checked.ok()) return checked.status();
  const std::vector<double>& weights = checked.value();
  const size_t n = x.rows();
  const size_t d = x.cols();

  fitted_ = false;
  double class_weight[2] = {0.0, 0.0};
  for (size_t c = 0; c < 2; ++c) {
    means_[c].assign(d, 0.0);
    variances_[c].assign(d, 0.0);
  }
  // Weighted means.
  for (size_t i = 0; i < n; ++i) {
    const int c = y[i];
    class_weight[c] += weights[i];
    for (size_t j = 0; j < d; ++j) {
      means_[c][j] += weights[i] * x.At(i, j);
    }
  }
  const double total_weight = class_weight[0] + class_weight[1];
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("Fit: total tuple weight is zero");
  }
  if (class_weight[0] <= 0.0 || class_weight[1] <= 0.0) {
    return Status::InvalidArgument(
        "Fit: naive Bayes needs positive weight in both classes");
  }
  for (size_t c = 0; c < 2; ++c) {
    for (size_t j = 0; j < d; ++j) means_[c][j] /= class_weight[c];
  }
  // Weighted (biased) variances about the class means.
  for (size_t i = 0; i < n; ++i) {
    const int c = y[i];
    for (size_t j = 0; j < d; ++j) {
      const double delta = x.At(i, j) - means_[c][j];
      variances_[c][j] += weights[i] * delta * delta;
    }
  }
  double max_variance = 0.0;
  for (size_t c = 0; c < 2; ++c) {
    for (size_t j = 0; j < d; ++j) {
      variances_[c][j] /= class_weight[c];
      max_variance = std::max(max_variance, variances_[c][j]);
    }
  }
  // Variance floor: a fraction of the largest variance, or an absolute
  // epsilon when every feature is constant.
  const double floor =
      std::max(options_.var_smoothing * max_variance, 1e-12);
  for (size_t c = 0; c < 2; ++c) {
    for (size_t j = 0; j < d; ++j) {
      variances_[c][j] += floor;
    }
  }
  // Smoothed weighted priors.
  const double s = options_.prior_smoothing;
  priors_[0] = (class_weight[0] + s) / (total_weight + 2.0 * s);
  priors_[1] = (class_weight[1] + s) / (total_weight + 2.0 * s);

  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> GaussianNaiveBayes::PredictProba(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  FAIRDRIFT_RETURN_IF_ERROR(PredictProbaInto(x, out.data()));
  return out;
}

Status GaussianNaiveBayes::PredictProbaInto(const Matrix& x, double* out,
                                            ThreadPool*) const {
  if (!fitted_) return Status::FailedPrecondition("PredictProba before Fit");
  if (x.cols() != means_[0].size()) {
    return Status::InvalidArgument(
        StrFormat("PredictProba: %zu columns, model expects %zu", x.cols(),
                  means_[0].size()));
  }
  for (size_t i = 0; i < x.rows(); ++i) {
    // Log joint per class; the per-feature terms are independent under
    // the naive assumption.
    double log_joint[2];
    for (size_t c = 0; c < 2; ++c) {
      double lj = std::log(priors_[c]);
      for (size_t j = 0; j < x.cols(); ++j) {
        const double var = variances_[c][j];
        const double delta = x.At(i, j) - means_[c][j];
        lj -= 0.5 * (kLog2Pi + std::log(var) + delta * delta / var);
      }
      log_joint[c] = lj;
    }
    // p(1|x) = 1 / (1 + exp(log_joint[0] - log_joint[1])), computed
    // stably.
    const double diff = log_joint[0] - log_joint[1];
    if (diff > 35.0) {
      out[i] = 0.0;
    } else if (diff < -35.0) {
      out[i] = 1.0;
    } else {
      out[i] = 1.0 / (1.0 + std::exp(diff));
    }
  }
  return Status::OK();
}

std::unique_ptr<Classifier> GaussianNaiveBayes::CloneUnfitted() const {
  return std::make_unique<GaussianNaiveBayes>(options_);
}

Status GaussianNaiveBayes::SaveFittedTo(BinaryWriter* w) const {
  if (!fitted_) {
    return Status::FailedPrecondition("GaussianNaiveBayes: not fitted");
  }
  w->WriteDouble(priors_[0]);
  w->WriteDouble(priors_[1]);
  for (int c = 0; c < 2; ++c) {
    w->WriteDoubleVector(means_[c]);
    w->WriteDoubleVector(variances_[c]);
  }
  return Status::OK();
}

Result<std::unique_ptr<GaussianNaiveBayes>> GaussianNaiveBayes::LoadFittedFrom(
    BinaryReader* r) {
  auto model = std::make_unique<GaussianNaiveBayes>();
  for (int c = 0; c < 2; ++c) {
    Result<double> prior = r->ReadDouble();
    if (!prior.ok()) return prior.status();
    // A fitted model's priors are smoothed probabilities: strictly
    // positive and finite. Forged values would turn every prediction
    // into a silent NaN.
    if (!(prior.value() > 0.0) || !std::isfinite(prior.value())) {
      return Status::DataLoss("GaussianNaiveBayes: non-positive prior");
    }
    model->priors_[c] = prior.value();
  }
  for (int c = 0; c < 2; ++c) {
    Result<std::vector<double>> means = r->ReadDoubleVector();
    if (!means.ok()) return means.status();
    Result<std::vector<double>> variances = r->ReadDoubleVector();
    if (!variances.ok()) return variances.status();
    if (means.value().size() != variances.value().size()) {
      return Status::DataLoss("GaussianNaiveBayes: mean/variance mismatch");
    }
    for (double m : means.value()) {
      if (!std::isfinite(m)) {
        return Status::DataLoss("GaussianNaiveBayes: non-finite mean");
      }
    }
    for (double v : variances.value()) {
      // Fit floors every variance at a positive smoothing term.
      if (!(v > 0.0) || !std::isfinite(v)) {
        return Status::DataLoss("GaussianNaiveBayes: non-positive variance");
      }
    }
    model->means_[c] = std::move(means).value();
    model->variances_[c] = std::move(variances).value();
  }
  if (model->means_[0].size() != model->means_[1].size()) {
    return Status::DataLoss("GaussianNaiveBayes: per-class width mismatch");
  }
  model->fitted_ = true;
  return model;
}

}  // namespace fairdrift
