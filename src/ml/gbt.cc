#include "ml/gbt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/binary_io.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status GradientBoostedTrees::Fit(const Matrix& x, const std::vector<int>& y,
                                 const std::vector<double>& w) {
  Result<std::vector<double>> wr = CheckTrainingInputs(x, y, w);
  if (!wr.ok()) return wr.status();
  const std::vector<double> weights = std::move(wr).value();

  size_t n = x.rows();
  fitted_ = false;
  trees_.clear();
  loss_curve_.clear();

  // Base score: weighted log-odds.
  double wpos = 0.0;
  double wtot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    wtot += weights[i];
    if (y[i] == 1) wpos += weights[i];
  }
  if (wtot <= 0.0) {
    return Status::InvalidArgument("GBT: zero total weight");
  }
  double rate = std::clamp(wpos / wtot, 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(rate / (1.0 - rate));

  Result<QuantileBinner> binner = QuantileBinner::Fit(x, options_.max_bins);
  if (!binner.ok()) return binner.status();
  std::vector<uint8_t> binned = binner.value().Transform(x);

  RegressionTreeOptions tree_opts;
  tree_opts.max_depth = options_.max_depth;
  tree_opts.l2_lambda = options_.l2_lambda;
  tree_opts.min_split_gain = options_.min_split_gain;
  tree_opts.min_child_hessian = options_.min_child_hessian;
  tree_opts.pool = options_.pool;

  Rng rng(options_.seed);
  std::vector<double> scores(n, base_score_);
  std::vector<GradientPair> gpairs(n);
  std::vector<size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), size_t{0});

  // Per-round log-loss partials, one fixed slot per reduction block, so
  // the loss reduces identically for every worker count.
  std::vector<double> loss_partials(ReductionChunks(n));

  for (int round = 0; round < options_.num_rounds; ++round) {
    // Gradient pass: each row's pair is written only by its own chunk and
    // the loss accumulates into that chunk's slot, in index order.
    ParallelForChunks(
        0, n,
        [&](size_t c, size_t b, size_t e) {
          double local = 0.0;
          for (size_t i = b; i < e; ++i) {
            double p = Sigmoid(scores[i]);
            double yi = static_cast<double>(y[i]);
            gpairs[i].grad = weights[i] * (p - yi);
            gpairs[i].hess = std::max(weights[i] * p * (1.0 - p), 1e-16);
            double pc = std::clamp(p, 1e-12, 1.0 - 1e-12);
            local -= weights[i] *
                     (yi * std::log(pc) + (1.0 - yi) * std::log(1.0 - pc));
          }
          loss_partials[c] = local;
        },
        options_.pool);
    double loss = 0.0;
    for (size_t c = 0; c < loss_partials.size(); ++c) loss += loss_partials[c];
    loss_curve_.push_back(loss / wtot);

    std::vector<size_t> rows;
    if (options_.subsample < 1.0) {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(options_.subsample * static_cast<double>(n)));
      rows = rng.SampleWithoutReplacement(n, k);
    } else {
      rows = all_rows;
    }

    Result<RegressionTree> tree = RegressionTree::Fit(
        binner.value(), binned, n, gpairs, rows, tree_opts);
    if (!tree.ok()) return tree.status();
    if (tree.value().num_leaves() <= 1 && round > 0) {
      // No structure left to learn; keep the ensemble as-is.
      break;
    }

    // Score update: pure per-row writes, chunked to amortize dispatch.
    const RegressionTree& t = tree.value();
    ParallelForChunks(
        0, n,
        [&](size_t, size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            scores[i] +=
                options_.learning_rate * t.PredictRow(x.RowPtr(i), x.cols());
          }
        },
        options_.pool);
    trees_.push_back(std::move(tree).value());
  }

  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> GradientBoostedTrees::PredictProba(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  FAIRDRIFT_RETURN_IF_ERROR(PredictProbaInto(x, out.data()));
  return out;
}

Status GradientBoostedTrees::PredictProbaInto(const Matrix& x, double* out,
                                              ThreadPool* pool) const {
  if (!fitted_) {
    return Status::FailedPrecondition("GBT: not fitted");
  }
  // Fixed chunk boundaries: the serial ParallelForEach bypass and every
  // worker count write identical bits.
  ParallelForEach(0, ReductionChunks(x.rows()),
                  pool != nullptr ? pool : options_.pool,
                  [&](size_t chunk) {
                    size_t b = chunk * kReductionChunk;
                    size_t e = std::min(x.rows(), b + kReductionChunk);
                    for (size_t i = b; i < e; ++i) {
                      double score = base_score_;
                      const double* row = x.RowPtr(i);
                      for (const RegressionTree& t : trees_) {
                        score +=
                            options_.learning_rate * t.PredictRow(row, x.cols());
                      }
                      out[i] = Sigmoid(score);
                    }
                  });
  return Status::OK();
}

std::unique_ptr<Classifier> GradientBoostedTrees::CloneUnfitted() const {
  return std::make_unique<GradientBoostedTrees>(options_);
}

Status GradientBoostedTrees::SaveFittedTo(BinaryWriter* w) const {
  if (!fitted_) {
    return Status::FailedPrecondition("GradientBoostedTrees: not fitted");
  }
  w->WriteDouble(base_score_);
  // learning_rate is the one hyperparameter consumed at *prediction*
  // time (score = base + sum eta * tree(x)); it must travel with the
  // trees or a non-default-rate model would load with wrong scores.
  w->WriteDouble(options_.learning_rate);
  w->WriteU64(trees_.size());
  for (const RegressionTree& tree : trees_) tree.SerializeTo(w);
  return Status::OK();
}

Result<std::unique_ptr<GradientBoostedTrees>>
GradientBoostedTrees::LoadFittedFrom(BinaryReader* r) {
  Result<double> base_score = r->ReadDouble();
  if (!base_score.ok()) return base_score.status();
  Result<double> learning_rate = r->ReadDouble();
  if (!learning_rate.ok()) return learning_rate.status();
  Result<uint64_t> count = r->ReadU64();
  if (!count.ok()) return count.status();
  // Each tree occupies >= 50 wire bytes (two u64 headers + one node).
  if (count.value() > r->remaining() / 50) {
    return Status::DataLoss("GradientBoostedTrees: implausible tree count");
  }
  auto model = std::make_unique<GradientBoostedTrees>();
  model->base_score_ = base_score.value();
  model->options_.learning_rate = learning_rate.value();
  model->trees_.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    Result<RegressionTree> tree = RegressionTree::DeserializeFrom(r);
    if (!tree.ok()) return tree.status();
    if (!model->trees_.empty() &&
        tree.value().num_features() != model->trees_.front().num_features()) {
      return Status::DataLoss(
          "GradientBoostedTrees: trees disagree on feature width");
    }
    model->trees_.push_back(std::move(tree).value());
  }
  model->fitted_ = true;
  return model;
}

}  // namespace fairdrift
