// Lloyd k-means with k-means++ seeding.
//
// The paper positions clustering as the obvious-but-inferior alternative
// to conformance constraints for describing group structure (§I "In
// relation to clustering"): clustering needs the groups to separate in
// the input space, while CCs profile each group's *distributional
// pattern* and stay discriminative when groups overlap. This substrate
// exists so the claim can be tested: core/cluster_routing.h repurposes
// k-means for DIFFAIR-style model routing, and the profiler-ablation
// bench measures both on overlapping-group drift.

#ifndef FAIRDRIFT_ML_KMEANS_H_
#define FAIRDRIFT_ML_KMEANS_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

/// Tuning knobs for k-means.
struct KMeansOptions {
  /// Number of centroids.
  int k = 2;
  /// Lloyd iteration cap per restart.
  int max_iterations = 100;
  /// Convergence threshold on the total centroid movement.
  double tolerance = 1e-6;
  /// Independent k-means++ restarts; the lowest-inertia run wins.
  int n_init = 4;
};

/// Output of a k-means run.
struct KMeansResult {
  /// k x d centroid matrix.
  Matrix centroids;
  /// Cluster id per input row.
  std::vector<int> assignments;
  /// Sum of squared distances to the assigned centroids.
  double inertia = 0.0;
  /// Lloyd iterations of the winning restart.
  int iterations = 0;
};

/// Clusters the rows of `data` into `options.k` groups. Requires
/// k >= 1 and at least one row; when k exceeds the number of *distinct*
/// rows, surplus centroids simply duplicate existing points (their
/// clusters come out empty and are reseeded to the farthest row).
Result<KMeansResult> KMeansCluster(const Matrix& data,
                                   const KMeansOptions& options, Rng* rng);

/// Index of the centroid (row of `centroids`) nearest to `row` in
/// squared Euclidean distance; ties resolve to the lowest index.
size_t NearestCentroid(const Matrix& centroids, const std::vector<double>& row);

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_KMEANS_H_
