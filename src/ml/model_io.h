// Polymorphic classifier (de)serialization.
//
// Snapshot persistence needs to freeze *any* fitted Classifier into bytes
// and rebuild it in another process. The wire form is a learner tag (the
// classifier's name(): "LR" / "XGB" / "NB"), the decision threshold, and
// the learner's own fitted payload (coefficients / trees / sufficient
// statistics — all raw IEEE-754 bits, so the deserialized model predicts
// bitwise identically to the one serialized).
//
// Training hyperparameters are deliberately not persisted: a snapshot is
// a frozen deployment artifact, not a resumable training state.

#ifndef FAIRDRIFT_ML_MODEL_IO_H_
#define FAIRDRIFT_ML_MODEL_IO_H_

#include <memory>

#include "ml/model.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace fairdrift {

/// Appends `model` (tag + threshold + fitted payload) to `w`. Fails
/// FailedPrecondition when the model is unfitted and InvalidArgument for
/// learner families without a serialization.
Status SerializeClassifier(const Classifier& model, BinaryWriter* w);

/// Rebuilds the next serialized classifier from `r`. Fails with
/// Status::DataLoss on truncated payloads or unknown learner tags.
Result<std::unique_ptr<Classifier>> DeserializeClassifier(BinaryReader* r);

/// The design-matrix width `model` expects at prediction time, or 0 when
/// it cannot be determined. Snapshot loading cross-checks this against
/// the encoder's width so a forged model cannot read past request rows.
size_t ClassifierInputDim(const Classifier& model);

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_MODEL_IO_H_
