// Histogram-based regression tree — the weak learner of the gradient
// boosting machine.
//
// Features are quantile-binned once per boosting run; each tree node then
// accumulates per-bin gradient/hessian histograms and applies the XGBoost
// split-gain formula
//   gain = 1/2 [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ] - gamma
// with leaf values  -G / (H + lambda).

#ifndef FAIRDRIFT_ML_DECISION_TREE_H_
#define FAIRDRIFT_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

class ThreadPool;      // util/parallel.h; only pointers appear in this header
class BinaryWriter;    // util/binary_io.h
class BinaryReader;    // util/binary_io.h

/// Quantile binning of a feature matrix into uint8 codes.
class QuantileBinner {
 public:
  /// Computes at most `max_bins` - 1 cut points per feature from the
  /// training matrix. Fails on empty input or max_bins outside [2, 256].
  static Result<QuantileBinner> Fit(const Matrix& x, int max_bins = 32);

  /// Bin code of value `v` for feature `j` (index of the first cut > v).
  uint8_t BinOf(size_t j, double v) const;

  /// Bins a full matrix (row-major codes, same shape as `x`).
  std::vector<uint8_t> Transform(const Matrix& x) const;

  /// Number of usable bins for feature `j` (cuts + 1).
  int NumBins(size_t j) const {
    return static_cast<int>(cuts_[j].size()) + 1;
  }

  /// Upper cut value for (feature, bin): serving-time comparisons use
  /// raw feature values against this cut.
  double CutValue(size_t j, int bin) const { return cuts_[j][static_cast<size_t>(bin)]; }

  size_t num_features() const { return cuts_.size(); }

 private:
  QuantileBinner() = default;
  std::vector<std::vector<double>> cuts_;
};

/// Per-tuple second-order statistics for one boosting round.
struct GradientPair {
  double grad = 0.0;
  double hess = 0.0;
};

/// Hyperparameters for a single regression tree.
struct RegressionTreeOptions {
  int max_depth = 4;
  double l2_lambda = 1.0;        ///< lambda in the gain/leaf formulas.
  double min_split_gain = 0.0;   ///< gamma: minimum gain to split.
  double min_child_hessian = 1.0;///< minimum sum of hessians per child.
  /// Pool for the per-feature histogram builds of the split search
  /// (features are independent; each writes its own candidate slot and
  /// the winner is picked in feature order on the calling thread, so the
  /// grown tree is bitwise identical for every worker count — and to the
  /// sequential search). Null = global pool; small nodes stay inline.
  ThreadPool* pool = nullptr;
};

/// A fitted regression tree over binned features.
class RegressionTree {
 public:
  /// Grows a tree on the rows listed in `row_indices`.
  /// `binned` holds row-major uint8 codes for all n rows; `gpairs` holds the
  /// gradient statistics of the current boosting round.
  static Result<RegressionTree> Fit(const QuantileBinner& binner,
                                    const std::vector<uint8_t>& binned,
                                    size_t num_rows,
                                    const std::vector<GradientPair>& gpairs,
                                    const std::vector<size_t>& row_indices,
                                    const RegressionTreeOptions& options);

  /// Prediction for one raw feature row.
  double PredictRow(const double* row, size_t num_features) const;

  /// Predictions for every row of a raw feature matrix.
  std::vector<double> Predict(const Matrix& x) const;

  /// Number of nodes (internal + leaves).
  size_t num_nodes() const { return nodes_.size(); }

  /// Number of leaves.
  size_t num_leaves() const;

  /// Width of the feature rows the tree was grown on.
  size_t num_features() const { return num_features_; }

  /// Appends the fitted node structure to `w` (snapshot persistence;
  /// ml/model_io.h). Node values travel as raw IEEE-754 bits, so a
  /// deserialized tree predicts bitwise identically.
  void SerializeTo(BinaryWriter* w) const;

  /// Rebuilds a tree from SerializeTo's payload. Fails with
  /// Status::DataLoss on truncated or inconsistent node data.
  static Result<RegressionTree> DeserializeFrom(BinaryReader* r);

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;      // leaf weight
    size_t feature = 0;      // split feature (internal nodes)
    double cut = 0.0;        // raw-value threshold: go left when v <= cut
    uint8_t bin_cut = 0;     // binned threshold: go left when bin <= bin_cut
    int left = -1;
    int right = -1;
  };

  RegressionTree() = default;

  int GrowNode(const QuantileBinner& binner, const std::vector<uint8_t>& binned,
               const std::vector<GradientPair>& gpairs,
               std::vector<size_t>* rows, size_t begin, size_t end, int depth,
               const RegressionTreeOptions& options);

  std::vector<Node> nodes_;
  size_t num_features_ = 0;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_DECISION_TREE_H_
