#include "ml/model.h"

#include <algorithm>
#include <cmath>

#include "ml/gbt.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "util/string_util.h"

namespace fairdrift {

Result<std::vector<int>> Classifier::Predict(const Matrix& x) const {
  Result<std::vector<double>> proba = PredictProba(x);
  if (!proba.ok()) return proba.status();
  std::vector<int> out(proba.value().size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = proba.value()[i] >= threshold_ ? 1 : 0;
  }
  return out;
}

Status Classifier::PredictProbaInto(const Matrix& x, double* out,
                                    ThreadPool*) const {
  Result<std::vector<double>> proba = PredictProba(x);
  if (!proba.ok()) return proba.status();
  std::copy(proba.value().begin(), proba.value().end(), out);
  return Status::OK();
}

Result<std::vector<double>> Classifier::CheckTrainingInputs(
    const Matrix& x, const std::vector<int>& y, const std::vector<double>& w) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("Fit: empty design matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument(
        StrFormat("Fit: %zu labels for %zu rows", y.size(), x.rows()));
  }
  for (int yi : y) {
    if (yi != 0 && yi != 1) {
      return Status::InvalidArgument(
          "Fit: learners are binary; labels must be 0 or 1");
    }
  }
  std::vector<double> weights;
  if (w.empty()) {
    weights.assign(x.rows(), 1.0);
  } else {
    if (w.size() != x.rows()) {
      return Status::InvalidArgument(
          StrFormat("Fit: %zu weights for %zu rows", w.size(), x.rows()));
    }
    for (double wi : w) {
      if (wi < 0.0 || !std::isfinite(wi)) {
        return Status::InvalidArgument("Fit: weights must be finite and >= 0");
      }
    }
    weights = w;
  }
  return weights;
}

const char* LearnerKindName(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kLogisticRegression:
      return "LR";
    case LearnerKind::kGradientBoosting:
      return "XGB";
    case LearnerKind::kNaiveBayes:
      return "NB";
  }
  return "?";
}

std::unique_ptr<Classifier> MakeLearner(LearnerKind kind, uint64_t rng_seed) {
  switch (kind) {
    case LearnerKind::kLogisticRegression:
      return std::make_unique<LogisticRegression>();
    case LearnerKind::kGradientBoosting: {
      GbtOptions opts;
      opts.seed = rng_seed;
      return std::make_unique<GradientBoostedTrees>(opts);
    }
    case LearnerKind::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
  }
  return nullptr;
}

}  // namespace fairdrift
