// Weighted L2-regularized logistic regression trained with Newton / IRLS.

#ifndef FAIRDRIFT_ML_LOGISTIC_REGRESSION_H_
#define FAIRDRIFT_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace fairdrift {

class ThreadPool;    // util/parallel.h; only pointers appear in this header
class BinaryWriter;  // util/binary_io.h
class BinaryReader;  // util/binary_io.h

/// Hyperparameters for LogisticRegression.
struct LogisticRegressionOptions {
  /// L2 penalty on the non-intercept coefficients.
  double l2_lambda = 1e-3;
  /// Maximum Newton iterations.
  int max_iterations = 50;
  /// Convergence tolerance on the max absolute coefficient update.
  double tolerance = 1e-8;
  /// Pool for the row-wise margin/gradient/Hessian passes (global pool
  /// when null). Fits are bitwise identical for every worker count: the
  /// reductions use fixed-slot partials combined in index order.
  ThreadPool* pool = nullptr;
};

/// Binary logistic regression: p(y=1|x) = sigmoid(beta . x + b).
///
/// Training maximizes the *weighted* penalized log-likelihood
///   sum_i w_i [y_i log p_i + (1-y_i) log(1-p_i)] - lambda/2 ||beta||^2
/// via damped Newton steps (IRLS); the intercept is not penalized.
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y,
             const std::vector<double>& w) override;
  Result<std::vector<double>> PredictProba(const Matrix& x) const override;
  Status PredictProbaInto(const Matrix& x, double* out,
                          ThreadPool* pool = nullptr) const override;
  std::unique_ptr<Classifier> CloneUnfitted() const override;
  std::string name() const override { return "LR"; }
  bool is_fitted() const override { return fitted_; }

  /// Learned coefficients (size d); valid after Fit.
  const std::vector<double>& coefficients() const { return beta_; }

  /// Learned intercept; valid after Fit.
  double intercept() const { return intercept_; }

  /// Appends the fitted state (coefficients, intercept) to `w` for
  /// snapshot persistence (ml/model_io.h). Fails when unfitted.
  Status SaveFittedTo(BinaryWriter* w) const;

  /// Rebuilds a fitted model from SaveFittedTo's payload. The training
  /// hyperparameters are not persisted — the fitted state alone decides
  /// predictions.
  static Result<std::unique_ptr<LogisticRegression>> LoadFittedFrom(
      BinaryReader* r);

 private:
  LogisticRegressionOptions options_;
  std::vector<double> beta_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_LOGISTIC_REGRESSION_H_
