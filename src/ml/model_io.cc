#include "ml/model_io.h"

#include "ml/gbt.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"

namespace fairdrift {

Status SerializeClassifier(const Classifier& model, BinaryWriter* w) {
  if (!model.is_fitted()) {
    return Status::FailedPrecondition(
        "SerializeClassifier: model is not fitted");
  }
  w->WriteString(model.name());
  w->WriteDouble(model.threshold());
  if (const auto* lr = dynamic_cast<const LogisticRegression*>(&model)) {
    return lr->SaveFittedTo(w);
  }
  if (const auto* gbt = dynamic_cast<const GradientBoostedTrees*>(&model)) {
    return gbt->SaveFittedTo(w);
  }
  if (const auto* nb = dynamic_cast<const GaussianNaiveBayes*>(&model)) {
    return nb->SaveFittedTo(w);
  }
  return Status::InvalidArgument("SerializeClassifier: learner '" +
                                 model.name() + "' has no serialization");
}

Result<std::unique_ptr<Classifier>> DeserializeClassifier(BinaryReader* r) {
  Result<std::string> tag = r->ReadString();
  if (!tag.ok()) return tag.status();
  Result<double> threshold = r->ReadDouble();
  if (!threshold.ok()) return threshold.status();

  std::unique_ptr<Classifier> model;
  if (tag.value() == "LR") {
    Result<std::unique_ptr<LogisticRegression>> lr =
        LogisticRegression::LoadFittedFrom(r);
    if (!lr.ok()) return lr.status();
    model = std::move(lr).value();
  } else if (tag.value() == "XGB") {
    Result<std::unique_ptr<GradientBoostedTrees>> gbt =
        GradientBoostedTrees::LoadFittedFrom(r);
    if (!gbt.ok()) return gbt.status();
    model = std::move(gbt).value();
  } else if (tag.value() == "NB") {
    Result<std::unique_ptr<GaussianNaiveBayes>> nb =
        GaussianNaiveBayes::LoadFittedFrom(r);
    if (!nb.ok()) return nb.status();
    model = std::move(nb).value();
  } else {
    return Status::DataLoss("DeserializeClassifier: unknown learner tag '" +
                            tag.value() + "'");
  }
  model->set_threshold(threshold.value());
  return model;
}

size_t ClassifierInputDim(const Classifier& model) {
  if (const auto* lr = dynamic_cast<const LogisticRegression*>(&model)) {
    return lr->coefficients().size();
  }
  if (const auto* gbt = dynamic_cast<const GradientBoostedTrees*>(&model)) {
    return gbt->input_dim();
  }
  if (const auto* nb = dynamic_cast<const GaussianNaiveBayes*>(&model)) {
    return nb->input_dim();
  }
  return 0;
}

}  // namespace fairdrift
