#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fairdrift {

namespace {

double SquaredRowDistance(const Matrix& a, size_t ra, const Matrix& b,
                          size_t rb) {
  const double* pa = a.RowPtr(ra);
  const double* pb = b.RowPtr(rb);
  double sum = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    const double d = pa[j] - pb[j];
    sum += d * d;
  }
  return sum;
}

// k-means++: the first centroid is uniform; each next one is sampled
// proportionally to the squared distance from the nearest chosen centroid.
Matrix PlusPlusInit(const Matrix& data, int k, Rng* rng) {
  const size_t n = data.rows();
  Matrix centroids(static_cast<size_t>(k), data.cols());
  size_t first = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(n) - 1));
  centroids.SetRow(0, data.Row(first));
  std::vector<double> best_d2(n, std::numeric_limits<double>::infinity());
  for (int c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      best_d2[i] = std::min(best_d2[i], SquaredRowDistance(
                                            data, i, centroids,
                                            static_cast<size_t>(c - 1)));
    }
    double total = 0.0;
    for (double d : best_d2) total += d;
    size_t pick;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids.
      pick = static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(n) - 1));
    } else {
      pick = rng->Categorical(best_d2);
    }
    centroids.SetRow(static_cast<size_t>(c), data.Row(pick));
  }
  return centroids;
}

struct LloydOutcome {
  Matrix centroids;
  std::vector<int> assignments;
  double inertia = 0.0;
  int iterations = 0;
};

LloydOutcome RunLloyd(const Matrix& data, Matrix centroids,
                      const KMeansOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = centroids.rows();
  LloydOutcome out;
  out.assignments.assign(n, 0);
  for (int it = 0; it < options.max_iterations; ++it) {
    out.iterations = it + 1;
    // Assignment step.
    for (size_t i = 0; i < n; ++i) {
      out.assignments[i] =
          static_cast<int>(NearestCentroid(centroids, data.Row(i)));
    }
    // Update step.
    Matrix next(k, d, 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(out.assignments[i]);
      ++counts[c];
      const double* src = data.RowPtr(i);
      double* dst = next.RowPtr(c);
      for (size_t j = 0; j < d; ++j) dst[j] += src[j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster to the row farthest from its centroid.
        size_t far = 0;
        double far_d2 = -1.0;
        for (size_t i = 0; i < n; ++i) {
          double d2 = SquaredRowDistance(
              data, i, centroids,
              static_cast<size_t>(out.assignments[i]));
          if (d2 > far_d2) {
            far_d2 = d2;
            far = i;
          }
        }
        next.SetRow(c, data.Row(far));
        continue;
      }
      double* dst = next.RowPtr(c);
      for (size_t j = 0; j < d; ++j) dst[j] /= static_cast<double>(counts[c]);
    }
    // Convergence check on total centroid movement.
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      movement += std::sqrt(SquaredRowDistance(next, c, centroids, c));
    }
    centroids = std::move(next);
    if (movement <= options.tolerance) break;
  }
  // Final assignment + inertia against the final centroids.
  out.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t c = NearestCentroid(centroids, data.Row(i));
    out.assignments[i] = static_cast<int>(c);
    out.inertia += SquaredRowDistance(data, i, centroids, c);
  }
  out.centroids = std::move(centroids);
  return out;
}

}  // namespace

Result<KMeansResult> KMeansCluster(const Matrix& data,
                                   const KMeansOptions& options, Rng* rng) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("KMeansCluster: empty input");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("KMeansCluster: k must be >= 1");
  }
  if (options.n_init < 1 || options.max_iterations < 1) {
    return Status::InvalidArgument(
        "KMeansCluster: n_init and max_iterations must be >= 1");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("KMeansCluster: rng is required");
  }
  const int k = std::min<int>(options.k, static_cast<int>(data.rows()));

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < options.n_init; ++restart) {
    Rng child = rng->Fork();
    Matrix init = PlusPlusInit(data, k, &child);
    LloydOutcome run = RunLloyd(data, std::move(init), options);
    if (run.inertia < best.inertia) {
      best.centroids = std::move(run.centroids);
      best.assignments = std::move(run.assignments);
      best.inertia = run.inertia;
      best.iterations = run.iterations;
    }
  }
  return best;
}

size_t NearestCentroid(const Matrix& centroids,
                       const std::vector<double>& row) {
  size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.rows(); ++c) {
    const double* pc = centroids.RowPtr(c);
    double d2 = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      const double d = row[j] - pc[j];
      d2 += d * d;
    }
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

}  // namespace fairdrift
