#include "ml/threshold.h"

#include <algorithm>
#include <numeric>

namespace fairdrift {

Result<double> TuneThreshold(const std::vector<int>& y_true,
                             const std::vector<double>& proba,
                             ThresholdCriterion criterion) {
  if (y_true.size() != proba.size() || y_true.empty()) {
    return Status::InvalidArgument("TuneThreshold: shape mismatch or empty");
  }

  // Sort descending by probability, then sweep the cut point. Maintaining
  // running confusion counts makes the sweep O(n log n).
  size_t n = y_true.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return proba[a] > proba[b]; });

  double pos = 0.0;
  double neg = 0.0;
  for (int y : y_true) {
    (y == 1 ? pos : neg) += 1.0;
  }

  // Start with everything predicted negative.
  double tp = 0.0;
  double fp = 0.0;
  auto score = [&](double tp_c, double fp_c) {
    double fn_c = pos - tp_c;
    double tn_c = neg - fp_c;
    double tpr = pos > 0.0 ? tp_c / pos : 1.0;
    double tnr = neg > 0.0 ? tn_c / neg : 1.0;
    if (criterion == ThresholdCriterion::kBalancedAccuracy) {
      return 0.5 * (tpr + tnr);
    }
    return (tp_c + tn_c) / (tp_c + fp_c + tn_c + fn_c);
  };

  double best_score = score(tp, fp);
  double best_threshold = 1.0 + 1e-9;  // everything negative
  size_t i = 0;
  while (i < n) {
    // Move the cut below the next distinct probability value.
    double p = proba[order[i]];
    while (i < n && proba[order[i]] == p) {
      if (y_true[order[i]] == 1) {
        tp += 1.0;
      } else {
        fp += 1.0;
      }
      ++i;
    }
    double s = score(tp, fp);
    if (s > best_score) {
      best_score = s;
      best_threshold = p;
    }
  }
  return best_threshold;
}

}  // namespace fairdrift
