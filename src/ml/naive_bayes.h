// Weighted Gaussian Naive Bayes classifier.
//
// The paper's fairness lineage starts from naive-Bayes classifiers
// (Calders & Verwer, ref. [1]); this learner adds a third model family to
// the LR / XGB pair used in the evaluation, which widens the
// model-agnosticism study of Fig. 7: CONFAIR's weights are calibrated on
// one family and consumed by another, and NB's fit is a pure function of
// *weighted* sufficient statistics, so reweighing interventions transfer
// to it exactly.

#ifndef FAIRDRIFT_ML_NAIVE_BAYES_H_
#define FAIRDRIFT_ML_NAIVE_BAYES_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace fairdrift {

class BinaryWriter;  // util/binary_io.h
class BinaryReader;  // util/binary_io.h

/// Hyperparameters for GaussianNaiveBayes.
struct NaiveBayesOptions {
  /// Portion of the largest feature variance added to every per-class
  /// variance, guarding degenerate (constant) features. Mirrors
  /// scikit-learn's `var_smoothing`.
  double var_smoothing = 1e-9;
  /// Additive (Laplace) smoothing on the class priors, in effective
  /// sample-weight units.
  double prior_smoothing = 1.0;
};

/// Gaussian Naive Bayes: p(y | x) ∝ p(y) · Π_j N(x_j; μ_{y,j}, σ²_{y,j}).
///
/// Training computes *weighted* class priors and per-(class, feature)
/// weighted means and variances, so tuple weights shift the fitted
/// distributions exactly as duplicating tuples would — the property
/// reweighing interventions rely on.
class GaussianNaiveBayes final : public Classifier {
 public:
  explicit GaussianNaiveBayes(NaiveBayesOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y,
             const std::vector<double>& w) override;
  Result<std::vector<double>> PredictProba(const Matrix& x) const override;
  Status PredictProbaInto(const Matrix& x, double* out,
                          ThreadPool* pool = nullptr) const override;
  std::unique_ptr<Classifier> CloneUnfitted() const override;
  std::string name() const override { return "NB"; }
  bool is_fitted() const override { return fitted_; }

  /// Weighted prior P(y = c); valid after Fit.
  double prior(int c) const { return priors_[c]; }

  /// Weighted mean of feature `j` within class `c`; valid after Fit.
  double mean(int c, size_t j) const { return means_[c][j]; }

  /// Smoothed weighted variance of feature `j` within class `c`.
  double variance(int c, size_t j) const { return variances_[c][j]; }

  /// Width of the design matrix the model was fitted on.
  size_t input_dim() const { return means_[0].size(); }

  /// Appends the fitted state (priors, per-class means/variances) to `w`
  /// for snapshot persistence (ml/model_io.h). Fails when unfitted.
  Status SaveFittedTo(BinaryWriter* w) const;

  /// Rebuilds a fitted model from SaveFittedTo's payload.
  static Result<std::unique_ptr<GaussianNaiveBayes>> LoadFittedFrom(
      BinaryReader* r);

 private:
  NaiveBayesOptions options_;
  double priors_[2] = {0.5, 0.5};
  std::vector<double> means_[2];      // per class, size d
  std::vector<double> variances_[2];  // per class, size d
  bool fitted_ = false;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_NAIVE_BAYES_H_
