#include "ml/calibration.h"

#include <algorithm>
#include <cmath>

namespace fairdrift {

Result<std::vector<ReliabilityBin>> ReliabilityCurve(
    const std::vector<int>& y_true, const std::vector<double>& proba,
    int num_bins) {
  if (y_true.empty() || y_true.size() != proba.size()) {
    return Status::InvalidArgument("ReliabilityCurve: shape mismatch");
  }
  if (num_bins < 2) {
    return Status::InvalidArgument("ReliabilityCurve: num_bins < 2");
  }
  std::vector<ReliabilityBin> bins(static_cast<size_t>(num_bins));
  double width = 1.0 / num_bins;
  for (int b = 0; b < num_bins; ++b) {
    bins[static_cast<size_t>(b)].lower = b * width;
    bins[static_cast<size_t>(b)].upper = (b + 1) * width;
  }
  for (size_t i = 0; i < proba.size(); ++i) {
    double p = std::clamp(proba[i], 0.0, 1.0);
    int b = std::min(static_cast<int>(p / width), num_bins - 1);
    ReliabilityBin& bin = bins[static_cast<size_t>(b)];
    ++bin.count;
    bin.mean_predicted += p;
    bin.observed_rate += static_cast<double>(y_true[i]);
  }
  for (ReliabilityBin& bin : bins) {
    if (bin.count > 0) {
      bin.mean_predicted /= static_cast<double>(bin.count);
      bin.observed_rate /= static_cast<double>(bin.count);
    }
  }
  return bins;
}

Result<double> ExpectedCalibrationError(const std::vector<int>& y_true,
                                        const std::vector<double>& proba,
                                        int num_bins) {
  Result<std::vector<ReliabilityBin>> bins =
      ReliabilityCurve(y_true, proba, num_bins);
  if (!bins.ok()) return bins.status();
  double ece = 0.0;
  double n = static_cast<double>(y_true.size());
  for (const ReliabilityBin& bin : bins.value()) {
    if (bin.count == 0) continue;
    ece += (static_cast<double>(bin.count) / n) *
           std::fabs(bin.observed_rate - bin.mean_predicted);
  }
  return ece;
}

Result<double> BrierScore(const std::vector<int>& y_true,
                          const std::vector<double>& proba) {
  if (y_true.empty() || y_true.size() != proba.size()) {
    return Status::InvalidArgument("BrierScore: shape mismatch");
  }
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double d = proba[i] - static_cast<double>(y_true[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(y_true.size());
}

}  // namespace fairdrift
