// Probability-calibration diagnostics.
//
// CONFAIR's reweighing changes the effective class prior the learner
// sees; these diagnostics (reliability bins, expected calibration error,
// Brier score) quantify what that does to the probability estimates —
// useful when the deployed system thresholds on probabilities.

#ifndef FAIRDRIFT_ML_CALIBRATION_H_
#define FAIRDRIFT_ML_CALIBRATION_H_

#include <vector>

#include "util/status.h"

namespace fairdrift {

/// One equal-width reliability bin over predicted probability.
struct ReliabilityBin {
  double lower = 0.0;            ///< bin range [lower, upper)
  double upper = 0.0;
  size_t count = 0;              ///< tuples whose prediction fell here
  double mean_predicted = 0.0;   ///< average predicted probability
  double observed_rate = 0.0;    ///< empirical positive rate
};

/// Bins predictions into `num_bins` equal-width probability buckets.
/// Fails on empty/mismatched input or num_bins < 2.
Result<std::vector<ReliabilityBin>> ReliabilityCurve(
    const std::vector<int>& y_true, const std::vector<double>& proba,
    int num_bins = 10);

/// Expected calibration error: count-weighted mean of
/// |observed_rate - mean_predicted| over the reliability bins.
Result<double> ExpectedCalibrationError(const std::vector<int>& y_true,
                                        const std::vector<double>& proba,
                                        int num_bins = 10);

/// Brier score: mean squared error of the probabilistic predictions.
Result<double> BrierScore(const std::vector<int>& y_true,
                          const std::vector<double>& proba);

}  // namespace fairdrift

#endif  // FAIRDRIFT_ML_CALIBRATION_H_
