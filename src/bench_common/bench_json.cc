#include "bench_common/bench_json.h"

#include <cstdio>
#include <cstdlib>

#include "kde/kde.h"
#include "kde/kde_cache.h"

namespace fairdrift {

std::string BenchJsonPath() { return BenchJsonPathOr("BENCH_kde.json"); }

std::string BenchJsonPathOr(const char* default_name) {
  if (const char* env = std::getenv("FAIRDRIFT_BENCH_JSON")) {
    if (env[0] != '\0') return env;
  }
  return default_name;
}

Status WriteBenchJson(const std::vector<BenchJsonSection>& sections,
                      const std::string& path) {
  std::string dest = path.empty() ? BenchJsonPath() : path;
  std::FILE* f = std::fopen(dest.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("WriteBenchJson: cannot open " + dest);
  }
  std::fprintf(f, "{\n");
  for (size_t s = 0; s < sections.size(); ++s) {
    std::fprintf(f, "  \"%s\": {\n", sections[s].name.c_str());
    const auto& metrics = sections[s].metrics;
    for (size_t m = 0; m < metrics.size(); ++m) {
      std::fprintf(f, "    \"%s\": %.17g%s\n", metrics[m].first.c_str(),
                   metrics[m].second, m + 1 < metrics.size() ? "," : "");
    }
    std::fprintf(f, "  }%s\n", s + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", dest.c_str());
  return Status::OK();
}

BenchJsonSection KdeCacheSection() {
  KdeCache::Stats stats = GlobalKdeCache().stats();
  BenchJsonSection section;
  section.name = "kde_cache";
  section.metrics = {
      {"hits", static_cast<double>(stats.hits)},
      {"misses", static_cast<double>(stats.misses)},
      {"hit_rate", stats.hit_rate()},
      {"evictions", static_cast<double>(stats.evictions)},
      {"entries", static_cast<double>(stats.entries)},
      {"resident_bytes", static_cast<double>(stats.resident_bytes)},
      {"fingerprint_memo_hits",
       static_cast<double>(stats.fingerprint_memo_hits)},
      {"total_fit_calls", static_cast<double>(KernelDensity::TotalFitCount())},
  };
  return section;
}

}  // namespace fairdrift
