#include "bench_common/experiment.h"

#include <cstdio>

#include "bench_common/table.h"
#include "datagen/realworld.h"
#include "kde/kde.h"
#include "kde/kde_cache.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

// Value type for the parallel trial map (Result<PipelineResult> is not
// default-constructible).
struct TrialOutcome {
  bool ok = false;
  PipelineResult result;
  std::string error;
};

}  // namespace

TrialSummary RunTrials(const Dataset& data, const PipelineOptions& options,
                       int trials, uint64_t seed) {
  TrialSummary summary;
  std::vector<FairnessReport> reports;
  // Fork one RNG stream per trial up front (sequentially, so stream
  // identities are independent of scheduling), then run the trials in
  // parallel and reduce in trial order: the summary is identical to the
  // old sequential loop for every worker count.
  Rng master(seed);
  std::vector<Rng> trial_rngs;
  trial_rngs.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) trial_rngs.push_back(master.Fork());

  // Nested loops on pool workers run inline, so fanning out fewer trials
  // than there are workers would leave the rest of the machine idle AND
  // serialize each trial's inner KDE/filter parallelism. Fan out only
  // when the trials can cover the pool; otherwise run them sequentially
  // and let the batched inner loops use the workers.
  ThreadPool inline_pool(0);
  ThreadPool& global_pool = GlobalThreadPool();
  ThreadPool* pool = static_cast<size_t>(trials) >= global_pool.num_threads()
                         ? &global_pool
                         : &inline_pool;
  std::vector<TrialOutcome> outcomes = ParallelMap<TrialOutcome>(
      static_cast<size_t>(trials), [&](size_t t) -> TrialOutcome {
        TrialOutcome out;
        Rng trial_rng = trial_rngs[t];
        Result<PipelineResult> result = RunPipeline(data, options, &trial_rng);
        if (!result.ok()) {
          out.error = result.status().ToString();
          return out;
        }
        out.ok = true;
        out.result = std::move(result).value();
        return out;
      },
      pool);

  for (const TrialOutcome& outcome : outcomes) {
    if (!outcome.ok) {
      ++summary.trials_failed;
      if (summary.first_error.empty()) summary.first_error = outcome.error;
      FD_LOG_DEBUG << MethodName(options.method)
                   << " trial failed: " << outcome.error;
      continue;
    }
    ++summary.trials_succeeded;
    reports.push_back(outcome.result.report);
    summary.runtime_seconds += outcome.result.runtime_seconds;
    summary.tuned_alpha += outcome.result.tuned_alpha;
    summary.tuned_lambda += outcome.result.tuned_lambda;
  }
  if (summary.trials_succeeded > 0) {
    double n = static_cast<double>(summary.trials_succeeded);
    summary.report = AverageReports(reports);
    summary.runtime_seconds /= n;
    summary.tuned_alpha /= n;
    summary.tuned_lambda /= n;
  }
  return summary;
}

BenchConfig BenchConfig::FromFlags(const CliFlags& flags) {
  BenchConfig config;
  config.trials = static_cast<int>(flags.GetInt("trials", config.trials));
  config.scale = flags.GetDouble("scale", config.scale);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.verbose = flags.GetBool("verbose", false);
  if (config.verbose) SetLogLevel(LogLevel::kDebug);
  return config;
}

std::string MetricCell(const TrialSummary& summary, double value) {
  if (summary.trials_succeeded == 0) return "n/a";
  std::string cell = FormatDouble(value, 3);
  if (summary.report.degenerate) cell += " #";   // crisscross bars (Fig. 6)
  return cell;
}

void RunAndPrintMethodGrid(const std::vector<NamedDataset>& datasets,
                           const std::vector<NamedMethod>& methods,
                           int trials, uint64_t seed) {
  // Run the full grid once, then render one table per metric. Method
  // columns re-split with the same seed, so the KDE fit cache carries
  // fitted estimators across cells; the counters are reported below.
  GlobalKdeCache().ResetStats();
  uint64_t fits_before = KernelDensity::TotalFitCount();
  std::vector<std::vector<TrialSummary>> grid(datasets.size());
  for (size_t di = 0; di < datasets.size(); ++di) {
    grid[di].resize(methods.size());
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      grid[di][mi] = RunTrials(datasets[di].data, methods[mi].options,
                               trials, seed + 1000 * di);
      std::fprintf(stderr, "  [%s x %s] done (%d ok, %d failed)\n",
                   datasets[di].name.c_str(), methods[mi].name.c_str(),
                   grid[di][mi].trials_succeeded,
                   grid[di][mi].trials_failed);
    }
  }

  struct MetricView {
    const char* title;
    double (*get)(const TrialSummary&);
    bool mark_favoring;
  };
  const MetricView views[] = {
      {"Disparate Impact DI* (higher = fairer; '+' favors minority)",
       [](const TrialSummary& s) { return s.report.di_star; }, true},
      {"Average Odds Difference AOD* (higher = fairer)",
       [](const TrialSummary& s) { return s.report.aod_star; }, false},
      {"Balanced Accuracy (utility; '#' = degenerate one-class model)",
       [](const TrialSummary& s) { return s.report.balanced_accuracy; },
       false},
  };
  for (const MetricView& view : views) {
    PrintSection(view.title);
    std::vector<std::string> header = {"dataset"};
    for (const NamedMethod& m : methods) header.push_back(m.name);
    AsciiTable table(header);
    for (size_t di = 0; di < datasets.size(); ++di) {
      std::vector<std::string> row = {datasets[di].name};
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        const TrialSummary& s = grid[di][mi];
        std::string cell = MetricCell(s, view.get(s));
        if (view.mark_favoring && s.trials_succeeded > 0 &&
            s.report.favors_minority) {
          cell += " +";
        }
        row.push_back(cell);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  KdeCache::Stats stats = GlobalKdeCache().stats();
  if (stats.hits + stats.misses > 0) {
    std::fprintf(stderr,
                 "KDE fit cache: %llu hits / %llu misses (hit rate %.3f), "
                 "%llu Fit calls this grid\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 stats.hit_rate(),
                 static_cast<unsigned long long>(KernelDensity::TotalFitCount() -
                                                 fits_before));
  }
}

std::vector<NamedDataset> BuildRealWorldSuite(double scale) {
  std::vector<NamedDataset> out;
  for (const RealDatasetSpec& spec : RealDatasetSuite()) {
    Result<Dataset> data = MakeRealWorldLike(spec, scale);
    if (!data.ok()) {
      std::fprintf(stderr, "datagen %s failed: %s\n", spec.name.c_str(),
                   data.status().ToString().c_str());
      continue;
    }
    out.push_back({spec.name, std::move(data).value()});
  }
  return out;
}

}  // namespace fairdrift
