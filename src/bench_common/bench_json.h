// Machine-readable benchmark emission (BENCH_kde.json).
//
// The perf-sensitive benches write a small JSON file of named metric
// sections so the KDE perf trajectory (ns/query, queries/sec, cache hit
// rate) can be tracked across PRs and uploaded as a CI artifact, instead
// of living only in scrollback. The format is deliberately flat:
//
//   {
//     "micro_kde": {"single_thread_ns_per_query": 24301.5, ...},
//     "kde_cache": {"hits": 132, "misses": 12, "hit_rate": 0.9166, ...}
//   }
//
// Section and metric names are identifier-like by convention (no escaping
// is performed); values are doubles rendered with %.17g so integers
// round-trip exactly.

#ifndef FAIRDRIFT_BENCH_COMMON_BENCH_JSON_H_
#define FAIRDRIFT_BENCH_COMMON_BENCH_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fairdrift {

/// One named group of metrics.
struct BenchJsonSection {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Output path: $FAIRDRIFT_BENCH_JSON when set, else "BENCH_kde.json" in
/// the working directory.
std::string BenchJsonPath();

/// Output path with a caller-chosen default: $FAIRDRIFT_BENCH_JSON when
/// set, else `default_name` in the working directory. Each bench binary
/// names its own artifact (BENCH_cc.json, BENCH_ml.json,
/// BENCH_serving.json, ...) so CI can upload every hot path's trajectory.
std::string BenchJsonPathOr(const char* default_name);

/// Writes `sections` to `path` (BenchJsonPath() when empty), replacing any
/// existing file, and logs the destination to stderr.
Status WriteBenchJson(const std::vector<BenchJsonSection>& sections,
                      const std::string& path = "");

/// The global KDE cache and fit counters as a ready-made section named
/// "kde_cache" (hits, misses, hit_rate, evictions, entries,
/// total_fit_calls). Appended by every bench that touches the KDE path.
BenchJsonSection KdeCacheSection();

}  // namespace fairdrift

#endif  // FAIRDRIFT_BENCH_COMMON_BENCH_JSON_H_
