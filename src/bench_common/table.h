// ASCII table printer for the figure-reproduction benches.

#ifndef FAIRDRIFT_BENCH_COMMON_TABLE_H_
#define FAIRDRIFT_BENCH_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace fairdrift {

/// Accumulates rows and renders an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment and a header separator.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "=== title ===" section banner to stdout.
void PrintSection(const std::string& title);

}  // namespace fairdrift

#endif  // FAIRDRIFT_BENCH_COMMON_TABLE_H_
