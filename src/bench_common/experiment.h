// Experiment grid runner shared by the figure benches: repeats a pipeline
// over trials with fresh random splits, averaging the reports (the paper
// averages 20 repetitions).

#ifndef FAIRDRIFT_BENCH_COMMON_EXPERIMENT_H_
#define FAIRDRIFT_BENCH_COMMON_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "util/cli.h"
#include "util/status.h"

namespace fairdrift {

/// Averaged outcome of repeated pipeline runs.
struct TrialSummary {
  FairnessReport report;        ///< metric averages across trials
  double runtime_seconds = 0.0; ///< mean wall-clock per trial
  double tuned_alpha = 0.0;     ///< mean tuned alpha (CONFAIR)
  double tuned_lambda = 0.0;    ///< mean calibrated lambda (OMN)
  int trials_succeeded = 0;
  int trials_failed = 0;        ///< e.g. OMN failing to converge (Fig. 6)
  std::string first_error;      ///< diagnostic for failed trials
};

/// Runs `options` on fresh splits of `data` for `trials` repetitions.
/// A failing trial (Status error) is recorded rather than propagated —
/// the paper reports such failures as missing bars.
TrialSummary RunTrials(const Dataset& data, const PipelineOptions& options,
                       int trials, uint64_t seed);

/// Common bench flags (--trials, --scale, --seed, --verbose) decoded from
/// the command line.
struct BenchConfig {
  int trials = 2;       ///< paper uses 20; 2 keeps the default suite fast
  double scale = 0.05;  ///< dataset scale relative to paper size
  uint64_t seed = 42;
  bool verbose = false;

  static BenchConfig FromFlags(const CliFlags& flags);
};

/// Formats "0.123" or "n/a" when no trial succeeded.
std::string MetricCell(const TrialSummary& summary, double value);

/// A named dataset for grid experiments.
struct NamedDataset {
  std::string name;
  Dataset data;
};

/// A named pipeline configuration (method column) for grid experiments.
struct NamedMethod {
  std::string name;
  PipelineOptions options;
};

/// Runs every (dataset x method) cell for `trials` repetitions and prints
/// three tables — DI*, AOD*, BalAcc — with datasets as rows and methods as
/// columns, reproducing the bar-chart content of the paper's Figs. 5-7,
/// 11-13. Cells append " +" when raw DI favors the minority (striped bars)
/// and " #" for degenerate one-class models (crisscross bars).
void RunAndPrintMethodGrid(const std::vector<NamedDataset>& datasets,
                           const std::vector<NamedMethod>& methods,
                           int trials, uint64_t seed);

/// Builds the seven simulated real-world datasets at `scale`.
std::vector<NamedDataset> BuildRealWorldSuite(double scale);

}  // namespace fairdrift

#endif  // FAIRDRIFT_BENCH_COMMON_EXPERIMENT_H_
