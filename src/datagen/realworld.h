// Simulators for the paper's seven real-world datasets.
//
// The original MEPS / LSAC / Credit / ACS-{P,H,E,I} datasets involve
// restricted downloads and dataset-specific preprocessing pipelines
// (AIF360, folktables); per the substitution policy in DESIGN.md §3 we
// generate synthetic stand-ins that match the *published* summary
// statistics of the paper's Fig. 4 — size, numeric/categorical attribute
// counts, minority fraction, minority positive-label rate — and inject
// group-conditional covariate drift plus label skew so an uncorrected
// model exhibits the same bias direction (DI* < 1 against the minority)
// the paper reports.

#ifndef FAIRDRIFT_DATAGEN_REALWORLD_H_
#define FAIRDRIFT_DATAGEN_REALWORLD_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

/// Identifier of a simulated real-world dataset.
enum class RealDatasetId {
  kMeps,
  kLsac,
  kCredit,
  kAcsPublicCoverage,  ///< ACSP
  kAcsHealthInsurance, ///< ACSH
  kAcsEmployment,      ///< ACSE
  kAcsIncomePoverty,   ///< ACSI
};

/// Generation parameters of one simulated dataset (Fig. 4 row).
struct RealDatasetSpec {
  std::string name;
  RealDatasetId id = RealDatasetId::kMeps;
  size_t full_size = 10000;        ///< paper's n
  int n_numeric = 4;               ///< Fig. 4 numeric attribute count
  int n_categorical = 4;           ///< Fig. 4 categorical attribute count
  double minority_fraction = 0.1;  ///< population of U
  double pos_rate_minority = 0.2;  ///< % positive labels in U (Fig. 4)
  double pos_rate_majority = 0.4;  ///< chosen so the minority is
                                   ///< under-favored (not in Fig. 4)
  double class_sep = 1.6;          ///< label signal strength
  double group_drift = 1.2;        ///< covariate shift between groups
                                   ///< (orthogonal to the majority trend)
  double bias_shift = 1.1;         ///< minority displacement *against* the
                                   ///< majority trend; drives how strongly
                                   ///< an uncorrected model under-selects
                                   ///< the minority (NO-INT DI* level)
  double trend_angle_degrees = 35; ///< divergence of group trends
  double label_noise = 0.02;
  /// Fraction of tuples whose numeric noise is inflated by
  /// `outlier_spread` — the heavy tail real survey data carries. These
  /// tuples are what Algorithm 3's density filter exists to exclude from
  /// constraint derivation.
  double outlier_fraction = 0.06;
  double outlier_spread = 4.0;
  uint64_t seed = 7;
};

/// The seven specs in paper order (MEPS, LSAC, Credit, ACSP, ACSH, ACSE,
/// ACSI) with Fig. 4's published statistics.
const std::vector<RealDatasetSpec>& RealDatasetSuite();

/// Spec lookup by id.
const RealDatasetSpec& GetRealDatasetSpec(RealDatasetId id);

/// Spec lookup by (case-insensitive) name, e.g. "meps"; fails when absent.
Result<RealDatasetSpec> FindRealDatasetSpec(const std::string& name);

/// Generates the simulated dataset at `scale` times its paper size
/// (scale in (0, 1] keeps bench runtimes manageable; 1.0 = paper size).
Result<Dataset> MakeRealWorldLike(const RealDatasetSpec& spec,
                                  double scale = 1.0);

}  // namespace fairdrift

#endif  // FAIRDRIFT_DATAGEN_REALWORLD_H_
