// General synthetic classification generator, modeled on scikit-learn's
// make_classification (the paper uses that function for its synthetic
// drift study). Produces Gaussian class clusters with informative,
// redundant, and noise features plus optional label noise.

#ifndef FAIRDRIFT_DATAGEN_SYNTHETIC_H_
#define FAIRDRIFT_DATAGEN_SYNTHETIC_H_

#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

/// Parameters of the generator.
struct SyntheticClassificationSpec {
  size_t n_samples = 1000;
  int n_features = 4;
  int n_informative = 2;  ///< features carrying class signal
  int n_redundant = 1;    ///< random linear combinations of informative ones
  double class_sep = 1.5; ///< distance between class means
  double flip_y = 0.02;   ///< fraction of labels flipped at random
  double positive_rate = 0.5;
};

/// Generates a labeled dataset (no group assignment). Fails on
/// inconsistent feature counts.
Result<Dataset> MakeClassification(const SyntheticClassificationSpec& spec,
                                   Rng* rng);

}  // namespace fairdrift

#endif  // FAIRDRIFT_DATAGEN_SYNTHETIC_H_
