#include "datagen/synthetic.h"

#include <cmath>

#include "util/string_util.h"

namespace fairdrift {

Result<Dataset> MakeClassification(const SyntheticClassificationSpec& spec,
                                   Rng* rng) {
  if (spec.n_samples == 0) {
    return Status::InvalidArgument("MakeClassification: n_samples == 0");
  }
  if (spec.n_informative <= 0 || spec.n_redundant < 0 ||
      spec.n_informative + spec.n_redundant > spec.n_features) {
    return Status::InvalidArgument(StrFormat(
        "MakeClassification: informative(%d) + redundant(%d) must fit in "
        "features(%d)",
        spec.n_informative, spec.n_redundant, spec.n_features));
  }
  if (spec.positive_rate <= 0.0 || spec.positive_rate >= 1.0) {
    return Status::InvalidArgument(
        "MakeClassification: positive_rate must be in (0, 1)");
  }

  size_t n = spec.n_samples;
  size_t d = static_cast<size_t>(spec.n_features);
  size_t d_inf = static_cast<size_t>(spec.n_informative);
  size_t d_red = static_cast<size_t>(spec.n_redundant);

  // Random unit direction separating the classes in informative space.
  std::vector<double> sep_dir(d_inf);
  double norm = 0.0;
  for (double& v : sep_dir) {
    v = rng->Gaussian();
    norm += v * v;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (double& v : sep_dir) v /= norm;

  // Mixing matrix for redundant features.
  Matrix mix(d_red, d_inf);
  for (size_t r = 0; r < d_red; ++r) {
    for (size_t c = 0; c < d_inf; ++c) mix.At(r, c) = rng->Gaussian();
  }

  Matrix x(n, d);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    int y = rng->Bernoulli(spec.positive_rate) ? 1 : 0;
    double side = (y == 1 ? 0.5 : -0.5) * spec.class_sep;
    std::vector<double> inf(d_inf);
    for (size_t j = 0; j < d_inf; ++j) {
      inf[j] = side * sep_dir[j] + rng->Gaussian();
      x.At(i, j) = inf[j];
    }
    for (size_t r = 0; r < d_red; ++r) {
      double acc = 0.0;
      for (size_t c = 0; c < d_inf; ++c) acc += mix.At(r, c) * inf[c];
      x.At(i, d_inf + r) = acc + 0.1 * rng->Gaussian();
    }
    for (size_t j = d_inf + d_red; j < d; ++j) {
      x.At(i, j) = rng->Gaussian();  // pure noise features
    }
    if (spec.flip_y > 0.0 && rng->Bernoulli(spec.flip_y)) y = 1 - y;
    labels[i] = y;
  }

  Dataset out;
  for (size_t j = 0; j < d; ++j) {
    FAIRDRIFT_RETURN_IF_ERROR(
        out.AddNumericColumn(StrFormat("x%zu", j + 1), x.Col(j)));
  }
  FAIRDRIFT_RETURN_IF_ERROR(out.SetLabels(std::move(labels), 2));
  return out;
}

}  // namespace fairdrift
