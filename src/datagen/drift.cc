#include "datagen/drift.h"

#include <cmath>

#include "util/string_util.h"

namespace fairdrift {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Result<Dataset> MakeDriftDataset(const DriftSpec& spec) {
  if (spec.n_majority == 0 || spec.n_minority == 0) {
    return Status::InvalidArgument("MakeDriftDataset: empty group");
  }
  if (spec.n_features < 2) {
    return Status::InvalidArgument("MakeDriftDataset: need >= 2 features");
  }
  Rng rng(spec.seed);
  size_t d = static_cast<size_t>(spec.n_features);

  // The majority separates along e1; the minority along a direction at
  // `angle_degrees` within the (e1, e2) plane. The minority cloud is also
  // shifted *against* the majority trend (down e1) and up e2, reproducing
  // Fig. 10's geometry: the clouds overlap, their attribute distributions
  // drift, and a single majority-fitted model under-selects the minority
  // (low DI), not just mis-ranks it.
  // Trend geometry (all in the (X1, X2) plane; higher dimensions carry
  // noise only). The majority's label direction is tilted off X1; the
  // minority's is rotated from it by `angle_degrees`. The minority cloud
  // is displaced both *against* the majority trend (so a pooled,
  // majority-dominated model places most of it on its negative side and
  // under-selects it — the Fig. 1/10 phenomenon) and orthogonally to it
  // (covariate drift that keeps the clouds overlapping but
  // distinguishable for conformance constraints).
  double tilt = spec.trend_tilt_degrees * kPi / 180.0;
  double angle_u = tilt + spec.angle_degrees * kPi / 180.0;
  std::vector<double> dir_w(d, 0.0);
  std::vector<double> dir_u(d, 0.0);
  dir_w[0] = std::cos(tilt);
  dir_w[1] = std::sin(tilt);
  dir_u[0] = std::cos(angle_u);
  dir_u[1] = std::sin(angle_u);
  std::vector<double> shift(d, 0.0);
  shift[0] = -spec.shift_against_trend * dir_w[0] - spec.group_shift * dir_w[1];
  shift[1] = -spec.shift_against_trend * dir_w[1] + spec.group_shift * dir_w[0];

  size_t n = spec.n_majority + spec.n_minority;
  Matrix x(n, d);
  std::vector<int> labels(n);
  std::vector<int> groups(n);

  for (size_t i = 0; i < n; ++i) {
    bool minority = i >= spec.n_majority;
    const std::vector<double>& dir = minority ? dir_u : dir_w;
    int y = rng.Bernoulli(0.5) ? 1 : 0;  // balanced labels per group
    double side = (y == 1 ? 0.5 : -0.5) * spec.class_sep;
    for (size_t j = 0; j < d; ++j) {
      double mean = side * dir[j];
      if (minority) mean += shift[j];
      x.At(i, j) = mean + rng.Gaussian();
    }
    if (spec.label_noise > 0.0 && rng.Bernoulli(spec.label_noise)) y = 1 - y;
    labels[i] = y;
    groups[i] = minority ? kMinorityGroup : kMajorityGroup;
  }

  Dataset out;
  for (size_t j = 0; j < d; ++j) {
    FAIRDRIFT_RETURN_IF_ERROR(
        out.AddNumericColumn(StrFormat("X%zu", j + 1), x.Col(j)));
  }
  FAIRDRIFT_RETURN_IF_ERROR(out.SetLabels(std::move(labels), 2));
  FAIRDRIFT_RETURN_IF_ERROR(out.SetGroups(std::move(groups)));
  return out;
}

std::vector<DriftSpec> SynDriftSuite() {
  // Strong rotations: the minority trend increasingly opposes the
  // majority's, so no single linear model can conform to both groups —
  // the regime Fig. 11 studies.
  std::vector<DriftSpec> suite;
  const double angles[] = {120.0, 135.0, 150.0, 165.0, 180.0};
  for (int i = 0; i < 5; ++i) {
    DriftSpec spec;
    spec.name = StrFormat("Syn%d", i + 1);
    spec.angle_degrees = angles[i];
    spec.seed = static_cast<uint64_t>(101 + 17 * i);
    suite.push_back(spec);
  }
  return suite;
}

}  // namespace fairdrift
