// Synthetic datasets with *significant drift over groups* (paper §IV-B,
// Figs. 10-11).
//
// The two groups occupy overlapping regions of the feature space, but
// their positive/negative labels follow dissimilar orientations: the
// majority's decision direction and the minority's differ by a large
// angle, so no single linear model can conform to both. Per the paper's
// recipe: N = 11,000 with 8,000 majority / 3,000 minority tuples and
// balanced (50/50) labels within each group.

#ifndef FAIRDRIFT_DATAGEN_DRIFT_H_
#define FAIRDRIFT_DATAGEN_DRIFT_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

/// Parameters of a drifted two-group dataset.
struct DriftSpec {
  std::string name = "Syn";
  size_t n_majority = 8000;
  size_t n_minority = 3000;
  int n_features = 4;
  /// Angle (degrees) between the groups' label-separating directions;
  /// 0 = identical trends, 180 = exactly opposing trends.
  double angle_degrees = 150.0;
  /// Tilt (degrees) of the majority's trend off the X1 axis; a non-zero
  /// tilt stops a pooled model from conforming to both groups through the
  /// otherwise label-neutral X2 attribute.
  double trend_tilt_degrees = -20.0;
  /// How far the minority cloud sits *against* the majority's trend
  /// direction — the lever that makes an uncorrected model under-select
  /// the minority (calibrated so NO-INTERVENTION lands at DI* ~ 0.4-0.7).
  double shift_against_trend = 2.0;
  /// Mean offset of the minority cloud orthogonal to the majority trend
  /// (covariate drift; the groups still overlap substantially).
  double group_shift = 1.75;
  /// Distance between class means within each group.
  double class_sep = 2.5;
  /// Fraction of labels flipped at random.
  double label_noise = 0.02;
  uint64_t seed = 1;
};

/// Generates the drifted dataset: features, binary labels, group ids.
Result<Dataset> MakeDriftDataset(const DriftSpec& spec);

/// The five synthetic datasets (Syn1-Syn5) of the paper's Fig. 11:
/// increasing drift angles with varied seeds.
std::vector<DriftSpec> SynDriftSuite();

}  // namespace fairdrift

#endif  // FAIRDRIFT_DATAGEN_DRIFT_H_
