#include "datagen/realworld.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace fairdrift {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<RealDatasetSpec> BuildSuite() {
  std::vector<RealDatasetSpec> suite;

  // Figures from the paper's Fig. 4; pos_rate_majority, separation and
  // drift magnitudes are modeling choices (DESIGN.md §3) calibrated so
  // that uncorrected models show DI* in the 0.2-0.7 band the paper reports.
  RealDatasetSpec meps;
  meps.name = "MEPS";
  meps.id = RealDatasetId::kMeps;
  meps.full_size = 15675;
  meps.n_numeric = 6;
  meps.n_categorical = 34;
  meps.minority_fraction = 0.616;  // non-White majority of the population
  meps.pos_rate_minority = 0.114;  // high utilization
  meps.pos_rate_majority = 0.26;
  meps.class_sep = 1.3;
  meps.group_drift = 2.8;
  meps.bias_shift = 0.2;
  meps.trend_angle_degrees = 30;
  meps.seed = 11;
  suite.push_back(meps);

  RealDatasetSpec lsac;
  lsac.name = "LSAC";
  lsac.id = RealDatasetId::kLsac;
  lsac.full_size = 24479;
  lsac.n_numeric = 6;
  lsac.n_categorical = 4;
  lsac.minority_fraction = 0.077;
  lsac.pos_rate_minority = 0.566;  // passing the bar
  lsac.pos_rate_majority = 0.85;
  lsac.class_sep = 1.4;
  lsac.group_drift = 2.2;
  lsac.bias_shift = 0.4;
  lsac.trend_angle_degrees = 40;
  lsac.seed = 13;
  suite.push_back(lsac);

  RealDatasetSpec credit;
  credit.name = "Credit";
  credit.id = RealDatasetId::kCredit;
  credit.full_size = 120269;
  credit.n_numeric = 6;
  credit.n_categorical = 0;
  credit.minority_fraction = 0.137;  // age < 35
  credit.pos_rate_minority = 0.107;
  credit.pos_rate_majority = 0.23;
  credit.class_sep = 1.2;
  credit.group_drift = 2.0;
  credit.bias_shift = 0.6;
  credit.trend_angle_degrees = 25;
  credit.seed = 17;
  suite.push_back(credit);

  RealDatasetSpec acsp;
  acsp.name = "ACSP";
  acsp.id = RealDatasetId::kAcsPublicCoverage;
  acsp.full_size = 86600;
  acsp.n_numeric = 4;
  acsp.n_categorical = 14;
  acsp.minority_fraction = 0.092;
  acsp.pos_rate_minority = 0.483;  // covered by private insurance
  acsp.pos_rate_majority = 0.68;
  acsp.class_sep = 1.5;
  acsp.group_drift = 1.8;
  acsp.bias_shift = 0.2;
  acsp.trend_angle_degrees = 35;
  acsp.seed = 19;
  suite.push_back(acsp);

  RealDatasetSpec acsh;
  acsh.name = "ACSH";
  acsh.id = RealDatasetId::kAcsHealthInsurance;
  acsh.full_size = 250847;
  acsh.n_numeric = 4;
  acsh.n_categorical = 21;
  acsh.minority_fraction = 0.073;
  acsh.pos_rate_minority = 0.093;  // having health insurance
  acsh.pos_rate_majority = 0.21;
  acsh.class_sep = 1.2;
  acsh.group_drift = 2.4;
  acsh.bias_shift = 0.5;
  acsh.trend_angle_degrees = 30;
  acsh.seed = 23;
  suite.push_back(acsh);

  RealDatasetSpec acse;
  acse.name = "ACSE";
  acse.id = RealDatasetId::kAcsEmployment;
  acse.full_size = 250847;
  acse.n_numeric = 4;
  acse.n_categorical = 11;
  acse.minority_fraction = 0.073;
  acse.pos_rate_minority = 0.393;  // employment
  acse.pos_rate_majority = 0.57;
  acse.class_sep = 1.4;
  acse.group_drift = 2.0;
  acse.bias_shift = 0.3;
  acse.trend_angle_degrees = 30;
  acse.seed = 29;
  suite.push_back(acse);

  RealDatasetSpec acsi;
  acsi.name = "ACSI";
  acsi.id = RealDatasetId::kAcsIncomePoverty;
  acsi.full_size = 250847;
  acsi.n_numeric = 6;
  acsi.n_categorical = 13;
  acsi.minority_fraction = 0.073;
  acsi.pos_rate_minority = 0.402;  // income/poverty ratio < 250
  acsi.pos_rate_majority = 0.60;
  acsi.class_sep = 1.4;
  acsi.group_drift = 2.2;
  acsi.bias_shift = 0.3;
  acsi.trend_angle_degrees = 35;
  acsi.seed = 31;
  suite.push_back(acsi);

  return suite;
}

}  // namespace

const std::vector<RealDatasetSpec>& RealDatasetSuite() {
  static const std::vector<RealDatasetSpec> kSuite = BuildSuite();
  return kSuite;
}

const RealDatasetSpec& GetRealDatasetSpec(RealDatasetId id) {
  for (const RealDatasetSpec& spec : RealDatasetSuite()) {
    if (spec.id == id) return spec;
  }
  return RealDatasetSuite().front();
}

Result<RealDatasetSpec> FindRealDatasetSpec(const std::string& name) {
  std::string lower = ToLower(name);
  for (const RealDatasetSpec& spec : RealDatasetSuite()) {
    if (ToLower(spec.name) == lower) return spec;
  }
  return Status::NotFound(StrFormat("no dataset named '%s'", name.c_str()));
}

Result<Dataset> MakeRealWorldLike(const RealDatasetSpec& spec, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("MakeRealWorldLike: scale must be in (0,1]");
  }
  size_t n = std::max<size_t>(
      500, static_cast<size_t>(scale * static_cast<double>(spec.full_size)));
  size_t d_num = static_cast<size_t>(spec.n_numeric);
  size_t d_cat = static_cast<size_t>(spec.n_categorical);
  Rng rng(spec.seed);

  // Label-separating directions per group: the majority's trend along a
  // random unit direction, the minority's rotated by `trend_angle_degrees`
  // within a random plane — the drift-over-groups mechanism.
  std::vector<double> dir_w(d_num);
  double norm = 0.0;
  for (double& v : dir_w) {
    v = rng.Gaussian();
    norm += v * v;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (double& v : dir_w) v /= norm;

  // Orthonormal companion for the rotation plane and the drift direction.
  std::vector<double> ortho(d_num);
  if (d_num >= 2) {
    double dot = 0.0;
    for (size_t j = 0; j < d_num; ++j) {
      ortho[j] = rng.Gaussian();
    }
    for (size_t j = 0; j < d_num; ++j) dot += ortho[j] * dir_w[j];
    double onorm = 0.0;
    for (size_t j = 0; j < d_num; ++j) {
      ortho[j] -= dot * dir_w[j];
      onorm += ortho[j] * ortho[j];
    }
    onorm = std::sqrt(std::max(onorm, 1e-12));
    for (double& v : ortho) v /= onorm;
  } else {
    ortho = dir_w;
  }
  double angle = spec.trend_angle_degrees * kPi / 180.0;
  std::vector<double> dir_u(d_num);
  for (size_t j = 0; j < d_num; ++j) {
    dir_u[j] = std::cos(angle) * dir_w[j] + std::sin(angle) * ortho[j];
  }

  // Per-attribute scale/location diversity so raw attributes are not all
  // standard normal (exercises the encoder and CC standardization).
  std::vector<double> attr_scale(d_num);
  std::vector<double> attr_loc(d_num);
  for (size_t j = 0; j < d_num; ++j) {
    attr_scale[j] = std::exp(rng.Uniform(-0.5, 1.2));
    attr_loc[j] = rng.Uniform(-2.0, 4.0);
  }

  // Categorical attribute models: 2-6 categories; sampling logits carry
  // group and label signal of moderate strength.
  std::vector<int> cat_sizes(d_cat);
  std::vector<std::vector<double>> cat_base(d_cat);
  std::vector<std::vector<double>> cat_label_shift(d_cat);
  std::vector<std::vector<double>> cat_group_shift(d_cat);
  for (size_t j = 0; j < d_cat; ++j) {
    int k = static_cast<int>(rng.UniformInt(2, 6));
    cat_sizes[j] = k;
    cat_base[j].resize(static_cast<size_t>(k));
    cat_label_shift[j].resize(static_cast<size_t>(k));
    cat_group_shift[j].resize(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) {
      cat_base[j][static_cast<size_t>(c)] = rng.Uniform(-0.5, 0.5);
      cat_label_shift[j][static_cast<size_t>(c)] = rng.Uniform(-0.8, 0.8);
      cat_group_shift[j][static_cast<size_t>(c)] = rng.Uniform(-0.6, 0.6);
    }
  }

  Matrix x(n, d_num);
  std::vector<std::vector<int>> cats(d_cat, std::vector<int>(n, 0));
  std::vector<int> labels(n);
  std::vector<int> groups(n);

  for (size_t i = 0; i < n; ++i) {
    bool minority = rng.Bernoulli(spec.minority_fraction);
    double pos_rate =
        minority ? spec.pos_rate_minority : spec.pos_rate_majority;
    int y = rng.Bernoulli(pos_rate) ? 1 : 0;
    const std::vector<double>& dir = minority ? dir_u : dir_w;
    double side = (y == 1 ? 0.5 : -0.5) * spec.class_sep;

    double noise_scale =
        (spec.outlier_fraction > 0.0 && rng.Bernoulli(spec.outlier_fraction))
            ? spec.outlier_spread
            : 1.0;
    for (size_t j = 0; j < d_num; ++j) {
      double z = side * dir[j] + noise_scale * rng.Gaussian();
      if (minority) {
        z += spec.group_drift * ortho[j] - spec.bias_shift * dir_w[j];
      }
      x.At(i, j) = attr_loc[j] + attr_scale[j] * z;
    }
    for (size_t j = 0; j < d_cat; ++j) {
      int k = cat_sizes[j];
      std::vector<double> probs(static_cast<size_t>(k));
      double total = 0.0;
      for (int c = 0; c < k; ++c) {
        double logit = cat_base[j][static_cast<size_t>(c)] +
                       (y == 1 ? 1.0 : -1.0) *
                           cat_label_shift[j][static_cast<size_t>(c)] * 0.5 +
                       (minority ? 1.0 : -1.0) *
                           cat_group_shift[j][static_cast<size_t>(c)] * 0.5;
        probs[static_cast<size_t>(c)] = std::exp(logit);
        total += probs[static_cast<size_t>(c)];
      }
      for (double& p : probs) p /= total;
      cats[j][i] = static_cast<int>(rng.Categorical(probs));
    }
    if (spec.label_noise > 0.0 && rng.Bernoulli(spec.label_noise)) y = 1 - y;
    labels[i] = y;
    groups[i] = minority ? kMinorityGroup : kMajorityGroup;
  }

  Dataset out;
  for (size_t j = 0; j < d_num; ++j) {
    FAIRDRIFT_RETURN_IF_ERROR(
        out.AddNumericColumn(StrFormat("num%zu", j + 1), x.Col(j)));
  }
  for (size_t j = 0; j < d_cat; ++j) {
    FAIRDRIFT_RETURN_IF_ERROR(out.AddCategoricalColumn(
        StrFormat("cat%zu", j + 1), std::move(cats[j]), cat_sizes[j]));
  }
  FAIRDRIFT_RETURN_IF_ERROR(out.SetLabels(std::move(labels), 2));
  FAIRDRIFT_RETURN_IF_ERROR(out.SetGroups(std::move(groups)));
  return out;
}

}  // namespace fairdrift
