// Ball tree over points in R^d.
//
// The alternative index the paper names for density estimation in higher
// dimensions (§III-C cites Omohundro's ball trees next to KD-trees,
// "m > 20"). Nodes store a centroid and covering radius instead of an
// axis-aligned box; pruning bounds derive from the triangle inequality,
// which keeps their cost O(d) per node regardless of how elongated the
// point set is. The interface mirrors KdTree so the KDE can swap
// backends (KdeOptions::tree_backend): flat structure-of-arrays node
// storage (begin/end/left/right, packed centroid, radius), iterative
// allocation-free traversal over a TraversalScratch, and the recursive
// kernel sum kept as the bitwise oracle.

#ifndef FAIRDRIFT_KDE_BALLTREE_H_
#define FAIRDRIFT_KDE_BALLTREE_H_

#include <cstdint>
#include <vector>

#include "kde/scratch.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

class BinaryWriter;  // util/binary_io.h
class BinaryReader;

/// Static ball tree; split on the widest dimension at the median.
class BallTree {
 public:
  /// Creates an empty tree; use Build() to obtain a usable one.
  BallTree() = default;

  /// Builds a tree over the rows of `points`. Fails on an empty matrix.
  static Result<BallTree> Build(const Matrix& points, size_t leaf_size = 32);

  /// Number of indexed points.
  size_t size() const { return points_.rows(); }

  /// Dimensionality.
  size_t dim() const { return dim_; }

  /// Indices of the k nearest neighbours to `query` (ascending distance).
  /// k is clamped to size(). Convenience wrapper over the scratch overload
  /// (uses the calling thread's scratch).
  std::vector<size_t> NearestNeighbors(const std::vector<double>& query,
                                       size_t k) const;

  /// Allocation-free kNN: writes the k nearest indices into `out`
  /// (ascending distance), reusing `scratch` and `out`'s capacity.
  void NearestNeighbors(const double* query, size_t k,
                        TraversalScratch* scratch,
                        std::vector<size_t>* out) const;

  /// Sum over all points of exp(-0.5 * ||(x - query) / h||^2), with h the
  /// per-dimension scale vector. Nodes whose kernel-value spread is
  /// provably below `atol` are approximated by the exp()-free
  /// squared-distance rule documented on KdTree::GaussianKernelSum
  /// (atol = 0 gives the exact sum). Under anisotropic scaling the ball
  /// bound uses the largest scale, which is valid but looser than the KD
  /// box bound; the exact-sum contract is identical. Convenience wrapper
  /// over the scratch overload.
  double GaussianKernelSum(const std::vector<double>& query,
                           const std::vector<double>& inv_bandwidth,
                           double atol = 0.0) const;

  /// Allocation-free kernel sum over the flat node layout. Bitwise
  /// identical to GaussianKernelSumRecursive for every input.
  double GaussianKernelSum(const double* query, const double* inv_bandwidth,
                           double atol, TraversalScratch* scratch) const;

  /// Reference recursive kernel sum (the pre-flattening implementation),
  /// kept as the migration oracle for the iterative sweep.
  double GaussianKernelSumRecursive(const std::vector<double>& query,
                                    const std::vector<double>& inv_bandwidth,
                                    double atol = 0.0) const;

  /// Fills `out` with the bandwidth-scaled per-node ball geometry consumed
  /// by ClassifyKernelSum: node i occupies [i*(dim+1), (i+1)*(dim+1)) as
  /// its scaled centroid followed by its scaled spread
  /// (radius * max(inv_bandwidth)). Built once per bandwidth at fit (or
  /// load) time.
  void BuildScaledBounds(const std::vector<double>& inv_bandwidth,
                         std::vector<double>* out) const;

  /// Bounded-work three-way comparison of the Gaussian kernel sum against
  /// `threshold`; the KdTree::ClassifyKernelSum contract, ball-tree
  /// edition (triangle-inequality bounds instead of box bounds).
  int ClassifyKernelSum(const double* query, const double* inv_bandwidth,
                        const std::vector<double>& scaled_bounds,
                        double threshold, double eps_rel, double eps_abs,
                        TraversalScratch* scratch) const;

  /// Approximate resident bytes (points + flat node arrays); feeds the
  /// KdeCache's byte-bounded eviction.
  size_t ApproxMemoryBytes() const {
    return points_.data().size() * sizeof(double) +
           order_.size() * sizeof(size_t) +
           (node_begin_.size() + node_end_.size()) * sizeof(size_t) +
           (node_left_.size() + node_right_.size()) * sizeof(int32_t) +
           (centroid_.size() + radius_.size()) * sizeof(double);
  }

  /// Appends the built state verbatim (permuted points, order map, flat
  /// node arrays, packed centroids/radii) to `w`; the KdTree::SerializeTo
  /// contract, ball-tree edition.
  void SerializeTo(BinaryWriter* w) const;

  /// Rebuilds a tree from SerializeTo's payload with the same structural
  /// validation as KdTree::DeserializeFrom.
  static Result<BallTree> DeserializeFrom(BinaryReader* r);

 private:
  int BuildNode(const Matrix& pts, size_t begin, size_t end, size_t leaf_size);
  double KernelSumRecurse(int32_t node_id, const double* query,
                          const double* inv_bandwidth, double max_scale,
                          double atol) const;
  /// Exact kernel sum over leaf `id`'s contiguous point range.
  double LeafKernelSum(int32_t id, const double* query,
                       const double* inv_bandwidth) const;

  size_t dim_ = 0;
  Matrix points_;              // rows permuted into node-contiguous order
  std::vector<size_t> order_;  // order_[i] = caller row id of points_ row i

  // Flat structure-of-arrays node storage. Children are node ids (-1 for
  // leaves); node i's centroid occupies [i * dim_, (i + 1) * dim_) of the
  // packed centroid array.
  std::vector<size_t> node_begin_;
  std::vector<size_t> node_end_;
  std::vector<int32_t> node_left_;
  std::vector<int32_t> node_right_;
  std::vector<double> centroid_;
  std::vector<double> radius_;  // max Euclidean distance from centroid
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_BALLTREE_H_
