// Ball tree over points in R^d.
//
// The alternative index the paper names for density estimation in higher
// dimensions (§III-C cites Omohundro's ball trees next to KD-trees,
// "m > 20"). Nodes store a centroid and covering radius instead of an
// axis-aligned box; pruning bounds derive from the triangle inequality,
// which keeps their cost O(d) per node regardless of how elongated the
// point set is. The interface mirrors KdTree so the KDE can swap
// backends (KdeOptions::tree_backend).

#ifndef FAIRDRIFT_KDE_BALLTREE_H_
#define FAIRDRIFT_KDE_BALLTREE_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Static ball tree; split on the widest dimension at the median.
class BallTree {
 public:
  /// Creates an empty tree; use Build() to obtain a usable one.
  BallTree() = default;

  /// Builds a tree over the rows of `points`. Fails on an empty matrix.
  static Result<BallTree> Build(const Matrix& points, size_t leaf_size = 32);

  /// Number of indexed points.
  size_t size() const { return points_.rows(); }

  /// Dimensionality.
  size_t dim() const { return points_.cols(); }

  /// Indices of the k nearest neighbours to `query` (ascending distance).
  /// k is clamped to size().
  std::vector<size_t> NearestNeighbors(const std::vector<double>& query,
                                       size_t k) const;

  /// Sum over all points of exp(-0.5 * ||(x - query) / h||^2), with h the
  /// per-dimension scale vector. Nodes whose kernel-value spread is below
  /// `atol` are approximated (atol = 0 gives the exact sum). Under
  /// anisotropic scaling the ball bound uses the largest scale, which is
  /// valid but looser than the KD box bound; the exact-sum contract is
  /// identical.
  double GaussianKernelSum(const std::vector<double>& query,
                           const std::vector<double>& inv_bandwidth,
                           double atol = 0.0) const;

 private:
  struct Node {
    size_t begin = 0;  // range [begin, end) into order_
    size_t end = 0;
    int left = -1;     // child node ids; -1 for leaves
    int right = -1;
    std::vector<double> centroid;
    double radius = 0.0;  // max Euclidean distance from centroid
  };

  int BuildNode(const Matrix& pts, size_t begin, size_t end, size_t leaf_size);
  void KnnRecurse(int node_id, const std::vector<double>& query, size_t k,
                  std::vector<std::pair<double, size_t>>* heap) const;
  double KernelSumRecurse(int node_id, const std::vector<double>& query,
                          const std::vector<double>& inv_bandwidth,
                          double max_scale, double atol) const;

  Matrix points_;              // rows permuted into node-contiguous order
  std::vector<size_t> order_;  // order_[i] = caller row id of points_ row i
  std::vector<Node> nodes_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_BALLTREE_H_
