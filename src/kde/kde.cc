#include "kde/kde.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "kde/kde_cache.h"
#include "util/parallel.h"

namespace fairdrift {

namespace {
constexpr double kLogTwoPi = 1.8378770664093453;  // log(2*pi)

std::atomic<uint64_t> g_fit_count{0};
}  // namespace

Result<KernelDensity> KernelDensity::Fit(const Matrix& data,
                                         const KdeOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("KernelDensity::Fit: empty data");
  }
  KernelDensity kde;
  kde.backend_ = options.tree_backend;
  if (options.tree_backend == KdeTreeBackend::kKdTree) {
    Result<KdTree> tree = KdTree::Build(data, options.leaf_size);
    if (!tree.ok()) return tree.status();
    kde.tree_ = std::move(tree).value();
  } else {
    Result<BallTree> tree = BallTree::Build(data, options.leaf_size);
    if (!tree.ok()) return tree.status();
    kde.ball_tree_ = std::move(tree).value();
  }
  kde.bandwidth_ = SelectBandwidth(data, options.bandwidth_rule);
  kde.inv_bandwidth_.resize(kde.bandwidth_.size());
  for (size_t j = 0; j < kde.bandwidth_.size(); ++j) {
    kde.inv_bandwidth_[j] = 1.0 / kde.bandwidth_[j];
  }
  kde.n_ = data.rows();
  double log_norm = -std::log(static_cast<double>(kde.n_));
  for (double h : kde.bandwidth_) log_norm -= std::log(h);
  log_norm -= 0.5 * kLogTwoPi * static_cast<double>(data.cols());
  kde.log_norm_ = log_norm;
  kde.atol_ = options.approximation_atol;
  g_fit_count.fetch_add(1, std::memory_order_relaxed);
  return kde;
}

uint64_t KernelDensity::TotalFitCount() {
  return g_fit_count.load(std::memory_order_relaxed);
}

double KernelDensity::KernelSum(const double* point,
                                TraversalScratch* scratch) const {
  return backend_ == KdeTreeBackend::kKdTree
             ? tree_.GaussianKernelSum(point, inv_bandwidth_.data(), atol_,
                                       scratch)
             : ball_tree_.GaussianKernelSum(point, inv_bandwidth_.data(),
                                            atol_, scratch);
}

double KernelDensity::Evaluate(const std::vector<double>& point) const {
  return Evaluate(point.data());
}

double KernelDensity::Evaluate(const double* point) const {
  return KernelSum(point, &ThreadLocalTraversalScratch()) *
         std::exp(log_norm_);
}

double KernelDensity::LogDensity(const std::vector<double>& point) const {
  return LogDensity(point.data());
}

double KernelDensity::LogDensity(const double* point) const {
  double sum = KernelSum(point, &ThreadLocalTraversalScratch());
  if (sum <= 0.0) return -745.0 + log_norm_;  // ~log(DBL_MIN), floor guard
  return std::log(sum) + log_norm_;
}

std::vector<double> KernelDensity::EvaluateAll(const Matrix& queries,
                                               ThreadPool* pool) const {
  std::vector<double> out(queries.rows());
  double norm = std::exp(log_norm_);
  // RowPtr + per-thread scratch: zero heap allocations per query.
  ParallelFor(
      0, queries.rows(),
      [&](size_t i) {
        out[i] = KernelSum(queries.RowPtr(i), &ThreadLocalTraversalScratch()) *
                 norm;
      },
      pool);
  return out;
}

std::vector<double> KernelDensity::LogDensityAll(const Matrix& queries,
                                                 ThreadPool* pool) const {
  std::vector<double> out(queries.rows());
  ParallelFor(
      0, queries.rows(),
      [&](size_t i) { out[i] = LogDensity(queries.RowPtr(i)); }, pool);
  return out;
}

Result<std::vector<size_t>> DensityRanking(const Matrix& data,
                                           const KdeOptions& options,
                                           ThreadPool* pool) {
  return DensityRankingWithHint(data, options, KdeCacheHint{}, pool);
}

Result<std::vector<size_t>> DensityRankingWithHint(const Matrix& data,
                                                   const KdeOptions& options,
                                                   const KdeCacheHint& hint,
                                                   ThreadPool* pool) {
  std::vector<double> density;
  if (options.use_fit_cache) {
    Result<std::shared_ptr<const KernelDensity>> kde =
        GlobalKdeCache().FitOrGet(data, options, hint);
    if (!kde.ok()) return kde.status();
    density = kde.value()->EvaluateAll(data, pool);
  } else {
    Result<KernelDensity> kde = KernelDensity::Fit(data, options);
    if (!kde.ok()) return kde.status();
    density = kde.value().EvaluateAll(data, pool);
  }
  std::vector<size_t> order(data.rows());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return density[a] > density[b];
  });
  return order;
}

}  // namespace fairdrift
