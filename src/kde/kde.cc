#include "kde/kde.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "kde/kde_cache.h"
#include "util/binary_io.h"
#include "util/parallel.h"

namespace fairdrift {

namespace {
constexpr double kLogTwoPi = 1.8378770664093453;  // log(2*pi)

std::atomic<uint64_t> g_fit_count{0};
}  // namespace

Result<KernelDensity> KernelDensity::Fit(const Matrix& data,
                                         const KdeOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("KernelDensity::Fit: empty data");
  }
  KernelDensity kde;
  kde.backend_ = options.tree_backend;
  if (options.tree_backend == KdeTreeBackend::kKdTree) {
    Result<KdTree> tree = KdTree::Build(data, options.leaf_size);
    if (!tree.ok()) return tree.status();
    kde.tree_ = std::move(tree).value();
  } else {
    Result<BallTree> tree = BallTree::Build(data, options.leaf_size);
    if (!tree.ok()) return tree.status();
    kde.ball_tree_ = std::move(tree).value();
  }
  kde.bandwidth_ = SelectBandwidth(data, options.bandwidth_rule);
  kde.inv_bandwidth_.resize(kde.bandwidth_.size());
  for (size_t j = 0; j < kde.bandwidth_.size(); ++j) {
    kde.inv_bandwidth_[j] = 1.0 / kde.bandwidth_[j];
  }
  kde.n_ = data.rows();
  double log_norm = -std::log(static_cast<double>(kde.n_));
  for (double h : kde.bandwidth_) log_norm -= std::log(h);
  log_norm -= 0.5 * kLogTwoPi * static_cast<double>(data.cols());
  kde.log_norm_ = log_norm;
  kde.atol_ = options.approximation_atol;
  kde.BuildClassifyBounds();
  g_fit_count.fetch_add(1, std::memory_order_relaxed);
  return kde;
}

void KernelDensity::BuildClassifyBounds() {
  if (backend_ == KdeTreeBackend::kKdTree) {
    tree_.BuildScaledBounds(inv_bandwidth_, &scaled_bounds_);
  } else {
    ball_tree_.BuildScaledBounds(inv_bandwidth_, &scaled_bounds_);
  }
}

uint64_t KernelDensity::TotalFitCount() {
  return g_fit_count.load(std::memory_order_relaxed);
}

double KernelDensity::KernelSum(const double* point,
                                TraversalScratch* scratch) const {
  return backend_ == KdeTreeBackend::kKdTree
             ? tree_.GaussianKernelSum(point, inv_bandwidth_.data(), atol_,
                                       scratch)
             : ball_tree_.GaussianKernelSum(point, inv_bandwidth_.data(),
                                            atol_, scratch);
}

double KernelDensity::Evaluate(const std::vector<double>& point) const {
  return Evaluate(point.data());
}

double KernelDensity::Evaluate(const double* point) const {
  return KernelSum(point, &ThreadLocalTraversalScratch()) *
         std::exp(log_norm_);
}

double KernelDensity::LogDensity(const std::vector<double>& point) const {
  return LogDensity(point.data());
}

double KernelDensity::LogDensity(const double* point) const {
  double sum = KernelSum(point, &ThreadLocalTraversalScratch());
  if (sum <= 0.0) return -745.0 + log_norm_;  // ~log(DBL_MIN), floor guard
  return std::log(sum) + log_norm_;
}

std::vector<double> KernelDensity::EvaluateAll(const Matrix& queries,
                                               ThreadPool* pool) const {
  std::vector<double> out(queries.rows());
  EvaluateAllInto(queries, out.data(), pool);
  return out;
}

void KernelDensity::EvaluateAllInto(const Matrix& queries, double* out,
                                    ThreadPool* pool) const {
  double norm = std::exp(log_norm_);
  // RowPtr + per-thread scratch: zero heap allocations per query.
  ParallelForEach(0, queries.rows(), pool, [&](size_t i) {
    out[i] =
        KernelSum(queries.RowPtr(i), &ThreadLocalTraversalScratch()) * norm;
  });
}

std::vector<double> KernelDensity::LogDensityAll(const Matrix& queries,
                                                 ThreadPool* pool) const {
  std::vector<double> out(queries.rows());
  LogDensityAllInto(queries, out.data(), pool);
  return out;
}

void KernelDensity::LogDensityAllInto(const Matrix& queries, double* out,
                                      ThreadPool* pool) const {
  ParallelForEach(0, queries.rows(), pool,
                  [&](size_t i) { out[i] = LogDensity(queries.RowPtr(i)); });
}

std::vector<double> KernelDensity::LeaveOneOutLogDensityAll(
    const Matrix& queries, ThreadPool* pool) const {
  std::vector<double> out(queries.rows());
  ParallelForEach(0, queries.rows(), pool, [&](size_t i) {
    double sum = KernelSum(queries.RowPtr(i), &ThreadLocalTraversalScratch());
    sum -= 1.0;  // the row's own kernel term: exp(0) for a fitted point
    out[i] = sum <= 0.0 ? -745.0 + log_norm_ : std::log(sum) + log_norm_;
  });
  return out;
}

bool KernelDensity::LogDensityBelow(const double* point,
                                    double threshold) const {
  // Compare in kernel-sum space: LogDensity < threshold iff
  // KernelSum < exp(threshold - log_norm_) (log is monotone; the sum <= 0
  // floor case is only reachable when the converted threshold underflows,
  // which the guard below routes to the fallback).
  double threshold_sum = std::exp(threshold - log_norm_);
  if (threshold_sum > 1e-280 && threshold_sum < 1e280) {
    // Slack contract (see ClassifyKernelSum): the relative term covers the
    // oracle's near-node geometric-mean settling (error <= atol relative
    // per settled node) plus float accumulation; the absolute term covers
    // far-node settles (<= atol^2 per point), dropped negligible nodes,
    // and float error relative to the summed magnitudes.
    double eps_rel = (atol_ > 0.0 ? atol_ : 0.0) + 1e-9;
    double eps_abs = static_cast<double>(n_) *
                     ((atol_ > 0.0 ? atol_ * atol_ : 0.0) + 1e-12);
    TraversalScratch* scratch = &ThreadLocalTraversalScratch();
    int c = backend_ == KdeTreeBackend::kKdTree
                ? tree_.ClassifyKernelSum(point, inv_bandwidth_.data(),
                                          scaled_bounds_, threshold_sum,
                                          eps_rel, eps_abs, scratch)
                : ball_tree_.ClassifyKernelSum(point, inv_bandwidth_.data(),
                                               scaled_bounds_, threshold_sum,
                                               eps_rel, eps_abs, scratch);
    if (c != 0) return c < 0;
  }
  return LogDensity(point) < threshold;
}

void KernelDensity::ClassifyBelowAllInto(const Matrix& queries,
                                         double threshold, uint8_t* out,
                                         ThreadPool* pool) const {
  // Same decision procedure as LogDensityBelow, with the threshold
  // conversion and slack terms hoisted out of the per-row loop — they
  // depend only on the fit and the threshold, not on the query.
  double threshold_sum = std::exp(threshold - log_norm_);
  bool in_range = threshold_sum > 1e-280 && threshold_sum < 1e280;
  double eps_rel = (atol_ > 0.0 ? atol_ : 0.0) + 1e-9;
  double eps_abs = static_cast<double>(n_) *
                   ((atol_ > 0.0 ? atol_ * atol_ : 0.0) + 1e-12);
  ParallelForEach(0, queries.rows(), pool, [&](size_t i) {
    const double* q = queries.RowPtr(i);
    if (in_range) {
      TraversalScratch* scratch = &ThreadLocalTraversalScratch();
      int c = backend_ == KdeTreeBackend::kKdTree
                  ? tree_.ClassifyKernelSum(q, inv_bandwidth_.data(),
                                            scaled_bounds_, threshold_sum,
                                            eps_rel, eps_abs, scratch)
                  : ball_tree_.ClassifyKernelSum(q, inv_bandwidth_.data(),
                                                 scaled_bounds_,
                                                 threshold_sum, eps_rel,
                                                 eps_abs, scratch);
      if (c != 0) {
        out[i] = c < 0 ? 1 : 0;
        return;
      }
    }
    out[i] = LogDensity(q) < threshold ? 1 : 0;
  });
}

Status KernelDensity::SaveFittedTo(BinaryWriter* w) const {
  if (n_ == 0) {
    return Status::FailedPrecondition("KernelDensity: not fitted");
  }
  w->WriteU8(backend_ == KdeTreeBackend::kBallTree ? 1 : 0);
  w->WriteDoubleVector(bandwidth_);
  w->WriteDoubleVector(inv_bandwidth_);
  w->WriteDouble(log_norm_);
  w->WriteDouble(atol_);
  w->WriteU64(static_cast<uint64_t>(n_));
  if (backend_ == KdeTreeBackend::kKdTree) {
    tree_.SerializeTo(w);
  } else {
    ball_tree_.SerializeTo(w);
  }
  return Status::OK();
}

Result<KernelDensity> KernelDensity::LoadFittedFrom(BinaryReader* r) {
  KernelDensity kde;
  Result<uint8_t> backend = r->ReadU8();
  if (!backend.ok()) return backend.status();
  kde.backend_ = backend.value() != 0 ? KdeTreeBackend::kBallTree
                                      : KdeTreeBackend::kKdTree;
  Result<std::vector<double>> bandwidth = r->ReadDoubleVector();
  if (!bandwidth.ok()) return bandwidth.status();
  kde.bandwidth_ = std::move(bandwidth).value();
  Result<std::vector<double>> inv = r->ReadDoubleVector();
  if (!inv.ok()) return inv.status();
  kde.inv_bandwidth_ = std::move(inv).value();
  Result<double> log_norm = r->ReadDouble();
  if (!log_norm.ok()) return log_norm.status();
  kde.log_norm_ = log_norm.value();
  Result<double> atol = r->ReadDouble();
  if (!atol.ok()) return atol.status();
  kde.atol_ = atol.value();
  Result<uint64_t> n = r->ReadU64();
  if (!n.ok()) return n.status();
  kde.n_ = static_cast<size_t>(n.value());
  size_t tree_size = 0;
  size_t tree_dim = 0;
  if (kde.backend_ == KdeTreeBackend::kKdTree) {
    Result<KdTree> tree = KdTree::DeserializeFrom(r);
    if (!tree.ok()) return tree.status();
    kde.tree_ = std::move(tree).value();
    tree_size = kde.tree_.size();
    tree_dim = kde.tree_.dim();
  } else {
    Result<BallTree> tree = BallTree::DeserializeFrom(r);
    if (!tree.ok()) return tree.status();
    kde.ball_tree_ = std::move(tree).value();
    tree_size = kde.ball_tree_.size();
    tree_dim = kde.ball_tree_.dim();
  }
  if (kde.n_ != tree_size || kde.bandwidth_.size() != tree_dim ||
      kde.inv_bandwidth_.size() != tree_dim) {
    return Status::DataLoss(
        "KernelDensity payload disagrees with its tree's shape");
  }
  // The classification bounds are derived state: rebuilding them here
  // (instead of serializing them) keeps the v2 density payload unchanged
  // while giving loaded estimators the same LogDensityBelow fast path —
  // and the same ApproxMemoryBytes — as the fit they were saved from.
  kde.BuildClassifyBounds();
  return kde;
}

Result<std::vector<size_t>> DensityRanking(const Matrix& data,
                                           const KdeOptions& options,
                                           ThreadPool* pool) {
  return DensityRankingWithHint(data, options, KdeCacheHint{}, pool);
}

Result<std::vector<size_t>> DensityRankingWithHint(const Matrix& data,
                                                   const KdeOptions& options,
                                                   const KdeCacheHint& hint,
                                                   ThreadPool* pool) {
  std::vector<double> density;
  if (options.use_fit_cache) {
    Result<std::shared_ptr<const KernelDensity>> kde =
        GlobalKdeCache().FitOrGet(data, options, hint);
    if (!kde.ok()) return kde.status();
    density = kde.value()->EvaluateAll(data, pool);
  } else {
    Result<KernelDensity> kde = KernelDensity::Fit(data, options);
    if (!kde.ok()) return kde.status();
    density = kde.value().EvaluateAll(data, pool);
  }
  std::vector<size_t> order(data.rows());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return density[a] > density[b];
  });
  return order;
}

}  // namespace fairdrift
