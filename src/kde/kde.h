// Gaussian kernel density estimation with KD-tree acceleration.
//
// Used by Algorithm 3 of the paper to rank the tuples of each
// (group x label) cell by density and keep only the densest fraction before
// deriving conformance constraints.

#ifndef FAIRDRIFT_KDE_KDE_H_
#define FAIRDRIFT_KDE_KDE_H_

#include <cstdint>
#include <vector>

#include "kde/balltree.h"
#include "kde/bandwidth.h"
#include "kde/kdtree.h"
#include "kde/scratch.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

class ThreadPool;  // util/parallel.h; only pointers appear in this header
class BinaryWriter;  // util/binary_io.h
class BinaryReader;

/// Spatial index accelerating the kernel sums. KD boxes prune tighter in
/// low dimensions; ball bounds stay O(d) per node and are the structure
/// the paper names for higher-dimensional inputs (§III-C, "m > 20").
enum class KdeTreeBackend {
  kKdTree,
  kBallTree,
};

/// Options for fitting a KernelDensity estimator.
struct KdeOptions {
  BandwidthRule bandwidth_rule = BandwidthRule::kScott;
  /// Per-point kernel spread below which a tree node is approximated by its
  /// midpoint. 0 computes the exact sum.
  double approximation_atol = 1e-4;
  size_t leaf_size = 32;
  KdeTreeBackend tree_backend = KdeTreeBackend::kKdTree;
  /// When set, DensityRanking (and therefore the density filter) resolves
  /// its fit through GlobalKdeCache(), so repeated trials / tuning passes
  /// over identical data reuse one fitted estimator instead of refitting.
  /// Identical data + options fit identically, so results are unchanged.
  /// Not part of the cache key.
  bool use_fit_cache = true;
};

/// Fitted Gaussian product-kernel density estimator.
class KernelDensity {
 public:
  /// Fits the estimator on the rows of `data`. Fails on empty input.
  static Result<KernelDensity> Fit(const Matrix& data,
                                   const KdeOptions& options = {});

  /// Process-wide count of completed KernelDensity::Fit calls. The bench
  /// summaries pair this with the cache counters to show how many refits
  /// the KdeCache elided.
  static uint64_t TotalFitCount();

  /// Density estimate at `point` (properly normalized pdf value).
  double Evaluate(const std::vector<double>& point) const;

  /// Density at a raw attribute row (no per-query allocations; uses the
  /// calling thread's TraversalScratch).
  double Evaluate(const double* point) const;

  /// Log-density at `point` (floor-guarded against -inf).
  double LogDensity(const std::vector<double>& point) const;

  /// Log-density at a raw attribute row (allocation-free).
  double LogDensity(const double* point) const;

  /// Densities of every row of `queries`. Queries are independent
  /// tree-pruned kernel sums, evaluated in parallel on `pool` (the global
  /// pool when null). Results are bitwise identical for every worker
  /// count, including an inline 0-worker pool.
  std::vector<double> EvaluateAll(const Matrix& queries,
                                  ThreadPool* pool = nullptr) const;

  /// EvaluateAll into a caller-owned span of queries.rows() doubles — no
  /// output allocation, and on a 0-worker pool no task-dispatch
  /// allocations either (the serving path's zero-allocation contract).
  void EvaluateAllInto(const Matrix& queries, double* out,
                       ThreadPool* pool = nullptr) const;

  /// Log-densities of every row of `queries` (same floor guard as
  /// LogDensity), batched and parallel like EvaluateAll.
  std::vector<double> LogDensityAll(const Matrix& queries,
                                    ThreadPool* pool = nullptr) const;

  /// LogDensityAll into a caller-owned span (EvaluateAllInto contract).
  void LogDensityAllInto(const Matrix& queries, double* out,
                         ThreadPool* pool = nullptr) const;

  /// Leave-one-out log-densities: LogDensity with the query's own kernel
  /// term (exp(0) = 1) subtracted from the kernel sum before taking the
  /// log. Only meaningful when every row of `queries` is one of the
  /// fitted points — the intended caller is floor calibration over the
  /// training matrix itself. A training row's plain LogDensity is
  /// inflated by its self-term, which a serve-time query never carries;
  /// in small-n / high-d regimes the self-term dominates the sum, so a
  /// floor quantiled over self-inflated values systematically over-flags
  /// in-distribution traffic. The same fit-time normalization is kept
  /// (log n, not log(n-1)): the floor must live on the same scale as the
  /// serve-time LogDensity it is compared against, and the uniform
  /// log(n/(n-1)) offset is irrelevant to a quantile threshold. Rows
  /// whose neighbors contribute nothing hit the same underflow floor as
  /// LogDensity.
  std::vector<double> LeaveOneOutLogDensityAll(
      const Matrix& queries, ThreadPool* pool = nullptr) const;

  /// True iff LogDensity(point) < threshold — the density monitor's
  /// outlier predicate — decided from the fit-time per-node bounds
  /// whenever the bound interval clears the threshold, without descending
  /// to leaf kernel sums. Undecided queries (density within slack of the
  /// threshold, or the bounded node budget exhausted) fall back to
  /// evaluating LogDensity itself, so the returned bit is identical to
  /// computing the comparison exactly, for every query, thread count, and
  /// tree backend. Allocation-free (thread-local scratch).
  bool LogDensityBelow(const double* point, double threshold) const;

  /// LogDensityBelow over every row of `queries`: out[i] = 1 when row i's
  /// log-density is below `threshold`, else 0. Batched and parallel like
  /// EvaluateAllInto; bitwise identical for every worker count.
  void ClassifyBelowAllInto(const Matrix& queries, double threshold,
                            uint8_t* out, ThreadPool* pool = nullptr) const;

  /// Per-dimension bandwidths in use.
  const std::vector<double>& bandwidth() const { return bandwidth_; }

  /// Number of training points.
  size_t train_size() const { return n_; }

  /// Approximate resident bytes of the fitted estimator (tree storage +
  /// bandwidths + classification bounds); the KdeCache evicts by the sum
  /// of these. Fit and LoadFittedFrom build identical state, so a loaded
  /// estimator reports the same bytes as the fit it was saved from.
  size_t ApproxMemoryBytes() const {
    return tree_.ApproxMemoryBytes() + ball_tree_.ApproxMemoryBytes() +
           (bandwidth_.size() + inv_bandwidth_.size() +
            scaled_bounds_.size()) *
               sizeof(double) +
           sizeof(*this);
  }

  /// Appends the complete fitted state (bandwidths, normalization, the
  /// flat tree) to `w`. LoadFittedFrom rebuilds an estimator whose every
  /// query is bitwise identical to this one's — in O(n), with no refit
  /// and no retained copy of the training matrix (the snapshot format's
  /// v2 density section). Fails FailedPrecondition on an unfitted
  /// estimator.
  Status SaveFittedTo(BinaryWriter* w) const;

  /// Rebuilds a fitted estimator from SaveFittedTo's payload; malformed
  /// payloads fail with Status::DataLoss.
  static Result<KernelDensity> LoadFittedFrom(BinaryReader* r);

 private:
  KernelDensity() = default;

  /// Kernel sum at `point` via the configured backend (allocation-free;
  /// traversal state lives in `scratch`).
  double KernelSum(const double* point, TraversalScratch* scratch) const;

  /// Builds scaled_bounds_ for the configured backend; run eagerly at the
  /// end of Fit and LoadFittedFrom so fitted and loaded estimators carry
  /// identical state (including ApproxMemoryBytes).
  void BuildClassifyBounds();

  KdTree tree_;
  BallTree ball_tree_;
  KdeTreeBackend backend_ = KdeTreeBackend::kKdTree;
  std::vector<double> bandwidth_;
  std::vector<double> inv_bandwidth_;
  /// Bandwidth-scaled per-node geometry for LogDensityBelow (see the
  /// trees' BuildScaledBounds); derived from the tree + bandwidth, so it
  /// is rebuilt on load rather than serialized.
  std::vector<double> scaled_bounds_;
  double log_norm_ = 0.0;  // log of 1 / (n * prod_j h_j * (2*pi)^(d/2))
  double atol_ = 0.0;
  size_t n_ = 0;
};

struct KdeCacheHint;  // kde/kde_cache.h

/// Ranks the rows of `data` by KDE density (self-evaluation) and returns
/// row indices in descending density order. This is the sort step of the
/// paper's Algorithm 3. Self-evaluation runs through the batched parallel
/// EvaluateAll on `pool` (global pool when null). With
/// options.use_fit_cache the fit resolves through GlobalKdeCache(), so
/// repeated rankings of identical data reuse one estimator.
Result<std::vector<size_t>> DensityRanking(const Matrix& data,
                                           const KdeOptions& options = {},
                                           ThreadPool* pool = nullptr);

/// DensityRanking with an O(1) cache-lookup hint: callers that derive
/// `data` from a Dataset pass (dataset version, view slot) so the fit
/// cache can skip the O(nd) content rehash on repeated lookups (see
/// KdeCacheHint).
Result<std::vector<size_t>> DensityRankingWithHint(const Matrix& data,
                                                   const KdeOptions& options,
                                                   const KdeCacheHint& hint,
                                                   ThreadPool* pool = nullptr);

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_KDE_H_
