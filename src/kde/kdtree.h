// KD-tree over points in R^d.
//
// Built once per (group x label) cell and then used to accelerate Gaussian
// kernel density evaluation (paper Algorithm 3 cites the tree-based
// estimator of scikit-learn). Also exposes exact nearest-neighbour queries,
// which the test-suite uses as an oracle check.

#ifndef FAIRDRIFT_KDE_KDTREE_H_
#define FAIRDRIFT_KDE_KDTREE_H_

#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Axis-aligned bounding box.
struct BoundingBox {
  std::vector<double> lo;
  std::vector<double> hi;
};

/// Static KD-tree; split on the widest dimension at the median.
class KdTree {
 public:
  /// Creates an empty tree; use Build() to obtain a usable one.
  KdTree() = default;

  /// Builds a tree over the rows of `points`. Fails on an empty matrix.
  static Result<KdTree> Build(const Matrix& points, size_t leaf_size = 32);

  /// Number of indexed points.
  size_t size() const { return points_.rows(); }

  /// Dimensionality.
  size_t dim() const { return points_.cols(); }

  /// Indices of the k nearest neighbours to `query` (ascending distance).
  /// k is clamped to size().
  std::vector<size_t> NearestNeighbors(const std::vector<double>& query,
                                       size_t k) const;

  /// Sum over all points of exp(-0.5 * ||(x - query) / h||^2), with h the
  /// per-dimension scale vector. Nodes whose kernel-value spread is below
  /// `atol` are approximated by their midpoint (atol = 0 gives the exact
  /// sum). This is the workhorse of the KDE.
  double GaussianKernelSum(const std::vector<double>& query,
                           const std::vector<double>& inv_bandwidth,
                           double atol = 0.0) const;

  /// The bounding box of all indexed points.
  const BoundingBox& root_box() const { return nodes_[0].box; }

 private:
  struct Node {
    size_t begin = 0;     // range [begin, end) into order_
    size_t end = 0;
    int left = -1;        // child node ids; -1 for leaves
    int right = -1;
    BoundingBox box;
  };

  int BuildNode(const Matrix& pts, size_t begin, size_t end, size_t leaf_size);
  void KnnRecurse(int node_id, const std::vector<double>& query, size_t k,
                  std::vector<std::pair<double, size_t>>* heap) const;
  double KernelSumRecurse(int node_id, const std::vector<double>& query,
                          const std::vector<double>& inv_bandwidth,
                          double atol) const;

  /// Squared scaled distance from query to the node box (0 when inside).
  static double MinScaledSqDist(const BoundingBox& box,
                                const std::vector<double>& query,
                                const std::vector<double>& inv_bandwidth);
  /// Max squared scaled distance from query to any point of the box.
  static double MaxScaledSqDist(const BoundingBox& box,
                                const std::vector<double>& query,
                                const std::vector<double>& inv_bandwidth);

  Matrix points_;              // rows permuted into node-contiguous order
  std::vector<size_t> order_;  // order_[i] = caller row id of points_ row i
  std::vector<Node> nodes_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_KDTREE_H_
