// KD-tree over points in R^d.
//
// Built once per (group x label) cell and then used to accelerate Gaussian
// kernel density evaluation (paper Algorithm 3 cites the tree-based
// estimator of scikit-learn). Also exposes exact nearest-neighbour queries,
// which the test-suite uses as an oracle check.
//
// Nodes live in a flat structure-of-arrays layout (contiguous
// begin/end/left/right plus packed box lo/hi arrays) and queries run as an
// iterative sweep over it with a caller-supplied TraversalScratch, so the
// hot path performs zero heap allocations per query. The pre-flattening
// recursive kernel sum is kept as GaussianKernelSumRecursive — the bitwise
// oracle the tests pin the iterative sweep against.

#ifndef FAIRDRIFT_KDE_KDTREE_H_
#define FAIRDRIFT_KDE_KDTREE_H_

#include <cstdint>
#include <vector>

#include "kde/scratch.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

class BinaryWriter;  // util/binary_io.h
class BinaryReader;

/// Axis-aligned bounding box.
struct BoundingBox {
  std::vector<double> lo;
  std::vector<double> hi;
};

/// Static KD-tree; split on the widest dimension at the median.
class KdTree {
 public:
  /// Creates an empty tree; use Build() to obtain a usable one.
  KdTree() = default;

  /// Builds a tree over the rows of `points`. Fails on an empty matrix.
  static Result<KdTree> Build(const Matrix& points, size_t leaf_size = 32);

  /// Number of indexed points.
  size_t size() const { return points_.rows(); }

  /// Dimensionality.
  size_t dim() const { return dim_; }

  /// Indices of the k nearest neighbours to `query` (ascending distance).
  /// k is clamped to size(). Convenience wrapper over the scratch overload
  /// (uses the calling thread's scratch).
  std::vector<size_t> NearestNeighbors(const std::vector<double>& query,
                                       size_t k) const;

  /// Allocation-free kNN: writes the k nearest indices into `out`
  /// (ascending distance), reusing `scratch` and `out`'s capacity.
  void NearestNeighbors(const double* query, size_t k,
                        TraversalScratch* scratch,
                        std::vector<size_t>* out) const;

  /// Sum over all points of exp(-0.5 * ||(x - query) / h||^2), with h the
  /// per-dimension scale vector. Nodes whose kernel-value spread is
  /// provably below `atol` are approximated by count * sqrt(kmax * kmin)
  /// — the geometric-mean kernel, which lies in [kmin, kmax] and errs at
  /// most atol per point (atol = 0 gives the exact sum). The proof needs
  /// only squared box distances (spread <= min((dmax2 - dmin2)/2, kmax)),
  /// so descended interior nodes cost no exp() at all. This is the
  /// workhorse of the KDE. Convenience wrapper over the scratch overload
  /// (uses the calling thread's scratch).
  double GaussianKernelSum(const std::vector<double>& query,
                           const std::vector<double>& inv_bandwidth,
                           double atol = 0.0) const;

  /// Allocation-free kernel sum over the flat node layout. Bitwise
  /// identical to GaussianKernelSumRecursive for every input.
  double GaussianKernelSum(const double* query, const double* inv_bandwidth,
                           double atol, TraversalScratch* scratch) const;

  /// Reference recursive kernel sum (the pre-flattening implementation).
  /// Slow path kept as the migration oracle for the iterative sweep; the
  /// tests assert bitwise equality between the two.
  double GaussianKernelSumRecursive(const std::vector<double>& query,
                                    const std::vector<double>& inv_bandwidth,
                                    double atol = 0.0) const;

  /// Fills `out` with the bandwidth-scaled per-node box geometry consumed
  /// by ClassifyKernelSum: node i occupies [2*i*dim, 2*(i+1)*dim) as its
  /// scaled lo followed by its scaled hi. Built once per bandwidth at fit
  /// (or load) time, so the per-node classification bound needs no
  /// inv_bandwidth multiplies on the query path.
  void BuildScaledBounds(const std::vector<double>& inv_bandwidth,
                         std::vector<double>* out) const;

  /// Bounded-work three-way comparison of the Gaussian kernel sum against
  /// `threshold`: +1 when the sum is provably >= threshold, -1 when
  /// provably below, 0 when undecided (interval straddles the threshold
  /// within slack, or the node budget ran out). The maintained interval
  /// brackets — with relative slack `eps_rel` and absolute slack
  /// `eps_abs` — every value GaussianKernelSum can return for this query
  /// at any atol whose settling error the slacks cover, so a nonzero
  /// answer is guaranteed to agree with comparing the exact sum; callers
  /// resolve 0 by evaluating the oracle. `scaled_bounds` must come from
  /// BuildScaledBounds with the same inv_bandwidth.
  int ClassifyKernelSum(const double* query, const double* inv_bandwidth,
                        const std::vector<double>& scaled_bounds,
                        double threshold, double eps_rel, double eps_abs,
                        TraversalScratch* scratch) const;

  /// The bounding box of all indexed points.
  const BoundingBox& root_box() const { return root_box_; }

  /// Approximate resident bytes (points + flat node arrays); feeds the
  /// KdeCache's byte-bounded eviction.
  size_t ApproxMemoryBytes() const {
    return points_.data().size() * sizeof(double) +
           order_.size() * sizeof(size_t) +
           (node_begin_.size() + node_end_.size()) * sizeof(size_t) +
           (node_left_.size() + node_right_.size()) * sizeof(int32_t) +
           (box_lo_.size() + box_hi_.size()) * sizeof(double);
  }

  /// Appends the built state verbatim (permuted points, order map, flat
  /// node arrays, packed boxes) to `w`. A deserialized tree answers every
  /// query bitwise identically to this one — snapshot persistence uses
  /// this to make monitored-snapshot loads O(n) instead of an
  /// O(n log n) rebuild.
  void SerializeTo(BinaryWriter* w) const;

  /// Rebuilds a tree from SerializeTo's payload, validating the
  /// structural invariants (array shapes, child ids, point ranges) so a
  /// forged payload fails with Status::DataLoss instead of reading out
  /// of bounds at query time.
  static Result<KdTree> DeserializeFrom(BinaryReader* r);

 private:
  int BuildNode(const Matrix& pts, size_t begin, size_t end, size_t leaf_size);
  double KernelSumRecurse(int32_t node_id, const double* query,
                          const double* inv_bandwidth, double atol) const;

  /// Squared scaled distance from query to node `id`'s box (0 when inside).
  double MinScaledSqDist(int32_t id, const double* query,
                         const double* inv_bandwidth) const;
  /// Min and max squared scaled distances in one fused branch-free pass.
  void MinMaxScaledSqDist(int32_t id, const double* query,
                          const double* inv_bandwidth, double* dmin2,
                          double* dmax2) const;
  /// Exact kernel sum over leaf `id`'s contiguous point range.
  double LeafKernelSum(int32_t id, const double* query,
                       const double* inv_bandwidth) const;
  /// Unscaled squared distance from query to the box (kNN pruning bound).
  double MinSqDist(int32_t id, const double* query) const;

  size_t dim_ = 0;
  Matrix points_;              // rows permuted into node-contiguous order
  std::vector<size_t> order_;  // order_[i] = caller row id of points_ row i

  // Flat structure-of-arrays node storage. Children are node ids (-1 for
  // leaves); node i's box occupies [i * dim_, (i + 1) * dim_) of the packed
  // lo/hi arrays, so traversal touches contiguous memory instead of
  // chasing per-node vectors.
  std::vector<size_t> node_begin_;
  std::vector<size_t> node_end_;
  std::vector<int32_t> node_left_;
  std::vector<int32_t> node_right_;
  std::vector<double> box_lo_;
  std::vector<double> box_hi_;
  BoundingBox root_box_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_KDTREE_H_
