#include "kde/bandwidth.h"

#include <algorithm>
#include <cmath>

#include "linalg/stats.h"

namespace fairdrift {

std::vector<double> SelectBandwidth(const Matrix& data, BandwidthRule rule) {
  size_t n = data.rows();
  size_t d = data.cols();
  std::vector<double> sigma = ColumnStdDevs(data);
  double n_d = std::max<double>(static_cast<double>(n), 2.0);
  double exponent = -1.0 / (static_cast<double>(d) + 4.0);
  double factor = std::pow(n_d, exponent);
  if (rule == BandwidthRule::kSilverman) {
    factor *= std::pow(4.0 / (static_cast<double>(d) + 2.0),
                       1.0 / (static_cast<double>(d) + 4.0));
  }
  std::vector<double> h(d);
  for (size_t j = 0; j < d; ++j) {
    h[j] = sigma[j] > 0.0 ? sigma[j] * factor : 1e-3;
  }
  return h;
}

}  // namespace fairdrift
