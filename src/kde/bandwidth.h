// Bandwidth selection rules for kernel density estimation.

#ifndef FAIRDRIFT_KDE_BANDWIDTH_H_
#define FAIRDRIFT_KDE_BANDWIDTH_H_

#include <vector>

#include "linalg/matrix.h"

namespace fairdrift {

/// Bandwidth rule to apply per dimension.
enum class BandwidthRule {
  kScott,      ///< h_j = sigma_j * n^(-1/(d+4))
  kSilverman,  ///< h_j = sigma_j * (4/(d+2))^(1/(d+4)) * n^(-1/(d+4))
};

/// Per-dimension bandwidths for the rows of `data` under `rule`.
/// Dimensions with zero spread receive a small floor bandwidth so the
/// kernel stays well-defined (degenerate constant attributes are common in
/// one-hot-adjacent data).
std::vector<double> SelectBandwidth(const Matrix& data, BandwidthRule rule);

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_BANDWIDTH_H_
