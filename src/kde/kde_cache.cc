#include "kde/kde_cache.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <utility>

namespace fairdrift {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffull;
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double is not 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

bool KdeDataFingerprint::operator<(const KdeDataFingerprint& o) const {
  return std::tie(h1, h2, rows, cols) < std::tie(o.h1, o.h2, o.rows, o.cols);
}

bool KdeDataFingerprint::operator==(const KdeDataFingerprint& o) const {
  return h1 == o.h1 && h2 == o.h2 && rows == o.rows && cols == o.cols;
}

KdeDataFingerprint FingerprintMatrix(const Matrix& data) {
  KdeDataFingerprint fp;
  fp.rows = data.rows();
  fp.cols = data.cols();
  // Two FNV-1a streams with distinct offset bases; the second also folds
  // the element index in, so the streams stay independent.
  uint64_t h1 = 14695981039346656037ull;
  uint64_t h2 = 0x9e3779b97f4a7c15ull;
  const std::vector<double>& flat = data.data();
  for (size_t i = 0; i < flat.size(); ++i) {
    uint64_t bits = DoubleBits(flat[i]);
    h1 = FnvMix(h1, bits);
    h2 = FnvMix(h2, bits ^ (static_cast<uint64_t>(i) * kFnvPrime));
  }
  fp.h1 = FnvMix(h1, (static_cast<uint64_t>(fp.rows) << 32) ^ fp.cols);
  fp.h2 = FnvMix(h2, (static_cast<uint64_t>(fp.cols) << 32) ^ fp.rows);
  return fp;
}

bool KdeCache::Key::operator<(const Key& o) const {
  return std::tie(data, bandwidth_rule, atol, leaf_size, backend) <
         std::tie(o.data, o.bandwidth_rule, o.atol, o.leaf_size, o.backend);
}

KdeCache::Key KdeCache::MakeKey(const KdeDataFingerprint& fp,
                                const KdeOptions& options) {
  Key key;
  key.data = fp;
  key.bandwidth_rule = static_cast<int>(options.bandwidth_rule);
  key.atol = options.approximation_atol;
  key.leaf_size = options.leaf_size;
  key.backend = static_cast<int>(options.tree_backend);
  return key;
}

KdeDataFingerprint KdeCache::ResolveFingerprint(const Matrix& data,
                                                const KdeCacheHint& hint) {
  if (hint.dataset_version == 0) return FingerprintMatrix(data);
  auto memo_key =
      std::make_tuple(hint.dataset_version, hint.space, hint.slot);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fingerprint_memo_.find(memo_key);
    if (it != fingerprint_memo_.end()) {
      ++fingerprint_memo_hits_;
      return it->second;
    }
    ++fingerprint_memo_misses_;
  }
  // Hash outside the lock; versions are never reused, so a racing insert
  // of the same memo key writes the identical fingerprint.
  KdeDataFingerprint fp = FingerprintMatrix(data);
  std::lock_guard<std::mutex> lock(mu_);
  if (fingerprint_memo_.size() >= kFingerprintMemoCapacity) {
    fingerprint_memo_.clear();
  }
  fingerprint_memo_[memo_key] = fp;
  return fp;
}

Result<std::shared_ptr<const KernelDensity>> KdeCache::FitOrGet(
    const Matrix& data, const KdeOptions& options, const KdeCacheHint& hint) {
  Key key = MakeKey(ResolveFingerprint(data, hint), options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // mark hottest
      return it->second.kde;
    }
    ++misses_;
  }
  // Fit outside the lock: misses on different cells run concurrently.
  Result<KernelDensity> fitted = KernelDensity::Fit(data, options);
  if (!fitted.ok()) return fitted.status();
  auto kde = std::make_shared<const KernelDensity>(std::move(fitted).value());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing miss inserted the identical fit first; keep it.
    return it->second.kde;
  }
  size_t bytes = kde->ApproxMemoryBytes();
  lru_.push_front(key);
  entries_[key] = Entry{kde, bytes, lru_.begin()};
  resident_bytes_ += bytes;
  EvictIfOverBoundsLocked();
  return kde;
}

void KdeCache::EvictIfOverBoundsLocked() {
  while ((entries_.size() > capacity_ || resident_bytes_ > max_bytes_) &&
         !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    if (it != entries_.end()) {
      // Exact accounting: each entry's insertion-time byte count is what
      // was added to resident_bytes_, so subtracting it back is always
      // in range. (A saturating subtract here once masked drift between
      // fitted and loaded estimators' ApproxMemoryBytes — the two now
      // report identically, and kde_flat_test pins full eviction at 0.)
      resident_bytes_ -= it->second.bytes;
      entries_.erase(it);
    }
    lru_.pop_back();
    ++evictions_;
  }
}

void KdeCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  fingerprint_memo_.clear();
  resident_bytes_ = 0;
}

void KdeCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  fingerprint_memo_hits_ = 0;
  fingerprint_memo_misses_ = 0;
}

KdeCache::Stats KdeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.resident_bytes = resident_bytes_;
  s.fingerprint_memo_hits = fingerprint_memo_hits_;
  s.fingerprint_memo_misses = fingerprint_memo_misses_;
  return s;
}

void KdeCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EvictIfOverBoundsLocked();
}

void KdeCache::set_max_bytes(size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_bytes_ = max_bytes;
  EvictIfOverBoundsLocked();
}

KdeCache& GlobalKdeCache() {
  static KdeCache* cache = new KdeCache();
  return *cache;
}

}  // namespace fairdrift
