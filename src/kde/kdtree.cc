#include "kde/kdtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace fairdrift {

Result<KdTree> KdTree::Build(const Matrix& points, size_t leaf_size) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("KdTree::Build: empty point set");
  }
  KdTree tree;
  tree.order_.resize(points.rows());
  std::iota(tree.order_.begin(), tree.order_.end(), size_t{0});
  tree.nodes_.reserve(2 * points.rows() / std::max<size_t>(leaf_size, 1) + 2);
  tree.BuildNode(points, 0, points.rows(), std::max<size_t>(leaf_size, 1));
  // Store the points permuted into node order so leaf scans (the KDE's
  // inner loop) sweep contiguous memory; order_ keeps the map back to the
  // caller's row ids. This is the only copy the build makes.
  tree.points_ = Matrix(points.rows(), points.cols());
  for (size_t i = 0; i < points.rows(); ++i) {
    const double* src = points.RowPtr(tree.order_[i]);
    std::copy(src, src + points.cols(), tree.points_.RowPtr(i));
  }
  return tree;
}

int KdTree::BuildNode(const Matrix& pts, size_t begin, size_t end,
                      size_t leaf_size) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    size_t d = pts.cols();
    node.box.lo.assign(d, std::numeric_limits<double>::infinity());
    node.box.hi.assign(d, -std::numeric_limits<double>::infinity());
    for (size_t i = begin; i < end; ++i) {
      const double* row = pts.RowPtr(order_[i]);
      for (size_t j = 0; j < d; ++j) {
        node.box.lo[j] = std::min(node.box.lo[j], row[j]);
        node.box.hi[j] = std::max(node.box.hi[j], row[j]);
      }
    }
  }

  if (end - begin <= leaf_size) return node_id;

  // Split at the median of the widest dimension.
  size_t d = pts.cols();
  size_t split_dim = 0;
  double best_width = -1.0;
  for (size_t j = 0; j < d; ++j) {
    double width = nodes_[node_id].box.hi[j] - nodes_[node_id].box.lo[j];
    if (width > best_width) {
      best_width = width;
      split_dim = j;
    }
  }
  if (best_width <= 0.0) return node_id;  // All points identical: stay a leaf.

  size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<ptrdiff_t>(begin),
                   order_.begin() + static_cast<ptrdiff_t>(mid),
                   order_.begin() + static_cast<ptrdiff_t>(end),
                   [&](size_t a, size_t b) {
                     return pts.At(a, split_dim) < pts.At(b, split_dim);
                   });

  int left = BuildNode(pts, begin, mid, leaf_size);
  int right = BuildNode(pts, mid, end, leaf_size);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double KdTree::MinScaledSqDist(const BoundingBox& box,
                               const std::vector<double>& query,
                               const std::vector<double>& inv_bandwidth) {
  double acc = 0.0;
  for (size_t j = 0; j < query.size(); ++j) {
    double d = 0.0;
    if (query[j] < box.lo[j]) {
      d = (box.lo[j] - query[j]) * inv_bandwidth[j];
    } else if (query[j] > box.hi[j]) {
      d = (query[j] - box.hi[j]) * inv_bandwidth[j];
    }
    acc += d * d;
  }
  return acc;
}

double KdTree::MaxScaledSqDist(const BoundingBox& box,
                               const std::vector<double>& query,
                               const std::vector<double>& inv_bandwidth) {
  double acc = 0.0;
  for (size_t j = 0; j < query.size(); ++j) {
    double d = std::max(std::fabs(query[j] - box.lo[j]),
                        std::fabs(query[j] - box.hi[j])) *
               inv_bandwidth[j];
    acc += d * d;
  }
  return acc;
}

std::vector<size_t> KdTree::NearestNeighbors(const std::vector<double>& query,
                                             size_t k) const {
  assert(query.size() == dim());
  k = std::min(k, size());
  // Max-heap of (distance^2, index), capped at k.
  std::vector<std::pair<double, size_t>> heap;
  heap.reserve(k + 1);
  KnnRecurse(0, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<size_t> out;
  out.reserve(heap.size());
  for (const auto& [dist, idx] : heap) out.push_back(idx);
  return out;
}

namespace {
/// Unscaled squared distance from `query` to `box` (0 when inside).
double MinSqDistToBox(const BoundingBox& box,
                      const std::vector<double>& query) {
  double acc = 0.0;
  for (size_t j = 0; j < query.size(); ++j) {
    double d = 0.0;
    if (query[j] < box.lo[j]) {
      d = box.lo[j] - query[j];
    } else if (query[j] > box.hi[j]) {
      d = query[j] - box.hi[j];
    }
    acc += d * d;
  }
  return acc;
}
}  // namespace

void KdTree::KnnRecurse(int node_id, const std::vector<double>& query,
                        size_t k,
                        std::vector<std::pair<double, size_t>>* heap) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  double bound = MinSqDistToBox(node.box, query);
  if (heap->size() == k && !heap->empty() && bound >= heap->front().first) {
    return;
  }
  if (node.left < 0) {
    for (size_t i = node.begin; i < node.end; ++i) {
      size_t idx = order_[i];
      double d2 = 0.0;
      const double* row = points_.RowPtr(i);
      for (size_t j = 0; j < query.size(); ++j) {
        double d = row[j] - query[j];
        d2 += d * d;
      }
      if (heap->size() < k) {
        heap->emplace_back(d2, idx);
        std::push_heap(heap->begin(), heap->end());
      } else if (d2 < heap->front().first) {
        std::pop_heap(heap->begin(), heap->end());
        heap->back() = {d2, idx};
        std::push_heap(heap->begin(), heap->end());
      }
    }
    return;
  }
  // Visit the child whose box is nearer first.
  double dl = MinSqDistToBox(nodes_[static_cast<size_t>(node.left)].box, query);
  double dr = MinSqDistToBox(nodes_[static_cast<size_t>(node.right)].box, query);
  if (dl <= dr) {
    KnnRecurse(node.left, query, k, heap);
    KnnRecurse(node.right, query, k, heap);
  } else {
    KnnRecurse(node.right, query, k, heap);
    KnnRecurse(node.left, query, k, heap);
  }
}

double KdTree::GaussianKernelSum(const std::vector<double>& query,
                                 const std::vector<double>& inv_bandwidth,
                                 double atol) const {
  assert(query.size() == dim());
  assert(inv_bandwidth.size() == dim());
  return KernelSumRecurse(0, query, inv_bandwidth, atol);
}

double KdTree::KernelSumRecurse(int node_id, const std::vector<double>& query,
                                const std::vector<double>& inv_bandwidth,
                                double atol) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  double count = static_cast<double>(node.end - node.begin);

  double dmin2 = MinScaledSqDist(node.box, query, inv_bandwidth);
  double kmax = std::exp(-0.5 * dmin2);
  if (kmax * count < 1e-300) return 0.0;  // Entire node is negligible.

  if (atol > 0.0) {
    double dmax2 = MaxScaledSqDist(node.box, query, inv_bandwidth);
    double kmin = std::exp(-0.5 * dmax2);
    if (kmax - kmin <= atol) {
      return count * 0.5 * (kmax + kmin);
    }
  }
  if (node.left < 0) {
    // Rows [begin, end) are stored contiguously (points_ is in node
    // order), so this sweep is cache-linear.
    double acc = 0.0;
    for (size_t i = node.begin; i < node.end; ++i) {
      const double* row = points_.RowPtr(i);
      double u2 = 0.0;
      for (size_t j = 0; j < query.size(); ++j) {
        double d = (row[j] - query[j]) * inv_bandwidth[j];
        u2 += d * d;
      }
      acc += std::exp(-0.5 * u2);
    }
    return acc;
  }
  return KernelSumRecurse(node.left, query, inv_bandwidth, atol) +
         KernelSumRecurse(node.right, query, inv_bandwidth, atol);
}

}  // namespace fairdrift
