#include "kde/kdtree.h"

#include "kde/leaf_scan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "kde/tree_io.h"
#include "util/binary_io.h"

namespace fairdrift {

namespace {

/// Kernel-sum bounds of one node from its bandwidth-scaled box: every one
/// of the node's `count` points has kernel value in
/// [exp(-0.5 * dmax2), exp(-0.5 * dmin2)], with dmin2/dmax2 the squared
/// scaled distances to the nearest box point and the farthest box corner.
inline void KdNodeBounds(const double* scaled_box, size_t dim,
                         const double* scaled_query, double count, double* l,
                         double* u) {
  const double* lo = scaled_box;
  const double* hi = scaled_box + dim;
  double amin = 0.0;
  double amax = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    double below = lo[j] - scaled_query[j];
    double above = scaled_query[j] - hi[j];
    double dn = std::max(std::max(below, above), 0.0);
    double dx = std::max(-below, -above);
    amin += dn * dn;
    amax += dx * dx;
  }
  double kmin, kmax;
  NegExpPair(-0.5 * amax, -0.5 * amin, &kmin, &kmax);
  *l = count * kmin;
  *u = count * kmax;
}

}  // namespace

Result<KdTree> KdTree::Build(const Matrix& points, size_t leaf_size) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("KdTree::Build: empty point set");
  }
  KdTree tree;
  tree.dim_ = points.cols();
  tree.order_.resize(points.rows());
  std::iota(tree.order_.begin(), tree.order_.end(), size_t{0});
  size_t node_hint = 2 * points.rows() / std::max<size_t>(leaf_size, 1) + 2;
  tree.node_begin_.reserve(node_hint);
  tree.node_end_.reserve(node_hint);
  tree.node_left_.reserve(node_hint);
  tree.node_right_.reserve(node_hint);
  tree.box_lo_.reserve(node_hint * tree.dim_);
  tree.box_hi_.reserve(node_hint * tree.dim_);
  tree.BuildNode(points, 0, points.rows(), std::max<size_t>(leaf_size, 1));
  tree.root_box_.lo.assign(tree.box_lo_.begin(), tree.box_lo_.begin() + tree.dim_);
  tree.root_box_.hi.assign(tree.box_hi_.begin(), tree.box_hi_.begin() + tree.dim_);
  // Store the points permuted into node order so leaf scans (the KDE's
  // inner loop) sweep contiguous memory; order_ keeps the map back to the
  // caller's row ids. This is the only copy the build makes.
  tree.points_ = Matrix(points.rows(), points.cols());
  for (size_t i = 0; i < points.rows(); ++i) {
    const double* src = points.RowPtr(tree.order_[i]);
    std::copy(src, src + points.cols(), tree.points_.RowPtr(i));
  }
  return tree;
}

int KdTree::BuildNode(const Matrix& pts, size_t begin, size_t end,
                      size_t leaf_size) {
  int node_id = static_cast<int>(node_begin_.size());
  size_t d = pts.cols();
  node_begin_.push_back(begin);
  node_end_.push_back(end);
  node_left_.push_back(-1);
  node_right_.push_back(-1);
  size_t box_at = box_lo_.size();
  box_lo_.insert(box_lo_.end(), d, std::numeric_limits<double>::infinity());
  box_hi_.insert(box_hi_.end(), d, -std::numeric_limits<double>::infinity());
  for (size_t i = begin; i < end; ++i) {
    const double* row = pts.RowPtr(order_[i]);
    for (size_t j = 0; j < d; ++j) {
      box_lo_[box_at + j] = std::min(box_lo_[box_at + j], row[j]);
      box_hi_[box_at + j] = std::max(box_hi_[box_at + j], row[j]);
    }
  }

  if (end - begin <= leaf_size) return node_id;

  // Split at the median of the widest dimension.
  size_t split_dim = 0;
  double best_width = -1.0;
  for (size_t j = 0; j < d; ++j) {
    double width = box_hi_[box_at + j] - box_lo_[box_at + j];
    if (width > best_width) {
      best_width = width;
      split_dim = j;
    }
  }
  if (best_width <= 0.0) return node_id;  // All points identical: stay a leaf.

  size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<ptrdiff_t>(begin),
                   order_.begin() + static_cast<ptrdiff_t>(mid),
                   order_.begin() + static_cast<ptrdiff_t>(end),
                   [&](size_t a, size_t b) {
                     return pts.At(a, split_dim) < pts.At(b, split_dim);
                   });

  int left = BuildNode(pts, begin, mid, leaf_size);
  int right = BuildNode(pts, mid, end, leaf_size);
  node_left_[static_cast<size_t>(node_id)] = left;
  node_right_[static_cast<size_t>(node_id)] = right;
  return node_id;
}

double KdTree::MinScaledSqDist(int32_t id, const double* query,
                               const double* inv_bandwidth) const {
  const double* lo = box_lo_.data() + static_cast<size_t>(id) * dim_;
  const double* hi = box_hi_.data() + static_cast<size_t>(id) * dim_;
  double acc = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    // max(lo - x, x - hi, 0): branch-free (compiles to two maxsd).
    double d = std::max(std::max(lo[j] - query[j], query[j] - hi[j]), 0.0) *
               inv_bandwidth[j];
    acc += d * d;
  }
  return acc;
}

void KdTree::MinMaxScaledSqDist(int32_t id, const double* query,
                                const double* inv_bandwidth, double* dmin2,
                                double* dmax2) const {
  const double* lo = box_lo_.data() + static_cast<size_t>(id) * dim_;
  const double* hi = box_hi_.data() + static_cast<size_t>(id) * dim_;
  double amin = 0.0;
  double amax = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    double below = lo[j] - query[j];
    double above = query[j] - hi[j];
    // Nearest box point: max(below, above, 0). Farthest corner: the wider
    // of (x - lo) and (hi - x) — which equals max(|x-lo|, |x-hi|) whether
    // x is inside or outside the box. Both are branch-free.
    double dn = std::max(std::max(below, above), 0.0) * inv_bandwidth[j];
    double dx = std::max(-below, -above) * inv_bandwidth[j];
    amin += dn * dn;
    amax += dx * dx;
  }
  *dmin2 = amin;
  *dmax2 = amax;
}

double KdTree::MinSqDist(int32_t id, const double* query) const {
  const double* lo = box_lo_.data() + static_cast<size_t>(id) * dim_;
  const double* hi = box_hi_.data() + static_cast<size_t>(id) * dim_;
  double acc = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    double d = 0.0;
    if (query[j] < lo[j]) {
      d = lo[j] - query[j];
    } else if (query[j] > hi[j]) {
      d = query[j] - hi[j];
    }
    acc += d * d;
  }
  return acc;
}

std::vector<size_t> KdTree::NearestNeighbors(const std::vector<double>& query,
                                             size_t k) const {
  assert(query.size() == dim());
  std::vector<size_t> out;
  NearestNeighbors(query.data(), k, &ThreadLocalTraversalScratch(), &out);
  return out;
}

void KdTree::NearestNeighbors(const double* query, size_t k,
                              TraversalScratch* scratch,
                              std::vector<size_t>* out) const {
  out->clear();
  k = std::min(k, size());
  if (k == 0) return;
  // Max-heap of (distance^2, index), capped at k. Iterative DFS visiting
  // the nearer child first, exactly like the old recursion: the far child
  // sits on the stack and is bound-checked against the heap state at its
  // pop, which is the state after the near subtree completed.
  auto& heap = scratch->heap;
  auto& stack = scratch->stack;
  heap.clear();
  stack.clear();
  stack.push_back(0);
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    double bound = MinSqDist(id, query);
    if (heap.size() == k && bound >= heap.front().first) continue;
    int32_t left = node_left_[static_cast<size_t>(id)];
    if (left < 0) {
      size_t begin = node_begin_[static_cast<size_t>(id)];
      size_t end = node_end_[static_cast<size_t>(id)];
      for (size_t i = begin; i < end; ++i) {
        size_t idx = order_[i];
        const double* row = points_.RowPtr(i);
        double d2 = 0.0;
        for (size_t j = 0; j < dim_; ++j) {
          double d = row[j] - query[j];
          d2 += d * d;
        }
        if (heap.size() < k) {
          heap.emplace_back(d2, idx);
          std::push_heap(heap.begin(), heap.end());
        } else if (d2 < heap.front().first) {
          std::pop_heap(heap.begin(), heap.end());
          heap.back() = {d2, idx};
          std::push_heap(heap.begin(), heap.end());
        }
      }
      continue;
    }
    int32_t right = node_right_[static_cast<size_t>(id)];
    double dl = MinSqDist(left, query);
    double dr = MinSqDist(right, query);
    if (dl <= dr) {
      stack.push_back(right);
      stack.push_back(left);
    } else {
      stack.push_back(left);
      stack.push_back(right);
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  out->reserve(heap.size());
  for (const auto& [dist, idx] : heap) out->push_back(idx);
}

double KdTree::GaussianKernelSum(const std::vector<double>& query,
                                 const std::vector<double>& inv_bandwidth,
                                 double atol) const {
  assert(query.size() == dim());
  assert(inv_bandwidth.size() == dim());
  return GaussianKernelSum(query.data(), inv_bandwidth.data(), atol,
                           &ThreadLocalTraversalScratch());
}

double KdTree::LeafKernelSum(int32_t id, const double* query,
                             const double* inv_bandwidth) const {
  return LeafPairwiseKernelSum(points_, node_begin_[static_cast<size_t>(id)],
                               node_end_[static_cast<size_t>(id)], dim_,
                               query, inv_bandwidth);
}

double KdTree::GaussianKernelSum(const double* query,
                                 const double* inv_bandwidth, double atol,
                                 TraversalScratch* scratch) const {
  // Iterative post-order stack machine emulating the reference recursion.
  // A non-negative stack entry means "evaluate this node"; ~id is the
  // combine marker pushed under an internal node's children. When it pops,
  // both child sums are on the value stack and are added in the same
  // left + right association the recursion used, keeping the result
  // bitwise identical for every pruning pattern.
  //
  // The atol > 0 mode decides approximation from squared distances alone
  // (see header): descended interior nodes cost zero exp() calls, which is
  // the bulk of the flat traversal's speedup over the PR-1 path.
  auto& stack = scratch->stack;
  auto& values = scratch->values;
  stack.clear();
  values.clear();
  stack.push_back(0);
  const bool approximate = atol > 0.0;
  // Beyond far2 the max kernel value is below atol, so the whole node may
  // be approximated regardless of its spread.
  const double far2 = approximate ? -2.0 * std::log(atol) : 0.0;
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    if (id < 0) {
      double right = values.back();
      values.pop_back();
      double left = values.back();
      values.pop_back();
      values.push_back(left + right);
      continue;
    }
    size_t begin = node_begin_[static_cast<size_t>(id)];
    size_t end = node_end_[static_cast<size_t>(id)];
    double count = static_cast<double>(end - begin);

    if (approximate) {
      double dmin2, dmax2;
      MinMaxScaledSqDist(id, query, inv_bandwidth, &dmin2, &dmax2);
      // spread = kmax - kmin = kmax (1 - e^{-(dmax2-dmin2)/2})
      //        <= min((dmax2 - dmin2) / 2, kmax),
      // so either test proves spread <= atol without evaluating a kernel.
      // The approximate value, count * sqrt(kmax * kmin) (the geometric
      // mean, one exp), lies inside [kmin, kmax] and therefore errs at
      // most `spread` <= atol per point; far nodes underflow to exactly 0.
      if (dmax2 - dmin2 <= 2.0 * atol || dmin2 >= far2) {
        values.push_back(count * std::exp(-0.25 * (dmin2 + dmax2)));
        continue;
      }
    } else {
      double dmin2 = MinScaledSqDist(id, query, inv_bandwidth);
      double kmax = std::exp(-0.5 * dmin2);
      if (kmax * count < 1e-300) {  // Entire node is negligible.
        values.push_back(0.0);
        continue;
      }
    }
    int32_t left = node_left_[static_cast<size_t>(id)];
    if (left < 0) {
      values.push_back(LeafKernelSum(id, query, inv_bandwidth));
      continue;
    }
    stack.push_back(~id);  // combine after both children
    stack.push_back(node_right_[static_cast<size_t>(id)]);
    stack.push_back(left);
  }
  return values.back();
}

double KdTree::GaussianKernelSumRecursive(
    const std::vector<double>& query, const std::vector<double>& inv_bandwidth,
    double atol) const {
  assert(query.size() == dim());
  assert(inv_bandwidth.size() == dim());
  return KernelSumRecurse(0, query.data(), inv_bandwidth.data(), atol);
}

double KdTree::KernelSumRecurse(int32_t node_id, const double* query,
                                const double* inv_bandwidth,
                                double atol) const {
  size_t begin = node_begin_[static_cast<size_t>(node_id)];
  size_t end = node_end_[static_cast<size_t>(node_id)];
  double count = static_cast<double>(end - begin);

  if (atol > 0.0) {
    double dmin2, dmax2;
    MinMaxScaledSqDist(node_id, query, inv_bandwidth, &dmin2, &dmax2);
    double far2 = -2.0 * std::log(atol);
    if (dmax2 - dmin2 <= 2.0 * atol || dmin2 >= far2) {
      return count * std::exp(-0.25 * (dmin2 + dmax2));
    }
  } else {
    double dmin2 = MinScaledSqDist(node_id, query, inv_bandwidth);
    double kmax = std::exp(-0.5 * dmin2);
    if (kmax * count < 1e-300) return 0.0;  // Entire node is negligible.
  }
  int32_t left = node_left_[static_cast<size_t>(node_id)];
  if (left < 0) return LeafKernelSum(node_id, query, inv_bandwidth);
  return KernelSumRecurse(left, query, inv_bandwidth, atol) +
         KernelSumRecurse(node_right_[static_cast<size_t>(node_id)], query,
                          inv_bandwidth, atol);
}

void KdTree::BuildScaledBounds(const std::vector<double>& inv_bandwidth,
                               std::vector<double>* out) const {
  assert(inv_bandwidth.size() == dim_);
  size_t nodes = node_begin_.size();
  out->resize(2 * nodes * dim_);
  for (size_t i = 0; i < nodes; ++i) {
    const double* lo = box_lo_.data() + i * dim_;
    const double* hi = box_hi_.data() + i * dim_;
    double* dst = out->data() + 2 * i * dim_;
    for (size_t j = 0; j < dim_; ++j) {
      dst[j] = lo[j] * inv_bandwidth[j];
      dst[dim_ + j] = hi[j] * inv_bandwidth[j];
    }
  }
}

int KdTree::ClassifyKernelSum(const double* query, const double* inv_bandwidth,
                              const std::vector<double>& scaled_bounds,
                              double threshold, double eps_rel, double eps_abs,
                              TraversalScratch* scratch) const {
  // Interval refinement. [total_lo, total_hi] brackets every value the
  // kernel-sum oracle can return for this query: leaf contributions settle
  // exactly (the same LeafKernelSum the oracle calls), and an unrefined
  // interior node contributes [count * kmin, count * kmax], which contains
  // both its true subtree sum and the atol-mode geometric-mean settle
  // (count * sqrt(kmin * kmax)). Each refinement step replaces one
  // frontier node's interval with its children's (or its exact leaf sum),
  // so the interval narrows monotonically; the query is classified the
  // moment the slack-inflated interval clears the threshold — for clearly
  // dense or clearly empty neighbourhoods that happens a few interior
  // levels deep, with zero leaf scans. The slacks absorb float
  // accumulation error plus the oracle's atol settling error (the caller
  // sizes them; see KernelDensity::ClassifyBelow).
  assert(scaled_bounds.size() == 2 * node_begin_.size() * dim_);
  auto& stack = scratch->stack;
  auto& values = scratch->values;
  auto& qs = scratch->scaled_query;
  stack.clear();
  values.clear();
  qs.resize(dim_);
  for (size_t j = 0; j < dim_; ++j) qs[j] = query[j] * inv_bandwidth[j];

  // Leaf-first probe: every node contributes nonnegatively to the
  // oracle's sum, so when the query's own leaf alone carries enough exact
  // kernel mass to clear the slack-inflated threshold, "not below" is
  // provable from one split-guided walk plus one leaf scan — no interval
  // bookkeeping at all. Against a calibrated (low-quantile) floor this is
  // the overwhelmingly common case for in-distribution traffic, and it
  // reuses the identical LeafKernelSum the oracle computes, so the slack
  // terms cover the same settle/accumulation error they cover below. A
  // failed probe costs one extra leaf scan on the way into the interval
  // refinement, which near-threshold and outlying queries pay anyway.
  {
    int32_t id = 0;
    while (node_left_[static_cast<size_t>(id)] >= 0) {
      int32_t l = node_left_[static_cast<size_t>(id)];
      int32_t r = node_right_[static_cast<size_t>(id)];
      double near_l = 0.0;
      double near_r = 0.0;
      const double* box_l =
          scaled_bounds.data() + 2 * static_cast<size_t>(l) * dim_;
      const double* box_r =
          scaled_bounds.data() + 2 * static_cast<size_t>(r) * dim_;
      for (size_t j = 0; j < dim_; ++j) {
        double dl = std::max(
            std::max(box_l[j] - qs[j], qs[j] - box_l[dim_ + j]), 0.0);
        double dr = std::max(
            std::max(box_r[j] - qs[j], qs[j] - box_r[dim_ + j]), 0.0);
        near_l += dl * dl;
        near_r += dr * dr;
      }
      id = near_l <= near_r ? l : r;
    }
    double s = LeafKernelSum(id, query, inv_bandwidth);
    if (s * (1.0 - eps_rel) - eps_abs >= threshold) return 1;
  }

  double root_count = static_cast<double>(node_end_[0] - node_begin_[0]);
  double total_lo, total_hi;
  KdNodeBounds(scaled_bounds.data(), dim_, qs.data(), root_count, &total_lo,
               &total_hi);
  stack.push_back(0);
  values.push_back(total_lo);
  values.push_back(total_hi);
  int budget = kClassifyNodeBudget;
  while (true) {
    if (total_hi * (1.0 + eps_rel) + eps_abs < threshold) return -1;
    if (total_lo * (1.0 - eps_rel) - eps_abs >= threshold) return 1;
    if (stack.empty() || --budget < 0) return 0;
    int32_t id = stack.back();
    stack.pop_back();
    double node_hi = values.back();
    values.pop_back();
    double node_lo = values.back();
    values.pop_back();
    int32_t left = node_left_[static_cast<size_t>(id)];
    if (left < 0) {
      double s = LeafKernelSum(id, query, inv_bandwidth);
      total_lo += s - node_lo;
      total_hi += s - node_hi;
      continue;
    }
    int32_t right = node_right_[static_cast<size_t>(id)];
    double l1, u1, l2, u2;
    KdNodeBounds(scaled_bounds.data() + 2 * static_cast<size_t>(left) * dim_,
                 dim_, qs.data(),
                 static_cast<double>(node_end_[static_cast<size_t>(left)] -
                                     node_begin_[static_cast<size_t>(left)]),
                 &l1, &u1);
    KdNodeBounds(scaled_bounds.data() + 2 * static_cast<size_t>(right) * dim_,
                 dim_, qs.data(),
                 static_cast<double>(node_end_[static_cast<size_t>(right)] -
                                     node_begin_[static_cast<size_t>(right)]),
                 &l2, &u2);
    total_lo += (l1 + l2) - node_lo;
    total_hi += (u1 + u2) - node_hi;
    // Refine the child with the larger upper bound (the nearer, heavier
    // one) first — it owns most of the remaining interval width.
    if (u1 >= u2) {
      stack.push_back(right);
      values.push_back(l2);
      values.push_back(u2);
      stack.push_back(left);
      values.push_back(l1);
      values.push_back(u1);
    } else {
      stack.push_back(left);
      values.push_back(l1);
      values.push_back(u1);
      stack.push_back(right);
      values.push_back(l2);
      values.push_back(u2);
    }
  }
}

void KdTree::SerializeTo(BinaryWriter* w) const {
  tree_internal::SerializeFlatTreeCommon(points_, order_, node_begin_,
                                         node_end_, node_left_, node_right_,
                                         w);
  w->WriteDoubleVector(box_lo_);
  w->WriteDoubleVector(box_hi_);
}

Result<KdTree> KdTree::DeserializeFrom(BinaryReader* r) {
  // The shared skeleton (points, order, node arrays) is read and
  // structurally validated once for both tree backends (kde/tree_io.h).
  Result<tree_internal::FlatTreeCommon> common =
      tree_internal::DeserializeFlatTreeCommon(r, "KdTree");
  if (!common.ok()) return common.status();
  KdTree tree;
  tree.points_ = std::move(common.value().points);
  tree.dim_ = tree.points_.cols();
  tree.order_ = std::move(common.value().order);
  tree.node_begin_ = std::move(common.value().node_begin);
  tree.node_end_ = std::move(common.value().node_end);
  tree.node_left_ = std::move(common.value().node_left);
  tree.node_right_ = std::move(common.value().node_right);
  Result<std::vector<double>> lo = r->ReadDoubleVector();
  if (!lo.ok()) return lo.status();
  tree.box_lo_ = std::move(lo).value();
  Result<std::vector<double>> hi = r->ReadDoubleVector();
  if (!hi.ok()) return hi.status();
  tree.box_hi_ = std::move(hi).value();

  // Backend-specific geometry: one packed box per node.
  size_t nodes = tree.node_begin_.size();
  if (tree.box_lo_.size() != nodes * tree.dim_ ||
      tree.box_hi_.size() != nodes * tree.dim_) {
    return Status::DataLoss("KdTree payload has inconsistent box arrays");
  }
  tree.root_box_.lo.assign(tree.box_lo_.begin(),
                           tree.box_lo_.begin() + tree.dim_);
  tree.root_box_.hi.assign(tree.box_hi_.begin(),
                           tree.box_hi_.begin() + tree.dim_);
  return tree;
}

}  // namespace fairdrift
