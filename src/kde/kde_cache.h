// Cross-trial cache of fitted KernelDensity estimators.
//
// The pipeline refits KDEs on identical data over and over: CONFAIR's
// alpha tuning re-derives the (group x label) profile once per grid
// candidate, every bench method column re-splits with the same seed, and
// repeated trials share cells. Fitting is deterministic, so a fit is fully
// determined by (data fingerprint, KdeOptions) — this cache memoizes it.
//
// Keying: a 128-bit FNV-1a fingerprint of the matrix contents plus its
// shape, and the option fields that affect the fit. Entries are immutable
// shared_ptr<const KernelDensity>, safe to evaluate concurrently from any
// number of threads. Bounded LRU keeps memory in check; hit/miss/eviction
// counters feed the bench summaries (BENCH_kde.json).

#ifndef FAIRDRIFT_KDE_KDE_CACHE_H_
#define FAIRDRIFT_KDE_KDE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "kde/kde.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// 128-bit content fingerprint of a matrix (two independent FNV-1a streams
/// over the raw double bits, plus the shape). Collisions across distinct
/// cell matrices are cryptographically unlikely at this width for the
/// cache's working-set sizes.
struct KdeDataFingerprint {
  uint64_t h1 = 0;
  uint64_t h2 = 0;
  size_t rows = 0;
  size_t cols = 0;

  bool operator<(const KdeDataFingerprint& o) const;
  bool operator==(const KdeDataFingerprint& o) const;
};

/// Fingerprints the rows of `data`. O(rows * cols), far below a fit.
KdeDataFingerprint FingerprintMatrix(const Matrix& data);

/// Memo namespaces for KdeCacheHint::space. Each call-site family that
/// derives matrices from a Dataset must use its own space so slot ids
/// never collide across families (e.g. the density filter's cell 0 vs a
/// whole-dataset view) — a collision would alias two different matrices'
/// fingerprints under one memo key.
inline constexpr uint64_t kKdeHintSpaceDensityFilterCell = 1;
inline constexpr uint64_t kKdeHintSpaceFullDataset = 2;

/// O(1) lookup hint: callers that derive `data` from a Dataset pass the
/// dataset's version tag plus a (space, slot) pair identifying the
/// derived view (e.g. space = density-filter cells, slot = cell index).
/// The cache memoizes the content fingerprint under
/// (dataset_version, space, slot), so repeated lookups from an unchanged
/// dataset skip the O(nd) rehash — while the cache key itself stays the
/// *content* fingerprint, preserving hits across re-splits and re-built
/// datasets with identical contents.
struct KdeCacheHint {
  uint64_t dataset_version = 0;  ///< 0 = no hint (always rehash)
  uint64_t slot = 0;             ///< caller-chosen sub-view id
  uint64_t space = 0;            ///< call-site namespace (see constants)
};

/// Thread-safe bounded LRU cache of fitted estimators. Resident memory is
/// bounded by approximate bytes (long-lived serving processes cache
/// GB-scale cells; entry counts say nothing about footprint); the entry
/// capacity remains as a secondary bound.
class KdeCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;      ///< each miss is one KernelDensity::Fit call
    uint64_t evictions = 0;
    size_t entries = 0;
    /// Approximate bytes held by the cached estimators.
    size_t resident_bytes = 0;
    /// (version, slot) memo hits: lookups that skipped the O(nd) rehash.
    uint64_t fingerprint_memo_hits = 0;
    uint64_t fingerprint_memo_misses = 0;
    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Default byte bound of the global cache.
  static constexpr size_t kDefaultMaxBytes = size_t{256} << 20;  // 256 MiB

  explicit KdeCache(size_t capacity = 256, size_t max_bytes = kDefaultMaxBytes)
      : capacity_(capacity), max_bytes_(max_bytes) {}

  /// Returns the cached estimator for (data, options), fitting and
  /// inserting on a miss. The fit itself runs outside the cache lock, so
  /// concurrent misses on *different* data never serialize (two racing
  /// misses on the same key both fit; the results are identical and the
  /// first insert wins). A non-zero `hint` resolves the content
  /// fingerprint through the O(1) (version, slot) memo when possible.
  Result<std::shared_ptr<const KernelDensity>> FitOrGet(
      const Matrix& data, const KdeOptions& options,
      const KdeCacheHint& hint = {});

  /// Drops every entry (counters keep accumulating; see ResetStats).
  void Clear();

  /// Zeroes the hit/miss/eviction counters.
  void ResetStats();

  Stats stats() const;

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity);

  size_t max_bytes() const { return max_bytes_; }
  void set_max_bytes(size_t max_bytes);

 private:
  struct Key {
    KdeDataFingerprint data;
    int bandwidth_rule = 0;
    double atol = 0.0;
    size_t leaf_size = 0;
    int backend = 0;

    bool operator<(const Key& o) const;
  };

  struct Entry {
    std::shared_ptr<const KernelDensity> kde;
    size_t bytes = 0;                  // ApproxMemoryBytes at insertion
    std::list<Key>::iterator lru_pos;  // position in lru_ (front = hottest)
  };

  /// Bound on the (version, slot) fingerprint memo. Versions are
  /// process-unique and never reused, so stale entries are merely dead
  /// weight; the memo is dropped wholesale when it outgrows this.
  static constexpr size_t kFingerprintMemoCapacity = 1 << 16;

  static Key MakeKey(const KdeDataFingerprint& fp, const KdeOptions& options);
  KdeDataFingerprint ResolveFingerprint(const Matrix& data,
                                        const KdeCacheHint& hint);
  void EvictIfOverBoundsLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  size_t max_bytes_;
  size_t resident_bytes_ = 0;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, KdeDataFingerprint>
      fingerprint_memo_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t fingerprint_memo_hits_ = 0;
  uint64_t fingerprint_memo_misses_ = 0;
};

/// The process-wide cache used by DensityRanking (and therefore the
/// density filter and every profiling pass) when
/// KdeOptions::use_fit_cache is set.
KdeCache& GlobalKdeCache();

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_KDE_CACHE_H_
