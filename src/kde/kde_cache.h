// Cross-trial cache of fitted KernelDensity estimators.
//
// The pipeline refits KDEs on identical data over and over: CONFAIR's
// alpha tuning re-derives the (group x label) profile once per grid
// candidate, every bench method column re-splits with the same seed, and
// repeated trials share cells. Fitting is deterministic, so a fit is fully
// determined by (data fingerprint, KdeOptions) — this cache memoizes it.
//
// Keying: a 128-bit FNV-1a fingerprint of the matrix contents plus its
// shape, and the option fields that affect the fit. Entries are immutable
// shared_ptr<const KernelDensity>, safe to evaluate concurrently from any
// number of threads. Bounded LRU keeps memory in check; hit/miss/eviction
// counters feed the bench summaries (BENCH_kde.json).

#ifndef FAIRDRIFT_KDE_KDE_CACHE_H_
#define FAIRDRIFT_KDE_KDE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "kde/kde.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// 128-bit content fingerprint of a matrix (two independent FNV-1a streams
/// over the raw double bits, plus the shape). Collisions across distinct
/// cell matrices are cryptographically unlikely at this width for the
/// cache's working-set sizes.
struct KdeDataFingerprint {
  uint64_t h1 = 0;
  uint64_t h2 = 0;
  size_t rows = 0;
  size_t cols = 0;

  bool operator<(const KdeDataFingerprint& o) const;
  bool operator==(const KdeDataFingerprint& o) const;
};

/// Fingerprints the rows of `data`. O(rows * cols), far below a fit.
KdeDataFingerprint FingerprintMatrix(const Matrix& data);

/// Thread-safe bounded LRU cache of fitted estimators.
class KdeCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;      ///< each miss is one KernelDensity::Fit call
    uint64_t evictions = 0;
    size_t entries = 0;
    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  explicit KdeCache(size_t capacity = 256) : capacity_(capacity) {}

  /// Returns the cached estimator for (data, options), fitting and
  /// inserting on a miss. The fit itself runs outside the cache lock, so
  /// concurrent misses on *different* data never serialize (two racing
  /// misses on the same key both fit; the results are identical and the
  /// first insert wins).
  Result<std::shared_ptr<const KernelDensity>> FitOrGet(
      const Matrix& data, const KdeOptions& options);

  /// Drops every entry (counters keep accumulating; see ResetStats).
  void Clear();

  /// Zeroes the hit/miss/eviction counters.
  void ResetStats();

  Stats stats() const;

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity);

 private:
  struct Key {
    KdeDataFingerprint data;
    int bandwidth_rule = 0;
    double atol = 0.0;
    size_t leaf_size = 0;
    int backend = 0;

    bool operator<(const Key& o) const;
  };

  struct Entry {
    std::shared_ptr<const KernelDensity> kde;
    std::list<Key>::iterator lru_pos;  // position in lru_ (front = hottest)
  };

  static Key MakeKey(const KdeDataFingerprint& fp, const KdeOptions& options);
  void EvictIfOverCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// The process-wide cache used by DensityRanking (and therefore the
/// density filter and every profiling pass) when
/// KdeOptions::use_fit_cache is set.
KdeCache& GlobalKdeCache();

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_KDE_CACHE_H_
