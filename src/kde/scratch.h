// Reusable per-thread traversal scratch for the flat KD/ball trees.
//
// The KDE hot path issues millions of independent tree queries; a heap
// allocation per query (recursion frames, per-query buffers) dominates
// once the kernel sums themselves are tree-pruned. Every iterative
// traversal (GaussianKernelSum, NearestNeighbors) borrows its stack, its
// value stack, and its kNN heap from a TraversalScratch instead. The
// vectors grow to the tree's depth on the first query and are then reused,
// so steady-state queries perform zero heap allocations.

#ifndef FAIRDRIFT_KDE_SCRATCH_H_
#define FAIRDRIFT_KDE_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fairdrift {

/// Node-visit budget of the bound-classification traversals
/// (ClassifyKernelSum on either tree backend): after this many refinement
/// steps an undecided query is handed to the exact oracle instead of
/// descending further, so classification costs at most a bounded prefix
/// of a full evaluation. Shared by both backends so the cutoff cannot
/// drift between them.
inline constexpr int kClassifyNodeBudget = 256;

/// Mutable workspace for one in-flight tree query. Not thread-safe: use
/// one instance per thread (ThreadLocalTraversalScratch() below, or a
/// caller-owned instance).
struct TraversalScratch {
  /// Control stack of node ids; negative entries are combine markers for
  /// the kernel-sum value stack (see KdTree::GaussianKernelSum).
  std::vector<int32_t> stack;
  /// Pending subtree sums, combined in the same association order as the
  /// reference recursion so results stay bitwise identical to it.
  std::vector<double> values;
  /// Max-heap of (squared distance, point index) for kNN queries.
  std::vector<std::pair<double, size_t>> heap;
  /// Bandwidth-scaled copy of the query point for the bound-classification
  /// traversals (ClassifyKernelSum), sized to the tree dimension.
  std::vector<double> scaled_query;
};

/// Per-thread scratch shared by the vector-convenience query entry points.
/// Pool workers are long-lived, so each worker pays the growth cost once.
inline TraversalScratch& ThreadLocalTraversalScratch() {
  thread_local TraversalScratch scratch;
  return scratch;
}

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_SCRATCH_H_
