// Shared leaf kernel scan for the flat KD/ball trees.
//
// Both trees store their points permuted into node-contiguous order, so a
// leaf's exact kernel sum is the same computation regardless of backend:
// a cache-linear sweep over rows [begin, end), consumed in quads so the
// exponentials run four-wide through NegExpQuad (AVX2 when the host has
// it, the two-wide pair kernel otherwise — bitwise identical either way),
// with a pair tail and a scalar tail. Kept in one place so the grouping
// and tail logic cannot drift between the trees.

#ifndef FAIRDRIFT_KDE_LEAF_SCAN_H_
#define FAIRDRIFT_KDE_LEAF_SCAN_H_

#include <cstddef>

#include "kde/negexp.h"
#include "linalg/matrix.h"

namespace fairdrift {

/// Sum over rows [begin, end) of `points` of
/// exp(-0.5 * ||(row - query) * inv_bandwidth||^2). The accumulation is
/// strictly sequential (quad, pair, and scalar results added in index
/// order), so the sum is deterministic and bitwise-shared between the
/// iterative traversals and the recursive oracles that both call it.
inline double LeafPairwiseKernelSum(const Matrix& points, size_t begin,
                                    size_t end, size_t dim,
                                    const double* query,
                                    const double* inv_bandwidth) {
  double acc = 0.0;
  size_t i = begin;
  double u[4];
  double e[4];
  for (; i + 3 < end; i += 4) {
    const double* row0 = points.RowPtr(i);
    const double* row1 = points.RowPtr(i + 1);
    const double* row2 = points.RowPtr(i + 2);
    const double* row3 = points.RowPtr(i + 3);
    u[0] = 0.0;
    u[1] = 0.0;
    u[2] = 0.0;
    u[3] = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      double d0 = (row0[j] - query[j]) * inv_bandwidth[j];
      double d1 = (row1[j] - query[j]) * inv_bandwidth[j];
      double d2 = (row2[j] - query[j]) * inv_bandwidth[j];
      double d3 = (row3[j] - query[j]) * inv_bandwidth[j];
      u[0] += d0 * d0;
      u[1] += d1 * d1;
      u[2] += d2 * d2;
      u[3] += d3 * d3;
    }
    u[0] *= -0.5;
    u[1] *= -0.5;
    u[2] *= -0.5;
    u[3] *= -0.5;
    NegExpQuad(u, e);
    acc += e[0];
    acc += e[1];
    acc += e[2];
    acc += e[3];
  }
  if (i + 1 < end) {
    const double* row0 = points.RowPtr(i);
    const double* row1 = points.RowPtr(i + 1);
    double u0 = 0.0;
    double u1 = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      double d0 = (row0[j] - query[j]) * inv_bandwidth[j];
      double d1 = (row1[j] - query[j]) * inv_bandwidth[j];
      u0 += d0 * d0;
      u1 += d1 * d1;
    }
    double e0, e1;
    NegExpPair(-0.5 * u0, -0.5 * u1, &e0, &e1);
    acc += e0;
    acc += e1;
    i += 2;
  }
  if (i < end) {
    const double* row = points.RowPtr(i);
    double u2 = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      double d = (row[j] - query[j]) * inv_bandwidth[j];
      u2 += d * d;
    }
    acc += NegExp(-0.5 * u2);
  }
  return acc;
}

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_LEAF_SCAN_H_
