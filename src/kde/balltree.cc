#include "kde/balltree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace fairdrift {

namespace {

double SqDist(const double* a, const double* b, size_t d) {
  double acc = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

Result<BallTree> BallTree::Build(const Matrix& points, size_t leaf_size) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("BallTree::Build: empty point set");
  }
  BallTree tree;
  tree.order_.resize(points.rows());
  std::iota(tree.order_.begin(), tree.order_.end(), size_t{0});
  tree.nodes_.reserve(2 * points.rows() / std::max<size_t>(leaf_size, 1) + 2);
  tree.BuildNode(points, 0, points.rows(), std::max<size_t>(leaf_size, 1));
  // Store the points permuted into node order so leaf scans (the KDE's
  // inner loop) sweep contiguous memory; order_ keeps the map back to the
  // caller's row ids. This is the only copy the build makes.
  tree.points_ = Matrix(points.rows(), points.cols());
  for (size_t i = 0; i < points.rows(); ++i) {
    const double* src = points.RowPtr(tree.order_[i]);
    std::copy(src, src + points.cols(), tree.points_.RowPtr(i));
  }
  return tree;
}

int BallTree::BuildNode(const Matrix& pts, size_t begin, size_t end,
                        size_t leaf_size) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  const size_t d = pts.cols();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    node.centroid.assign(d, 0.0);
    for (size_t i = begin; i < end; ++i) {
      const double* row = pts.RowPtr(order_[i]);
      for (size_t j = 0; j < d; ++j) node.centroid[j] += row[j];
    }
    const double count = static_cast<double>(end - begin);
    for (size_t j = 0; j < d; ++j) node.centroid[j] /= count;
    double r2 = 0.0;
    for (size_t i = begin; i < end; ++i) {
      r2 = std::max(r2, SqDist(pts.RowPtr(order_[i]),
                               node.centroid.data(), d));
    }
    node.radius = std::sqrt(r2);
  }

  if (end - begin <= leaf_size) return node_id;

  // Split at the median of the dimension with the widest spread.
  size_t split_dim = 0;
  double best_width = -1.0;
  for (size_t j = 0; j < d; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (size_t i = begin; i < end; ++i) {
      const double v = pts.At(order_[i], j);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_width) {
      best_width = hi - lo;
      split_dim = j;
    }
  }
  if (best_width <= 0.0) return node_id;  // All points identical: leaf.

  size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<ptrdiff_t>(begin),
                   order_.begin() + static_cast<ptrdiff_t>(mid),
                   order_.begin() + static_cast<ptrdiff_t>(end),
                   [&](size_t a, size_t b) {
                     return pts.At(a, split_dim) < pts.At(b, split_dim);
                   });

  int left = BuildNode(pts, begin, mid, leaf_size);
  int right = BuildNode(pts, mid, end, leaf_size);
  nodes_[static_cast<size_t>(node_id)].left = left;
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

std::vector<size_t> BallTree::NearestNeighbors(const std::vector<double>& query,
                                               size_t k) const {
  assert(query.size() == dim());
  k = std::min(k, size());
  std::vector<std::pair<double, size_t>> heap;
  heap.reserve(k + 1);
  KnnRecurse(0, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<size_t> out;
  out.reserve(heap.size());
  for (const auto& [dist, idx] : heap) out.push_back(idx);
  return out;
}

void BallTree::KnnRecurse(int node_id, const std::vector<double>& query,
                          size_t k,
                          std::vector<std::pair<double, size_t>>* heap) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  // Triangle-inequality bound: no point of the ball is closer than
  // dist(query, centroid) - radius.
  const double dc =
      std::sqrt(SqDist(query.data(), node.centroid.data(), query.size()));
  const double lower = std::max(0.0, dc - node.radius);
  if (heap->size() == k && !heap->empty() &&
      lower * lower >= heap->front().first) {
    return;
  }
  if (node.left < 0) {
    for (size_t i = node.begin; i < node.end; ++i) {
      const size_t idx = order_[i];
      const double d2 =
          SqDist(points_.RowPtr(i), query.data(), query.size());
      if (heap->size() < k) {
        heap->emplace_back(d2, idx);
        std::push_heap(heap->begin(), heap->end());
      } else if (d2 < heap->front().first) {
        std::pop_heap(heap->begin(), heap->end());
        heap->back() = {d2, idx};
        std::push_heap(heap->begin(), heap->end());
      }
    }
    return;
  }
  // Visit the child whose ball is nearer first.
  const Node& l = nodes_[static_cast<size_t>(node.left)];
  const Node& r = nodes_[static_cast<size_t>(node.right)];
  const double dl =
      std::sqrt(SqDist(query.data(), l.centroid.data(), query.size())) -
      l.radius;
  const double dr =
      std::sqrt(SqDist(query.data(), r.centroid.data(), query.size())) -
      r.radius;
  if (dl <= dr) {
    KnnRecurse(node.left, query, k, heap);
    KnnRecurse(node.right, query, k, heap);
  } else {
    KnnRecurse(node.right, query, k, heap);
    KnnRecurse(node.left, query, k, heap);
  }
}

double BallTree::GaussianKernelSum(const std::vector<double>& query,
                                   const std::vector<double>& inv_bandwidth,
                                   double atol) const {
  assert(query.size() == dim());
  assert(inv_bandwidth.size() == dim());
  double max_scale = 0.0;
  for (double s : inv_bandwidth) max_scale = std::max(max_scale, s);
  return KernelSumRecurse(0, query, inv_bandwidth, max_scale, atol);
}

double BallTree::KernelSumRecurse(int node_id,
                                  const std::vector<double>& query,
                                  const std::vector<double>& inv_bandwidth,
                                  double max_scale, double atol) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  const double count = static_cast<double>(node.end - node.begin);

  // Scaled distance to the centroid; every point of the ball lies within
  // max_scale * radius of it in the scaled metric.
  double dc2 = 0.0;
  for (size_t j = 0; j < query.size(); ++j) {
    const double d = (query[j] - node.centroid[j]) * inv_bandwidth[j];
    dc2 += d * d;
  }
  const double dc = std::sqrt(dc2);
  const double spread = max_scale * node.radius;
  const double dmin = std::max(0.0, dc - spread);
  const double kmax = std::exp(-0.5 * dmin * dmin);
  if (kmax * count < 1e-300) return 0.0;  // Entire node is negligible.

  if (atol > 0.0) {
    const double dmax = dc + spread;
    const double kmin = std::exp(-0.5 * dmax * dmax);
    if (kmax - kmin <= atol) {
      return count * 0.5 * (kmax + kmin);
    }
  }
  if (node.left < 0) {
    // Rows [begin, end) are stored contiguously (points_ is in node
    // order), so this sweep is cache-linear.
    double acc = 0.0;
    for (size_t i = node.begin; i < node.end; ++i) {
      const double* row = points_.RowPtr(i);
      double u2 = 0.0;
      for (size_t j = 0; j < query.size(); ++j) {
        const double d = (row[j] - query[j]) * inv_bandwidth[j];
        u2 += d * d;
      }
      acc += std::exp(-0.5 * u2);
    }
    return acc;
  }
  return KernelSumRecurse(node.left, query, inv_bandwidth, max_scale, atol) +
         KernelSumRecurse(node.right, query, inv_bandwidth, max_scale, atol);
}

}  // namespace fairdrift
