#include "kde/balltree.h"

#include "kde/leaf_scan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "kde/tree_io.h"
#include "util/binary_io.h"

namespace fairdrift {

namespace {

double SqDist(const double* a, const double* b, size_t d) {
  double acc = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

/// Kernel-sum bounds of one node from its scaled centroid + spread: by the
/// triangle inequality every one of the node's `count` points lies within
/// scaled distance [max(0, dc - spread), dc + spread] of the query, so its
/// kernel value lies in [exp(-0.5*dmax^2), exp(-0.5*dmin^2)].
inline void BallNodeBounds(const double* scaled_node, size_t dim,
                           const double* scaled_query, double count, double* l,
                           double* u) {
  const double dc = std::sqrt(SqDist(scaled_query, scaled_node, dim));
  const double spread = scaled_node[dim];
  const double dmin = std::max(0.0, dc - spread);
  const double dmax = dc + spread;
  double kmin, kmax;
  NegExpPair(-0.5 * dmax * dmax, -0.5 * dmin * dmin, &kmin, &kmax);
  *l = count * kmin;
  *u = count * kmax;
}

}  // namespace

Result<BallTree> BallTree::Build(const Matrix& points, size_t leaf_size) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("BallTree::Build: empty point set");
  }
  BallTree tree;
  tree.dim_ = points.cols();
  tree.order_.resize(points.rows());
  std::iota(tree.order_.begin(), tree.order_.end(), size_t{0});
  size_t node_hint = 2 * points.rows() / std::max<size_t>(leaf_size, 1) + 2;
  tree.node_begin_.reserve(node_hint);
  tree.node_end_.reserve(node_hint);
  tree.node_left_.reserve(node_hint);
  tree.node_right_.reserve(node_hint);
  tree.centroid_.reserve(node_hint * tree.dim_);
  tree.radius_.reserve(node_hint);
  tree.BuildNode(points, 0, points.rows(), std::max<size_t>(leaf_size, 1));
  // Store the points permuted into node order so leaf scans (the KDE's
  // inner loop) sweep contiguous memory; order_ keeps the map back to the
  // caller's row ids. This is the only copy the build makes.
  tree.points_ = Matrix(points.rows(), points.cols());
  for (size_t i = 0; i < points.rows(); ++i) {
    const double* src = points.RowPtr(tree.order_[i]);
    std::copy(src, src + points.cols(), tree.points_.RowPtr(i));
  }
  return tree;
}

int BallTree::BuildNode(const Matrix& pts, size_t begin, size_t end,
                        size_t leaf_size) {
  int node_id = static_cast<int>(node_begin_.size());
  const size_t d = pts.cols();
  node_begin_.push_back(begin);
  node_end_.push_back(end);
  node_left_.push_back(-1);
  node_right_.push_back(-1);
  size_t centroid_at = centroid_.size();
  centroid_.insert(centroid_.end(), d, 0.0);
  for (size_t i = begin; i < end; ++i) {
    const double* row = pts.RowPtr(order_[i]);
    for (size_t j = 0; j < d; ++j) centroid_[centroid_at + j] += row[j];
  }
  const double count = static_cast<double>(end - begin);
  for (size_t j = 0; j < d; ++j) centroid_[centroid_at + j] /= count;
  double r2 = 0.0;
  for (size_t i = begin; i < end; ++i) {
    r2 = std::max(r2, SqDist(pts.RowPtr(order_[i]),
                             centroid_.data() + centroid_at, d));
  }
  radius_.push_back(std::sqrt(r2));

  if (end - begin <= leaf_size) return node_id;

  // Split at the median of the dimension with the widest spread.
  size_t split_dim = 0;
  double best_width = -1.0;
  for (size_t j = 0; j < d; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (size_t i = begin; i < end; ++i) {
      const double v = pts.At(order_[i], j);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_width) {
      best_width = hi - lo;
      split_dim = j;
    }
  }
  if (best_width <= 0.0) return node_id;  // All points identical: leaf.

  size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<ptrdiff_t>(begin),
                   order_.begin() + static_cast<ptrdiff_t>(mid),
                   order_.begin() + static_cast<ptrdiff_t>(end),
                   [&](size_t a, size_t b) {
                     return pts.At(a, split_dim) < pts.At(b, split_dim);
                   });

  int left = BuildNode(pts, begin, mid, leaf_size);
  int right = BuildNode(pts, mid, end, leaf_size);
  node_left_[static_cast<size_t>(node_id)] = left;
  node_right_[static_cast<size_t>(node_id)] = right;
  return node_id;
}

std::vector<size_t> BallTree::NearestNeighbors(const std::vector<double>& query,
                                               size_t k) const {
  assert(query.size() == dim());
  std::vector<size_t> out;
  NearestNeighbors(query.data(), k, &ThreadLocalTraversalScratch(), &out);
  return out;
}

void BallTree::NearestNeighbors(const double* query, size_t k,
                                TraversalScratch* scratch,
                                std::vector<size_t>* out) const {
  out->clear();
  k = std::min(k, size());
  if (k == 0) return;
  auto& heap = scratch->heap;
  auto& stack = scratch->stack;
  heap.clear();
  stack.clear();
  stack.push_back(0);
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    // Triangle-inequality bound: no point of the ball is closer than
    // dist(query, centroid) - radius.
    const double dc = std::sqrt(
        SqDist(query, centroid_.data() + static_cast<size_t>(id) * dim_,
               dim_));
    const double lower = std::max(0.0, dc - radius_[static_cast<size_t>(id)]);
    if (heap.size() == k && lower * lower >= heap.front().first) continue;
    int32_t left = node_left_[static_cast<size_t>(id)];
    if (left < 0) {
      size_t begin = node_begin_[static_cast<size_t>(id)];
      size_t end = node_end_[static_cast<size_t>(id)];
      for (size_t i = begin; i < end; ++i) {
        const size_t idx = order_[i];
        const double d2 = SqDist(points_.RowPtr(i), query, dim_);
        if (heap.size() < k) {
          heap.emplace_back(d2, idx);
          std::push_heap(heap.begin(), heap.end());
        } else if (d2 < heap.front().first) {
          std::pop_heap(heap.begin(), heap.end());
          heap.back() = {d2, idx};
          std::push_heap(heap.begin(), heap.end());
        }
      }
      continue;
    }
    // Visit the child whose ball is nearer first (far child stays on the
    // stack and re-checks its bound against the then-current heap).
    int32_t right = node_right_[static_cast<size_t>(id)];
    const double dl =
        std::sqrt(SqDist(query,
                         centroid_.data() + static_cast<size_t>(left) * dim_,
                         dim_)) -
        radius_[static_cast<size_t>(left)];
    const double dr =
        std::sqrt(SqDist(query,
                         centroid_.data() + static_cast<size_t>(right) * dim_,
                         dim_)) -
        radius_[static_cast<size_t>(right)];
    if (dl <= dr) {
      stack.push_back(right);
      stack.push_back(left);
    } else {
      stack.push_back(left);
      stack.push_back(right);
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  out->reserve(heap.size());
  for (const auto& [dist, idx] : heap) out->push_back(idx);
}

double BallTree::GaussianKernelSum(const std::vector<double>& query,
                                   const std::vector<double>& inv_bandwidth,
                                   double atol) const {
  assert(query.size() == dim());
  assert(inv_bandwidth.size() == dim());
  return GaussianKernelSum(query.data(), inv_bandwidth.data(), atol,
                           &ThreadLocalTraversalScratch());
}

double BallTree::GaussianKernelSum(const double* query,
                                   const double* inv_bandwidth, double atol,
                                   TraversalScratch* scratch) const {
  double max_scale = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    max_scale = std::max(max_scale, inv_bandwidth[j]);
  }
  // Iterative post-order stack machine; see KdTree::GaussianKernelSum for
  // the combine-marker protocol that keeps the association order (and
  // therefore the bits) identical to the reference recursion, and for the
  // squared-distance approximation proof that makes descended interior
  // nodes exp()-free in the atol > 0 mode.
  auto& stack = scratch->stack;
  auto& values = scratch->values;
  stack.clear();
  values.clear();
  stack.push_back(0);
  const bool approximate = atol > 0.0;
  const double far2 = approximate ? -2.0 * std::log(atol) : 0.0;
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    if (id < 0) {
      double right = values.back();
      values.pop_back();
      double left = values.back();
      values.pop_back();
      values.push_back(left + right);
      continue;
    }
    size_t begin = node_begin_[static_cast<size_t>(id)];
    size_t end = node_end_[static_cast<size_t>(id)];
    const double count = static_cast<double>(end - begin);

    // Scaled distance to the centroid; every point of the ball lies within
    // max_scale * radius of it in the scaled metric.
    const double* centroid = centroid_.data() + static_cast<size_t>(id) * dim_;
    double dc2 = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      const double d = (query[j] - centroid[j]) * inv_bandwidth[j];
      dc2 += d * d;
    }
    const double dc = std::sqrt(dc2);
    const double spread = max_scale * radius_[static_cast<size_t>(id)];
    const double dmin = std::max(0.0, dc - spread);
    if (approximate) {
      const double dmax = dc + spread;
      const double dmin2 = dmin * dmin;
      const double dmax2 = dmax * dmax;
      if (dmax2 - dmin2 <= 2.0 * atol || dmin2 >= far2) {
        values.push_back(count * std::exp(-0.25 * (dmin2 + dmax2)));
        continue;
      }
    } else {
      const double kmax = std::exp(-0.5 * dmin * dmin);
      if (kmax * count < 1e-300) {  // Entire node is negligible.
        values.push_back(0.0);
        continue;
      }
    }
    int32_t left = node_left_[static_cast<size_t>(id)];
    if (left < 0) {
      values.push_back(LeafKernelSum(id, query, inv_bandwidth));
      continue;
    }
    stack.push_back(~id);  // combine after both children
    stack.push_back(node_right_[static_cast<size_t>(id)]);
    stack.push_back(left);
  }
  return values.back();
}

double BallTree::LeafKernelSum(int32_t id, const double* query,
                               const double* inv_bandwidth) const {
  return LeafPairwiseKernelSum(points_, node_begin_[static_cast<size_t>(id)],
                               node_end_[static_cast<size_t>(id)], dim_,
                               query, inv_bandwidth);
}

double BallTree::GaussianKernelSumRecursive(
    const std::vector<double>& query, const std::vector<double>& inv_bandwidth,
    double atol) const {
  assert(query.size() == dim());
  assert(inv_bandwidth.size() == dim());
  double max_scale = 0.0;
  for (double s : inv_bandwidth) max_scale = std::max(max_scale, s);
  return KernelSumRecurse(0, query.data(), inv_bandwidth.data(), max_scale,
                          atol);
}

double BallTree::KernelSumRecurse(int32_t node_id, const double* query,
                                  const double* inv_bandwidth,
                                  double max_scale, double atol) const {
  size_t begin = node_begin_[static_cast<size_t>(node_id)];
  size_t end = node_end_[static_cast<size_t>(node_id)];
  const double count = static_cast<double>(end - begin);

  const double* centroid =
      centroid_.data() + static_cast<size_t>(node_id) * dim_;
  double dc2 = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    const double d = (query[j] - centroid[j]) * inv_bandwidth[j];
    dc2 += d * d;
  }
  const double dc = std::sqrt(dc2);
  const double spread = max_scale * radius_[static_cast<size_t>(node_id)];
  const double dmin = std::max(0.0, dc - spread);
  if (atol > 0.0) {
    const double dmax = dc + spread;
    const double dmin2 = dmin * dmin;
    const double dmax2 = dmax * dmax;
    const double far2 = -2.0 * std::log(atol);
    if (dmax2 - dmin2 <= 2.0 * atol || dmin2 >= far2) {
      return count * std::exp(-0.25 * (dmin2 + dmax2));
    }
  } else {
    const double kmax = std::exp(-0.5 * dmin * dmin);
    if (kmax * count < 1e-300) return 0.0;  // Entire node is negligible.
  }
  int32_t left = node_left_[static_cast<size_t>(node_id)];
  if (left < 0) return LeafKernelSum(node_id, query, inv_bandwidth);
  return KernelSumRecurse(left, query, inv_bandwidth, max_scale, atol) +
         KernelSumRecurse(node_right_[static_cast<size_t>(node_id)], query,
                          inv_bandwidth, max_scale, atol);
}

void BallTree::BuildScaledBounds(const std::vector<double>& inv_bandwidth,
                                 std::vector<double>* out) const {
  assert(inv_bandwidth.size() == dim_);
  double max_scale = 0.0;
  for (double s : inv_bandwidth) max_scale = std::max(max_scale, s);
  size_t nodes = node_begin_.size();
  size_t stride = dim_ + 1;
  out->resize(nodes * stride);
  for (size_t i = 0; i < nodes; ++i) {
    const double* c = centroid_.data() + i * dim_;
    double* dst = out->data() + i * stride;
    for (size_t j = 0; j < dim_; ++j) dst[j] = c[j] * inv_bandwidth[j];
    dst[dim_] = radius_[i] * max_scale;
  }
}

int BallTree::ClassifyKernelSum(const double* query,
                                const double* inv_bandwidth,
                                const std::vector<double>& scaled_bounds,
                                double threshold, double eps_rel,
                                double eps_abs,
                                TraversalScratch* scratch) const {
  // Interval refinement; see KdTree::ClassifyKernelSum for the bracketing
  // argument and the slack contract — only the per-node bound geometry
  // (BallNodeBounds) differs. Note the scaled centroid distance here is
  // sqrt(sum((q*ih - c*ih)^2)) while the kernel-sum oracle computes
  // sqrt(sum(((q - c)*ih)^2)); the two differ by float rounding only,
  // which the caller's eps_rel covers.
  assert(scaled_bounds.size() == node_begin_.size() * (dim_ + 1));
  auto& stack = scratch->stack;
  auto& values = scratch->values;
  auto& qs = scratch->scaled_query;
  stack.clear();
  values.clear();
  qs.resize(dim_);
  for (size_t j = 0; j < dim_; ++j) qs[j] = query[j] * inv_bandwidth[j];

  const size_t stride = dim_ + 1;

  // Leaf-first probe (see KdTree::ClassifyKernelSum): walk to the query's
  // leaf — here guided by scaled centroid distance — and return "not
  // below" when that leaf's exact kernel mass alone clears the
  // slack-inflated threshold; every other node contributes nonnegatively
  // to the oracle's sum.
  {
    int32_t id = 0;
    while (node_left_[static_cast<size_t>(id)] >= 0) {
      int32_t l = node_left_[static_cast<size_t>(id)];
      int32_t r = node_right_[static_cast<size_t>(id)];
      const double* cl =
          scaled_bounds.data() + static_cast<size_t>(l) * stride;
      const double* cr =
          scaled_bounds.data() + static_cast<size_t>(r) * stride;
      double dl = 0.0;
      double dr = 0.0;
      for (size_t j = 0; j < dim_; ++j) {
        double al = qs[j] - cl[j];
        double ar = qs[j] - cr[j];
        dl += al * al;
        dr += ar * ar;
      }
      id = dl <= dr ? l : r;
    }
    double s = LeafKernelSum(id, query, inv_bandwidth);
    if (s * (1.0 - eps_rel) - eps_abs >= threshold) return 1;
  }

  double root_count = static_cast<double>(node_end_[0] - node_begin_[0]);
  double total_lo, total_hi;
  BallNodeBounds(scaled_bounds.data(), dim_, qs.data(), root_count, &total_lo,
                 &total_hi);
  stack.push_back(0);
  values.push_back(total_lo);
  values.push_back(total_hi);
  int budget = kClassifyNodeBudget;
  while (true) {
    if (total_hi * (1.0 + eps_rel) + eps_abs < threshold) return -1;
    if (total_lo * (1.0 - eps_rel) - eps_abs >= threshold) return 1;
    if (stack.empty() || --budget < 0) return 0;
    int32_t id = stack.back();
    stack.pop_back();
    double node_hi = values.back();
    values.pop_back();
    double node_lo = values.back();
    values.pop_back();
    int32_t left = node_left_[static_cast<size_t>(id)];
    if (left < 0) {
      double s = LeafKernelSum(id, query, inv_bandwidth);
      total_lo += s - node_lo;
      total_hi += s - node_hi;
      continue;
    }
    int32_t right = node_right_[static_cast<size_t>(id)];
    double l1, u1, l2, u2;
    BallNodeBounds(scaled_bounds.data() + static_cast<size_t>(left) * stride,
                   dim_, qs.data(),
                   static_cast<double>(node_end_[static_cast<size_t>(left)] -
                                       node_begin_[static_cast<size_t>(left)]),
                   &l1, &u1);
    BallNodeBounds(scaled_bounds.data() + static_cast<size_t>(right) * stride,
                   dim_, qs.data(),
                   static_cast<double>(node_end_[static_cast<size_t>(right)] -
                                       node_begin_[static_cast<size_t>(right)]),
                   &l2, &u2);
    total_lo += (l1 + l2) - node_lo;
    total_hi += (u1 + u2) - node_hi;
    // Refine the child with the larger upper bound (the nearer, heavier
    // one) first — it owns most of the remaining interval width.
    if (u1 >= u2) {
      stack.push_back(right);
      values.push_back(l2);
      values.push_back(u2);
      stack.push_back(left);
      values.push_back(l1);
      values.push_back(u1);
    } else {
      stack.push_back(left);
      values.push_back(l1);
      values.push_back(u1);
      stack.push_back(right);
      values.push_back(l2);
      values.push_back(u2);
    }
  }
}

void BallTree::SerializeTo(BinaryWriter* w) const {
  tree_internal::SerializeFlatTreeCommon(points_, order_, node_begin_,
                                         node_end_, node_left_, node_right_,
                                         w);
  w->WriteDoubleVector(centroid_);
  w->WriteDoubleVector(radius_);
}

Result<BallTree> BallTree::DeserializeFrom(BinaryReader* r) {
  // The shared skeleton (points, order, node arrays) is read and
  // structurally validated once for both tree backends (kde/tree_io.h).
  Result<tree_internal::FlatTreeCommon> common =
      tree_internal::DeserializeFlatTreeCommon(r, "BallTree");
  if (!common.ok()) return common.status();
  BallTree tree;
  tree.points_ = std::move(common.value().points);
  tree.dim_ = tree.points_.cols();
  tree.order_ = std::move(common.value().order);
  tree.node_begin_ = std::move(common.value().node_begin);
  tree.node_end_ = std::move(common.value().node_end);
  tree.node_left_ = std::move(common.value().node_left);
  tree.node_right_ = std::move(common.value().node_right);
  Result<std::vector<double>> centroid = r->ReadDoubleVector();
  if (!centroid.ok()) return centroid.status();
  tree.centroid_ = std::move(centroid).value();
  Result<std::vector<double>> radius = r->ReadDoubleVector();
  if (!radius.ok()) return radius.status();
  tree.radius_ = std::move(radius).value();

  // Backend-specific geometry: one packed centroid + radius per node.
  size_t nodes = tree.node_begin_.size();
  if (tree.centroid_.size() != nodes * tree.dim_ ||
      tree.radius_.size() != nodes) {
    return Status::DataLoss(
        "BallTree payload has inconsistent centroid/radius arrays");
  }
  return tree;
}

}  // namespace fairdrift
