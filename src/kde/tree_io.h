// Shared wire form of the flat-node state both spatial trees carry.
//
// KdTree and BallTree store the identical skeleton — permuted point
// matrix, order map, packed begin/end/left/right node arrays — and
// differ only in their per-node geometry (boxes vs centroid/radius).
// Snapshot persistence serializes that skeleton once through these
// helpers so the structural validation (shapes, ranges, acyclicity)
// exists in exactly one place and cannot drift between backends.

#ifndef FAIRDRIFT_KDE_TREE_IO_H_
#define FAIRDRIFT_KDE_TREE_IO_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

class BinaryWriter;  // util/binary_io.h
class BinaryReader;

namespace tree_internal {

/// The skeleton shared by both flat trees.
struct FlatTreeCommon {
  Matrix points;  ///< rows permuted into node-contiguous order
  std::vector<size_t> order;
  std::vector<size_t> node_begin;
  std::vector<size_t> node_end;
  std::vector<int32_t> node_left;
  std::vector<int32_t> node_right;
};

/// Appends the skeleton to `w` (points matrix, then the five arrays).
void SerializeFlatTreeCommon(const Matrix& points,
                             const std::vector<size_t>& order,
                             const std::vector<size_t>& node_begin,
                             const std::vector<size_t>& node_end,
                             const std::vector<int32_t>& node_left,
                             const std::vector<int32_t>& node_right,
                             BinaryWriter* w);

/// Reads and validates a skeleton. Traversal indexes these arrays
/// unchecked, so everything a forged payload could abuse is rejected
/// here: inconsistent array shapes, out-of-range point ranges or order
/// entries, child ids outside the node array, and — because the builders
/// append a node before building its children, so a legitimate child id
/// always exceeds its parent's — non-monotonic children, which is what
/// rules out cycles that would otherwise hang the iterative traversal at
/// query time. `tree_name` prefixes error messages ("KdTree",
/// "BallTree").
Result<FlatTreeCommon> DeserializeFlatTreeCommon(BinaryReader* r,
                                                 const char* tree_name);

}  // namespace tree_internal

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_TREE_IO_H_
