#include "kde/tree_io.h"

#include <utility>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace fairdrift {
namespace tree_internal {

void SerializeFlatTreeCommon(const Matrix& points,
                             const std::vector<size_t>& order,
                             const std::vector<size_t>& node_begin,
                             const std::vector<size_t>& node_end,
                             const std::vector<int32_t>& node_left,
                             const std::vector<int32_t>& node_right,
                             BinaryWriter* w) {
  points.SerializeTo(w);
  w->WriteU64Vector(order);
  w->WriteU64Vector(node_begin);
  w->WriteU64Vector(node_end);
  w->WriteI32Vector(node_left);
  w->WriteI32Vector(node_right);
}

Result<FlatTreeCommon> DeserializeFlatTreeCommon(BinaryReader* r,
                                                 const char* tree_name) {
  FlatTreeCommon common;
  Result<Matrix> points = Matrix::DeserializeFrom(r);
  if (!points.ok()) return points.status();
  common.points = std::move(points).value();
  Result<std::vector<size_t>> order = r->ReadU64Vector();
  if (!order.ok()) return order.status();
  common.order = std::move(order).value();
  Result<std::vector<size_t>> begin = r->ReadU64Vector();
  if (!begin.ok()) return begin.status();
  common.node_begin = std::move(begin).value();
  Result<std::vector<size_t>> end = r->ReadU64Vector();
  if (!end.ok()) return end.status();
  common.node_end = std::move(end).value();
  Result<std::vector<int32_t>> left = r->ReadI32Vector();
  if (!left.ok()) return left.status();
  common.node_left = std::move(left).value();
  Result<std::vector<int32_t>> right = r->ReadI32Vector();
  if (!right.ok()) return right.status();
  common.node_right = std::move(right).value();

  size_t n = common.points.rows();
  size_t nodes = common.node_begin.size();
  bool shape_ok = n > 0 && common.points.cols() > 0 && nodes > 0 &&
                  common.order.size() == n &&
                  common.node_end.size() == nodes &&
                  common.node_left.size() == nodes &&
                  common.node_right.size() == nodes;
  if (!shape_ok) {
    return Status::DataLoss(StrFormat(
        "%s payload has inconsistent array shapes", tree_name));
  }
  for (size_t i = 0; i < nodes; ++i) {
    int32_t l = common.node_left[i];
    int32_t rt = common.node_right[i];
    // Children must point forward (the builders append a node before
    // building its children), which both bounds them and rules out the
    // cycles that would hang the iterative traversal.
    bool node_ok = common.node_begin[i] <= common.node_end[i] &&
                   common.node_end[i] <= n &&
                   (l == -1 || (l > static_cast<int32_t>(i) &&
                                l < static_cast<int32_t>(nodes))) &&
                   (rt == -1 || (rt > static_cast<int32_t>(i) &&
                                 rt < static_cast<int32_t>(nodes)));
    if (!node_ok) {
      return Status::DataLoss(
          StrFormat("%s payload has an out-of-range node", tree_name));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (common.order[i] >= n) {
      return Status::DataLoss(StrFormat(
          "%s payload has an out-of-range order map", tree_name));
    }
  }
  return common;
}

}  // namespace tree_internal
}  // namespace fairdrift
