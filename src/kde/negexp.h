// Fast exp(x) for non-positive arguments — the single transcendental in
// the KDE leaf scans, which dominate batched density evaluation.
//
// NegExpPair evaluates two kernels at once: on x86-64 it runs the
// polynomial two-wide in SSE2 registers; elsewhere it falls back to two
// scalar evaluations of the *same* arithmetic. NegExpQuad evaluates four:
// on CPUs with AVX2 it runs the polynomial four-wide (dispatched at
// runtime, so the build stays generic x86-64), otherwise it degrades to
// two pair calls — on ARM the pair path is the scalar reference, so NEON
// hosts are covered without ISA-specific code. Packed IEEE operations
// round exactly like their scalar counterparts and the polynomial is pure
// mul/add (no FMA contraction; AVX2 here never implies FMA), so all paths
// produce bitwise-identical results — determinism does not depend on the
// instruction set.
//
// Algorithm (Cephes-style): k = round(x / ln 2) via the 1.5 * 2^52 magic
// constant, r = x - k*ln2 with a hi/lo split, e^r from a degree-11 Taylor
// polynomial on |r| <= ln2 / 2 (truncation < 7e-15 relative), scaled by
// 2^k assembled directly in the exponent bits. Inputs below -708 flush to
// exactly 0 (exp(-708) already borders DBL_MIN; the subnormal range is
// not worth the branch). Measured max relative error vs std::exp is
// under 1e-14 across [-708, 0] — far inside the KDE's 1e-9 evaluation
// tolerance — and NegExp(0) == 1 exactly.

#ifndef FAIRDRIFT_KDE_NEGEXP_H_
#define FAIRDRIFT_KDE_NEGEXP_H_

#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
// AVX2 intrinsics are emitted inside target("avx2") functions only, so
// including them does not require -mavx2 on the command line.
#define FAIRDRIFT_NEGEXP_HAVE_AVX2_PATH 1
#include <immintrin.h>
#endif

namespace fairdrift {

namespace negexp_internal {

inline constexpr double kLog2e = 1.4426950408889634074;
/// 1.5 * 2^52: adding it rounds a double to the nearest integer in the
/// low mantissa bits (valid for |x| < 2^51).
inline constexpr double kRoundMagic = 6755399441055744.0;
/// ln2 split so that k * kC1 is exact for the k range in use.
inline constexpr double kC1 = 6.93145751953125e-1;
inline constexpr double kC2 = 1.42860682030941723212e-6;
/// Below this exp underflows past DBL_MIN; flush to zero.
inline constexpr double kUnderflow = -708.0;

/// Taylor coefficients 1/11! ... 1/2!, then the leading 1 + r handled in
/// the Horner tail.
inline constexpr double kPoly[] = {
    1.0 / 39916800.0, 1.0 / 3628800.0, 1.0 / 362880.0, 1.0 / 40320.0,
    1.0 / 5040.0,     1.0 / 720.0,     1.0 / 120.0,    1.0 / 24.0,
    1.0 / 6.0,        0.5,
};

/// Portable scalar reference; the public entry points below dispatch so
/// that scalar and paired calls share one code path per platform (a
/// compiler free to contract mul+add into FMA could otherwise split a
/// scalar Horner from the SSE2 one and void the bitwise identity).
inline double NegExpPortable(double x) {
  if (x < kUnderflow) return 0.0;
  double t = x * kLog2e;
  double k = (t + kRoundMagic) - kRoundMagic;
  double r = (x - k * kC1) - k * kC2;
  double p = kPoly[0];
  for (int i = 1; i < 10; ++i) p = p * r + kPoly[i];
  p = p * r + 1.0;
  p = p * r + 1.0;
  uint64_t bits = static_cast<uint64_t>(static_cast<int64_t>(k) + 1023) << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

}  // namespace negexp_internal

#if defined(__SSE2__)
namespace negexp_internal {
inline double NegExpSse2Lane(double x);  // defined after NegExpPair
}  // namespace negexp_internal
#endif

/// exp(x) for x <= 0; see the file comment for accuracy and determinism.
inline double NegExp(double x) {
#if defined(__SSE2__)
  // Route through the packed kernel so every NegExp evaluation on x86 —
  // scalar tail or paired lane — runs the identical instructions.
  return negexp_internal::NegExpSse2Lane(x);
#else
  return negexp_internal::NegExpPortable(x);
#endif
}

/// (exp(x0), exp(x1)) for x0, x1 <= 0, bitwise identical to NegExp lane
/// by lane on every platform.
inline void NegExpPair(double x0, double x1, double* e0, double* e1) {
#if defined(__SSE2__)
  using namespace negexp_internal;
  __m128d x = _mm_set_pd(x1, x0);
  __m128d t = _mm_mul_pd(x, _mm_set1_pd(kLog2e));
  __m128d magic = _mm_set1_pd(kRoundMagic);
  __m128d y = _mm_add_pd(t, magic);
  __m128d k = _mm_sub_pd(y, magic);
  __m128d r = _mm_sub_pd(_mm_sub_pd(x, _mm_mul_pd(k, _mm_set1_pd(kC1))),
                         _mm_mul_pd(k, _mm_set1_pd(kC2)));
  __m128d p = _mm_set1_pd(kPoly[0]);
  for (int i = 1; i < 10; ++i) {
    p = _mm_add_pd(_mm_mul_pd(p, r), _mm_set1_pd(kPoly[i]));
  }
  p = _mm_add_pd(_mm_mul_pd(p, r), _mm_set1_pd(1.0));
  p = _mm_add_pd(_mm_mul_pd(p, r), _mm_set1_pd(1.0));
  // 2^k: the rounded integers sit in the low 32 bits of y's mantissa
  // (two's complement); bias and shift them into the exponent field.
  __m128i yi = _mm_castpd_si128(y);
  __m128i k32 = _mm_shuffle_epi32(yi, _MM_SHUFFLE(3, 1, 2, 0));  // lanes 0,2
  __m128i biased = _mm_add_epi32(k32, _mm_set1_epi32(1023));
  __m128i scale_bits =
      _mm_unpacklo_epi32(_mm_setzero_si128(), _mm_slli_epi32(biased, 20));
  __m128d result = _mm_mul_pd(p, _mm_castsi128_pd(scale_bits));
  // Flush x < -708 lanes to exactly 0 (their k/scale bits are garbage).
  __m128d underflow = _mm_cmplt_pd(x, _mm_set1_pd(kUnderflow));
  result = _mm_andnot_pd(underflow, result);
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, result);
  *e0 = lanes[0];
  *e1 = lanes[1];
#else
  *e0 = negexp_internal::NegExpPortable(x0);
  *e1 = negexp_internal::NegExpPortable(x1);
#endif
}

#if defined(__SSE2__)
namespace negexp_internal {
inline double NegExpSse2Lane(double x) {
  double e0, e1;
  NegExpPair(x, x, &e0, &e1);
  return e0;
}
}  // namespace negexp_internal
#endif

/// True when the running CPU executes AVX2 (cached after the first call).
/// Exposed so benchmarks and CI gates can tell whether the four-wide
/// kernel path is live on this host.
inline bool HasAvx2() {
#if defined(FAIRDRIFT_NEGEXP_HAVE_AVX2_PATH)
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

#if defined(FAIRDRIFT_NEGEXP_HAVE_AVX2_PATH)
namespace negexp_internal {
/// Four-wide NegExp in AVX2 registers. Same constants, same mul/add
/// ordering as the SSE2 pair and the portable scalar, so every lane is
/// bitwise identical to NegExp of that lane. Compiled with a function-
/// level target attribute; only reachable behind the HasAvx2() check.
__attribute__((target("avx2"))) inline void NegExpQuadAvx2(const double* x_in,
                                                           double* e_out) {
  __m256d x = _mm256_loadu_pd(x_in);
  __m256d t = _mm256_mul_pd(x, _mm256_set1_pd(kLog2e));
  __m256d magic = _mm256_set1_pd(kRoundMagic);
  __m256d y = _mm256_add_pd(t, magic);
  __m256d k = _mm256_sub_pd(y, magic);
  __m256d r =
      _mm256_sub_pd(_mm256_sub_pd(x, _mm256_mul_pd(k, _mm256_set1_pd(kC1))),
                    _mm256_mul_pd(k, _mm256_set1_pd(kC2)));
  __m256d p = _mm256_set1_pd(kPoly[0]);
  for (int i = 1; i < 10; ++i) {
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(kPoly[i]));
  }
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0));
  // 2^k: same trick as the SSE2 pair, applied per 128-bit lane (both the
  // dword shuffle and the unpack operate within each half).
  __m256i yi = _mm256_castpd_si256(y);
  __m256i k32 = _mm256_shuffle_epi32(yi, _MM_SHUFFLE(3, 1, 2, 0));
  __m256i biased = _mm256_add_epi32(k32, _mm256_set1_epi32(1023));
  __m256i scale_bits = _mm256_unpacklo_epi32(_mm256_setzero_si256(),
                                             _mm256_slli_epi32(biased, 20));
  __m256d result = _mm256_mul_pd(p, _mm256_castsi256_pd(scale_bits));
  __m256d underflow =
      _mm256_cmp_pd(x, _mm256_set1_pd(kUnderflow), _CMP_LT_OQ);
  result = _mm256_andnot_pd(underflow, result);
  _mm256_storeu_pd(e_out, result);
}
}  // namespace negexp_internal
#endif

/// e[i] = exp(x[i]) for four x[i] <= 0, bitwise identical to NegExp lane
/// by lane. Runs four-wide on AVX2 hosts (runtime-dispatched), otherwise
/// as two NegExpPair calls sharing the identical arithmetic.
inline void NegExpQuad(const double* x, double* e) {
#if defined(FAIRDRIFT_NEGEXP_HAVE_AVX2_PATH)
  if (HasAvx2()) {
    negexp_internal::NegExpQuadAvx2(x, e);
    return;
  }
#endif
  NegExpPair(x[0], x[1], &e[0], &e[1]);
  NegExpPair(x[2], x[3], &e[2], &e[3]);
}

}  // namespace fairdrift

#endif  // FAIRDRIFT_KDE_NEGEXP_H_
