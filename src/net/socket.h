// Non-blocking TCP sockets with RAII ownership, poll-based readiness,
// and deadline-bounded full-buffer send/recv loops.
//
// This is the bottom of the network serving tier: TcpListener accepts
// connections on a loopback/interface port (port 0 picks an ephemeral
// port, reported by port()), TcpConnection moves whole byte buffers with
// SendAll/RecvAll. Every fd stays in O_NONBLOCK -- the serving daemons
// run one thread per connection, and each wait parks in a poll() bounded
// by the caller's deadline, so a stalled peer or an injected partial
// read/write surfaces as a typed Status (kUnavailable on connection
// loss, kDeadlineExceeded on timeout) instead of a hang. A blocking
// send() could otherwise wedge a handler thread forever once the kernel
// socket buffer fills against a stalled receiver.
//
// Fault sites (see util/fault.h): "net.accept" fails an Accept after the
// kernel handshake, "net.read" truncates a RecvAll mid-buffer, and
// "net.write" truncates a SendAll mid-buffer -- all surface the same
// typed errors a flaky network would.

#ifndef FAIRDRIFT_NET_SOCKET_H_
#define FAIRDRIFT_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace fairdrift {
namespace net {

/// One connected TCP stream. Move-only; the destructor closes the fd.
class TcpConnection {
 public:
  TcpConnection() = default;
  ~TcpConnection() { Close(); }
  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connects to host:port (numeric IPv4 dotted quad or "localhost"),
  /// bounded by `timeout`. Returns kUnavailable on refusal/timeout.
  static Result<TcpConnection> Connect(const std::string& host, uint16_t port,
                                       std::chrono::milliseconds timeout);

  /// Adopts an already-connected fd (listener side). The fd must be in
  /// O_NONBLOCK -- SendAll/RecvAll deadlines depend on it.
  static TcpConnection Adopt(int fd);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends exactly `size` bytes, looping over short writes. Bounded by
  /// `timeout` overall. kUnavailable on peer reset/close, kDeadlineExceeded
  /// when the deadline passes with bytes still unsent.
  Status SendAll(const char* data, size_t size,
                 std::chrono::milliseconds timeout);

  /// Receives exactly `size` bytes, looping over short reads. Same typed
  /// errors as SendAll; a clean EOF mid-buffer is kUnavailable.
  Status RecvAll(char* data, size_t size, std::chrono::milliseconds timeout);

  /// Waits until the connection is readable (or error/hup) or `timeout`
  /// passes. Returns true when readable.
  bool WaitReadable(std::chrono::milliseconds timeout) const;

  void Close();

 private:
  explicit TcpConnection(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// A listening TCP socket. Move-only; the destructor closes the fd.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on `host:port` (SO_REUSEADDR; port 0 = ephemeral).
  static Result<TcpListener> Listen(const std::string& host, uint16_t port,
                                    int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  /// The bound port (resolved after Listen, also for port 0).
  uint16_t port() const { return port_; }

  /// Polls for a pending connection for up to `timeout`, then accepts.
  /// kDeadlineExceeded when nothing arrived (the caller's poll-loop tick),
  /// kUnavailable on accept failure or an armed "net.accept" fault.
  Result<TcpConnection> Accept(std::chrono::milliseconds timeout);

  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace fairdrift

#endif  // FAIRDRIFT_NET_SOCKET_H_
