// Length-prefixed binary framing over a TcpConnection.
//
// Wire layout of one frame (all integers little-endian, matching
// util/binary_io.h):
//
//   offset  size  field
//   0       4     magic "FDRP"
//   4       1     protocol version (kFrameProtocolVersion)
//   5       1     frame type (FrameType)
//   6       2     flags (little-endian; 0 for a plain frame)
//   8       8     payload size in bytes (extension NOT included)
//   16      16    [flag 0x1 only] trace extension: trace id + parent
//                 span id, little-endian u64 each
//   ...     n     payload
//   ...     8     FNV-1a hash of (extension bytes ++ payload)
//
// The flags word was written as zero (and ignored on read) by every
// earlier protocol build, so a flagless frame is byte-identical to the
// historical layout and an extension-bearing frame degrades cleanly:
// the only defined flag (kFrameFlagTrace) adds a fixed 16-byte trace
// extension between header and payload, and a reader that understands
// no flags rejects rather than desynchronizes. Writers only set the
// flag when they have a sampled trace to propagate, so mixed fleets
// interoperate as long as traced frames flow toward upgraded peers.
//
// A reply to any request may be the matching *Reply frame or kError,
// whose payload is {u8 StatusCode, string message}; ReadFrame +
// StatusFromFrame turn that back into the same typed Status the remote
// handler produced. Transport-level failures map onto the serving
// tier's existing error taxonomy: connection loss / EOF / bad magic =>
// kUnavailable, deadline => kDeadlineExceeded, checksum or size-cap
// violation => kDataLoss.

#ifndef FAIRDRIFT_NET_FRAME_H_
#define FAIRDRIFT_NET_FRAME_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "net/socket.h"
#include "util/status.h"

namespace fairdrift {
namespace net {

inline constexpr uint8_t kFrameProtocolVersion = 1;

/// Default per-frame payload cap. Snapshot chunks are the largest
/// payloads; 1 GiB bounds a corrupted size field without constraining
/// any real artifact.
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;

enum class FrameType : uint8_t {
  kScoreBatch = 1,        ///< rows -> per-row scores
  kScoreBatchReply = 2,
  kHealthProbe = 3,       ///< liveness + progress counters
  kHealthProbeReply = 4,
  kStatsSnapshot = 5,     ///< wire-serialized ServerStats::View / merge
  kStatsSnapshotReply = 6,
  kPushManifest = 7,      ///< snapshot manifest; reply lists needed chunks
  kPushManifestReply = 8,
  kPushChunk = 9,         ///< one named chunk's bytes
  kPushChunkReply = 10,
  kPushCommit = 11,       ///< assemble + swap the staged snapshot
  kPushCommitReply = 12,
  kPushRevert = 13,       ///< roll back to the pre-push snapshot
  kPushRevertReply = 14,
  kMetrics = 15,          ///< scrape; reply payload is Prometheus text
  kMetricsReply = 16,
  kError = 255,           ///< payload: u8 StatusCode + string message
};

const char* FrameTypeName(FrameType type);

/// Frame flag 0x1: a 16-byte trace extension (trace id + parent span
/// id) follows the header. Carries serve/trace/ context across
/// processes without touching any payload codec.
inline constexpr uint16_t kFrameFlagTrace = 0x1;

/// The trace extension's decoded form (net-layer mirror of
/// serve/trace/ TraceContext, kept separate so net/ stays
/// serving-agnostic).
struct FrameTraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

struct Frame {
  Frame() = default;
  Frame(FrameType t, std::string p) : type(t), payload(std::move(p)) {}

  FrameType type = FrameType::kError;
  std::string payload;
  /// True when the frame carried the trace extension.
  bool has_trace = false;
  FrameTraceContext trace;
};

/// Writes one frame (header + payload + checksum) as a single buffered
/// send. Typed errors from TcpConnection::SendAll pass through.
Status WriteFrame(TcpConnection& conn, FrameType type,
                  const std::string& payload,
                  std::chrono::milliseconds timeout);

/// Writes one frame carrying the trace extension (kFrameFlagTrace).
Status WriteTracedFrame(TcpConnection& conn, FrameType type,
                        const std::string& payload,
                        const FrameTraceContext& trace,
                        std::chrono::milliseconds timeout);

/// Reads one frame. kUnavailable on connection loss or bad magic /
/// version, kDeadlineExceeded on timeout, kDataLoss on checksum mismatch
/// or a payload size beyond `max_payload`.
Result<Frame> ReadFrame(TcpConnection& conn, std::chrono::milliseconds timeout,
                        uint64_t max_payload = kMaxFramePayload);

/// Sends a kError frame carrying `error`'s code and message.
Status WriteErrorFrame(TcpConnection& conn, const Status& error,
                       std::chrono::milliseconds timeout);

/// Decodes a kError frame payload back into the original typed Status.
Status StatusFromErrorPayload(const std::string& payload);

/// For a reply frame: OK when `frame` is `expected`; the decoded remote
/// error when it is kError; kDataLoss on any other type.
Status ExpectFrame(const Frame& frame, FrameType expected);

}  // namespace net
}  // namespace fairdrift

#endif  // FAIRDRIFT_NET_FRAME_H_
