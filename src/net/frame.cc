#include "net/frame.h"

#include <cstring>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace fairdrift {
namespace net {
namespace {

constexpr char kFrameMagic[4] = {'F', 'D', 'R', 'P'};
constexpr size_t kHeaderSize = 16;   // magic + version + type + flags + size
constexpr size_t kTrailerSize = 8;   // FNV-1a of (extension ++ payload)
constexpr size_t kTraceExtSize = 16;  // trace id + parent span id

// Byte-wise little-endian decode, mirroring BinaryWriter::WriteU64 --
// never memcpy in host order, so the wire format holds on a big-endian
// peer too.
uint64_t DecodeU64Le(const char* bytes) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

uint16_t DecodeU16Le(const char* bytes) {
  return static_cast<uint16_t>(
      static_cast<unsigned char>(bytes[0]) |
      (static_cast<unsigned char>(bytes[1]) << 8));
}

// Shared writer: `trace` null for a plain (historical, byte-identical)
// frame. The checksum covers extension bytes then payload, so a flipped
// extension bit is caught exactly like a flipped payload byte.
Status WriteFrameImpl(TcpConnection& conn, FrameType type,
                      const std::string& payload,
                      const FrameTraceContext* trace,
                      std::chrono::milliseconds timeout) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(kFrameMagic[0]));
  w.WriteU8(static_cast<uint8_t>(kFrameMagic[1]));
  w.WriteU8(static_cast<uint8_t>(kFrameMagic[2]));
  w.WriteU8(static_cast<uint8_t>(kFrameMagic[3]));
  w.WriteU8(kFrameProtocolVersion);
  w.WriteU8(static_cast<uint8_t>(type));
  uint16_t flags = trace != nullptr ? kFrameFlagTrace : 0;
  w.WriteU8(static_cast<uint8_t>(flags & 0xFF));
  w.WriteU8(static_cast<uint8_t>(flags >> 8));
  w.WriteU64(payload.size());
  std::string buf = std::move(w).TakeBuffer();
  if (trace != nullptr) {
    BinaryWriter ext;
    ext.WriteU64(trace->trace_id);
    ext.WriteU64(trace->parent_span_id);
    buf.append(std::move(ext).TakeBuffer());
  }
  buf.append(payload);
  // Everything after the header (extension ++ payload) is checksummed,
  // so a flipped extension bit is caught like a flipped payload byte.
  // For a flagless frame this is exactly the historical payload hash.
  uint64_t checksum =
      Fnv1aHash(buf.data() + kHeaderSize, buf.size() - kHeaderSize);
  BinaryWriter trailer;
  trailer.WriteU64(checksum);
  buf.append(std::move(trailer).TakeBuffer());
  return conn.SendAll(buf.data(), buf.size(), timeout);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kScoreBatch: return "ScoreBatch";
    case FrameType::kScoreBatchReply: return "ScoreBatchReply";
    case FrameType::kHealthProbe: return "HealthProbe";
    case FrameType::kHealthProbeReply: return "HealthProbeReply";
    case FrameType::kStatsSnapshot: return "StatsSnapshot";
    case FrameType::kStatsSnapshotReply: return "StatsSnapshotReply";
    case FrameType::kPushManifest: return "PushManifest";
    case FrameType::kPushManifestReply: return "PushManifestReply";
    case FrameType::kPushChunk: return "PushChunk";
    case FrameType::kPushChunkReply: return "PushChunkReply";
    case FrameType::kPushCommit: return "PushCommit";
    case FrameType::kPushCommitReply: return "PushCommitReply";
    case FrameType::kPushRevert: return "PushRevert";
    case FrameType::kPushRevertReply: return "PushRevertReply";
    case FrameType::kMetrics: return "Metrics";
    case FrameType::kMetricsReply: return "MetricsReply";
    case FrameType::kError: return "Error";
  }
  return "Unknown";
}

Status WriteFrame(TcpConnection& conn, FrameType type,
                  const std::string& payload,
                  std::chrono::milliseconds timeout) {
  return WriteFrameImpl(conn, type, payload, nullptr, timeout);
}

Status WriteTracedFrame(TcpConnection& conn, FrameType type,
                        const std::string& payload,
                        const FrameTraceContext& trace,
                        std::chrono::milliseconds timeout) {
  return WriteFrameImpl(conn, type, payload, &trace, timeout);
}

Result<Frame> ReadFrame(TcpConnection& conn, std::chrono::milliseconds timeout,
                        uint64_t max_payload) {
  char header[kHeaderSize];
  Status st = conn.RecvAll(header, kHeaderSize, timeout);
  if (!st.ok()) return st;
  if (memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::Unavailable("net: bad frame magic (desynchronized stream)");
  }
  uint8_t version = static_cast<uint8_t>(header[4]);
  if (version != kFrameProtocolVersion) {
    return Status::Unavailable(StrFormat(
        "net: unsupported frame protocol version %u (expected %u)",
        unsigned(version), unsigned(kFrameProtocolVersion)));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(header[5]));
  uint16_t flags = DecodeU16Le(header + 6);
  if ((flags & ~kFrameFlagTrace) != 0) {
    // An unknown flag could imply extension bytes this build cannot
    // size; rejecting beats silently desynchronizing the stream.
    return Status::Unavailable(StrFormat(
        "net: unsupported frame flags %04x", unsigned(flags)));
  }
  uint64_t payload_size = DecodeU64Le(header + 8);
  if (payload_size > max_payload) {
    return Status::DataLoss(StrFormat(
        "net: frame payload size %llu exceeds cap %llu",
        static_cast<unsigned long long>(payload_size),
        static_cast<unsigned long long>(max_payload)));
  }
  char ext[kTraceExtSize];
  if ((flags & kFrameFlagTrace) != 0) {
    st = conn.RecvAll(ext, kTraceExtSize, timeout);
    if (!st.ok()) return st;
    frame.has_trace = true;
    frame.trace.trace_id = DecodeU64Le(ext);
    frame.trace.parent_span_id = DecodeU64Le(ext + 8);
  }
  frame.payload.resize(payload_size);
  if (payload_size > 0) {
    st = conn.RecvAll(&frame.payload[0], payload_size, timeout);
    if (!st.ok()) return st;
  }
  char trailer[kTrailerSize];
  st = conn.RecvAll(trailer, kTrailerSize, timeout);
  if (!st.ok()) return st;
  uint64_t stored = DecodeU64Le(trailer);
  uint64_t actual;
  if (frame.has_trace) {
    std::string hashed;
    hashed.reserve(kTraceExtSize + frame.payload.size());
    hashed.append(ext, kTraceExtSize);
    hashed.append(frame.payload);
    actual = Fnv1aHash(hashed.data(), hashed.size());
  } else {
    actual = Fnv1aHash(frame.payload.data(), frame.payload.size());
  }
  if (stored != actual) {
    return Status::DataLoss(StrFormat(
        "net: frame checksum mismatch (stored %016llx, computed %016llx)",
        static_cast<unsigned long long>(stored),
        static_cast<unsigned long long>(actual)));
  }
  return frame;
}

Status WriteErrorFrame(TcpConnection& conn, const Status& error,
                       std::chrono::milliseconds timeout) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(error.code()));
  w.WriteString(error.message());
  return WriteFrame(conn, FrameType::kError, std::move(w).TakeBuffer(),
                    timeout);
}

Status StatusFromErrorPayload(const std::string& payload) {
  BinaryReader r(payload);
  Result<uint8_t> code = r.ReadU8();
  if (!code.ok()) return Status::DataLoss("net: malformed error frame");
  Result<std::string> message = r.ReadString();
  if (!message.ok()) return Status::DataLoss("net: malformed error frame");
  StatusCode sc = static_cast<StatusCode>(code.value());
  if (sc == StatusCode::kOk) {
    return Status::DataLoss("net: error frame carried StatusCode kOk");
  }
  return Status(sc, StrFormat("remote: %s", message.value().c_str()));
}

Status ExpectFrame(const Frame& frame, FrameType expected) {
  if (frame.type == expected) return Status::OK();
  if (frame.type == FrameType::kError) {
    return StatusFromErrorPayload(frame.payload);
  }
  return Status::DataLoss(StrFormat(
      "net: expected %s frame, got %s", FrameTypeName(expected),
      FrameTypeName(frame.type)));
}

}  // namespace net
}  // namespace fairdrift
