#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "util/fault.h"
#include "util/string_util.h"

namespace fairdrift {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds Remaining(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return std::max(left, std::chrono::milliseconds(0));
}

// Resolves "localhost"/dotted-quad into an IPv4 sockaddr. The serving
// tier targets numeric endpoints (CI and tests run on loopback); DNS
// resolution is out of scope for this layer.
Status FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  std::string node = (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, node.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("net: cannot parse IPv4 address '%s'", host.c_str()));
  }
  return Status::OK();
}

// One deadline-bounded readiness wait. A signal interrupting poll()
// re-polls with the remaining deadline, so EINTR never masquerades as a
// timeout to callers (Connect, Accept) that treat 0 as final. Returns
// +1 ready, 0 deadline elapsed, -1 error.
int PollOne(int fd, short events, std::chrono::milliseconds timeout) {
  Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    int ms = static_cast<int>(std::min<int64_t>(timeout.count(), 1 << 30));
    int rc = ::poll(&p, 1, ms);
    if (rc < 0 && errno == EINTR) {
      timeout = Remaining(deadline);
      continue;
    }
    return rc;
  }
}

}  // namespace

TcpConnection::TcpConnection(TcpConnection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConnection TcpConnection::Adopt(int fd) { return TcpConnection(fd); }

Result<TcpConnection> TcpConnection::Connect(
    const std::string& host, uint16_t port, std::chrono::milliseconds timeout) {
  sockaddr_in addr;
  Status st = FillAddr(host, port, &addr);
  if (!st.ok()) return st;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(
        StrFormat("net: socket() failed: %s", strerror(errno)));
  }
  TcpConnection conn(fd);
  // Non-blocking from the start and forever after: the handshake honors
  // the caller's deadline, and SendAll/RecvAll rely on O_NONBLOCK so a
  // full kernel socket buffer surfaces as EAGAIN back into their poll
  // loops instead of a send() that blocks past any deadline.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable(StrFormat("net: connect %s:%u failed: %s",
                                           host.c_str(), unsigned(port),
                                           strerror(errno)));
    }
    int ready = PollOne(fd, POLLOUT, timeout);
    if (ready <= 0) {
      return Status::Unavailable(StrFormat(
          "net: connect %s:%u timed out", host.c_str(), unsigned(port)));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return Status::Unavailable(StrFormat("net: connect %s:%u failed: %s",
                                           host.c_str(), unsigned(port),
                                           strerror(err ? err : errno)));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Status TcpConnection::SendAll(const char* data, size_t size,
                              std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::Unavailable("net: send on closed connection");
  Clock::time_point deadline = Clock::now() + timeout;
  size_t sent = 0;
  while (sent < size) {
    if (FAULT_POINT("net.write")) {
      // Simulated partial write: the peer sees a truncated stream. Close
      // so both sides converge on kUnavailable instead of deadlocking.
      Close();
      return Status::Unavailable("net: injected write fault (partial write)");
    }
    int ready = PollOne(fd_, POLLOUT, Remaining(deadline));
    if (ready < 0) {
      return Status::Unavailable(
          StrFormat("net: poll(send) failed: %s", strerror(errno)));
    }
    if (ready == 0) {
      if (Clock::now() >= deadline) {
        return Status::DeadlineExceeded(StrFormat(
            "net: send timed out with %zu/%zu bytes unsent", size - sent,
            size));
      }
      continue;
    }
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(
          StrFormat("net: send failed: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConnection::RecvAll(char* data, size_t size,
                              std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::Unavailable("net: recv on closed connection");
  Clock::time_point deadline = Clock::now() + timeout;
  size_t got = 0;
  while (got < size) {
    if (FAULT_POINT("net.read")) {
      Close();
      return Status::Unavailable("net: injected read fault (partial read)");
    }
    int ready = PollOne(fd_, POLLIN, Remaining(deadline));
    if (ready < 0) {
      return Status::Unavailable(
          StrFormat("net: poll(recv) failed: %s", strerror(errno)));
    }
    if (ready == 0) {
      if (Clock::now() >= deadline) {
        return Status::DeadlineExceeded(StrFormat(
            "net: recv timed out with %zu/%zu bytes missing", size - got,
            size));
      }
      continue;
    }
    ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n == 0) {
      return Status::Unavailable(StrFormat(
          "net: peer closed with %zu/%zu bytes missing", size - got, size));
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(
          StrFormat("net: recv failed: %s", strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

bool TcpConnection::WaitReadable(std::chrono::milliseconds timeout) const {
  if (fd_ < 0) return false;
  return PollOne(fd_, POLLIN, timeout) > 0;
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Listen(const std::string& host, uint16_t port,
                                        int backlog) {
  sockaddr_in addr;
  Status st = FillAddr(host, port, &addr);
  if (!st.ok()) return st;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(
        StrFormat("net: socket() failed: %s", strerror(errno)));
  }
  TcpListener listener(fd, port);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable(StrFormat("net: bind %s:%u failed: %s",
                                         host.c_str(), unsigned(port),
                                         strerror(errno)));
  }
  if (::listen(fd, backlog) != 0) {
    return Status::Unavailable(
        StrFormat("net: listen failed: %s", strerror(errno)));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    listener.port_ = ntohs(bound.sin_port);
  }
  return listener;
}

Result<TcpConnection> TcpListener::Accept(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::Unavailable("net: accept on closed listener");
  int ready = PollOne(fd_, POLLIN, timeout);
  if (ready < 0) {
    return Status::Unavailable(
        StrFormat("net: poll(accept) failed: %s", strerror(errno)));
  }
  if (ready == 0) {
    return Status::DeadlineExceeded("net: no pending connection");
  }
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    return Status::Unavailable(
        StrFormat("net: accept failed: %s", strerror(errno)));
  }
  if (FAULT_POINT("net.accept")) {
    ::close(fd);
    return Status::Unavailable("net: injected accept fault");
  }
  // Accepted fds stay non-blocking for the same reason Connect's do: a
  // stalled peer must bound at the SendAll/RecvAll deadline, never wedge
  // a handler thread inside a blocking send().
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection::Adopt(fd);
}

}  // namespace net
}  // namespace fairdrift
