// Audit-log record types and their JSONL wire form.
//
// Two record kinds share the log:
//
//  - "window": one completed fairness window (per-shard, or the fleet
//    merge with shard = -1). Tallies are decimal integers; every double
//    (metrics, score sums, policy thresholds) is written as `bit-hex` —
//    the 16 lowercase hex digits of its IEEE-754 bit pattern — so a
//    reader recovers the exact bits, not a rounding of them. A "pretty"
//    field carries a human-readable summary; machines ignore it.
//
//  - "rows": the raw evidence for a window — the request rows, served
//    scores, predictions, groups, and labels, in served order. Rows and
//    scores are one concatenated bit-hex blob (16 chars per double);
//    ints are comma-separated decimal. `audit replay` re-scores these
//    rows against the snapshot file and must land on the window
//    record's tallies and metric bits exactly.
//
// Serialization is hand-rolled: the emitted JSON grammar is tiny (no
// escapes needed — every string we write is hex, decimal CSV, or a
// controlled summary), parsing only accepts what SerializeTo produces,
// and the writer thread reuses one output buffer so steady-state
// logging does not allocate.

#ifndef FAIRDRIFT_SERVE_AUDIT_AUDIT_RECORDS_H_
#define FAIRDRIFT_SERVE_AUDIT_AUDIT_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/audit/fairness_window.h"
#include "util/status.h"

namespace fairdrift {

/// Appends the 16-hex-digit IEEE-754 bit pattern of `v` to `out`.
void AppendDoubleBits(double v, std::string* out);

/// Parses 16 hex digits back into the exact double. Fails on short or
/// non-hex input.
Result<double> ParseDoubleBits(const char* hex, size_t len);

/// One completed window as logged. `shard` is the shard index, or -1 for
/// a fleet-merged window.
struct AuditWindowRecord {
  int32_t shard = 0;
  FairnessWindow window;
  AlertPolicy policy;
  bool has_rows = false;  ///< A "rows" record for this window follows.
};

/// The raw rows behind one window, for bitwise replay.
struct AuditRowsRecord {
  int32_t shard = 0;
  uint64_t window_index = 0;
  size_t width = 0;               ///< Row width (snapshot num_features).
  std::vector<double> rows;       ///< n * width, row-major, served order.
  std::vector<int> groups;        ///< n; group id used for folding.
  std::vector<int> labels;        ///< n; -1 = unknown.
  std::vector<int> preds;         ///< n; served decision.
  std::vector<double> scores;     ///< n; served probability.
};

/// Appends the record's JSON object (no trailing newline) to `*out`.
/// Reuses `out`'s capacity; clear it first if you want just this record.
void SerializeTo(const AuditWindowRecord& rec, std::string* out);
void SerializeTo(const AuditRowsRecord& rec, std::string* out);

/// Record kind of a serialized object: "window", "rows", or an error.
Result<std::string> PeekRecordType(const std::string& json);

Result<AuditWindowRecord> ParseWindowRecord(const std::string& json);
Result<AuditRowsRecord> ParseRowsRecord(const std::string& json);

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_AUDIT_AUDIT_RECORDS_H_
