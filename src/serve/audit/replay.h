// Bitwise replay of audited windows from the log + a snapshot file.
//
// For every window whose raw rows were logged, replay re-scores the rows
// against the given snapshot as ONE batch (per-row results are bitwise
// independent of batch composition and worker count — the snapshot
// determinism contract), then checks, bit for bit:
//
//   1. every re-scored decision and probability against the logged
//      per-row values,
//   2. the refolded per-group tallies (including score sums, folded in
//      logged order through the same FoldObservationInto the live
//      accumulator used) against the window record's tallies,
//   3. DI / DI* / SPD / EOD recomputed from those tallies against the
//      window record's metric bits.
//
// Snapshot versions are process-local (LoadSnapshot stamps a fresh one)
// and are deliberately NOT compared; density verdict counts are also
// skipped because the serving process may have run a monitor override.
// A match therefore certifies: this snapshot file, applied to the logged
// rows, reproduces the logged fairness evidence exactly.

#ifndef FAIRDRIFT_SERVE_AUDIT_REPLAY_H_
#define FAIRDRIFT_SERVE_AUDIT_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/audit/audit_log.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace fairdrift {

/// Outcome of replaying one logged window.
struct ReplayWindowResult {
  int32_t shard = 0;
  uint64_t window_index = 0;
  uint64_t rows = 0;
  bool breach = false;    ///< The live window breached the alert policy.
  bool matched = false;   ///< Everything reproduced bitwise.
  std::string detail;     ///< First mismatch, empty when matched.
};

struct ReplayReport {
  uint64_t log_records = 0;       ///< Chain-verified records read.
  bool torn_tail = false;         ///< Log ended in a tolerated torn record.
  size_t windows_replayed = 0;    ///< Windows with logged rows.
  size_t windows_matched = 0;
  size_t flagged_replayed = 0;    ///< Of those, breaching windows.
  std::vector<ReplayWindowResult> windows;
  bool all_matched() const {
    return windows_replayed > 0 && windows_matched == windows_replayed;
  }
};

/// Replays every rows-bearing window in `log_path` against `snapshot`.
/// Fails (rather than reporting a mismatch) on a corrupt log, a rows
/// record without its window record, or a row-width/schema disagreement
/// with the snapshot.
Result<ReplayReport> ReplayAuditLog(const std::string& log_path,
                                    const ModelSnapshot& snapshot);

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_AUDIT_REPLAY_H_
