#include "serve/audit/fairness_window.h"

#include <algorithm>
#include <cstdio>

#include "fairness/metrics.h"

namespace fairdrift {
namespace {

// Selection-shaped confusion counts: SelectionRate() = (tp + fp) / total
// reduces to positives / count, the exact division the batch path
// performs on fully labeled rows. tn carries the remainder so total()
// equals count.
GroupStats SelectionShapedStats(const AuditGroupTally& t) {
  GroupStats g;
  g.counts.tp = static_cast<double>(t.positives);
  g.counts.fp = 0.0;
  g.counts.tn = static_cast<double>(t.count - t.positives);
  g.counts.fn = 0.0;
  g.size = static_cast<size_t>(t.count);
  return g;
}

GroupStats LabeledStats(const AuditGroupTally& t) {
  GroupStats g;
  g.counts.tp = static_cast<double>(t.tp);
  g.counts.fp = static_cast<double>(t.fp);
  g.counts.tn = static_cast<double>(t.tn);
  g.counts.fn = static_cast<double>(t.fn);
  g.size = static_cast<size_t>(t.labeled);
  return g;
}

}  // namespace

WindowMetrics ComputeWindowMetrics(const AuditGroupTally& majority,
                                   const AuditGroupTally& minority) {
  WindowMetrics m;
  if (majority.count == 0 || minority.count == 0) {
    // Single-group traffic: the offline functions would report DI = 0
    // ("no minority selections") which reads as maximal unfairness when
    // the real story is that a group simply sent no rows. Report neutral
    // sentinels and let the flag carry the information.
    m.insufficient_groups = true;
    return m;
  }

  GroupedPredictionStats selection;
  selection.majority = SelectionShapedStats(majority);
  selection.minority = SelectionShapedStats(minority);
  m.di = DisparateImpact(selection);
  m.di_star = DisparateImpactStar(selection);
  m.spd = SelectionRateDifference(selection);

  GroupedPredictionStats labeled;
  labeled.majority = LabeledStats(majority);
  labeled.minority = LabeledStats(minority);
  m.eod_fnr = EqualizedOddsFnrDifference(labeled);
  m.eod_fpr = EqualizedOddsFprDifference(labeled);
  m.insufficient_labels = majority.labeled == 0 || minority.labeled == 0;
  return m;
}

bool WindowBreaches(const WindowMetrics& m, const AlertPolicy& policy) {
  if (m.insufficient_groups) return false;
  if (m.di_star < policy.di_star_floor) return true;
  if (m.spd > policy.spd_ceiling) return true;
  if (!m.insufficient_labels &&
      std::max(m.eod_fnr, m.eod_fpr) > policy.eod_ceiling) {
    return true;
  }
  return false;
}

std::string BreachReason(const WindowMetrics& m, const AlertPolicy& policy) {
  if (!WindowBreaches(m, policy)) return std::string();
  char buf[160];
  std::string reason;
  if (m.di_star < policy.di_star_floor) {
    std::snprintf(buf, sizeof(buf), "DI*=%.4f<%.4f", m.di_star,
                  policy.di_star_floor);
    reason = buf;
  }
  if (m.spd > policy.spd_ceiling) {
    std::snprintf(buf, sizeof(buf), "SPD=%.4f>%.4f", m.spd,
                  policy.spd_ceiling);
    if (!reason.empty()) reason += " ";
    reason += buf;
  }
  if (!m.insufficient_labels &&
      std::max(m.eod_fnr, m.eod_fpr) > policy.eod_ceiling) {
    std::snprintf(buf, sizeof(buf), "EOD=%.4f>%.4f",
                  std::max(m.eod_fnr, m.eod_fpr), policy.eod_ceiling);
    if (!reason.empty()) reason += " ";
    reason += buf;
  }
  return reason;
}

FairnessWindowAccumulator::FairnessWindowAccumulator(size_t window_size,
                                                     const AlertPolicy& policy)
    : window_size_(window_size == 0 ? 1 : window_size), policy_(policy) {}

const FairnessWindow* FairnessWindowAccumulator::Fold(
    const AuditObservation& obs) {
  if (fill_ == 0) {
    FairnessWindow fresh;
    fresh.index = windows_completed_;
    fresh.start_seq = observations_;
    current_ = fresh;
    current_.snapshot_version_min = obs.snapshot_version;
    current_.snapshot_version_max = obs.snapshot_version;
  } else {
    current_.snapshot_version_min =
        std::min(current_.snapshot_version_min, obs.snapshot_version);
    current_.snapshot_version_max =
        std::max(current_.snapshot_version_max, obs.snapshot_version);
  }

  AuditGroupTally* slot = nullptr;
  AuditGroupTally* cum_slot = nullptr;
  if (obs.group == 0) {
    slot = &current_.majority;
    cum_slot = &cum_majority_;
  } else if (obs.group == 1) {
    slot = &current_.minority;
    cum_slot = &cum_minority_;
  }
  if (slot != nullptr) {
    FoldObservationInto(slot, obs.predicted, obs.true_label, obs.score);
    FoldObservationInto(cum_slot, obs.predicted, obs.true_label, obs.score);
  }
  FoldObservationInto(&current_.overall, obs.predicted, obs.true_label,
                      obs.score);
  FoldObservationInto(&cum_overall_, obs.predicted, obs.true_label, obs.score);
  if (obs.density_checked) {
    current_.density_checked += 1;
    if (obs.density_outlier) current_.density_outliers += 1;
  }

  ++observations_;
  ++fill_;
  if (fill_ < window_size_) return nullptr;
  CompleteWindow();
  return &completed_;
}

void FairnessWindowAccumulator::CompleteWindow() {
  current_.size = fill_;
  current_.metrics = ComputeWindowMetrics(current_.majority, current_.minority);
  current_.breach = WindowBreaches(current_.metrics, policy_);

  if (current_.breach) {
    ++breaches_;
    ++breach_streak_;
    clean_streak_ = 0;
  } else {
    ++clean_streak_;
    breach_streak_ = 0;
  }
  current_.alert_raised = false;
  current_.alert_cleared = false;
  if (!alert_active_ && breach_streak_ >= policy_.trigger_windows) {
    alert_active_ = true;
    current_.alert_raised = true;
    ++alerts_raised_;
  } else if (alert_active_ && clean_streak_ >= policy_.clear_windows) {
    alert_active_ = false;
    current_.alert_cleared = true;
  }
  current_.alert_active = alert_active_;

  completed_ = current_;
  ++windows_completed_;
  fill_ = 0;
}

}  // namespace fairdrift
