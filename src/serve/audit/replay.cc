#include "serve/audit/replay.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "serve/audit/audit_records.h"
#include "serve/audit/fairness_window.h"

namespace fairdrift {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

bool SameBits(double a, double b) { return Bits(a) == Bits(b); }

std::string Mismatch(const char* what, double logged, double replayed) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s: logged bits %016" PRIx64 " (%.17g) != replayed bits "
                "%016" PRIx64 " (%.17g)",
                what, Bits(logged), logged, Bits(replayed), replayed);
  return buf;
}

std::string TallyMismatch(const char* group, const char* field,
                          uint64_t logged, uint64_t replayed) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s tally %s: logged %" PRIu64 " != replayed %" PRIu64, group,
                field, logged, replayed);
  return buf;
}

// Compares a refolded tally against the logged one; empty string = equal.
std::string CompareTally(const char* name, const AuditGroupTally& logged,
                         const AuditGroupTally& replayed) {
  if (logged.count != replayed.count)
    return TallyMismatch(name, "count", logged.count, replayed.count);
  if (logged.positives != replayed.positives)
    return TallyMismatch(name, "positives", logged.positives,
                         replayed.positives);
  if (logged.labeled != replayed.labeled)
    return TallyMismatch(name, "labeled", logged.labeled, replayed.labeled);
  if (logged.tp != replayed.tp)
    return TallyMismatch(name, "tp", logged.tp, replayed.tp);
  if (logged.fp != replayed.fp)
    return TallyMismatch(name, "fp", logged.fp, replayed.fp);
  if (logged.tn != replayed.tn)
    return TallyMismatch(name, "tn", logged.tn, replayed.tn);
  if (logged.fn != replayed.fn)
    return TallyMismatch(name, "fn", logged.fn, replayed.fn);
  if (!SameBits(logged.score_sum, replayed.score_sum))
    return std::string(name) + " " +
           Mismatch("score_sum", logged.score_sum, replayed.score_sum);
  return std::string();
}

}  // namespace

Result<ReplayReport> ReplayAuditLog(const std::string& log_path,
                                    const ModelSnapshot& snapshot) {
  AuditVerifyReport verify;
  Result<std::vector<AuditLogEntry>> entries =
      ReadAuditLog(log_path, &verify);
  if (!entries.ok()) return entries.status();

  ReplayReport report;
  report.log_records = verify.records;
  report.torn_tail = verify.torn_tail;

  // Index window records by (shard, window); collect rows records.
  std::map<std::pair<int32_t, uint64_t>, AuditWindowRecord> windows;
  std::vector<AuditRowsRecord> rows_records;
  for (const AuditLogEntry& entry : entries.value()) {
    Result<std::string> type = PeekRecordType(entry.rec);
    if (!type.ok()) return type.status();
    if (type.value() == "window") {
      Result<AuditWindowRecord> rec = ParseWindowRecord(entry.rec);
      if (!rec.ok()) return rec.status();
      windows[{rec.value().shard, rec.value().window.index}] = rec.value();
    } else if (type.value() == "rows") {
      Result<AuditRowsRecord> rec = ParseRowsRecord(entry.rec);
      if (!rec.ok()) return rec.status();
      rows_records.push_back(std::move(rec.value()));
    } else {
      return Status::DataLoss("audit log has unknown record type \"" +
                              type.value() + "\"");
    }
  }

  for (const AuditRowsRecord& rows : rows_records) {
    auto it = windows.find({rows.shard, rows.window_index});
    if (it == windows.end()) {
      return Status::DataLoss(
          "audit log has a rows record without its window record");
    }
    const AuditWindowRecord& logged = it->second;
    const size_t n = rows.groups.size();
    if (rows.width != snapshot.num_features()) {
      return Status::InvalidArgument(
          "audit log rows were served with a different schema width than "
          "this snapshot");
    }
    if (logged.window.size != n) {
      return Status::DataLoss(
          "audit window/rows record row-count disagreement");
    }

    ReplayWindowResult result;
    result.shard = rows.shard;
    result.window_index = rows.window_index;
    result.rows = n;
    result.breach = logged.window.breach;

    // Re-score the whole window as one batch; per-row results are
    // bitwise independent of how the live server batched these rows.
    Result<Matrix> batch = Matrix::FromFlat(n, rows.width, rows.rows);
    if (!batch.ok()) return batch.status();
    Result<std::vector<ScoreResult>> scored = snapshot.ScoreBatch(
        batch.value());
    if (!scored.ok()) return scored.status();
    const std::vector<ScoreResult>& results = scored.value();

    AuditGroupTally majority, minority, overall;
    for (size_t i = 0; i < n && result.detail.empty(); ++i) {
      if (results[i].label != rows.preds[i]) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "row %zu: logged decision %d != replayed %d", i,
                      rows.preds[i], results[i].label);
        result.detail = buf;
        break;
      }
      if (!SameBits(results[i].probability, rows.scores[i])) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "row %zu score", i);
        result.detail =
            std::string(buf) + ": " +
            Mismatch("probability", rows.scores[i], results[i].probability);
        break;
      }
      // Fold the re-scored result exactly as the live accumulator did.
      AuditGroupTally* slot = nullptr;
      if (rows.groups[i] == 0) slot = &majority;
      if (rows.groups[i] == 1) slot = &minority;
      if (slot != nullptr) {
        FoldObservationInto(slot, results[i].label, rows.labels[i],
                            results[i].probability);
      }
      FoldObservationInto(&overall, results[i].label, rows.labels[i],
                          results[i].probability);
    }

    if (result.detail.empty()) {
      result.detail = CompareTally("majority", logged.window.majority, majority);
    }
    if (result.detail.empty()) {
      result.detail = CompareTally("minority", logged.window.minority, minority);
    }
    if (result.detail.empty()) {
      result.detail = CompareTally("overall", logged.window.overall, overall);
    }
    if (result.detail.empty()) {
      WindowMetrics m = ComputeWindowMetrics(majority, minority);
      const WindowMetrics& lm = logged.window.metrics;
      if (!SameBits(lm.di, m.di)) {
        result.detail = Mismatch("DI", lm.di, m.di);
      } else if (!SameBits(lm.di_star, m.di_star)) {
        result.detail = Mismatch("DI*", lm.di_star, m.di_star);
      } else if (!SameBits(lm.spd, m.spd)) {
        result.detail = Mismatch("SPD", lm.spd, m.spd);
      } else if (!SameBits(lm.eod_fnr, m.eod_fnr)) {
        result.detail = Mismatch("EOD(FNR)", lm.eod_fnr, m.eod_fnr);
      } else if (!SameBits(lm.eod_fpr, m.eod_fpr)) {
        result.detail = Mismatch("EOD(FPR)", lm.eod_fpr, m.eod_fpr);
      } else if (lm.insufficient_groups != m.insufficient_groups ||
                 lm.insufficient_labels != m.insufficient_labels) {
        result.detail = "validity flags disagree with logged window";
      }
    }

    result.matched = result.detail.empty();
    ++report.windows_replayed;
    if (result.breach) ++report.flagged_replayed;
    if (result.matched) ++report.windows_matched;
    report.windows.push_back(std::move(result));
  }

  return report;
}

}  // namespace fairdrift
