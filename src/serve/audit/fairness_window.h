// Online per-window fairness accounting for served traffic.
//
// A FairnessWindowAccumulator folds one AuditObservation per served row
// into fixed-size tumbling windows and, at each window boundary, derives
// the paper's group fairness metrics (DI / DI* for the EEOC 80% rule,
// SPD, EOD) from exact integer tallies. The derivation constructs the
// same GroupedPredictionStats the offline fairness/metrics functions
// consume and calls those functions verbatim, so a window's metrics are
// bitwise identical to recomputing them from the window's rows with the
// batch path — the property the audit-log replay (serve/audit/replay.h)
// checks across process boundaries.
//
// The fold itself is a handful of integer adds plus one double add under
// the caller's lock: no allocation, no branching on metric math, nothing
// proportional to the window size. All metric work happens once per
// window boundary.
//
// Edge-case semantics (deliberate, NaN-free):
//  - A window where one group has zero positives keeps the offline
//    definitions: DI = +inf when only the minority selects, DI* = 0
//    either way. No division by zero reaches the caller.
//  - A window that saw only one group's traffic reports
//    `insufficient_groups` with neutral sentinels (DI = DI* = 1, SPD =
//    EOD = 0) and never breaches the alert policy: a raw computation
//    would report DI = 0 ("maximally unfair") for what is actually a
//    routing artifact, not discrimination.
//  - A window where a group has no labeled rows sets
//    `insufficient_labels`; EOD is still computed (empty-group FNR/FPR
//    are 0 per ml/metrics.h) but excluded from the breach predicate.

#ifndef FAIRDRIFT_SERVE_AUDIT_FAIRNESS_WINDOW_H_
#define FAIRDRIFT_SERVE_AUDIT_FAIRNESS_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "fairness/group_stats.h"

namespace fairdrift {

/// One served row's audit-relevant facts, as folded into a window.
struct AuditObservation {
  int group = -1;           ///< Sensitive group id (0 = W, 1 = U, other = overall-only).
  int predicted = 0;        ///< Served decision (0/1).
  int true_label = -1;      ///< Ground truth when the caller knows it; -1 = unknown.
  double score = 0.0;       ///< Served probability.
  uint64_t snapshot_version = 0;
  bool density_checked = false;
  bool density_outlier = false;
};

/// Exact integer tallies of one traffic slice (a group within a window,
/// or cumulative). Folding is integer adds; metrics are derived by
/// casting the *same* integers fairness/metrics would see, so incremental
/// and batch computation agree bitwise (counts stay far below 2^53).
struct AuditGroupTally {
  uint64_t count = 0;      ///< Rows observed.
  uint64_t positives = 0;  ///< Rows with predicted == 1.
  uint64_t labeled = 0;    ///< Rows with a known true label.
  uint64_t tp = 0;         ///< Labeled rows: predicted 1, truth 1.
  uint64_t fp = 0;         ///< Labeled rows: predicted 1, truth 0.
  uint64_t tn = 0;         ///< Labeled rows: predicted 0, truth 0.
  uint64_t fn = 0;         ///< Labeled rows: predicted 0, truth 1.
  double score_sum = 0.0;  ///< Served scores, summed in arrival order.

  void Add(const AuditGroupTally& other) {
    count += other.count;
    positives += other.positives;
    labeled += other.labeled;
    tp += other.tp;
    fp += other.fp;
    tn += other.tn;
    fn += other.fn;
    score_sum += other.score_sum;
  }
};

/// Folds one row into a tally. Shared between the live accumulator and
/// the replay path so both sides run the identical arithmetic.
inline void FoldObservationInto(AuditGroupTally* tally, int predicted,
                                int true_label, double score) {
  tally->count += 1;
  tally->score_sum += score;
  const bool positive = predicted == 1;
  if (positive) tally->positives += 1;
  if (true_label == 0 || true_label == 1) {
    tally->labeled += 1;
    if (positive) {
      (true_label == 1 ? tally->tp : tally->fp) += 1;
    } else {
      (true_label == 1 ? tally->fn : tally->tn) += 1;
    }
  }
}

/// A window's derived fairness metrics plus validity flags.
struct WindowMetrics {
  double di = 1.0;       ///< Disparate impact SR_U / SR_W (+inf possible).
  double di_star = 1.0;  ///< min(DI, 1/DI) in [0, 1]; EEOC flags < 0.8.
  double spd = 0.0;      ///< |SR_U - SR_W| (statistical parity difference).
  double eod_fnr = 0.0;  ///< |FNR_U - FNR_W| (equalized odds, FNR side).
  double eod_fpr = 0.0;  ///< |FPR_U - FPR_W| (equalized odds, FPR side).
  bool insufficient_groups = false;  ///< A group saw zero traffic; sentinels above.
  bool insufficient_labels = false;  ///< A group had zero labeled rows; EOD advisory only.
};

/// Derives window metrics from per-group tallies by building the same
/// GroupedPredictionStats shapes the batch path builds and calling
/// fairness/metrics verbatim. DI and SPD use selection-shaped confusion
/// counts (tp = positives, fp = 0) because selection rate only depends on
/// positives/count — the division is bit-identical to the batch path's
/// (tp + fp) / total on fully labeled rows. EOD uses the labeled
/// confusion tallies.
WindowMetrics ComputeWindowMetrics(const AuditGroupTally& majority,
                                   const AuditGroupTally& minority);

/// Per-window alert thresholds. Defaults disable everything except the
/// EEOC 80% floor; a ceiling of 1.0 can never fire for SPD/EOD (both are
/// bounded by 1) so 1.0 doubles as "off".
struct AlertPolicy {
  double di_star_floor = 0.8;  ///< Breach when DI* < floor (EEOC rule at 0.8).
  double spd_ceiling = 1.0;    ///< Breach when SPD > ceiling.
  double eod_ceiling = 1.0;    ///< Breach when max(EOD_fnr, EOD_fpr) > ceiling.
  size_t trigger_windows = 2;  ///< Consecutive breaching windows before an alert raises.
  size_t clear_windows = 2;    ///< Consecutive clean windows before it clears.
};

/// True when `m` violates `policy`. Windows with insufficient groups
/// never breach; EOD only participates when both groups had labels.
bool WindowBreaches(const WindowMetrics& m, const AlertPolicy& policy);

/// Human-readable reason string for a breaching window ("DI*=0.61<0.80").
/// Empty when the window does not breach. Allocates; call off-hot-path.
std::string BreachReason(const WindowMetrics& m, const AlertPolicy& policy);

/// One completed tumbling window. Plain copyable data — the auditor's
/// log pipeline moves these through a freelist without allocating.
struct FairnessWindow {
  uint64_t index = 0;      ///< 0-based window sequence number.
  uint64_t start_seq = 0;  ///< Observation sequence number of the first row.
  uint64_t size = 0;       ///< Rows in the window (== window_size).
  AuditGroupTally majority;
  AuditGroupTally minority;
  AuditGroupTally overall;  ///< Every row, including group ids outside {0,1}.
  uint64_t snapshot_version_min = 0;
  uint64_t snapshot_version_max = 0;
  uint64_t density_checked = 0;
  uint64_t density_outliers = 0;
  WindowMetrics metrics;
  bool breach = false;
  bool alert_active = false;   ///< Hysteresis state after this window.
  bool alert_raised = false;   ///< This window crossed the trigger threshold.
  bool alert_cleared = false;  ///< This window crossed the clear threshold.
};

/// Folds observations into tumbling windows of `window_size` rows and
/// applies the alert policy with hysteresis. Not thread-safe; the shard
/// auditor serializes callers.
class FairnessWindowAccumulator {
 public:
  FairnessWindowAccumulator(size_t window_size, const AlertPolicy& policy);

  /// Folds one observation. Returns the just-completed window when this
  /// observation closed one (pointer valid until the next Fold call),
  /// nullptr otherwise. No allocation in either case.
  const FairnessWindow* Fold(const AuditObservation& obs);

  size_t window_size() const { return window_size_; }
  const AlertPolicy& policy() const { return policy_; }

  uint64_t observations() const { return observations_; }
  uint64_t windows_completed() const { return windows_completed_; }
  uint64_t breaches() const { return breaches_; }
  uint64_t alerts_raised() const { return alerts_raised_; }
  bool alert_active() const { return alert_active_; }

  /// Cumulative tallies over every folded observation (complete windows
  /// plus the in-progress one) — the fleet view derives whole-run
  /// metrics from these.
  const AuditGroupTally& cumulative_majority() const { return cum_majority_; }
  const AuditGroupTally& cumulative_minority() const { return cum_minority_; }
  const AuditGroupTally& cumulative_overall() const { return cum_overall_; }

 private:
  void CompleteWindow();

  size_t window_size_;
  AlertPolicy policy_;

  FairnessWindow current_;    // Tallies being filled.
  FairnessWindow completed_;  // Last finished window (Fold's return target).
  uint64_t fill_ = 0;         // Rows folded into current_.

  uint64_t observations_ = 0;
  uint64_t windows_completed_ = 0;
  uint64_t breaches_ = 0;
  uint64_t alerts_raised_ = 0;
  bool alert_active_ = false;
  size_t breach_streak_ = 0;
  size_t clean_streak_ = 0;

  AuditGroupTally cum_majority_;
  AuditGroupTally cum_minority_;
  AuditGroupTally cum_overall_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_AUDIT_FAIRNESS_WINDOW_H_
