#include "serve/audit/audit_records.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace fairdrift {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf, static_cast<size_t>(n));
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf, static_cast<size_t>(n));
}

void AppendQuotedBits(double v, std::string* out) {
  out->push_back('"');
  AppendDoubleBits(v, out);
  out->push_back('"');
}

// Tally wire form: [count,positives,labeled,tp,fp,tn,fn,"score_sum_bits"]
void AppendTally(const AuditGroupTally& t, std::string* out) {
  out->push_back('[');
  AppendU64(t.count, out);
  out->push_back(',');
  AppendU64(t.positives, out);
  out->push_back(',');
  AppendU64(t.labeled, out);
  out->push_back(',');
  AppendU64(t.tp, out);
  out->push_back(',');
  AppendU64(t.fp, out);
  out->push_back(',');
  AppendU64(t.tn, out);
  out->push_back(',');
  AppendU64(t.fn, out);
  out->push_back(',');
  AppendQuotedBits(t.score_sum, out);
  out->push_back(']');
}

// --- parsing helpers (replay/verify path; allocation is fine here) ---

constexpr size_t kNpos = std::string::npos;

Result<size_t> FieldPos(const std::string& json, const char* key) {
  std::string pat;
  pat.reserve(std::strlen(key) + 3);
  pat.push_back('"');
  pat.append(key);
  pat.append("\":");
  size_t p = json.find(pat);
  if (p == kNpos) {
    return Status::DataLoss(std::string("audit record missing field \"") +
                            key + "\"");
  }
  return p + pat.size();
}

Result<uint64_t> ParseU64At(const std::string& json, size_t* pos) {
  size_t p = *pos;
  if (p >= json.size() || json[p] < '0' || json[p] > '9') {
    return Status::DataLoss("audit record: expected unsigned integer");
  }
  uint64_t v = 0;
  while (p < json.size() && json[p] >= '0' && json[p] <= '9') {
    v = v * 10 + static_cast<uint64_t>(json[p] - '0');
    ++p;
  }
  *pos = p;
  return v;
}

Result<int64_t> ParseI64At(const std::string& json, size_t* pos) {
  bool neg = *pos < json.size() && json[*pos] == '-';
  if (neg) ++*pos;
  Result<uint64_t> mag = ParseU64At(json, pos);
  if (!mag.ok()) return mag.status();
  int64_t v = static_cast<int64_t>(mag.value());
  return neg ? -v : v;
}

Result<double> ParseBitsAt(const std::string& json, size_t* pos) {
  size_t p = *pos;
  if (p >= json.size() || json[p] != '"') {
    return Status::DataLoss("audit record: expected quoted bit-hex double");
  }
  ++p;
  if (p + 17 > json.size() || json[p + 16] != '"') {
    return Status::DataLoss("audit record: malformed bit-hex double");
  }
  Result<double> v = ParseDoubleBits(json.data() + p, 16);
  if (!v.ok()) return v.status();
  *pos = p + 17;
  return v;
}

Result<uint64_t> U64Field(const std::string& json, const char* key) {
  Result<size_t> pos = FieldPos(json, key);
  if (!pos.ok()) return pos.status();
  size_t p = pos.value();
  return ParseU64At(json, &p);
}

Result<int64_t> I64Field(const std::string& json, const char* key) {
  Result<size_t> pos = FieldPos(json, key);
  if (!pos.ok()) return pos.status();
  size_t p = pos.value();
  return ParseI64At(json, &p);
}

// Quoted string field; our grammar never escapes, so scan to next quote.
Result<std::string> StrField(const std::string& json, const char* key) {
  Result<size_t> pos = FieldPos(json, key);
  if (!pos.ok()) return pos.status();
  size_t p = pos.value();
  if (p >= json.size() || json[p] != '"') {
    return Status::DataLoss("audit record: expected quoted string");
  }
  size_t end = json.find('"', p + 1);
  if (end == kNpos) {
    return Status::DataLoss("audit record: unterminated string");
  }
  return json.substr(p + 1, end - p - 1);
}

Status ExpectChar(const std::string& json, size_t* pos, char c) {
  if (*pos >= json.size() || json[*pos] != c) {
    return Status::DataLoss("audit record: malformed structure");
  }
  ++*pos;
  return Status::OK();
}

Result<AuditGroupTally> TallyField(const std::string& json, const char* key) {
  Result<size_t> pos = FieldPos(json, key);
  if (!pos.ok()) return pos.status();
  size_t p = pos.value();
  Status s = ExpectChar(json, &p, '[');
  if (!s.ok()) return s;
  AuditGroupTally t;
  uint64_t* fields[] = {&t.count, &t.positives, &t.labeled, &t.tp,
                        &t.fp,    &t.tn,        &t.fn};
  for (size_t i = 0; i < 7; ++i) {
    Result<uint64_t> v = ParseU64At(json, &p);
    if (!v.ok()) return v.status();
    *fields[i] = v.value();
    s = ExpectChar(json, &p, ',');
    if (!s.ok()) return s;
  }
  Result<double> score = ParseBitsAt(json, &p);
  if (!score.ok()) return score.status();
  t.score_sum = score.value();
  s = ExpectChar(json, &p, ']');
  if (!s.ok()) return s;
  return t;
}

Result<std::vector<int>> IntCsvField(const std::string& json, const char* key,
                                     size_t expected) {
  Result<std::string> csv = StrField(json, key);
  if (!csv.ok()) return csv.status();
  std::vector<int> out;
  out.reserve(expected);
  const std::string& s = csv.value();
  size_t p = 0;
  while (p < s.size()) {
    Result<int64_t> v = ParseI64At(s, &p);
    if (!v.ok()) return v.status();
    out.push_back(static_cast<int>(v.value()));
    if (p < s.size()) {
      if (s[p] != ',') {
        return Status::DataLoss("audit record: malformed integer list");
      }
      ++p;
    }
  }
  if (out.size() != expected) {
    return Status::DataLoss("audit record: integer list length mismatch");
  }
  return out;
}

Result<std::vector<double>> BitsBlobField(const std::string& json,
                                          const char* key, size_t expected) {
  Result<std::string> blob = StrField(json, key);
  if (!blob.ok()) return blob.status();
  const std::string& s = blob.value();
  if (s.size() != expected * 16) {
    return Status::DataLoss("audit record: bit-hex blob length mismatch");
  }
  std::vector<double> out;
  out.reserve(expected);
  for (size_t i = 0; i < expected; ++i) {
    Result<double> v = ParseDoubleBits(s.data() + i * 16, 16);
    if (!v.ok()) return v.status();
    out.push_back(v.value());
  }
  return out;
}

// Window flag bits.
constexpr uint64_t kFlagInsufficientGroups = 1;
constexpr uint64_t kFlagInsufficientLabels = 2;
constexpr uint64_t kFlagBreach = 4;
constexpr uint64_t kFlagAlertActive = 8;
constexpr uint64_t kFlagAlertRaised = 16;
constexpr uint64_t kFlagAlertCleared = 32;

}  // namespace

void AppendDoubleBits(double v, std::string* out) {
  uint64_t bits = DoubleToBits(v);
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHexDigits[bits & 0xF];
    bits >>= 4;
  }
  out->append(buf, sizeof(buf));
}

Result<double> ParseDoubleBits(const char* hex, size_t len) {
  if (len != 16) return Status::DataLoss("bit-hex double must be 16 digits");
  uint64_t bits = 0;
  for (size_t i = 0; i < 16; ++i) {
    char c = hex[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::DataLoss("bit-hex double: invalid hex digit");
    }
    bits = (bits << 4) | nibble;
  }
  return BitsToDouble(bits);
}

void SerializeTo(const AuditWindowRecord& rec, std::string* out) {
  const FairnessWindow& w = rec.window;
  out->append("{\"t\":\"window\",\"shard\":");
  AppendI64(rec.shard, out);
  out->append(",\"win\":");
  AppendU64(w.index, out);
  out->append(",\"start\":");
  AppendU64(w.start_seq, out);
  out->append(",\"n\":");
  AppendU64(w.size, out);
  out->append(",\"snap_min\":");
  AppendU64(w.snapshot_version_min, out);
  out->append(",\"snap_max\":");
  AppendU64(w.snapshot_version_max, out);
  out->append(",\"den_checked\":");
  AppendU64(w.density_checked, out);
  out->append(",\"den_out\":");
  AppendU64(w.density_outliers, out);
  out->append(",\"maj\":");
  AppendTally(w.majority, out);
  out->append(",\"min\":");
  AppendTally(w.minority, out);
  out->append(",\"all\":");
  AppendTally(w.overall, out);
  out->append(",\"m\":[");
  AppendQuotedBits(w.metrics.di, out);
  out->push_back(',');
  AppendQuotedBits(w.metrics.di_star, out);
  out->push_back(',');
  AppendQuotedBits(w.metrics.spd, out);
  out->push_back(',');
  AppendQuotedBits(w.metrics.eod_fnr, out);
  out->push_back(',');
  AppendQuotedBits(w.metrics.eod_fpr, out);
  out->append("],\"policy\":[");
  AppendQuotedBits(rec.policy.di_star_floor, out);
  out->push_back(',');
  AppendQuotedBits(rec.policy.spd_ceiling, out);
  out->push_back(',');
  AppendQuotedBits(rec.policy.eod_ceiling, out);
  out->push_back(',');
  AppendU64(rec.policy.trigger_windows, out);
  out->push_back(',');
  AppendU64(rec.policy.clear_windows, out);
  out->append("],\"flags\":");
  uint64_t flags = 0;
  if (w.metrics.insufficient_groups) flags |= kFlagInsufficientGroups;
  if (w.metrics.insufficient_labels) flags |= kFlagInsufficientLabels;
  if (w.breach) flags |= kFlagBreach;
  if (w.alert_active) flags |= kFlagAlertActive;
  if (w.alert_raised) flags |= kFlagAlertRaised;
  if (w.alert_cleared) flags |= kFlagAlertCleared;
  AppendU64(flags, out);
  out->append(",\"rows\":");
  AppendU64(rec.has_rows ? 1 : 0, out);

  // Human-readable summary; replay ignores it. Controlled charset (no
  // quotes/backslashes), so no JSON escaping is needed.
  char pretty[256];
  if (w.metrics.insufficient_groups) {
    std::snprintf(pretty, sizeof(pretty),
                  "win %" PRIu64 " shard %d: insufficient groups (n=%" PRIu64
                  ")",
                  w.index, rec.shard, w.size);
  } else {
    std::snprintf(pretty, sizeof(pretty),
                  "win %" PRIu64 " shard %d: DI*=%.4f SPD=%.4f EOD=%.4f/%.4f "
                  "n=%" PRIu64 "%s%s",
                  w.index, rec.shard, w.metrics.di_star, w.metrics.spd,
                  w.metrics.eod_fnr, w.metrics.eod_fpr, w.size,
                  w.breach ? " BREACH" : "",
                  w.alert_active ? " ALERT" : "");
  }
  out->append(",\"pretty\":\"");
  out->append(pretty);
  out->append("\"}");
}

void SerializeTo(const AuditRowsRecord& rec, std::string* out) {
  out->append("{\"t\":\"rows\",\"shard\":");
  AppendI64(rec.shard, out);
  out->append(",\"win\":");
  AppendU64(rec.window_index, out);
  out->append(",\"n\":");
  AppendU64(rec.groups.size(), out);
  out->append(",\"w\":");
  AppendU64(rec.width, out);
  out->append(",\"groups\":\"");
  for (size_t i = 0; i < rec.groups.size(); ++i) {
    if (i != 0) out->push_back(',');
    AppendI64(rec.groups[i], out);
  }
  out->append("\",\"labels\":\"");
  for (size_t i = 0; i < rec.labels.size(); ++i) {
    if (i != 0) out->push_back(',');
    AppendI64(rec.labels[i], out);
  }
  out->append("\",\"preds\":\"");
  for (size_t i = 0; i < rec.preds.size(); ++i) {
    if (i != 0) out->push_back(',');
    AppendI64(rec.preds[i], out);
  }
  out->append("\",\"scores\":\"");
  for (double v : rec.scores) AppendDoubleBits(v, out);
  out->append("\",\"cells\":\"");
  for (double v : rec.rows) AppendDoubleBits(v, out);
  out->append("\"}");
}

Result<std::string> PeekRecordType(const std::string& json) {
  return StrField(json, "t");
}

Result<AuditWindowRecord> ParseWindowRecord(const std::string& json) {
  AuditWindowRecord rec;
  FairnessWindow& w = rec.window;

  Result<int64_t> shard = I64Field(json, "shard");
  if (!shard.ok()) return shard.status();
  rec.shard = static_cast<int32_t>(shard.value());

  struct U64Slot {
    const char* key;
    uint64_t* dst;
  } u64s[] = {
      {"win", &w.index},
      {"start", &w.start_seq},
      {"n", &w.size},
      {"snap_min", &w.snapshot_version_min},
      {"snap_max", &w.snapshot_version_max},
      {"den_checked", &w.density_checked},
      {"den_out", &w.density_outliers},
  };
  for (const U64Slot& slot : u64s) {
    Result<uint64_t> v = U64Field(json, slot.key);
    if (!v.ok()) return v.status();
    *slot.dst = v.value();
  }

  Result<AuditGroupTally> maj = TallyField(json, "maj");
  if (!maj.ok()) return maj.status();
  w.majority = maj.value();
  Result<AuditGroupTally> min = TallyField(json, "min");
  if (!min.ok()) return min.status();
  w.minority = min.value();
  Result<AuditGroupTally> all = TallyField(json, "all");
  if (!all.ok()) return all.status();
  w.overall = all.value();

  Result<size_t> mpos = FieldPos(json, "m");
  if (!mpos.ok()) return mpos.status();
  size_t p = mpos.value();
  Status s = ExpectChar(json, &p, '[');
  if (!s.ok()) return s;
  double* metrics[] = {&w.metrics.di, &w.metrics.di_star, &w.metrics.spd,
                       &w.metrics.eod_fnr, &w.metrics.eod_fpr};
  for (size_t i = 0; i < 5; ++i) {
    if (i != 0) {
      s = ExpectChar(json, &p, ',');
      if (!s.ok()) return s;
    }
    Result<double> v = ParseBitsAt(json, &p);
    if (!v.ok()) return v.status();
    *metrics[i] = v.value();
  }

  Result<size_t> ppos = FieldPos(json, "policy");
  if (!ppos.ok()) return ppos.status();
  p = ppos.value();
  s = ExpectChar(json, &p, '[');
  if (!s.ok()) return s;
  double* thresholds[] = {&rec.policy.di_star_floor, &rec.policy.spd_ceiling,
                          &rec.policy.eod_ceiling};
  for (size_t i = 0; i < 3; ++i) {
    if (i != 0) {
      s = ExpectChar(json, &p, ',');
      if (!s.ok()) return s;
    }
    Result<double> v = ParseBitsAt(json, &p);
    if (!v.ok()) return v.status();
    *thresholds[i] = v.value();
  }
  s = ExpectChar(json, &p, ',');
  if (!s.ok()) return s;
  Result<uint64_t> trigger = ParseU64At(json, &p);
  if (!trigger.ok()) return trigger.status();
  rec.policy.trigger_windows = static_cast<size_t>(trigger.value());
  s = ExpectChar(json, &p, ',');
  if (!s.ok()) return s;
  Result<uint64_t> clear = ParseU64At(json, &p);
  if (!clear.ok()) return clear.status();
  rec.policy.clear_windows = static_cast<size_t>(clear.value());

  Result<uint64_t> flags = U64Field(json, "flags");
  if (!flags.ok()) return flags.status();
  uint64_t f = flags.value();
  w.metrics.insufficient_groups = (f & kFlagInsufficientGroups) != 0;
  w.metrics.insufficient_labels = (f & kFlagInsufficientLabels) != 0;
  w.breach = (f & kFlagBreach) != 0;
  w.alert_active = (f & kFlagAlertActive) != 0;
  w.alert_raised = (f & kFlagAlertRaised) != 0;
  w.alert_cleared = (f & kFlagAlertCleared) != 0;

  Result<uint64_t> has_rows = U64Field(json, "rows");
  if (!has_rows.ok()) return has_rows.status();
  rec.has_rows = has_rows.value() != 0;
  return rec;
}

Result<AuditRowsRecord> ParseRowsRecord(const std::string& json) {
  AuditRowsRecord rec;
  Result<int64_t> shard = I64Field(json, "shard");
  if (!shard.ok()) return shard.status();
  rec.shard = static_cast<int32_t>(shard.value());
  Result<uint64_t> win = U64Field(json, "win");
  if (!win.ok()) return win.status();
  rec.window_index = win.value();
  Result<uint64_t> n = U64Field(json, "n");
  if (!n.ok()) return n.status();
  Result<uint64_t> width = U64Field(json, "w");
  if (!width.ok()) return width.status();
  rec.width = static_cast<size_t>(width.value());
  const size_t rows = static_cast<size_t>(n.value());
  // Bound the claimed sizes before reserving: a hostile record must not
  // drive a huge allocation. 16 hex chars per double means the blobs
  // themselves already bound the true size; cross-check against them.
  if (rows > json.size() || rec.width > json.size()) {
    return Status::DataLoss("audit rows record: implausible dimensions");
  }

  Result<std::vector<int>> groups = IntCsvField(json, "groups", rows);
  if (!groups.ok()) return groups.status();
  rec.groups = std::move(groups.value());
  Result<std::vector<int>> labels = IntCsvField(json, "labels", rows);
  if (!labels.ok()) return labels.status();
  rec.labels = std::move(labels.value());
  Result<std::vector<int>> preds = IntCsvField(json, "preds", rows);
  if (!preds.ok()) return preds.status();
  rec.preds = std::move(preds.value());
  Result<std::vector<double>> scores = BitsBlobField(json, "scores", rows);
  if (!scores.ok()) return scores.status();
  rec.scores = std::move(scores.value());
  Result<std::vector<double>> cells =
      BitsBlobField(json, "cells", rows * rec.width);
  if (!cells.ok()) return cells.status();
  rec.rows = std::move(cells.value());
  return rec;
}

}  // namespace fairdrift
