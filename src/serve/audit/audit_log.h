// Append-only, per-record-checksummed JSONL audit log.
//
// Wire form: one line per record,
//
//   {"rec":<record json>,"chain":"<16 hex digits>"}\n
//
// where chain_i = FNV-1a over record i's bytes, seeded with chain_{i-1}
// (genesis seed = the FNV-1a offset basis). Each line therefore commits
// to the entire log prefix: flipping any byte of any earlier record
// breaks every subsequent chain value, so a verifier that walks the file
// once knows exactly which record is the first bad one.
//
// Crash semantics: Append writes a whole line with a single buffered
// write + flush, so a crashed writer leaves at most one torn record — a
// final line without its newline (or with a broken structure and no
// newline). Open() detects that, truncates the tail back to the last
// good record, and resumes the chain from there; VerifyAuditLog reports
// it as a tolerated `torn_tail`. A malformed or chain-breaking record
// that is NOT a torn tail cannot be produced by a crash and is reported
// as corruption (StatusCode::kDataLoss, naming the record).
//
// Rotation (retention): with AuditLogOptions::rotate_bytes set, an
// append that pushes the active file past the threshold renames it to
// `<path>.<n>` (`<path>.1` is the oldest segment) and starts a fresh
// active file — but the chain does NOT restart: the first record of the
// new segment is seeded with the last chain value of the previous one,
// so the segment sequence is one continuous tamper-evident log.
// VerifyAuditLogChain / ReadAuditLogChain walk `<path>.1 .. <path>.N`
// then `<path>` in order, threading the seed across files; a rotated
// (non-final) segment is closed cleanly by construction, so a torn tail
// is only ever tolerated in the active file. The trace log
// (serve/trace/trace_log.h) reuses this machinery verbatim.
//
// Fault sites (util/fault.h): `audit.append` fails the append before any
// byte is written (the record is dropped, the chain stays valid);
// `audit.fsync` fails the durability step after a successful write. The
// site names are options so a reusing log (the trace log's
// `trace.append` / `trace.fsync`) arms independently.

#ifndef FAIRDRIFT_SERVE_AUDIT_AUDIT_LOG_H_
#define FAIRDRIFT_SERVE_AUDIT_AUDIT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace fairdrift {

/// Chain value of an empty log (FNV-1a 64-bit offset basis).
inline constexpr uint64_t kAuditChainSeed = 0xcbf29ce484222325ULL;

/// One FNV-1a step seeded with the previous chain value.
uint64_t Fnv1aChain(uint64_t seed, const char* data, size_t size);

struct AuditLogOptions {
  /// fsync after every append. Durable but slow; the audit writer runs
  /// on its own thread either way, so this never blocks scoring.
  bool fsync_each_append = false;
  /// Rotate the active file once an append pushes it to at least this
  /// many bytes (0 = never rotate). The chain continues across the
  /// segment boundary; see the header comment.
  uint64_t rotate_bytes = 0;
  /// Fault-injection site names (util/fault.h). Defaults are the audit
  /// tier's; the trace log substitutes "trace.append" / "trace.fsync"
  /// so the two logs' failures arm independently.
  const char* append_fault_site = "audit.append";
  const char* fsync_fault_site = "audit.fsync";
};

/// Result of walking a log's checksum chain.
struct AuditVerifyReport {
  uint64_t records = 0;     ///< Chain-verified records.
  uint64_t chain = kAuditChainSeed;  ///< Chain value after the last good record.
  uint64_t good_bytes = 0;  ///< File prefix covering the verified records
                            ///< (of the final file when walking segments).
  bool torn_tail = false;   ///< Incomplete final record (crashed writer).
  uint64_t torn_bytes = 0;  ///< Bytes past good_bytes when torn_tail.
  uint64_t segments = 1;    ///< Files walked (1 + rotated segments).
};

/// Walks one file's whole chain from the genesis seed. OK (possibly with
/// torn_tail flagged) or DataLoss naming the first corrupt record. A
/// missing file is IoError.
Result<AuditVerifyReport> VerifyAuditLog(const std::string& path);

/// A verified record: the raw `rec` JSON plus its chain value.
struct AuditLogEntry {
  std::string rec;
  uint64_t chain = 0;
};

/// Reads and chain-verifies every record of one file. On success
/// `*report` (optional) carries the verification detail, including a
/// tolerated torn tail.
Result<std::vector<AuditLogEntry>> ReadAuditLog(const std::string& path,
                                                AuditVerifyReport* report);

/// The rotated-segment files of `path` that exist on disk, oldest first
/// (`path.1`, `path.2`, ...), NOT including the active file itself.
std::vector<std::string> AuditLogRotatedSegments(const std::string& path);

/// Walks the full rotated sequence `path.1 .. path.N` then `path`,
/// threading the chain seed across segment boundaries. A torn tail is
/// tolerated only in the final file (rotation closes segments cleanly);
/// anywhere else it is corruption. With no rotated segments this is
/// VerifyAuditLog.
Result<AuditVerifyReport> VerifyAuditLogChain(const std::string& path);

/// Reads and chain-verifies every record across the rotated sequence,
/// oldest first. `*report` (optional) carries the whole-chain detail.
Result<std::vector<AuditLogEntry>> ReadAuditLogChain(
    const std::string& path, AuditVerifyReport* report);

/// The append-side writer. Thread-safe; the fleet auditor funnels all
/// appends through one thread anyway.
class AuditLog {
 public:
  /// Opens (creating if absent) and resumes the chain — across any
  /// rotated segments left by a previous writer. Existing files are
  /// verified first: a torn tail of the ACTIVE file is truncated away
  /// (see truncated_bytes()); corruption anywhere refuses to open with
  /// DataLoss — appending after corruption would bury the evidence.
  static Result<std::unique_ptr<AuditLog>> Open(
      const std::string& path, const AuditLogOptions& options = {});

  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Appends one record (a JSON object WITHOUT the chain envelope or
  /// newline; this wraps it). The full line is staged in a reused buffer
  /// and written with one fwrite + fflush, so a crash tears at most the
  /// final record. On failure (including the append fault site) the
  /// chain does not advance and no partial record is counted. May
  /// rotate afterwards (see AuditLogOptions::rotate_bytes); a rotation
  /// failure is reported but the record itself is already durable.
  Status Append(const std::string& record_json);

  /// fsyncs the file (also the fsync fault site).
  Status Sync();

  /// Chain-length records across ALL segments (not just the active file).
  uint64_t records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }
  uint64_t chain() const {
    std::lock_guard<std::mutex> lock(mu_);
    return chain_;
  }
  const std::string& path() const { return path_; }

  /// Rotated segments this log has on disk (resumed + new rotations).
  uint64_t rotated_segments() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rotated_segments_;
  }

  /// Torn-tail bytes discarded by Open's crash recovery; 0 normally.
  uint64_t truncated_bytes() const { return truncated_bytes_; }

 private:
  AuditLog(std::string path, AuditLogOptions options);

  /// Closes the active file, renames it to the next `.N` segment, and
  /// reopens a fresh active file. Called with mu_ held.
  Status RotateLocked();

  mutable std::mutex mu_;
  std::string path_;
  AuditLogOptions options_;
  std::FILE* file_ = nullptr;
  uint64_t records_ = 0;
  uint64_t chain_ = kAuditChainSeed;
  uint64_t truncated_bytes_ = 0;
  uint64_t segment_bytes_ = 0;     ///< Verified bytes in the active file.
  uint64_t rotated_segments_ = 0;  ///< Existing `.N` files.
  std::string line_;  // Reused append staging buffer.
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_AUDIT_AUDIT_LOG_H_
