// Append-only, per-record-checksummed JSONL audit log.
//
// Wire form: one line per record,
//
//   {"rec":<record json>,"chain":"<16 hex digits>"}\n
//
// where chain_i = FNV-1a over record i's bytes, seeded with chain_{i-1}
// (genesis seed = the FNV-1a offset basis). Each line therefore commits
// to the entire log prefix: flipping any byte of any earlier record
// breaks every subsequent chain value, so a verifier that walks the file
// once knows exactly which record is the first bad one.
//
// Crash semantics: Append writes a whole line with a single buffered
// write + flush, so a crashed writer leaves at most one torn record — a
// final line without its newline (or with a broken structure and no
// newline). Open() detects that, truncates the tail back to the last
// good record, and resumes the chain from there; VerifyAuditLog reports
// it as a tolerated `torn_tail`. A malformed or chain-breaking record
// that is NOT a torn tail cannot be produced by a crash and is reported
// as corruption (StatusCode::kDataLoss, naming the record).
//
// Fault sites (util/fault.h): `audit.append` fails the append before any
// byte is written (the record is dropped, the chain stays valid);
// `audit.fsync` fails the durability step after a successful write.

#ifndef FAIRDRIFT_SERVE_AUDIT_AUDIT_LOG_H_
#define FAIRDRIFT_SERVE_AUDIT_AUDIT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace fairdrift {

/// Chain value of an empty log (FNV-1a 64-bit offset basis).
inline constexpr uint64_t kAuditChainSeed = 0xcbf29ce484222325ULL;

/// One FNV-1a step seeded with the previous chain value.
uint64_t Fnv1aChain(uint64_t seed, const char* data, size_t size);

struct AuditLogOptions {
  /// fsync after every append. Durable but slow; the audit writer runs
  /// on its own thread either way, so this never blocks scoring.
  bool fsync_each_append = false;
};

/// Result of walking a log's checksum chain.
struct AuditVerifyReport {
  uint64_t records = 0;     ///< Chain-verified records.
  uint64_t chain = kAuditChainSeed;  ///< Chain value after the last good record.
  uint64_t good_bytes = 0;  ///< File prefix covering the verified records.
  bool torn_tail = false;   ///< Incomplete final record (crashed writer).
  uint64_t torn_bytes = 0;  ///< Bytes past good_bytes when torn_tail.
};

/// Walks the whole chain. OK (possibly with torn_tail flagged) or
/// DataLoss naming the first corrupt record. A missing file is IoError.
Result<AuditVerifyReport> VerifyAuditLog(const std::string& path);

/// A verified record: the raw `rec` JSON plus its chain value.
struct AuditLogEntry {
  std::string rec;
  uint64_t chain = 0;
};

/// Reads and chain-verifies every record. On success `*report` (optional)
/// carries the verification detail, including a tolerated torn tail.
Result<std::vector<AuditLogEntry>> ReadAuditLog(const std::string& path,
                                                AuditVerifyReport* report);

/// The append-side writer. Thread-safe; the fleet auditor funnels all
/// appends through one thread anyway.
class AuditLog {
 public:
  /// Opens (creating if absent) and resumes the chain. An existing file
  /// is verified first: a torn tail is truncated away (see
  /// truncated_bytes()), mid-file corruption refuses to open with
  /// DataLoss — appending after corruption would bury the evidence.
  static Result<std::unique_ptr<AuditLog>> Open(
      const std::string& path, const AuditLogOptions& options = {});

  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Appends one record (a JSON object WITHOUT the chain envelope or
  /// newline; this wraps it). The full line is staged in a reused buffer
  /// and written with one fwrite + fflush, so a crash tears at most the
  /// final record. On failure (including the `audit.append` fault) the
  /// chain does not advance and no partial record is counted.
  Status Append(const std::string& record_json);

  /// fsyncs the file (also the `audit.fsync` fault site).
  Status Sync();

  uint64_t records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }
  uint64_t chain() const {
    std::lock_guard<std::mutex> lock(mu_);
    return chain_;
  }
  const std::string& path() const { return path_; }

  /// Torn-tail bytes discarded by Open's crash recovery; 0 normally.
  uint64_t truncated_bytes() const { return truncated_bytes_; }

 private:
  AuditLog(std::string path, AuditLogOptions options);

  mutable std::mutex mu_;
  std::string path_;
  AuditLogOptions options_;
  std::FILE* file_ = nullptr;
  uint64_t records_ = 0;
  uint64_t chain_ = kAuditChainSeed;
  uint64_t truncated_bytes_ = 0;
  std::string line_;  // Reused append staging buffer.
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_AUDIT_AUDIT_LOG_H_
