#include "serve/audit/audit_log.h"

#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/binary_io.h"
#include "util/fault.h"

namespace fairdrift {
namespace {

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// Envelope framing: {"rec":<rec>,"chain":"<16 hex>"}
constexpr char kPrefix[] = "{\"rec\":";
constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
constexpr char kChainTag[] = ",\"chain\":\"";
constexpr size_t kChainTagLen = sizeof(kChainTag) - 1;
// ,"chain":" + 16 hex + "}
constexpr size_t kSuffixLen = kChainTagLen + 16 + 2;

void AppendHex16(uint64_t v, std::string* out) {
  static constexpr char kHex[] = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[v & 0xF];
    v >>= 4;
  }
  out->append(buf, sizeof(buf));
}

bool ParseHex16(const char* p, uint64_t* out) {
  uint64_t v = 0;
  for (size_t i = 0; i < 16; ++i) {
    char c = p[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    v = (v << 4) | nibble;
  }
  *out = v;
  return true;
}

// Splits one complete line into (rec bytes, claimed chain). The framing
// is fixed-width at both ends, so this is exact, not a JSON parse.
bool SplitLine(const char* line, size_t len, const char** rec,
               size_t* rec_len, uint64_t* chain) {
  if (len < kPrefixLen + kSuffixLen) return false;
  if (std::memcmp(line, kPrefix, kPrefixLen) != 0) return false;
  const char* suffix = line + len - kSuffixLen;
  if (std::memcmp(suffix, kChainTag, kChainTagLen) != 0) return false;
  if (line[len - 2] != '"' || line[len - 1] != '}') return false;
  if (!ParseHex16(suffix + kChainTagLen, chain)) return false;
  *rec = line + kPrefixLen;
  *rec_len = len - kPrefixLen - kSuffixLen;
  return true;
}

std::string RecordName(uint64_t index) {
  return "audit log record " + std::to_string(index + 1);
}

// Walks the chain over the whole file image. Entries are optional.
Status WalkLog(const std::string& data, AuditVerifyReport* report,
               std::vector<AuditLogEntry>* entries) {
  *report = AuditVerifyReport();
  size_t pos = 0;
  while (pos < data.size()) {
    size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      // No newline: a crashed writer's torn final record. Tolerated and
      // flagged; the bytes are not part of the verified log.
      report->torn_tail = true;
      report->torn_bytes = data.size() - pos;
      break;
    }
    const char* rec;
    size_t rec_len;
    uint64_t claimed;
    if (!SplitLine(data.data() + pos, nl - pos, &rec, &rec_len, &claimed)) {
      // A complete (newline-terminated) but malformed line cannot come
      // from a torn single-write append: it is corruption.
      return Status::DataLoss(RecordName(report->records) +
                              " is malformed (corrupt log)");
    }
    uint64_t computed = Fnv1aChain(report->chain, rec, rec_len);
    if (computed != claimed) {
      return Status::DataLoss(RecordName(report->records) +
                              " breaks the checksum chain (corrupt log)");
    }
    if (entries != nullptr) {
      AuditLogEntry entry;
      entry.rec.assign(rec, rec_len);
      entry.chain = computed;
      entries->push_back(std::move(entry));
    }
    report->chain = computed;
    report->records += 1;
    report->good_bytes = nl + 1;
    pos = nl + 1;
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1aChain(uint64_t seed, const char* data, size_t size) {
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

Result<AuditVerifyReport> VerifyAuditLog(const std::string& path) {
  Result<std::string> data = ReadFileBytes(path);
  if (!data.ok()) return data.status();
  AuditVerifyReport report;
  Status s = WalkLog(data.value(), &report, nullptr);
  if (!s.ok()) return s;
  return report;
}

Result<std::vector<AuditLogEntry>> ReadAuditLog(const std::string& path,
                                                AuditVerifyReport* report) {
  Result<std::string> data = ReadFileBytes(path);
  if (!data.ok()) return data.status();
  AuditVerifyReport local;
  std::vector<AuditLogEntry> entries;
  Status s = WalkLog(data.value(), &local, &entries);
  if (!s.ok()) return s;
  if (report != nullptr) *report = local;
  return entries;
}

AuditLog::AuditLog(std::string path, AuditLogOptions options)
    : path_(std::move(path)), options_(options) {}

Result<std::unique_ptr<AuditLog>> AuditLog::Open(const std::string& path,
                                                 const AuditLogOptions& options) {
  std::unique_ptr<AuditLog> log(new AuditLog(path, options));

  // Resume an existing log: verify the chain, recover from a torn tail.
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe != nullptr) {
    std::fclose(probe);
    Result<std::string> data = ReadFileBytes(path);
    if (!data.ok()) return data.status();
    AuditVerifyReport report;
    Status s = WalkLog(data.value(), &report, nullptr);
    if (!s.ok()) return s;  // Mid-file corruption: refuse to append over it.
    if (report.torn_tail) {
      if (::truncate(path.c_str(), static_cast<off_t>(report.good_bytes)) !=
          0) {
        return Status::IoError("failed to truncate torn audit log tail: " +
                               path);
      }
      log->truncated_bytes_ = report.torn_bytes;
    }
    log->records_ = report.records;
    log->chain_ = report.chain;
  }

  log->file_ = std::fopen(path.c_str(), "ab");
  if (log->file_ == nullptr) {
    return Status::IoError("failed to open audit log for append: " + path);
  }
  return log;
}

AuditLog::~AuditLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status AuditLog::Append(const std::string& record_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("audit log is closed");
  }
  if (FAULT_POINT("audit.append")) {
    return Status::IoError("injected audit.append failure");
  }
  const uint64_t next = Fnv1aChain(chain_, record_json.data(),
                                   record_json.size());
  line_.clear();
  line_.append(kPrefix, kPrefixLen);
  line_.append(record_json);
  line_.append(kChainTag, kChainTagLen);
  AppendHex16(next, &line_);
  line_.append("\"}\n");
  if (std::fwrite(line_.data(), 1, line_.size(), file_) != line_.size()) {
    return Status::IoError("audit log append failed: " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("audit log flush failed: " + path_);
  }
  chain_ = next;
  records_ += 1;
  if (options_.fsync_each_append) {
    // The record is on its way either way; a failed fsync only means
    // durability, not integrity, so the chain stays advanced.
    if (FAULT_POINT("audit.fsync")) {
      return Status::IoError("injected audit.fsync failure");
    }
    if (::fsync(fileno(file_)) != 0) {
      return Status::IoError("audit log fsync failed: " + path_);
    }
  }
  return Status::OK();
}

Status AuditLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("audit log is closed");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("audit log flush failed: " + path_);
  }
  if (FAULT_POINT("audit.fsync")) {
    return Status::IoError("injected audit.fsync failure");
  }
  if (::fsync(fileno(file_)) != 0) {
    return Status::IoError("audit log fsync failed: " + path_);
  }
  return Status::OK();
}

}  // namespace fairdrift
