#include "serve/audit/audit_log.h"

#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/binary_io.h"
#include "util/fault.h"

namespace fairdrift {
namespace {

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// Envelope framing: {"rec":<rec>,"chain":"<16 hex>"}
constexpr char kPrefix[] = "{\"rec\":";
constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
constexpr char kChainTag[] = ",\"chain\":\"";
constexpr size_t kChainTagLen = sizeof(kChainTag) - 1;
// ,"chain":" + 16 hex + "}
constexpr size_t kSuffixLen = kChainTagLen + 16 + 2;

void AppendHex16(uint64_t v, std::string* out) {
  static constexpr char kHex[] = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[v & 0xF];
    v >>= 4;
  }
  out->append(buf, sizeof(buf));
}

bool ParseHex16(const char* p, uint64_t* out) {
  uint64_t v = 0;
  for (size_t i = 0; i < 16; ++i) {
    char c = p[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    v = (v << 4) | nibble;
  }
  *out = v;
  return true;
}

// Splits one complete line into (rec bytes, claimed chain). The framing
// is fixed-width at both ends, so this is exact, not a JSON parse.
bool SplitLine(const char* line, size_t len, const char** rec,
               size_t* rec_len, uint64_t* chain) {
  if (len < kPrefixLen + kSuffixLen) return false;
  if (std::memcmp(line, kPrefix, kPrefixLen) != 0) return false;
  const char* suffix = line + len - kSuffixLen;
  if (std::memcmp(suffix, kChainTag, kChainTagLen) != 0) return false;
  if (line[len - 2] != '"' || line[len - 1] != '}') return false;
  if (!ParseHex16(suffix + kChainTagLen, chain)) return false;
  *rec = line + kPrefixLen;
  *rec_len = len - kPrefixLen - kSuffixLen;
  return true;
}

std::string RecordName(uint64_t index) {
  return "audit log record " + std::to_string(index + 1);
}

// Walks the chain over one file image, starting from `seed` (the
// genesis seed for a standalone file; the previous segment's final
// chain value inside a rotated sequence). Entries are optional.
Status WalkLog(const std::string& data, uint64_t seed,
               AuditVerifyReport* report,
               std::vector<AuditLogEntry>* entries) {
  *report = AuditVerifyReport();
  report->chain = seed;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      // No newline: a crashed writer's torn final record. Tolerated and
      // flagged; the bytes are not part of the verified log.
      report->torn_tail = true;
      report->torn_bytes = data.size() - pos;
      break;
    }
    const char* rec;
    size_t rec_len;
    uint64_t claimed;
    if (!SplitLine(data.data() + pos, nl - pos, &rec, &rec_len, &claimed)) {
      // A complete (newline-terminated) but malformed line cannot come
      // from a torn single-write append: it is corruption.
      return Status::DataLoss(RecordName(report->records) +
                              " is malformed (corrupt log)");
    }
    uint64_t computed = Fnv1aChain(report->chain, rec, rec_len);
    if (computed != claimed) {
      return Status::DataLoss(RecordName(report->records) +
                              " breaks the checksum chain (corrupt log)");
    }
    if (entries != nullptr) {
      AuditLogEntry entry;
      entry.rec.assign(rec, rec_len);
      entry.chain = computed;
      entries->push_back(std::move(entry));
    }
    report->chain = computed;
    report->records += 1;
    report->good_bytes = nl + 1;
    pos = nl + 1;
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string SegmentPath(const std::string& path, uint64_t n) {
  return path + "." + std::to_string(n);
}

// Walks the full rotated sequence. `entries` optional.
Status WalkChainedLog(const std::string& path, AuditVerifyReport* report,
                      std::vector<AuditLogEntry>* entries) {
  std::vector<std::string> files = AuditLogRotatedSegments(path);
  // The active file may legitimately be absent only when rotated
  // segments exist (e.g. archived elsewhere before the next append).
  const bool active_exists = FileExists(path);
  if (active_exists || files.empty()) files.push_back(path);

  *report = AuditVerifyReport();
  report->segments = files.size();
  for (size_t i = 0; i < files.size(); ++i) {
    Result<std::string> data = ReadFileBytes(files[i]);
    if (!data.ok()) return data.status();
    AuditVerifyReport local;
    Status s = WalkLog(data.value(), report->chain, &local, entries);
    if (!s.ok()) {
      return Status::DataLoss("segment " + files[i] + ": " + s.message());
    }
    if (local.torn_tail && i + 1 != files.size()) {
      // Rotation only renames a cleanly written file; a torn tail in a
      // non-final segment cannot come from a crash mid-append.
      return Status::DataLoss("segment " + files[i] +
                              " has a torn tail before the final segment "
                              "(corrupt log)");
    }
    report->records += local.records;
    report->chain = local.chain;
    report->good_bytes = local.good_bytes;
    report->torn_tail = local.torn_tail;
    report->torn_bytes = local.torn_bytes;
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1aChain(uint64_t seed, const char* data, size_t size) {
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

Result<AuditVerifyReport> VerifyAuditLog(const std::string& path) {
  Result<std::string> data = ReadFileBytes(path);
  if (!data.ok()) return data.status();
  AuditVerifyReport report;
  Status s = WalkLog(data.value(), kAuditChainSeed, &report, nullptr);
  if (!s.ok()) return s;
  return report;
}

Result<std::vector<AuditLogEntry>> ReadAuditLog(const std::string& path,
                                                AuditVerifyReport* report) {
  Result<std::string> data = ReadFileBytes(path);
  if (!data.ok()) return data.status();
  AuditVerifyReport local;
  std::vector<AuditLogEntry> entries;
  Status s = WalkLog(data.value(), kAuditChainSeed, &local, &entries);
  if (!s.ok()) return s;
  if (report != nullptr) *report = local;
  return entries;
}

std::vector<std::string> AuditLogRotatedSegments(const std::string& path) {
  std::vector<std::string> segments;
  for (uint64_t n = 1;; ++n) {
    std::string segment = SegmentPath(path, n);
    if (!FileExists(segment)) break;
    segments.push_back(std::move(segment));
  }
  return segments;
}

Result<AuditVerifyReport> VerifyAuditLogChain(const std::string& path) {
  AuditVerifyReport report;
  Status s = WalkChainedLog(path, &report, nullptr);
  if (!s.ok()) return s;
  return report;
}

Result<std::vector<AuditLogEntry>> ReadAuditLogChain(
    const std::string& path, AuditVerifyReport* report) {
  AuditVerifyReport local;
  std::vector<AuditLogEntry> entries;
  Status s = WalkChainedLog(path, &local, &entries);
  if (!s.ok()) return s;
  if (report != nullptr) *report = local;
  return entries;
}

AuditLog::AuditLog(std::string path, AuditLogOptions options)
    : path_(std::move(path)), options_(options) {}

Result<std::unique_ptr<AuditLog>> AuditLog::Open(const std::string& path,
                                                 const AuditLogOptions& options) {
  std::unique_ptr<AuditLog> log(new AuditLog(path, options));

  // Resume rotated segments first: each must be clean (rotation never
  // leaves a torn segment behind), and its final chain value seeds the
  // next file.
  std::vector<std::string> segments = AuditLogRotatedSegments(path);
  for (const std::string& segment : segments) {
    Result<std::string> data = ReadFileBytes(segment);
    if (!data.ok()) return data.status();
    AuditVerifyReport report;
    Status s = WalkLog(data.value(), log->chain_, &report, nullptr);
    if (!s.ok()) {
      return Status::DataLoss("segment " + segment + ": " + s.message());
    }
    if (report.torn_tail) {
      return Status::DataLoss("segment " + segment +
                              " has a torn tail (corrupt rotated log)");
    }
    log->records_ += report.records;
    log->chain_ = report.chain;
  }
  log->rotated_segments_ = segments.size();

  // Resume the active file: verify the chain, recover from a torn tail.
  if (FileExists(path)) {
    Result<std::string> data = ReadFileBytes(path);
    if (!data.ok()) return data.status();
    AuditVerifyReport report;
    Status s = WalkLog(data.value(), log->chain_, &report, nullptr);
    if (!s.ok()) return s;  // Mid-file corruption: refuse to append over it.
    if (report.torn_tail) {
      if (::truncate(path.c_str(), static_cast<off_t>(report.good_bytes)) !=
          0) {
        return Status::IoError("failed to truncate torn audit log tail: " +
                               path);
      }
      log->truncated_bytes_ = report.torn_bytes;
    }
    log->records_ += report.records;
    log->chain_ = report.chain;
    log->segment_bytes_ = report.good_bytes;
  }

  log->file_ = std::fopen(path.c_str(), "ab");
  if (log->file_ == nullptr) {
    return Status::IoError("failed to open audit log for append: " + path);
  }
  return log;
}

AuditLog::~AuditLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status AuditLog::RotateLocked() {
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  std::string segment = SegmentPath(path_, rotated_segments_ + 1);
  if (std::rename(path_.c_str(), segment.c_str()) != 0) {
    // The record that triggered rotation is already durable in the
    // (still-active) file; reopen it and keep appending there.
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ == nullptr) {
      return Status::IoError("audit log rotation failed and reopen failed: " +
                             path_);
    }
    return Status::IoError("audit log rotation rename failed: " + path_);
  }
  rotated_segments_ += 1;
  segment_bytes_ = 0;
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError(
        "failed to open fresh audit log segment after rotation: " + path_);
  }
  return Status::OK();
}

Status AuditLog::Append(const std::string& record_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("audit log is closed");
  }
  if (FAULT_POINT(options_.append_fault_site)) {
    return Status::IoError(std::string("injected ") +
                           options_.append_fault_site + " failure");
  }
  const uint64_t next = Fnv1aChain(chain_, record_json.data(),
                                   record_json.size());
  line_.clear();
  line_.append(kPrefix, kPrefixLen);
  line_.append(record_json);
  line_.append(kChainTag, kChainTagLen);
  AppendHex16(next, &line_);
  line_.append("\"}\n");
  if (std::fwrite(line_.data(), 1, line_.size(), file_) != line_.size()) {
    return Status::IoError("audit log append failed: " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("audit log flush failed: " + path_);
  }
  chain_ = next;
  records_ += 1;
  segment_bytes_ += line_.size();
  if (options_.fsync_each_append) {
    // The record is on its way either way; a failed fsync only means
    // durability, not integrity, so the chain stays advanced.
    if (FAULT_POINT(options_.fsync_fault_site)) {
      return Status::IoError(std::string("injected ") +
                             options_.fsync_fault_site + " failure");
    }
    if (::fsync(fileno(file_)) != 0) {
      return Status::IoError("audit log fsync failed: " + path_);
    }
  }
  if (options_.rotate_bytes > 0 && segment_bytes_ >= options_.rotate_bytes) {
    return RotateLocked();
  }
  return Status::OK();
}

Status AuditLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("audit log is closed");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("audit log flush failed: " + path_);
  }
  if (FAULT_POINT(options_.fsync_fault_site)) {
    return Status::IoError(std::string("injected ") +
                           options_.fsync_fault_site + " failure");
  }
  if (::fsync(fileno(file_)) != 0) {
    return Status::IoError("audit log fsync failed: " + path_);
  }
  return Status::OK();
}

}  // namespace fairdrift
