#include "serve/audit/auditor.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace fairdrift {

// ---------------------------------------------------------------------------
// ShardAuditor

ShardAuditor::ShardAuditor(FleetAuditor* fleet, int32_t shard, size_t width)
    : fleet_(fleet),
      shard_(shard),
      width_(width),
      capture_rows_(fleet->log_ != nullptr &&
                    fleet->options_.row_logging != AuditRowLogging::kNone),
      acc_(fleet->options_.window_size, fleet->options_.alert) {
  if (capture_rows_) {
    const size_t w = acc_.window_size();
    win_rows_.resize(w * width_);
    win_groups_.resize(w);
    win_labels_.resize(w);
    win_preds_.resize(w);
    win_scores_.resize(w);
  }
}

void ShardAuditor::FoldBatch(const Matrix& rows, const ScoreResult* results,
                             const int* groups, const int* labels, size_t n,
                             AuditFoldOutcome* outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < n; ++i) {
    if (capture_rows_) {
      if (rows.cols() != width_) {
        rows_valid_ = false;
      } else {
        std::memcpy(win_rows_.data() + fill_ * width_, rows.RowPtr(i),
                    width_ * sizeof(double));
        win_groups_[fill_] = groups[i];
        win_labels_[fill_] = labels[i];
        win_preds_[fill_] = results[i].label;
        win_scores_[fill_] = results[i].probability;
      }
    }
    AuditObservation obs;
    obs.group = groups[i];
    obs.predicted = results[i].label;
    obs.true_label = labels[i];
    obs.score = results[i].probability;
    obs.snapshot_version = results[i].snapshot_version;
    obs.density_checked = results[i].density_checked;
    obs.density_outlier = results[i].density_outlier;
    const FairnessWindow* done = acc_.Fold(obs);
    ++fill_;
    if (done == nullptr) continue;

    if (outcome != nullptr) {
      outcome->windows += 1;
      if (done->breach) outcome->breaches += 1;
      if (done->alert_raised) outcome->alerts_raised += 1;
      if (!done->metrics.insufficient_groups) {
        outcome->has_metrics = true;
        outcome->di_star = done->metrics.di_star;
        outcome->spd = done->metrics.spd;
      }
    }
    const bool with_rows = capture_rows_ && rows_valid_;
    fleet_->OnWindowComplete(
        shard_, *done, width_, fill_,
        with_rows ? win_rows_.data() : nullptr,
        with_rows ? win_groups_.data() : nullptr,
        with_rows ? win_labels_.data() : nullptr,
        with_rows ? win_preds_.data() : nullptr,
        with_rows ? win_scores_.data() : nullptr);
    fill_ = 0;
    rows_valid_ = true;
  }
  if (outcome != nullptr) outcome->alert_active = acc_.alert_active();
}

uint64_t ShardAuditor::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acc_.observations();
}

uint64_t ShardAuditor::windows_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acc_.windows_completed();
}

uint64_t ShardAuditor::breaches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acc_.breaches();
}

uint64_t ShardAuditor::alerts_raised() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acc_.alerts_raised();
}

bool ShardAuditor::alert_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acc_.alert_active();
}

void ShardAuditor::SnapshotCumulative(AuditGroupTally* majority,
                                      AuditGroupTally* minority,
                                      AuditGroupTally* overall) const {
  std::lock_guard<std::mutex> lock(mu_);
  *majority = acc_.cumulative_majority();
  *minority = acc_.cumulative_minority();
  *overall = acc_.cumulative_overall();
}

// ---------------------------------------------------------------------------
// FleetAuditor

FleetAuditor::FleetAuditor(const AuditOptions& options) : options_(options) {
  if (options_.window_size == 0) options_.window_size = 1;
  if (options_.merge_horizon == 0) options_.merge_horizon = 1;
}

Result<std::unique_ptr<FleetAuditor>> FleetAuditor::Create(
    const AuditOptions& options, size_t num_shards, size_t row_width) {
  if (num_shards == 0) {
    return Status::InvalidArgument("fleet auditor needs at least one shard");
  }
  std::unique_ptr<FleetAuditor> auditor(new FleetAuditor(options));
  if (!options.log_path.empty()) {
    AuditLogOptions log_options;
    log_options.fsync_each_append = options.fsync_each_append;
    Result<std::unique_ptr<AuditLog>> log =
        AuditLog::Open(options.log_path, log_options);
    if (!log.ok()) return log.status();
    auditor->log_ = std::move(log.value());
  }
  auditor->shard_pending_.resize(num_shards);
  auditor->shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auditor->shards_.emplace_back(std::unique_ptr<ShardAuditor>(
        new ShardAuditor(auditor.get(), static_cast<int32_t>(s), row_width)));
  }
  auditor->writer_ = std::thread([raw = auditor.get()] { raw->WriterLoop(); });
  return auditor;
}

FleetAuditor::~FleetAuditor() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void FleetAuditor::OnWindowComplete(int32_t shard,
                                    const FairnessWindow& window, size_t width,
                                    size_t n, const double* rows,
                                    const int* groups, const int* labels,
                                    const int* preds, const double* scores) {
  const bool want_rows =
      log_ != nullptr && rows != nullptr &&
      (options_.row_logging == AuditRowLogging::kAll ||
       (options_.row_logging == AuditRowLogging::kFlaggedWindows &&
        window.breach));

  LogEntry* entry;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (free_.empty()) {
      pool_.push_back(std::unique_ptr<LogEntry>(new LogEntry()));
      entry = pool_.back().get();
    } else {
      entry = free_.back();
      free_.pop_back();
    }
  }

  entry->window_rec.shard = shard;
  entry->window_rec.window = window;
  entry->window_rec.policy = options_.alert;
  entry->window_rec.has_rows = want_rows;
  AuditRowsRecord& rr = entry->rows_rec;
  if (want_rows) {
    rr.shard = shard;
    rr.window_index = window.index;
    rr.width = width;
    rr.rows.assign(rows, rows + n * width);
    rr.groups.assign(groups, groups + n);
    rr.labels.assign(labels, labels + n);
    rr.preds.assign(preds, preds + n);
    rr.scores.assign(scores, scores + n);
  } else {
    rr.rows.clear();
    rr.groups.clear();
    rr.labels.clear();
    rr.preds.clear();
    rr.scores.clear();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(entry);
    ++pending_;
  }
  queue_cv_.notify_one();
}

void FleetAuditor::WriterLoop() {
  for (;;) {
    LogEntry* entry;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      entry = queue_.front();
      queue_.pop_front();
    }
    ProcessEntry(entry);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      free_.push_back(entry);
      --pending_;
    }
    drained_cv_.notify_all();
  }
}

void FleetAuditor::ProcessEntry(LogEntry* entry) {
  if (log_ != nullptr) {
    serialize_buf_.clear();
    SerializeTo(entry->window_rec, &serialize_buf_);
    AppendRecord(serialize_buf_);
    if (entry->window_rec.has_rows) {
      serialize_buf_.clear();
      SerializeTo(entry->rows_rec, &serialize_buf_);
      AppendRecord(serialize_buf_);
    }
  }
  MergeShardWindow(entry->window_rec.shard, entry->window_rec.window);
}

void FleetAuditor::MergeShardWindow(int32_t shard,
                                    const FairnessWindow& window) {
  if (shard < 0 || static_cast<size_t>(shard) >= shard_pending_.size()) return;
  shard_pending_[static_cast<size_t>(shard)].push_back(window);

  auto drop_stale = [this] {
    for (std::deque<FairnessWindow>& pending : shard_pending_) {
      while (!pending.empty() && pending.front().index < fleet_next_) {
        pending.pop_front();
        fleet_windows_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  drop_stale();

  for (;;) {
    bool complete = true;
    size_t max_lag = 0;
    for (const std::deque<FairnessWindow>& pending : shard_pending_) {
      max_lag = std::max(max_lag, pending.size());
      if (pending.empty() || pending.front().index != fleet_next_) {
        complete = false;
      }
    }
    if (!complete) {
      if (max_lag <= options_.merge_horizon) return;
      // A straggler shard is holding the merge frontier past the horizon:
      // abandon this fleet window and move on (dropped, not buffered).
      ++fleet_next_;
      drop_stale();
      continue;
    }

    // Every shard has its window `fleet_next_`: sum them in shard-index
    // order (deterministic score_sum association) into a fleet window.
    FairnessWindow fleet;
    fleet.index = fleet_next_;
    fleet.start_seq =
        fleet_next_ * static_cast<uint64_t>(options_.window_size) *
        static_cast<uint64_t>(shard_pending_.size());
    bool first = true;
    for (std::deque<FairnessWindow>& pending : shard_pending_) {
      const FairnessWindow& w = pending.front();
      fleet.size += w.size;
      fleet.majority.Add(w.majority);
      fleet.minority.Add(w.minority);
      fleet.overall.Add(w.overall);
      fleet.density_checked += w.density_checked;
      fleet.density_outliers += w.density_outliers;
      if (first) {
        fleet.snapshot_version_min = w.snapshot_version_min;
        fleet.snapshot_version_max = w.snapshot_version_max;
        first = false;
      } else {
        fleet.snapshot_version_min =
            std::min(fleet.snapshot_version_min, w.snapshot_version_min);
        fleet.snapshot_version_max =
            std::max(fleet.snapshot_version_max, w.snapshot_version_max);
      }
      pending.pop_front();
    }
    fleet.metrics = ComputeWindowMetrics(fleet.majority, fleet.minority);
    fleet.breach = WindowBreaches(fleet.metrics, options_.alert);
    if (fleet.breach) {
      fleet_breaches_.fetch_add(1, std::memory_order_relaxed);
      ++fleet_breach_streak_;
      fleet_clean_streak_ = 0;
    } else {
      ++fleet_clean_streak_;
      fleet_breach_streak_ = 0;
    }
    if (!fleet_alert_ && fleet_breach_streak_ >= options_.alert.trigger_windows) {
      fleet_alert_ = true;
      fleet.alert_raised = true;
      fleet_alerts_raised_.fetch_add(1, std::memory_order_relaxed);
    } else if (fleet_alert_ &&
               fleet_clean_streak_ >= options_.alert.clear_windows) {
      fleet_alert_ = false;
      fleet.alert_cleared = true;
    }
    fleet.alert_active = fleet_alert_;
    fleet_alert_active_.store(fleet_alert_, std::memory_order_relaxed);
    fleet_windows_.fetch_add(1, std::memory_order_relaxed);
    ++fleet_next_;

    if (log_ != nullptr) {
      AuditWindowRecord rec;
      rec.shard = -1;  // Fleet-merged window.
      rec.window = fleet;
      rec.policy = options_.alert;
      rec.has_rows = false;
      serialize_buf_.clear();
      SerializeTo(rec, &serialize_buf_);
      AppendRecord(serialize_buf_);
    }
  }
}

void FleetAuditor::AppendRecord(const std::string& json) {
  Status s = log_->Append(json);
  if (!s.ok()) {
    log_failures_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_mu_);
    last_error_ = s.message();
  }
}

Status FleetAuditor::Flush() {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drained_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  if (log_ != nullptr) return log_->Sync();
  return Status::OK();
}

FleetAuditView FleetAuditor::view() const {
  FleetAuditView v;
  v.enabled = options_.enabled;
  v.window_size = options_.window_size;
  v.log_path = options_.log_path;
  AuditGroupTally cum_majority, cum_minority, cum_overall;
  for (const std::unique_ptr<ShardAuditor>& shard : shards_) {
    v.observations += shard->observations();
    uint64_t windows = shard->windows_completed();
    v.windows += windows;
    v.shard_windows.push_back(windows);
    v.breaches += shard->breaches();
    v.alerts_raised += shard->alerts_raised();
    bool alerting = shard->alert_active();
    v.shard_alert_active.push_back(alerting ? 1 : 0);
    if (alerting) ++v.shards_alerting;
    AuditGroupTally maj, min, all;
    shard->SnapshotCumulative(&maj, &min, &all);
    cum_majority.Add(maj);
    cum_minority.Add(min);
    cum_overall.Add(all);
  }
  v.cumulative = ComputeWindowMetrics(cum_majority, cum_minority);
  v.fleet_windows = fleet_windows_.load(std::memory_order_relaxed);
  v.fleet_breaches = fleet_breaches_.load(std::memory_order_relaxed);
  v.fleet_alerts_raised = fleet_alerts_raised_.load(std::memory_order_relaxed);
  v.fleet_windows_dropped =
      fleet_windows_dropped_.load(std::memory_order_relaxed);
  v.fleet_alert_active = fleet_alert_active_.load(std::memory_order_relaxed);
  v.log_failures = log_failures_.load(std::memory_order_relaxed);
  if (log_ != nullptr) v.log_records = log_->records();
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    v.log_last_error = last_error_;
  }
  return v;
}

}  // namespace fairdrift
