// Fleet-wide fairness auditing: per-shard window accumulation, an async
// audit-log writer, and the shard->fleet window merger.
//
// Topology: one FleetAuditor owns N ShardAuditors (one per fleet shard)
// plus a single writer thread and the AuditLog. A shard's batch worker
// calls ShardAuditor::FoldBatch right after scoring; the fold is integer
// tallying under a per-shard mutex and allocates nothing in steady
// state. When a tumbling window completes, the shard copies it (and,
// when row logging is on, the window's raw rows/scores) into a pooled
// log entry and hands it to the writer thread — serialization,
// checksumming, file appends, and the fleet merge all happen off the
// scoring path, which is how audited serving stays within 1.1x of
// unaudited throughput.
//
// The fleet merger pairs window k from every shard and emits their sum
// as fleet window k (logged with shard = -1), with its own alert
// hysteresis. If shards drift more than `merge_horizon` windows apart
// (a stalled shard), unpairable windows are dropped and counted rather
// than buffered without bound.
//
// Failure stance: auditing never fails scoring. Append errors (real or
// injected via the `audit.append`/`audit.fsync` fault sites) are
// counted, surfaced through the view, and the writer keeps going — the
// chain stays valid because a failed append never half-writes.

#ifndef FAIRDRIFT_SERVE_AUDIT_AUDITOR_H_
#define FAIRDRIFT_SERVE_AUDIT_AUDITOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "linalg/matrix.h"
#include "serve/audit/audit_log.h"
#include "serve/audit/audit_records.h"
#include "serve/audit/fairness_window.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace fairdrift {

/// Which windows get a raw-rows record (the replay evidence).
enum class AuditRowLogging : uint8_t {
  kFlaggedWindows = 0,  ///< Only windows that breach the alert policy.
  kAll = 1,             ///< Every window (tests; heavyweight).
  kNone = 2,            ///< Metrics records only; replay unavailable.
};

/// Fleet-level audit configuration (FleetOptions::audit).
struct AuditOptions {
  bool enabled = false;
  /// Rows per tumbling window, per shard.
  size_t window_size = 1024;
  AlertPolicy alert;
  /// JSONL audit log path; empty keeps windows in memory only.
  std::string log_path;
  AuditRowLogging row_logging = AuditRowLogging::kFlaggedWindows;
  bool fsync_each_append = false;
  /// Max windows a lagging shard may fall behind before unpairable
  /// windows are dropped from the fleet merge (never from the log).
  size_t merge_horizon = 64;
};

/// What one FoldBatch call observed, for ServerStats.
struct AuditFoldOutcome {
  uint32_t windows = 0;        ///< Windows completed by this batch.
  uint32_t breaches = 0;
  uint32_t alerts_raised = 0;
  bool alert_active = false;   ///< Shard alert state after the batch.
  bool has_metrics = false;    ///< A completed window had both groups.
  double di_star = 1.0;        ///< Latest completed window's DI*.
  double spd = 0.0;            ///< Latest completed window's SPD.
};

/// Aggregated audit state for FleetStatsView / the CLI.
struct FleetAuditView {
  bool enabled = false;
  size_t window_size = 0;
  uint64_t observations = 0;   ///< Rows folded, fleet-wide.
  uint64_t windows = 0;        ///< Per-shard windows completed, summed.
  uint64_t breaches = 0;
  uint64_t alerts_raised = 0;
  size_t shards_alerting = 0;
  std::vector<uint8_t> shard_alert_active;
  std::vector<uint64_t> shard_windows;
  /// Whole-run metrics from summed per-shard cumulative tallies.
  WindowMetrics cumulative;
  uint64_t fleet_windows = 0;  ///< Merged all-shard windows emitted.
  uint64_t fleet_breaches = 0;
  uint64_t fleet_alerts_raised = 0;
  uint64_t fleet_windows_dropped = 0;  ///< Unpairable (straggler) windows.
  bool fleet_alert_active = false;
  uint64_t log_records = 0;
  uint64_t log_failures = 0;
  std::string log_last_error;
  std::string log_path;
};

class FleetAuditor;

/// Per-shard fold surface. Created and owned by FleetAuditor; a shard's
/// batch workers are the only callers of FoldBatch (serialized per shard
/// by the internal mutex — workers of one shard may race each other).
class ShardAuditor {
 public:
  /// Folds one scored batch. `results`/`groups`/`labels` are parallel
  /// arrays of length `n`; `rows` holds the batch's request rows (used
  /// only when row logging is on). `groups[i]` is the group id the
  /// audit uses (caller-resolved: explicit request metadata first, then
  /// the snapshot's group field); `labels[i]` is ground truth or -1.
  /// Never fails; `outcome` (optional) reports completed windows so the
  /// caller can fold them into its stats.
  void FoldBatch(const Matrix& rows, const ScoreResult* results,
                 const int* groups, const int* labels, size_t n,
                 AuditFoldOutcome* outcome);

  uint64_t observations() const;
  uint64_t windows_completed() const;
  uint64_t breaches() const;
  uint64_t alerts_raised() const;
  bool alert_active() const;

 private:
  friend class FleetAuditor;

  ShardAuditor(FleetAuditor* fleet, int32_t shard, size_t width);

  // Locked copy of the cumulative tallies (the fleet view sums these).
  void SnapshotCumulative(AuditGroupTally* majority, AuditGroupTally* minority,
                          AuditGroupTally* overall) const;

  FleetAuditor* fleet_;
  int32_t shard_;
  size_t width_;          // Expected row width for capture.
  bool capture_rows_;

  mutable std::mutex mu_;
  FairnessWindowAccumulator acc_;
  // Raw-row capture for the in-progress window (preallocated).
  size_t fill_ = 0;
  bool rows_valid_ = true;  // False when a batch's width surprised us.
  std::vector<double> win_rows_;
  std::vector<int> win_groups_;
  std::vector<int> win_labels_;
  std::vector<int> win_preds_;
  std::vector<double> win_scores_;
};

/// Owns the shard auditors, the writer thread, the log, and the merger.
/// Must outlive the servers whose options point at its shards.
class FleetAuditor {
 public:
  /// `row_width` is the serving snapshot's num_features (row capture
  /// buffers are sized once from it).
  static Result<std::unique_ptr<FleetAuditor>> Create(
      const AuditOptions& options, size_t num_shards, size_t row_width);

  /// Drains queued windows, joins the writer, closes the log.
  ~FleetAuditor();

  FleetAuditor(const FleetAuditor&) = delete;
  FleetAuditor& operator=(const FleetAuditor&) = delete;

  ShardAuditor* shard(size_t i) { return shards_[i].get(); }
  size_t num_shards() const { return shards_.size(); }
  const AuditOptions& options() const { return options_; }

  /// Blocks until every queued window has been processed, then syncs the
  /// log. Returns the sync status (append failures are reported through
  /// view(), not here).
  Status Flush();

  FleetAuditView view() const;

 private:
  // One queued unit of writer work: a completed shard window plus (when
  // row logging captured it) the raw rows. Pooled and recycled.
  struct LogEntry {
    AuditWindowRecord window_rec;
    AuditRowsRecord rows_rec;
  };

  explicit FleetAuditor(const AuditOptions& options);

  // Called by ShardAuditor under its shard lock at window completion.
  // Row pointers are null when this window has no row capture.
  void OnWindowComplete(int32_t shard, const FairnessWindow& window,
                        size_t width, size_t n, const double* rows,
                        const int* groups, const int* labels,
                        const int* preds, const double* scores);

  void WriterLoop();
  void ProcessEntry(LogEntry* entry);
  void MergeShardWindow(int32_t shard, const FairnessWindow& window);
  void AppendRecord(const std::string& json);

  friend class ShardAuditor;

  AuditOptions options_;
  std::vector<std::unique_ptr<ShardAuditor>> shards_;
  std::unique_ptr<AuditLog> log_;

  // Writer queue + entry pool.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<LogEntry*> queue_;
  std::vector<std::unique_ptr<LogEntry>> pool_;
  std::vector<LogEntry*> free_;
  size_t pending_ = 0;
  bool stop_ = false;
  std::thread writer_;

  // Writer-thread-only merge state.
  std::vector<std::deque<FairnessWindow>> shard_pending_;
  uint64_t fleet_next_ = 0;
  size_t fleet_breach_streak_ = 0;
  size_t fleet_clean_streak_ = 0;
  bool fleet_alert_ = false;
  std::string serialize_buf_;  // Reused record serialization buffer.

  // View counters (writer thread publishes, view() reads).
  std::atomic<uint64_t> fleet_windows_{0};
  std::atomic<uint64_t> fleet_breaches_{0};
  std::atomic<uint64_t> fleet_alerts_raised_{0};
  std::atomic<uint64_t> fleet_windows_dropped_{0};
  std::atomic<bool> fleet_alert_active_{false};
  std::atomic<uint64_t> log_failures_{0};
  mutable std::mutex error_mu_;
  std::string last_error_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_AUDIT_AUDITOR_H_
