#include "serve/server_stats.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "serve/audit/auditor.h"

namespace fairdrift {

namespace {

/// Smoothing factor of the batch-latency EWMA: ~the last 10 batches
/// dominate, so the admission cost signal tracks load shifts quickly
/// without flapping on one slow batch.
constexpr double kEwmaAlpha = 0.2;

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

const char* ServerStats::StageName(size_t stage) {
  switch (stage) {
    case 0: return "queue_wait";
    case 1: return "batch_assemble";
    case 2: return "score";
    case 3: return "audit_fold";
  }
  return "unknown";
}

size_t ServerStats::LatencyBucket(std::chrono::nanoseconds latency) {
  int64_t ns = latency.count();
  if (ns < 1) ns = 1;
  double idx = std::log2(static_cast<double>(ns)) * 4.0;
  if (idx < 0.0) idx = 0.0;
  return std::min(kLatencyBuckets - 1, static_cast<size_t>(idx));
}

double ServerStats::BucketLatencyUs(size_t bucket) {
  // Inverse of LatencyBucket at the bucket's geometric midpoint.
  return std::exp2((static_cast<double>(bucket) + 0.5) / 4.0) * 1e-3;
}

void ServerStats::RecordCompletion(std::chrono::nanoseconds latency) {
  completed_.fetch_add(1, rel());
  latency_hist_[LatencyBucket(latency)].fetch_add(1, rel());
}

void ServerStats::RecordBatch(size_t batch_size) {
  if (batch_size == 0) return;
  batches_.fetch_add(1, rel());
  batched_requests_.fetch_add(batch_size, rel());
  size_t bucket = 0;
  while ((size_t{1} << (bucket + 1)) <= batch_size &&
         bucket + 1 < kBatchBuckets) {
    ++bucket;
  }
  batch_hist_[bucket].fetch_add(1, rel());
}

void ServerStats::RecordBatch(size_t batch_size,
                              std::chrono::nanoseconds latency) {
  RecordBatch(batch_size);
  double sample = static_cast<double>(std::max<int64_t>(latency.count(), 1));
  uint64_t expected = ewma_batch_ns_bits_.load(rel());
  for (;;) {
    double updated = expected == 0
                         ? sample
                         : BitsToDouble(expected) +
                               kEwmaAlpha * (sample - BitsToDouble(expected));
    if (ewma_batch_ns_bits_.compare_exchange_weak(
            expected, DoubleToBits(updated), rel(), rel())) {
      return;
    }
  }
}

void ServerStats::RecordDensity(uint64_t checked, uint64_t outliers) {
  if (checked == 0) return;
  density_checked_.fetch_add(checked, rel());
  density_outliers_.fetch_add(outliers, rel());
  double sample =
      static_cast<double>(outliers) / static_cast<double>(checked);
  uint64_t expected = ewma_outlier_rate_bits_.load(rel());
  for (;;) {
    double updated = expected == ~uint64_t{0}
                         ? sample
                         : BitsToDouble(expected) +
                               kEwmaAlpha * (sample - BitsToDouble(expected));
    if (ewma_outlier_rate_bits_.compare_exchange_weak(
            expected, DoubleToBits(updated), rel(), rel())) {
      return;
    }
  }
}

void ServerStats::RecordStageLatency(size_t stage,
                                     std::chrono::nanoseconds latency) {
  if (stage >= kServeStages) return;
  stage_hist_[stage][LatencyBucket(latency)].fetch_add(1, rel());
}

void ServerStats::RecordAuditFold(const AuditFoldOutcome& outcome) {
  if (outcome.windows == 0) return;
  audit_windows_.fetch_add(outcome.windows, rel());
  audit_breaches_.fetch_add(outcome.breaches, rel());
  audit_alerts_raised_.fetch_add(outcome.alerts_raised, rel());
  audit_alert_active_.store(outcome.alert_active ? 1 : 0, rel());
  if (outcome.has_metrics) {
    audit_last_di_star_bits_.store(DoubleToBits(outcome.di_star), rel());
    audit_last_spd_bits_.store(DoubleToBits(outcome.spd), rel());
  }
}

double ServerStats::EwmaOutlierRate() const {
  uint64_t bits = ewma_outlier_rate_bits_.load(rel());
  return bits == ~uint64_t{0} ? 0.0 : BitsToDouble(bits);
}

double ServerStats::PercentileUsFromHist(const std::vector<uint64_t>& hist,
                                         double q) {
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  if (total == 0) return 0.0;
  uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < hist.size(); ++b) {
    seen += hist[b];
    if (seen >= target) return BucketLatencyUs(b);
  }
  return BucketLatencyUs(hist.empty() ? 0 : hist.size() - 1);
}

double ServerStats::EwmaBatchLatencyNs() const {
  uint64_t bits = ewma_batch_ns_bits_.load(rel());
  return bits == 0 ? 0.0 : BitsToDouble(bits);
}

ServerStats::View ServerStats::Snapshot() const {
  View view;
  view.submitted = submitted_.load(rel());
  view.completed = completed_.load(rel());
  view.shed_admission = shed_admission_.load(rel());
  view.shed_deadline = shed_deadline_.load(rel());
  view.invalid = invalid_.load(rel());
  view.batches = batches_.load(rel());
  view.snapshot_swaps = snapshot_swaps_.load(rel());
  uint64_t batched = batched_requests_.load(rel());
  view.mean_batch_size =
      view.batches == 0
          ? 0.0
          : static_cast<double>(batched) / static_cast<double>(view.batches);

  view.latency_hist.resize(kLatencyBuckets);
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    view.latency_hist[b] = latency_hist_[b].load(rel());
  }
  view.p50_latency_us = PercentileUsFromHist(view.latency_hist, 0.50);
  view.p95_latency_us = PercentileUsFromHist(view.latency_hist, 0.95);
  view.p99_latency_us = PercentileUsFromHist(view.latency_hist, 0.99);
  view.ewma_batch_latency_us = EwmaBatchLatencyNs() * 1e-3;
  view.density_checked = density_checked_.load(rel());
  view.density_outliers = density_outliers_.load(rel());
  view.ewma_outlier_rate = EwmaOutlierRate();
  view.audit_windows = audit_windows_.load(rel());
  view.audit_breaches = audit_breaches_.load(rel());
  view.audit_alerts_raised = audit_alerts_raised_.load(rel());
  view.audit_alert_active = audit_alert_active_.load(rel()) != 0;
  uint64_t di_bits = audit_last_di_star_bits_.load(rel());
  if (di_bits != ~uint64_t{0}) {
    view.audit_has_metrics = true;
    view.audit_last_di_star = BitsToDouble(di_bits);
    view.audit_last_spd = BitsToDouble(audit_last_spd_bits_.load(rel()));
  }

  view.batch_size_hist.resize(kBatchBuckets);
  for (size_t b = 0; b < kBatchBuckets; ++b) {
    view.batch_size_hist[b] = batch_hist_[b].load(rel());
  }

  view.trace_sampled = trace_sampled_.load(rel());
  view.trace_append_failures = trace_append_failures_.load(rel());
  for (size_t s = 0; s < kServeStages; ++s) {
    view.stage_hist[s].resize(kLatencyBuckets);
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      view.stage_hist[s][b] = stage_hist_[s][b].load(rel());
    }
    view.stage_p99_us[s] = PercentileUsFromHist(view.stage_hist[s], 0.99);
  }
  return view;
}

Status ServerStats::MergeHistogramInto(std::vector<uint64_t>* dst,
                                       const std::vector<uint64_t>& src) {
  if (dst == nullptr) {
    return Status::InvalidArgument("MergeHistogramInto: null destination");
  }
  if (dst->size() != src.size()) {
    return Status::InvalidArgument(
        "histogram bucket counts disagree (" + std::to_string(dst->size()) +
        " vs " + std::to_string(src.size()) +
        "); refusing an element-wise merge");
  }
  for (size_t b = 0; b < src.size(); ++b) (*dst)[b] += src[b];
  return Status::OK();
}

}  // namespace fairdrift
