// Bounded MPMC queue of pending score requests.
//
// Producers are client threads calling ScoringServer::Submit; consumers are
// the server's dispatch loop(s) popping coalesced batches through
// MicroBatcher. The bound is the admission controller's hard queue-depth
// limit: TryPush never blocks — a full queue is an overload signal handled
// by shedding, not by back-pressuring the client thread.

#ifndef FAIRDRIFT_SERVE_REQUEST_QUEUE_H_
#define FAIRDRIFT_SERVE_REQUEST_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/ticket.h"

namespace fairdrift {

/// Optional per-request audit metadata (serve/audit/). A non-negative
/// `group` overrides the group the snapshot extracts from the row's own
/// group field; `label` is the ground-truth outcome when the caller
/// already knows it (delayed-feedback pipelines attach it at submit time
/// so equalized-odds windows are live), -1 = unlabeled.
struct RequestAuditInfo {
  int group = -1;
  int label = -1;
};

/// One enqueued request: the raw row, its timing, and its response ticket.
struct PendingRequest {
  std::vector<double> row;
  std::chrono::steady_clock::time_point enqueue_time;
  /// Absolute shed deadline; time_point::max() = none.
  std::chrono::steady_clock::time_point deadline;
  std::shared_ptr<serve_internal::TicketState> ticket;
  /// Audit metadata folded into the fairness windows after scoring.
  RequestAuditInfo audit;
};

/// Thread-safe bounded FIFO with batch pop and close semantics.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  /// Enqueues unless the queue is full or closed. Returns false in both
  /// refusal cases (callers distinguish via closed()).
  bool TryPush(PendingRequest&& request);

  /// Pops up to `max_items`. Blocks until at least one request is
  /// available (or the queue is closed and drained — then returns 0).
  /// After securing the first request, keeps absorbing arrivals until
  /// `max_items` are gathered or `max_wait` has elapsed since the first
  /// pop — the micro-batching coalescing window.
  size_t PopBatch(size_t max_items, std::chrono::nanoseconds max_wait,
                  std::vector<PendingRequest>* out);

  /// Marks the queue closed: further TryPush calls refuse, blocked
  /// PopBatch callers drain what remains and then return 0.
  void Close();

  /// One-lock snapshot of the observable state (for admission policy:
  /// reading size and closed separately would take the mutex twice per
  /// Submit, and the pair is a racy pre-check either way — TryPush
  /// re-checks both authoritatively).
  struct State {
    size_t size = 0;
    bool closed = false;
  };
  State Observe() const;

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Requests PopBatch has handed out that the consumer has not yet
  /// acknowledged via AckCheckedOut. The increment happens under the
  /// same mutex hold that removes the item, so at every instant an
  /// admitted request is visible in size() or in checked_out() — the
  /// conservation invariant the fleet's drain barrier
  /// (ScoringServer::Quiesce) relies on to certify that nothing is
  /// hidden inside the micro-batcher's coalescing window or the
  /// dispatcher's hand-off to a batch worker.
  size_t checked_out() const {
    return checked_out_.load(std::memory_order_acquire);
  }

  /// Consumer acknowledgment: `n` popped requests have been fully
  /// processed (tickets fulfilled). Called by the batch workers after
  /// scoring.
  void AckCheckedOut(size_t n) {
    checked_out_.fetch_sub(n, std::memory_order_acq_rel);
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<PendingRequest> items_;
  std::atomic<size_t> checked_out_{0};
  bool closed_ = false;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_REQUEST_QUEUE_H_
