#include "serve/admission.h"

#include <chrono>
#include <cmath>

namespace fairdrift {

Status AdmissionController::Admit(
    const RequestQueue& queue, std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point deadline,
    double ewma_batch_latency_ns, size_t max_batch_size,
    size_t concurrent_batches) const {
  if (deadline <= now) {
    return Status::DeadlineExceeded("admission: deadline already passed");
  }
  RequestQueue::State state = queue.Observe();  // one lock, both facts
  if (state.closed) {
    return Status::Unavailable("admission: server stopped");
  }
  if (state.size >= options_.max_queue_depth) {
    return Status::Unavailable("admission: queue depth limit reached");
  }
  if (options_.cost_aware && ewma_batch_latency_ns > 0.0 &&
      deadline != std::chrono::steady_clock::time_point::max()) {
    // The request waits behind floor(size / max_batch_size) *full*
    // batches, up to concurrent_batches of which score at once — each
    // wave costs about one EWMA batch latency. Deadlines are enforced
    // only until the request's own batch starts scoring (the worker's
    // cull), so neither its own batch nor the partial batch it would
    // coalesce into is counted: an idle or lightly loaded server never
    // refuses tight-deadline traffic. A request whose deadline the
    // queue-drain prediction already overruns would only expire in the
    // queue — shed it at the door instead.
    size_t batch = max_batch_size == 0 ? 1 : max_batch_size;
    size_t lanes = concurrent_batches == 0 ? 1 : concurrent_batches;
    size_t full_batches_ahead = state.size / batch;
    double waves = std::ceil(static_cast<double>(full_batches_ahead) /
                             static_cast<double>(lanes));
    auto predicted_wait = std::chrono::nanoseconds(
        static_cast<int64_t>(waves * ewma_batch_latency_ns));
    if (now + predicted_wait > deadline) {
      return Status::DeadlineExceeded(
          "admission: predicted queue wait exceeds the request deadline");
    }
  }
  return Status::OK();
}

std::chrono::steady_clock::time_point AdmissionController::ResolveDeadline(
    std::chrono::steady_clock::time_point now,
    std::chrono::nanoseconds deadline_after) const {
  if (deadline_after.count() <= 0) {
    if (options_.default_deadline.count() <= 0) {
      return std::chrono::steady_clock::time_point::max();
    }
    return now + options_.default_deadline;
  }
  return now + deadline_after;
}

}  // namespace fairdrift
