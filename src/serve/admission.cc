#include "serve/admission.h"

namespace fairdrift {

Status AdmissionController::Admit(
    const RequestQueue& queue, std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point deadline) const {
  if (deadline <= now) {
    return Status::DeadlineExceeded("admission: deadline already passed");
  }
  RequestQueue::State state = queue.Observe();  // one lock, both facts
  if (state.closed) {
    return Status::Unavailable("admission: server stopped");
  }
  if (state.size >= options_.max_queue_depth) {
    return Status::Unavailable("admission: queue depth limit reached");
  }
  return Status::OK();
}

std::chrono::steady_clock::time_point AdmissionController::ResolveDeadline(
    std::chrono::steady_clock::time_point now,
    std::chrono::nanoseconds deadline_after) const {
  if (deadline_after.count() <= 0) {
    if (options_.default_deadline.count() <= 0) {
      return std::chrono::steady_clock::time_point::max();
    }
    return now + options_.default_deadline;
  }
  return now + deadline_after;
}

}  // namespace fairdrift
