#include "serve/request_queue.h"

#include "util/fault.h"

namespace fairdrift {

bool RequestQueue::TryPush(PendingRequest&& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(request));
  }
  ready_.notify_one();
  return true;
}

size_t RequestQueue::PopBatch(size_t max_items,
                              std::chrono::nanoseconds max_wait,
                              std::vector<PendingRequest>* out) {
  if (max_items == 0) return 0;
  // Fault site: kDelay rules stall the dispatcher here (before the lock)
  // to widen the pop-to-ack window the drain barrier must cover.
  (void)FAULT_POINT("queue.pop");
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return 0;  // closed and drained

  size_t popped = 0;
  auto take_available = [&] {
    while (popped < max_items && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      // Under the same mutex hold that shrinks items_: an observer never
      // sees a request in neither size() nor checked_out().
      checked_out_.fetch_add(1, std::memory_order_acq_rel);
      ++popped;
    }
  };
  take_available();

  // Coalescing window: absorb arrivals until the batch fills or the
  // window since the first pop elapses. A closed queue ends the window
  // early — shutdown should not pay the full batching delay. (Every exit
  // path leaves nothing takeable: the in-loop drain runs under the same
  // lock hold as the predicate that admitted it.)
  auto window_end = std::chrono::steady_clock::now() + max_wait;
  while (popped < max_items && !closed_) {
    if (!ready_.wait_until(lock, window_end, [this] {
          return closed_ || !items_.empty();
        })) {
      break;  // window elapsed
    }
    take_available();
  }
  return popped;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

RequestQueue::State RequestQueue::Observe() const {
  std::lock_guard<std::mutex> lock(mu_);
  return State{items_.size(), closed_};
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace fairdrift
