// AdmissionController: shed-on-overload at the server's front door.
//
// A bounded queue plus typed refusals keep the serving process stable
// under overload: rather than letting latency grow without bound, excess
// requests are refused *synchronously* at Submit with
// Status::Unavailable (queue depth exceeded) or Status::DeadlineExceeded
// (the request's deadline already passed — scoring it would be wasted
// work). Requests that pass admission can still be shed later by the
// batch worker if their deadline expires while queued.
//
// Cost-aware shedding: beyond the raw depth bound, Admit predicts the
// request's queueing delay — the batches already ahead of it times the
// EWMA batch scoring latency from ServerStats — and refuses deadlined
// requests that would predictably expire before a worker reaches them.
// Under heavy overload this sheds at the door instead of letting doomed
// requests consume queue slots and batch culling work.

#ifndef FAIRDRIFT_SERVE_ADMISSION_H_
#define FAIRDRIFT_SERVE_ADMISSION_H_

#include <chrono>

#include "serve/request_queue.h"
#include "util/status.h"

namespace fairdrift {

/// Admission policy knobs.
struct AdmissionOptions {
  /// Hard bound on queued requests (the RequestQueue capacity). Submits
  /// beyond it shed with Status::Unavailable.
  size_t max_queue_depth = 4096;
  /// Deadline attached to requests submitted without one. Zero = none.
  std::chrono::microseconds default_deadline{0};
  /// Shed deadlined requests whose *predicted* queue wait (batches ahead
  /// x EWMA batch latency) already exceeds their deadline. Only bites
  /// once the server has scored at least one batch (the EWMA has a
  /// sample) and the request carries a deadline.
  bool cost_aware = true;
};

/// Stateless front-door policy over a RequestQueue's observable state.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}

  /// Decides whether a request with `deadline` (time_point::max() = none)
  /// may enter `queue` as of `now`. OK means "attempt the push" — a racing
  /// fill can still refuse, which the server reports as the same typed
  /// Unavailable. `ewma_batch_latency_ns` (ServerStats::EwmaBatchLatencyNs;
  /// 0 = no signal yet), `max_batch_size`, and `concurrent_batches` (the
  /// server's in-flight batch limit) feed the cost-aware prediction:
  /// with Q requests queued, the request waits behind
  /// floor(Q/max_batch_size) full batches draining `concurrent_batches`
  /// at a time, each wave costing ~the EWMA. Neither the request's own
  /// batch nor the partial batch it would coalesce into is counted —
  /// deadlines stop applying once its batch starts scoring — so idle and
  /// lightly loaded servers never cost-shed. If the predicted wait
  /// overruns the deadline, the request is shed now with
  /// Status::DeadlineExceeded instead of expiring in the queue.
  Status Admit(const RequestQueue& queue,
               std::chrono::steady_clock::time_point now,
               std::chrono::steady_clock::time_point deadline,
               double ewma_batch_latency_ns = 0.0,
               size_t max_batch_size = 1,
               size_t concurrent_batches = 1) const;

  /// Resolves a caller-relative deadline against the default policy:
  /// zero → default_deadline (or none when that is zero too).
  std::chrono::steady_clock::time_point ResolveDeadline(
      std::chrono::steady_clock::time_point now,
      std::chrono::nanoseconds deadline_after) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_ADMISSION_H_
