// AdmissionController: shed-on-overload at the server's front door.
//
// A bounded queue plus typed refusals keep the serving process stable
// under overload: rather than letting latency grow without bound, excess
// requests are refused *synchronously* at Submit with
// Status::Unavailable (queue depth exceeded) or Status::DeadlineExceeded
// (the request's deadline already passed — scoring it would be wasted
// work). Requests that pass admission can still be shed later by the
// batch worker if their deadline expires while queued.

#ifndef FAIRDRIFT_SERVE_ADMISSION_H_
#define FAIRDRIFT_SERVE_ADMISSION_H_

#include <chrono>

#include "serve/request_queue.h"
#include "util/status.h"

namespace fairdrift {

/// Admission policy knobs.
struct AdmissionOptions {
  /// Hard bound on queued requests (the RequestQueue capacity). Submits
  /// beyond it shed with Status::Unavailable.
  size_t max_queue_depth = 4096;
  /// Deadline attached to requests submitted without one. Zero = none.
  std::chrono::microseconds default_deadline{0};
};

/// Stateless front-door policy over a RequestQueue's observable state.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}

  /// Decides whether a request with `deadline` (time_point::max() = none)
  /// may enter `queue` as of `now`. OK means "attempt the push" — a racing
  /// fill can still refuse, which the server reports as the same typed
  /// Unavailable.
  Status Admit(const RequestQueue& queue,
               std::chrono::steady_clock::time_point now,
               std::chrono::steady_clock::time_point deadline) const;

  /// Resolves a caller-relative deadline against the default policy:
  /// zero → default_deadline (or none when that is zero too).
  std::chrono::steady_clock::time_point ResolveDeadline(
      std::chrono::steady_clock::time_point now,
      std::chrono::nanoseconds deadline_after) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_ADMISSION_H_
