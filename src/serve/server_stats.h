// ServerStats: the scoring server's observable health block.
//
// Counters and histograms are plain atomics — recording from many client
// and worker threads never takes a lock. Latency lands in a log-scale
// histogram (4 buckets per octave of nanoseconds, ≤ ~19% quantile error)
// from which p50/p95/p99 are derived; batch sizes land in power-of-two
// buckets so the batching behavior (did coalescing actually happen?) is
// visible, not just the mean.

#ifndef FAIRDRIFT_SERVE_SERVER_STATS_H_
#define FAIRDRIFT_SERVE_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace fairdrift {

struct AuditFoldOutcome;  // serve/audit/auditor.h

/// Thread-safe statistics sink for one ScoringServer.
class ServerStats {
 public:
  /// 4 buckets per factor-of-2 in nanoseconds; 256 buckets span 1ns to
  /// ~2^64 ns, far beyond any realistic request latency.
  static constexpr size_t kLatencyBuckets = 256;
  /// Power-of-two batch-size buckets: bucket b holds sizes in
  /// [2^b, 2^(b+1)).
  static constexpr size_t kBatchBuckets = 16;
  /// Pipeline stages with their own latency histogram (trace-stamped
  /// durations): 0 queue_wait (enqueue→dequeue), 1 batch_assemble
  /// (dequeue→scratch staged), 2 score (staged→scored), 3 audit_fold
  /// (scored→stats/audit folded). Recorded only for trace-sampled
  /// requests, so each is an unbiased (content-hash) sample of the
  /// stage's true distribution at ~1/modulus the recording cost.
  static constexpr size_t kServeStages = 4;

  /// Stable stage key for exposition ("queue_wait", ...).
  static const char* StageName(size_t stage);

  void RecordSubmitted() { submitted_.fetch_add(1, rel()); }
  void RecordAdmissionShed() { shed_admission_.fetch_add(1, rel()); }
  void RecordDeadlineShed() { shed_deadline_.fetch_add(1, rel()); }
  void RecordInvalidRequest() { invalid_.fetch_add(1, rel()); }
  void RecordSnapshotSwap() { snapshot_swaps_.fetch_add(1, rel()); }

  /// One completed request with its submit→fulfill latency.
  void RecordCompletion(std::chrono::nanoseconds latency);

  /// One scored batch of `batch_size` requests.
  void RecordBatch(size_t batch_size);

  /// One scored batch plus its wall-clock scoring latency; feeds the
  /// EWMA the cost-aware admission policy consults.
  void RecordBatch(size_t batch_size, std::chrono::nanoseconds latency);

  /// Exponentially weighted moving average of batch scoring latency in
  /// nanoseconds; 0 until the first batch completes. Lock-free (a CAS
  /// loop over the double's bit pattern) — safe to read on the Submit
  /// hot path.
  double EwmaBatchLatencyNs() const;

  /// Density-monitor outcome of one scored batch: `checked` rows were
  /// evaluated against the floor (all rows in exact/bounded modes, the
  /// hash sample in sampled mode), `outliers` of them fell below it.
  /// No-op when checked == 0 — an unsampled batch must not decay the
  /// outlier-rate EWMA toward zero.
  void RecordDensity(uint64_t checked, uint64_t outliers);

  /// EWMA of the per-batch outlier fraction; 0 until the first checked
  /// batch. Under sampled monitoring this is the bounded-staleness drift
  /// signal: fresh to within ~sample_modulus * batch-size requests.
  double EwmaOutlierRate() const;

  /// What one batch's fairness-audit fold produced (serve/audit/): window
  /// completions, breaches, alert transitions, and the latest completed
  /// window's headline metrics. No-op when the fold completed no window.
  void RecordAuditFold(const AuditFoldOutcome& outcome);

  /// One trace-sampled request's time in pipeline stage `stage`
  /// (< kServeStages).
  void RecordStageLatency(size_t stage, std::chrono::nanoseconds latency);

  /// One request selected by the trace sampler at admission.
  void RecordTraceSampled() { trace_sampled_.fetch_add(1, rel()); }

  /// One sampled span record lost to a failed trace-log append. The
  /// chain stays valid and scoring is unaffected; this counter is the
  /// only evidence.
  void RecordTraceAppendFailure() {
    trace_append_failures_.fetch_add(1, rel());
  }

  /// Consistent-enough copy of all counters plus derived percentiles.
  /// (Counters are read individually; a view taken while traffic is in
  /// flight may be mid-request, which is fine for monitoring.)
  struct View {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t shed_admission = 0;
    uint64_t shed_deadline = 0;
    uint64_t invalid = 0;
    uint64_t batches = 0;
    uint64_t snapshot_swaps = 0;
    double mean_batch_size = 0.0;
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    /// EWMA of batch scoring latency (the admission cost signal).
    double ewma_batch_latency_us = 0.0;
    /// Rows the density monitor actually evaluated (= completed rows in
    /// exact/bounded modes; the hash-selected subset in sampled mode).
    uint64_t density_checked = 0;
    /// Checked rows that fell below the density floor.
    uint64_t density_outliers = 0;
    /// EWMA of the per-batch outlier fraction (0 until a checked batch).
    double ewma_outlier_rate = 0.0;
    /// Fairness-audit windows this server completed (0 when unaudited).
    uint64_t audit_windows = 0;
    /// Completed windows whose metrics breached the alert policy.
    uint64_t audit_breaches = 0;
    /// Alert raise transitions (hysteresis-filtered, not per-window).
    uint64_t audit_alerts_raised = 0;
    /// True while this server's fairness alert is currently raised.
    bool audit_alert_active = false;
    /// True once at least one completed window had both groups present —
    /// only then do the two metrics below mean anything.
    bool audit_has_metrics = false;
    /// Latest completed window's symmetric disparate impact min(DI, 1/DI).
    double audit_last_di_star = 1.0;
    /// Latest completed window's statistical parity difference.
    double audit_last_spd = 0.0;
    /// Completed-request counts per power-of-two batch-size bucket.
    std::vector<uint64_t> batch_size_hist;
    /// Completed-request counts per log-scale latency bucket
    /// (kLatencyBuckets entries). Bucket counts from several servers add
    /// element-wise, which is how FleetStats derives fleet-wide
    /// percentiles instead of averaging per-shard ones.
    std::vector<uint64_t> latency_hist;
    /// Requests the content-hash trace sampler selected at admission.
    uint64_t trace_sampled = 0;
    /// Sampled span records dropped by a failed trace-log append.
    uint64_t trace_append_failures = 0;
    /// Per-stage p99 in µs, derived from stage_hist (0 = no samples).
    std::array<double, kServeStages> stage_p99_us{};
    /// Per-stage latency histograms of trace-sampled requests
    /// (kServeStages vectors of kLatencyBuckets buckets; same bucketing
    /// and element-wise merge rules as latency_hist) — this is how a
    /// router-merged p99 decomposes by pipeline stage.
    std::array<std::vector<uint64_t>, kServeStages> stage_hist;
  };

  View Snapshot() const;

  /// Geometric representative latency of a log-scale bucket, in
  /// microseconds (public so merged histograms can be re-quantiled).
  static double BucketLatencyUs(size_t bucket);

  /// The `q`-quantile (0..1) of a latency histogram in microseconds —
  /// the same derivation Snapshot() applies to a single server's
  /// histogram, reusable on an element-wise sum of several.
  static double PercentileUsFromHist(const std::vector<uint64_t>& hist,
                                     double q);

  /// Element-wise accumulates `src` into `dst`. Bucket counts must
  /// agree: in-process views always do, but a wire-deserialized view
  /// from a different build (or a corrupted frame that still
  /// checksummed) might not — kInvalidArgument instead of silent
  /// misalignment or an out-of-bounds walk.
  static Status MergeHistogramInto(std::vector<uint64_t>* dst,
                                   const std::vector<uint64_t>& src);

 private:
  static std::memory_order rel() { return std::memory_order_relaxed; }
  static size_t LatencyBucket(std::chrono::nanoseconds latency);

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> shed_admission_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<uint64_t> snapshot_swaps_{0};
  /// IEEE-754 bits of the EWMA; 0 = no sample yet.
  std::atomic<uint64_t> ewma_batch_ns_bits_{0};
  std::atomic<uint64_t> density_checked_{0};
  std::atomic<uint64_t> density_outliers_{0};
  /// IEEE-754 bits of the outlier-rate EWMA. Unlike latency, 0.0 is a
  /// legitimate rate, so "no sample yet" is the all-ones sentinel (a NaN
  /// pattern no CAS update ever stores), not 0.
  std::atomic<uint64_t> ewma_outlier_rate_bits_{~uint64_t{0}};
  std::atomic<uint64_t> audit_windows_{0};
  std::atomic<uint64_t> audit_breaches_{0};
  std::atomic<uint64_t> audit_alerts_raised_{0};
  std::atomic<uint8_t> audit_alert_active_{0};
  /// Latest window's DI*/SPD as IEEE-754 bits; all-ones = no metric-
  /// bearing window yet (same sentinel convention as the rate EWMA).
  std::atomic<uint64_t> audit_last_di_star_bits_{~uint64_t{0}};
  std::atomic<uint64_t> audit_last_spd_bits_{~uint64_t{0}};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_hist_{};
  std::array<std::atomic<uint64_t>, kBatchBuckets> batch_hist_{};
  std::atomic<uint64_t> trace_sampled_{0};
  std::atomic<uint64_t> trace_append_failures_{0};
  std::array<std::array<std::atomic<uint64_t>, kLatencyBuckets>, kServeStages>
      stage_hist_{};
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_SERVER_STATS_H_
