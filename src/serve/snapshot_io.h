// Snapshot persistence: a versioned binary format for ModelSnapshot.
//
// SaveSnapshot freezes a snapshot to disk — learner coefficients/trees,
// the ConstraintSet profile, the GroupLabelProfile shape, the
// FeatureEncoder's schema + standardization statistics, the drift
// monitor's KDE training matrix + fit options, and the outlier floor.
// LoadSnapshot rebuilds an equivalent snapshot in any process of the same
// build: every numeric field travels as raw IEEE-754 bits and the KDE is
// refitted deterministically from its stored training matrix, so a loaded
// snapshot scores requests *bitwise identically* to the one saved. This
// decouples training and serving: a training job Fits and saves; the
// serving job loads and swaps, no refit anywhere.
//
// File layout:
//   magic "FDSNAPSH" | u32 format version | u64 payload size
//   | payload | u64 FNV-1a(payload)
//
// Truncated, corrupted (checksum mismatch), or future-version files are
// rejected with a typed Status::DataLoss; files that are not snapshots at
// all fail the magic check the same way. The format version bumps on any
// layout change — there is no silent cross-version reinterpretation.

#ifndef FAIRDRIFT_SERVE_SNAPSHOT_IO_H_
#define FAIRDRIFT_SERVE_SNAPSHOT_IO_H_

#include <memory>
#include <string>

#include "serve/snapshot.h"
#include "util/status.h"

namespace fairdrift {

/// Current on-disk format version.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Writes `snapshot` to `path`. Fails IoError on filesystem problems and
/// FailedPrecondition when a model family has no serialization.
Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path);

/// Reads a snapshot file written by SaveSnapshot (possibly by another
/// process). The result carries a fresh process-local version stamp —
/// snapshot versions order swaps within a server, not across processes.
Result<std::shared_ptr<const ModelSnapshot>> LoadSnapshot(
    const std::string& path);

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_SNAPSHOT_IO_H_
