// Snapshot persistence: a versioned binary format for ModelSnapshot.
//
// SaveSnapshot freezes a snapshot to disk — learner coefficients/trees,
// the ConstraintSet profile, the GroupLabelProfile shape, the
// FeatureEncoder's schema + standardization statistics, the drift
// monitor's *fitted* estimator (bandwidths + flat KD/ball-tree nodes),
// and the outlier floor. LoadSnapshot rebuilds an equivalent snapshot in
// any process of the same build: every numeric field travels as raw
// IEEE-754 bits, so a loaded snapshot scores requests *bitwise
// identically* to the one saved. This decouples training and serving: a
// training job Fits and saves; the serving job loads and swaps, no refit
// anywhere.
//
// File layout:
//   magic "FDSNAPSH" | u32 format version | u64 payload size
//   | payload | u64 FNV-1a(payload)
//
// Format history:
//   v1  density section = KdeOptions + floor + raw training matrix; the
//       loader refits the KDE deterministically (O(n log n)) and the
//       snapshot keeps the matrix resident (~2x monitor memory).
//   v2  density section = KdeOptions + floor + the fitted estimator's
//       complete flat state; loads are O(n) with no refit and no
//       retained training matrix. v1 files still load (via the refit
//       path).
//   v3  appends the MonitorSpec (u8 mode + u32 sample modulus) after the
//       density section, so the serve-time monitoring policy travels
//       with the artifact. v1/v2 files still load, with the exact-mode
//       default spec. (The classification bounds backing bounded/sampled
//       modes are derived state, rebuilt on load — the density payload
//       is unchanged.)
//   v4  appends the audit group field (i32 schema index, -1 = none)
//       after the MonitorSpec, so the serving audit tier
//       (serve/audit/) knows which categorical request field carries
//       the sensitive group id. v1-v3 files load with no group field;
//       v4 is what SaveSnapshot writes.
//
// Saves are atomic (write to <path>.tmp.<pid> + rename), so a concurrent
// reader — in particular the hot-reload SnapshotWatcher
// (serve/fleet/watcher.h) — observes either the old or the new complete
// file, never a torn one. Truncated, corrupted (checksum mismatch), or
// future-version files are rejected with a typed Status::DataLoss; files
// that are not snapshots at all fail the magic check the same way.

#ifndef FAIRDRIFT_SERVE_SNAPSHOT_IO_H_
#define FAIRDRIFT_SERVE_SNAPSHOT_IO_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/snapshot.h"
#include "util/status.h"

namespace fairdrift {

/// Current on-disk format version (what SaveSnapshot writes).
inline constexpr uint32_t kSnapshotFormatVersion = 4;

/// Oldest format version LoadSnapshot still reads.
inline constexpr uint32_t kMinSnapshotFormatVersion = 1;

/// Writes `snapshot` to `path` atomically (tmp + rename). Fails IoError
/// on filesystem problems and FailedPrecondition when a model family has
/// no serialization.
Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path);

/// Writes `snapshot` in the legacy v1 layout, whose density section
/// carries the raw training matrix (`density_train`, the matrix the
/// monitor was fitted on — FittedArtifacts::density_train) instead of
/// the fitted tree. Kept so the v1 compatibility path stays testable;
/// new code uses SaveSnapshot.
Status SaveSnapshotV1(const ModelSnapshot& snapshot,
                      const Matrix& density_train, const std::string& path);

/// How strictly LoadSnapshot treats a damaged optional section.
enum class SnapshotLoadMode {
  /// Any parse failure rejects the whole file (the default).
  kStrict = 0,
  /// Core sections (schema, encoder, models, profile) must still parse
  /// and checksum intact — but a corrupt OPTIONAL monitor tail (density
  /// estimator / MonitorSpec) degrades to serving without monitoring
  /// instead of rejecting the file. Scores are bitwise-identical to the
  /// intact snapshot with monitoring off; only drift detection is lost.
  kAllowPartial = 1,
};

/// What a mode-aware LoadSnapshot actually did.
struct SnapshotLoadReport {
  enum class Outcome {
    kComplete = 0,  ///< every section loaded
    kDegraded = 1,  ///< monitor tail dropped under kAllowPartial
  };
  Outcome outcome = Outcome::kComplete;
  /// Why the load degraded (empty when complete) — the typed note the
  /// watcher and CLI surface to operators.
  std::string degraded_note;
};

/// Reads a snapshot file written by SaveSnapshot (possibly by another
/// process, possibly in an older supported format version). The result
/// carries a fresh process-local version stamp — snapshot versions order
/// swaps within a server, not across processes.
Result<std::shared_ptr<const ModelSnapshot>> LoadSnapshot(
    const std::string& path);

/// Mode-aware load. `report` (required) records whether the snapshot
/// loaded complete or degraded; under kStrict it is always kComplete on
/// success.
Result<std::shared_ptr<const ModelSnapshot>> LoadSnapshot(
    const std::string& path, SnapshotLoadMode mode,
    SnapshotLoadReport* report);

/// Cheap identity probe of a snapshot file: reads only the fixed-size
/// header and the trailing checksum (no payload parse, no model
/// rebuild). The hot-reload watcher uses the checksum to distinguish
/// "the file changed" from "the file was rewritten with identical
/// contents".
struct SnapshotFileSignature {
  uint64_t file_size = 0;
  uint32_t format_version = 0;
  uint64_t payload_size = 0;
  /// The stored FNV-1a checksum of the payload (not re-verified here —
  /// LoadSnapshot does the full integrity check).
  uint64_t checksum = 0;
};
Result<SnapshotFileSignature> ProbeSnapshotFile(const std::string& path);

/// One named section of the current-version snapshot payload. The
/// concatenation of all chunks in order is byte-identical to the payload
/// SaveSnapshot frames, so chunked and monolithic persistence share one
/// parser and one bitwise identity guarantee (see serve/snapshot_manifest.h
/// for the manifest that carries chunk checksums).
struct SnapshotPayloadChunk {
  std::string name;
  std::string bytes;
};

/// Serializes `snapshot` into the ordered chunk list of the current
/// format version: "schema" (schema + encoder + routing flags), "models",
/// "profile", "density" (KDE options + floor + fitted estimator), and
/// "policy" (MonitorSpec + audit group field). Same failure modes as
/// SaveSnapshot.
Status SerializeSnapshotPayloadChunks(const ModelSnapshot& snapshot,
                                      std::vector<SnapshotPayloadChunk>* out);

/// Parses an already-checksummed payload (the bytes between the file
/// header and the trailing FNV) of the given `format_version` into a
/// snapshot. This is LoadSnapshot minus the file framing — the manifest
/// loader and the wire push path assemble a payload from chunks and feed
/// it here, inheriting kAllowPartial's degraded-monitor semantics.
/// `origin` labels error messages (a path or endpoint).
Result<std::shared_ptr<const ModelSnapshot>> ParseSnapshotPayload(
    uint32_t format_version, const char* data, size_t size,
    SnapshotLoadMode mode, SnapshotLoadReport* report,
    const std::string& origin);

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_SNAPSHOT_IO_H_
