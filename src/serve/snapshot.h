// Immutable frozen pipeline artifact for the online scoring path.
//
// A ModelSnapshot freezes everything a fitted pipeline needs to score a
// request without refitting: the trained classifier(s), the conformance
// GroupLabelProfile used for DIFFAIR-style routing and margin reporting,
// the fitted FeatureEncoder, and (optionally) a KernelDensity over the
// training attributes acting as a drift monitor for incoming traffic.
// Snapshots are produced by Freeze() (core/artifacts.h) or BuildSnapshot
// (core/deployment.h) and persist across processes via
// serve/snapshot_io.h.
//
// Snapshots are created once, published behind shared_ptr<const ...>, and
// never mutated afterwards — in-flight batches keep scoring the snapshot
// they started with while the server atomically swaps a newer one in
// (snapshot isolation). Every scoring member is const and thread-safe.
//
// Determinism contract: ScoreBatch scores each row independently through
// the library's deterministic batched kernels, so a given request produces
// bitwise-identical ScoreResult fields regardless of which batch it lands
// in, how many pool workers score that batch, or whether the snapshot was
// frozen in this process or loaded from a file another process saved.

#ifndef FAIRDRIFT_SERVE_SNAPSHOT_H_
#define FAIRDRIFT_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/diffair.h"  // RoutingRule
#include "core/profile.h"
#include "data/encode.h"
#include "data/schema.h"
#include "kde/kde.h"
#include "linalg/matrix.h"
#include "ml/model.h"
#include "util/status.h"

namespace fairdrift {

class ThreadPool;  // util/parallel.h; only pointers appear in this header

/// How a snapshot's density monitor is evaluated at serve time.
enum class MonitorMode : uint8_t {
  /// Full log-density per row (the bitwise oracle): fills
  /// ScoreResult::log_density and density_outlier for every row. The
  /// default, and the historical behavior.
  kExact = 0,
  /// Bound-pruned outlier classification per row: density_outlier is
  /// bitwise identical to the exact comparison (KernelDensity::
  /// LogDensityBelow), but log_density stays NaN — most rows are decided
  /// from interior tree nodes without leaf kernel sums.
  kBounded = 1,
  /// Bounded classification on a deterministic content-hash sample of
  /// rows (roughly 1 in sample_modulus); unsampled rows report
  /// density_checked = false. The aggregate outlier rate in ServerStats
  /// stays fresh to within the sampling interval while the per-row
  /// monitoring cost amortizes to ~1/sample_modulus of bounded mode.
  kSampled = 2,
};

/// Density-monitor evaluation policy. Travels with the snapshot artifact
/// (format v3) so a deployed fleet scores with the policy chosen at
/// training time; servers may override it per deployment
/// (ServerOptions::monitor_override).
struct MonitorSpec {
  MonitorMode mode = MonitorMode::kExact;
  /// kSampled only: a row is scored when the FNV-1a hash of its numeric
  /// attribute bytes is 0 mod this. Content-based, so the sample is
  /// identical for every batch split, worker count, and shard count.
  uint32_t sample_modulus = 16;
};

/// Outcome of scoring one request row against a snapshot.
struct ScoreResult {
  /// P(y = 1 | row) of the serving model (the routed group's model under
  /// conformance routing).
  double probability = 0.0;
  /// Hard label at the serving model's decision threshold.
  int label = 0;
  /// Group whose model served the row under conformance routing; -1 for
  /// single-model snapshots.
  int routed_group = -1;
  /// Best signed conformance margin of the routed group's cells (negative
  /// inside a cell's bounds); +inf when the snapshot has no profile.
  double margin = std::numeric_limits<double>::infinity();
  /// Training log-density of the row's numeric attributes; NaN when the
  /// snapshot carries no density monitor.
  double log_density = std::numeric_limits<double>::quiet_NaN();
  /// True when log_density fell below the snapshot's density floor (the
  /// row looks drifted / off-manifold relative to the training data).
  bool density_outlier = false;
  /// True when the density monitor evaluated this row (always true in
  /// exact/bounded modes on monitored snapshots; the hash-selected subset
  /// in sampled mode; false without a monitor). density_outlier is only
  /// meaningful when set.
  bool density_checked = false;
  /// Version of the snapshot that scored the row (swap-isolation witness).
  uint64_t snapshot_version = 0;
  /// Sensitive group id read from the row's group field when the snapshot
  /// declares one (SnapshotParts::group_field); -1 otherwise. Feeds the
  /// serving audit tier (serve/audit/) so fairness windows can be
  /// computed without clients attaching group metadata.
  int group = -1;
  /// Trace id of the request (serve/trace/): the row's FNV content hash
  /// when the serving tier sampled it for span recording, 0 otherwise.
  /// Set by the scoring server after scoring, not by ScoreBatch itself,
  /// so it never perturbs the snapshot's deterministic score fields.
  uint64_t trace_id = 0;
};

/// Reusable per-worker buffers for ScoreBatch. A batch worker that keeps
/// one of these across batches pays no per-batch Dataset/encoding
/// allocations — the matrices reshape in place once their capacity covers
/// the largest batch seen, and ScoreBatchInto writes its results into
/// `results` so the steady-state scoring pass allocates nothing at all.
/// Not thread-safe; one scratch per concurrent ScoreBatch call.
struct ScoreScratch {
  Matrix rows;      ///< request-row staging area (filled by the server)
  Matrix numeric;   ///< numeric-attribute view of the batch
  Matrix encoded;   ///< encoded design matrix of the batch
  std::vector<int> route;       ///< per-row serving group
  std::vector<double> margins;  ///< per-row winner signed margin
  Matrix group_proba;           ///< per-model whole-batch predictions
  std::vector<double> proba;    ///< gathered per-row probabilities
  std::vector<int> labels;      ///< gathered per-row hard labels
  std::vector<double> logd;     ///< per-row training log-densities
  std::vector<uint8_t> below;   ///< per-row bounded-monitor outlier bits
  std::vector<ScoreResult> results;  ///< ScoreBatchInto's output
  std::vector<int> audit_groups;  ///< per-row resolved audit group ids
  std::vector<int> audit_labels;  ///< per-row true labels (-1 unlabeled)
};

/// Mutable staging area for ModelSnapshot::Create. Fill in the fitted
/// artifacts (typically via Freeze in core/artifacts.h) and freeze them.
struct SnapshotParts {
  /// Request-row layout. Requests carry one double per schema field, in
  /// schema order; categorical fields carry the category code.
  Schema schema;
  /// Encoder fitted on the snapshot's training split.
  FeatureEncoder encoder;
  /// One fitted model per group id (DIFFAIR-style), or a single entry for
  /// unrouted single-model serving. Null entries = groups with no model.
  std::vector<std::unique_ptr<Classifier>> models;
  /// When true, rows route to the most-conforming group's model through
  /// `profile` (requires a profiled group per non-null model).
  bool routed = false;
  /// How routed rows rank the groups (DIFFAIR's RoutingRule; carried
  /// from the artifacts so serving routes exactly as Evaluate did).
  RoutingRule routing = RoutingRule::kSignedMargin;
  /// Group served when routing is off or no group is profiled.
  int fallback_group = 0;
  /// (group x label) conformance profile; empty profiles disable margins.
  GroupLabelProfile profile;
  bool has_profile = false;
  /// Optional drift monitor fitted on the training numeric attributes.
  std::shared_ptr<const KernelDensity> density;
  /// Log-density below which a row is flagged density_outlier (typically a
  /// low quantile of the training split's own log-densities).
  double density_floor = -std::numeric_limits<double>::infinity();
  /// The monitor's fit options, kept for reporting and persistence. The
  /// raw training matrix is NOT retained: snapshot persistence
  /// (serve/snapshot_io.h) serializes the fitted estimator's flat tree
  /// directly, so monitored snapshots no longer pay the ~2x resident
  /// memory the historical refit-on-load format required.
  KdeOptions density_options;
  /// How the monitor runs at serve time (persisted from format v3 on;
  /// older files load with the exact default).
  MonitorSpec monitor;
  /// Schema index of the categorical field carrying the sensitive group
  /// id, or -1 when the snapshot extracts no group. Persisted from
  /// format v4 on; resolved by Freeze from TrainSpec::audit_group_field.
  int group_field = -1;
};

/// Immutable, shareable, concurrently scorable pipeline freeze.
class ModelSnapshot {
 public:
  /// Validates and freezes `parts`. Each Create call stamps a fresh
  /// process-unique version (monotonically increasing).
  static Result<std::shared_ptr<const ModelSnapshot>> Create(
      SnapshotParts parts);

  /// Scores a batch of request rows (one row per Matrix row, width
  /// num_features(), schema layout). Routing, prediction, margins, and
  /// density all run through the library's batched kernels on `pool`
  /// (global pool when null); per-row results are bitwise independent of
  /// the batch composition and the worker count. `scratch` supplies the
  /// working buffers — reuse one per worker to keep the hot path free of
  /// per-batch rebuild allocations.
  Result<std::vector<ScoreResult>> ScoreBatch(const Matrix& rows,
                                              ScoreScratch* scratch,
                                              ThreadPool* pool = nullptr) const;

  /// ScoreBatch with one-shot scratch buffers (convenience for offline
  /// callers; the serving path reuses a per-worker scratch instead).
  Result<std::vector<ScoreResult>> ScoreBatch(const Matrix& rows,
                                              ThreadPool* pool = nullptr) const;

  /// ScoreBatch into `scratch->results` — the serving batch workers'
  /// entry point. With a recycled scratch whose capacity covers the
  /// batch, a steady-state call performs zero heap allocations (scored
  /// inline or on a 0-worker pool; real pools add only task-dispatch
  /// allocations). Results are bitwise identical to ScoreBatch.
  Status ScoreBatchInto(const Matrix& rows, ScoreScratch* scratch,
                        ThreadPool* pool = nullptr) const;

  /// ScoreBatchInto scoring the density monitor under `monitor` instead
  /// of the snapshot's own spec (the server's per-deployment override
  /// hook). All non-density fields are unaffected.
  Status ScoreBatchInto(const Matrix& rows, ScoreScratch* scratch,
                        const MonitorSpec& monitor, ThreadPool* pool) const;

  /// Checks one request row (length num_features()) against the schema:
  /// categorical fields must carry integral codes inside their category
  /// range. The server validates per request so one malformed row fails
  /// its own ticket instead of poisoning the whole batch.
  Status ValidateRow(const double* row) const;

  /// Process-unique, monotonically increasing snapshot id.
  uint64_t version() const { return version_; }

  /// Width of a request row (= schema field count).
  size_t num_features() const { return schema_.num_fields(); }

  const Schema& schema() const { return schema_; }
  const FeatureEncoder& encoder() const { return encoder_; }
  bool routed() const { return routed_; }
  RoutingRule routing() const { return routing_; }
  int fallback_group() const { return fallback_group_; }
  bool has_profile() const { return has_profile_; }
  const GroupLabelProfile& profile() const { return profile_; }
  bool has_density() const { return density_ != nullptr; }
  double density_floor() const { return density_floor_; }
  /// The fitted drift monitor (null when the snapshot has no monitor);
  /// consumed by snapshot persistence, which serializes its flat tree.
  const KernelDensity* density() const { return density_.get(); }
  const KdeOptions& density_options() const { return density_options_; }
  const MonitorSpec& monitor() const { return monitor_; }
  /// Schema index ScoreResult::group is read from; -1 = no extraction.
  int group_field() const { return group_field_; }
  int num_groups() const { return static_cast<int>(models_.size()); }

  /// The model serving group `g` (nullptr when the group has none).
  const Classifier* group_model(int g) const;

 private:
  ModelSnapshot() = default;

  uint64_t version_ = 0;
  Schema schema_;
  FeatureEncoder encoder_;
  std::vector<std::unique_ptr<Classifier>> models_;
  bool routed_ = false;
  RoutingRule routing_ = RoutingRule::kSignedMargin;
  int fallback_group_ = 0;
  GroupLabelProfile profile_;
  bool has_profile_ = false;
  std::shared_ptr<const KernelDensity> density_;
  double density_floor_ = -std::numeric_limits<double>::infinity();
  KdeOptions density_options_;
  MonitorSpec monitor_;
  int group_field_ = -1;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_SNAPSHOT_H_
