#include "serve/ticket.h"

namespace fairdrift {

namespace serve_internal {

void TicketState::Complete(const ScoreResult& r) {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (done) return;
    done = true;
    result = r;
    error = Status::OK();
  }
  cv.notify_all();
}

void TicketState::Fail(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (done) return;
    done = true;
    error = std::move(status);
  }
  cv.notify_all();
}

}  // namespace serve_internal

Result<ScoreResult> ScoreTicket::Wait() const {
  if (!state_) {
    return Status::FailedPrecondition("ScoreTicket: empty ticket");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  if (!state_->error.ok()) return state_->error;
  return state_->result;
}

bool ScoreTicket::WaitFor(std::chrono::nanoseconds timeout) const {
  if (!state_) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout, [this] { return state_->done; });
}

bool ScoreTicket::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

}  // namespace fairdrift
