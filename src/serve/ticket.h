// ScoreTicket: the asynchronous response handle of the scoring server.
//
// Submit() hands back a ticket immediately; the micro-batcher fulfills it
// from whichever batch the request lands in. Tickets are fulfilled exactly
// once — with a ScoreResult, or with a typed error Status (DeadlineExceeded
// for shed requests, Unavailable at shutdown, InvalidArgument for malformed
// rows). Copyable; every copy observes the same state.

#ifndef FAIRDRIFT_SERVE_TICKET_H_
#define FAIRDRIFT_SERVE_TICKET_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "serve/snapshot.h"
#include "serve/trace/trace_context.h"
#include "util/status.h"

namespace fairdrift {

namespace serve_internal {

/// Shared state between a ticket and the server worker that fulfills it.
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status error;        // OK when `result` is valid
  ScoreResult result;  // valid only when done && error.ok()
  /// Fixed-size span storage for trace-sampled requests (zero context
  /// when unsampled or tracing is off). Stamped by the server pipeline
  /// stages without synchronization: each stage happens-before the next
  /// through the queue/pool hand-offs, and a post-completion reader
  /// (the daemon's wire_send stamp + trace emission) is ordered by the
  /// ticket's own done-signaling mutex.
  TraceSpanSlot trace;

  /// Fulfills with a result; first fulfillment wins, later calls no-op.
  void Complete(const ScoreResult& r);
  /// Fulfills with an error; first fulfillment wins, later calls no-op.
  void Fail(Status status);
};

}  // namespace serve_internal

/// Waitable handle to one submitted request.
class ScoreTicket {
 public:
  /// An empty ticket (Wait fails FailedPrecondition). Servers return
  /// populated tickets from Submit.
  ScoreTicket() = default;

  /// Blocks until the request completes; returns its score or the typed
  /// shed/shutdown error. Do not call from a worker of the server's
  /// scoring pool (the fulfilling batch may be queued behind the waiter).
  Result<ScoreResult> Wait() const;

  /// Waits up to `timeout`. Returns true when the ticket completed (the
  /// outcome is then available via Wait, which no longer blocks).
  bool WaitFor(std::chrono::nanoseconds timeout) const;

  /// True once fulfilled (result or error).
  bool done() const;

  /// True for tickets minted by a server (default-constructed ones are not).
  bool valid() const { return state_ != nullptr; }

  /// The request's span slot (null for invalid tickets; zero trace id
  /// when unsampled). Mutable so transport layers can stamp wire stages
  /// after completion; read it only once done() to stay ordered with
  /// the server's stamps.
  TraceSpanSlot* trace_slot() const {
    return state_ != nullptr ? &state_->trace : nullptr;
  }

 private:
  friend class ScoringServer;
  explicit ScoreTicket(std::shared_ptr<serve_internal::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<serve_internal::TicketState> state_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_TICKET_H_
