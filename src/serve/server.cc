#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "serve/audit/auditor.h"
#include "serve/trace/trace_log.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace fairdrift {

Result<std::unique_ptr<ScoringServer>> ScoringServer::Create(
    std::shared_ptr<const ModelSnapshot> snapshot,
    const ServerOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("ScoringServer: null snapshot");
  }
  if (options.admission.max_queue_depth == 0) {
    return Status::InvalidArgument("ScoringServer: zero queue depth");
  }
  return std::unique_ptr<ScoringServer>(
      new ScoringServer(std::move(snapshot), options));
}

ScoringServer::ScoringServer(std::shared_ptr<const ModelSnapshot> snapshot,
                             const ServerOptions& options)
    : options_(options),
      queue_(options.admission.max_queue_depth),
      batcher_(&queue_, options.batching),
      admission_(options.admission),
      pool_(options.pool != nullptr ? options.pool : &GlobalThreadPool()),
      snapshot_(std::move(snapshot)) {
  max_inflight_ = options_.max_inflight_batches != 0
                      ? options_.max_inflight_batches
                      : pool_->num_threads() + 1;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

ScoringServer::~ScoringServer() { Stop(); }

void ScoringServer::Stop() {
  std::call_once(stop_once_, [this] {
    queue_.Close();
    if (dispatcher_.joinable()) dispatcher_.join();
    // The dispatcher has drained the queue; wait out the batches it
    // already handed to the pool.
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  });
}

Result<ScoreTicket> ScoringServer::Submit(
    std::vector<double> row, std::chrono::nanoseconds deadline_after) {
  return Submit(std::move(row), RequestAuditInfo{}, SubmitTraceInfo{},
                deadline_after);
}

Result<ScoreTicket> ScoringServer::Submit(
    std::vector<double> row, const RequestAuditInfo& audit,
    std::chrono::nanoseconds deadline_after) {
  return Submit(std::move(row), audit, SubmitTraceInfo{}, deadline_after);
}

Result<ScoreTicket> ScoringServer::Submit(
    std::vector<double> row, const RequestAuditInfo& audit,
    const SubmitTraceInfo& trace, std::chrono::nanoseconds deadline_after) {
  auto now = std::chrono::steady_clock::now();
  auto deadline = admission_.ResolveDeadline(now, deadline_after);
  Status admit = admission_.Admit(queue_, now, deadline,
                                  stats_.EwmaBatchLatencyNs(),
                                  options_.batching.max_batch_size,
                                  max_inflight_);
  if (!admit.ok()) {
    if (admit.code() == StatusCode::kDeadlineExceeded) {
      stats_.RecordDeadlineShed();
    } else {
      stats_.RecordAdmissionShed();
    }
    return admit;
  }
  // Width check against the current snapshot: cheap, catches client bugs
  // synchronously. Content (category codes) is validated per row by the
  // batch worker against the snapshot that actually scores it.
  size_t width = CurrentSnapshot()->num_features();
  if (row.size() != width) {
    stats_.RecordInvalidRequest();
    return Status::InvalidArgument(
        StrFormat("Submit: row has %zu fields, snapshot schema has %zu",
                  row.size(), width));
  }

  auto state = std::make_shared<serve_internal::TicketState>();
  if (options_.trace.enabled) {
    // Mint at admission: the id is the row's content hash, so the
    // sampled set is identical under every batching / sharding /
    // threading configuration. Unsampled rows keep the zero context and
    // never touch the slot again.
    state->trace.context = MintTraceContext(row.data(), row.size(),
                                            options_.trace.sample_modulus);
    if (state->trace.sampled()) {
      state->trace.context.parent_span_id = trace.parent_span_id;
      if (trace.wire_recv_ns != 0) {
        state->trace.StampAt(TraceStage::kWireRecv, trace.wire_recv_ns);
      }
      state->trace.StampAt(
          TraceStage::kAdmit,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  now.time_since_epoch())
                  .count()));
      state->trace.Stamp(TraceStage::kEnqueue);
    }
  }
  PendingRequest request;
  request.row = std::move(row);
  request.enqueue_time = now;
  request.deadline = deadline;
  request.ticket = state;
  request.audit = audit;
  if (!queue_.TryPush(std::move(request))) {
    stats_.RecordAdmissionShed();
    return queue_.closed()
               ? Status::Unavailable("Submit: server stopped")
               : Status::Unavailable("Submit: queue depth limit reached");
  }
  stats_.RecordSubmitted();
  if (state->trace.sampled()) stats_.RecordTraceSampled();
  return ScoreTicket(std::move(state));
}

size_t ScoringServer::inflight_batches() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_;
}

Status ScoringServer::Quiesce(std::chrono::nanoseconds timeout,
                              bool require_empty_queue) const {
  // Fault site: a forced drain stall, typed exactly like the real one so
  // it flows through the rolling update's retry/rollback machinery.
  if (FAULT_POINT_ARG("fleet.drain", options_.fault_tag)) {
    return Status::DeadlineExceeded(
        "Quiesce: server did not drain (injected fault: fleet.drain)");
  }
  auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(inflight_mu_);
  for (;;) {
    // Conservation invariant (RequestQueue::checked_out): every admitted
    // request is visible in the queue's size or in its checked-out count
    // until its batch worker acknowledges it AFTER fulfilling tickets.
    // So queue empty + nothing checked out certifies no request is
    // hidden in the micro-batcher's coalescing window or the
    // dispatcher-to-worker hand-off — no wall-clock margin needed. The
    // inflight check is subsumed but kept as a cheap belt-and-braces.
    bool drained = queue_.checked_out() == 0 && inflight_ == 0 &&
                   (!require_empty_queue || queue_.size() == 0);
    if (drained) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("Quiesce: server did not drain");
    }
    // inflight_cv_ fires on batch completion; the short cap also re-polls
    // the queue while the dispatcher is between pop and dispatch.
    inflight_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
}

Result<ScoreResult> ScoringServer::ScoreSync(
    std::vector<double> row, std::chrono::nanoseconds deadline_after) {
  Result<ScoreTicket> ticket = Submit(std::move(row), deadline_after);
  if (!ticket.ok()) return ticket.status();
  return ticket.value().Wait();
}

Status ScoringServer::UpdateSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("UpdateSnapshot: null snapshot");
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
  }
  stats_.RecordSnapshotSwap();
  return Status::OK();
}

std::shared_ptr<const ModelSnapshot> ScoringServer::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::unique_ptr<ScoreScratch> ScoringServer::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<ScoreScratch> scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<ScoreScratch>();
}

void ScoringServer::ReleaseScratch(std::unique_ptr<ScoreScratch> scratch) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  if (scratch_pool_.size() < max_inflight_) {
    scratch_pool_.push_back(std::move(scratch));
  }
}

void ScoringServer::AcquireInflightSlot() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ < max_inflight_; });
  ++inflight_;
}

void ScoringServer::ReleaseInflightSlot() {
  // Notify under the lock: Stop() destroys this condvar as soon as it
  // observes inflight_ == 0, so the notifying worker must be provably
  // done with it before the waiter can re-acquire the mutex.
  std::lock_guard<std::mutex> lock(inflight_mu_);
  --inflight_;
  inflight_cv_.notify_all();
}

void ScoringServer::DispatchLoop() {
  for (;;) {
    auto batch = std::make_shared<std::vector<PendingRequest>>();
    if (batcher_.NextBatch(batch.get()) == 0) return;  // closed and drained
    if (options_.trace.enabled) {
      // One clock read covers the batch: every member left the queue in
      // the same NextBatch call.
      uint64_t now_ns = MonotonicNowNs();
      for (PendingRequest& request : *batch) {
        if (request.ticket->trace.sampled()) {
          request.ticket->trace.StampAt(TraceStage::kDequeue, now_ns);
        }
      }
    }
    // Bound the scoring work in flight before taking on another batch:
    // the dispatcher is the only back-pressure between the queue and the
    // pool.
    AcquireInflightSlot();
    pool_->Submit([this, batch] {
      ProcessBatch(batch.get());
      // Tickets are fulfilled; release the queue's checked-out claim
      // before the inflight slot so a drain barrier that wakes on the
      // slot sees the full acknowledgment.
      queue_.AckCheckedOut(batch->size());
      ReleaseInflightSlot();
    });
  }
}

void ScoringServer::ProcessBatch(std::vector<PendingRequest>* batch) {
  // Fault site: a kWedge rule blocks this batch worker inside Hit()
  // until the rule is cleared — the wedged-shard scenario the health
  // monitor must detect (pending work, no dispatcher progress).
  (void)FAULT_POINT_ARG("server.wedge", options_.fault_tag);
  // One immutable snapshot per batch: requests in this batch all score
  // the same model state even if a swap lands mid-batch.
  std::shared_ptr<const ModelSnapshot> snapshot = CurrentSnapshot();
  size_t width = snapshot->num_features();
  auto now = std::chrono::steady_clock::now();

  std::vector<size_t> live;
  live.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    PendingRequest& request = (*batch)[i];
    if (request.deadline <= now) {
      stats_.RecordDeadlineShed();
      request.ticket->Fail(
          Status::DeadlineExceeded("shed: deadline expired in queue"));
      continue;
    }
    if (request.row.size() != width) {
      stats_.RecordInvalidRequest();
      request.ticket->Fail(Status::InvalidArgument(
          StrFormat("row has %zu fields, scoring snapshot schema has %zu",
                    request.row.size(), width)));
      continue;
    }
    Status valid = snapshot->ValidateRow(request.row.data());
    if (!valid.ok()) {
      stats_.RecordInvalidRequest();
      request.ticket->Fail(std::move(valid));
      continue;
    }
    live.push_back(i);
  }
  if (live.empty()) return;

  // Score out of a recycled per-worker scratch: the staging matrix, the
  // snapshot's encoding buffers, and the result vector all reshape in
  // place, so steady-state batches allocate nothing (ScoreBatchInto).
  std::unique_ptr<ScoreScratch> scratch = AcquireScratch();
  scratch->rows.ReshapeForOverwrite(live.size(), width);  // rows copied below
  for (size_t k = 0; k < live.size(); ++k) {
    const std::vector<double>& row = (*batch)[live[k]].row;
    std::copy(row.begin(), row.end(), scratch->rows.RowPtr(k));
  }
  const bool tracing = options_.trace.enabled;
  if (tracing) {
    uint64_t now_ns = MonotonicNowNs();
    for (size_t i : live) {
      if ((*batch)[i].ticket->trace.sampled()) {
        (*batch)[i].ticket->trace.StampAt(TraceStage::kBatchAssemble, now_ns);
      }
    }
  }
  Status scored =
      options_.monitor_override.has_value()
          ? snapshot->ScoreBatchInto(scratch->rows, scratch.get(),
                                     *options_.monitor_override, pool_)
          : snapshot->ScoreBatchInto(scratch->rows, scratch.get(), pool_);
  if (!scored.ok()) {
    ReleaseScratch(std::move(scratch));
    for (size_t i : live) (*batch)[i].ticket->Fail(scored);
    return;
  }
  auto done = std::chrono::steady_clock::now();
  if (tracing) {
    uint64_t done_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            done.time_since_epoch())
            .count());
    for (size_t k = 0; k < live.size(); ++k) {
      TraceSpanSlot& slot = (*batch)[live[k]].ticket->trace;
      // The snapshot's score fields are untouched; the trace id rides
      // along so wire replies can surface it. Written for every live
      // row (0 when unsampled) because the scratch results recycle.
      scratch->results[k].trace_id = slot.context.trace_id;
      if (slot.sampled()) slot.StampAt(TraceStage::kScore, done_ns);
    }
  }
  // Record stats before fulfilling any ticket: a client that returns from
  // Wait and immediately reads stats() must see its own request counted.
  // The batch latency feeds the EWMA the cost-aware admission consults.
  stats_.RecordBatch(live.size(), done - now);
  uint64_t density_checked = 0;
  uint64_t density_outliers = 0;
  for (size_t k = 0; k < live.size(); ++k) {
    const ScoreResult& r = scratch->results[k];
    if (!r.density_checked) continue;
    ++density_checked;
    if (r.density_outlier) ++density_outliers;
  }
  stats_.RecordDensity(density_checked, density_outliers);
  if (options_.audit != nullptr) {
    // Resolve each row's audit identity: explicit request metadata wins
    // over the group the snapshot extracted from the row itself. Folding
    // happens before tickets complete for the same reason stats do — a
    // client returning from Wait sees its own row in the audit counters.
    scratch->audit_groups.resize(live.size());
    scratch->audit_labels.resize(live.size());
    for (size_t k = 0; k < live.size(); ++k) {
      const RequestAuditInfo& info = (*batch)[live[k]].audit;
      scratch->audit_groups[k] =
          info.group >= 0 ? info.group : scratch->results[k].group;
      scratch->audit_labels[k] = info.label;
    }
    AuditFoldOutcome outcome;
    options_.audit->FoldBatch(scratch->rows, scratch->results.data(),
                              scratch->audit_groups.data(),
                              scratch->audit_labels.data(), live.size(),
                              &outcome);
    stats_.RecordAuditFold(outcome);
  }
  if (tracing) {
    // audit_fold delimits the fold section even for unaudited servers
    // (a ~zero-length span), so whole-span records always close with it
    // and stage decomposition sums to the scored path.
    uint64_t fold_ns = MonotonicNowNs();
    for (size_t i : live) {
      TraceSpanSlot& slot = (*batch)[i].ticket->trace;
      if (!slot.sampled()) continue;
      slot.StampAt(TraceStage::kAuditFold, fold_ns);
      auto stage_delta = [&slot](TraceStage from, TraceStage to) {
        return std::chrono::nanoseconds(
            static_cast<int64_t>(slot.stamp(to) - slot.stamp(from)));
      };
      stats_.RecordStageLatency(
          0, stage_delta(TraceStage::kEnqueue, TraceStage::kDequeue));
      stats_.RecordStageLatency(
          1, stage_delta(TraceStage::kDequeue, TraceStage::kBatchAssemble));
      stats_.RecordStageLatency(
          2, stage_delta(TraceStage::kBatchAssemble, TraceStage::kScore));
      stats_.RecordStageLatency(
          3, stage_delta(TraceStage::kScore, TraceStage::kAuditFold));
    }
  }
  for (size_t k = 0; k < live.size(); ++k) {
    stats_.RecordCompletion(done - (*batch)[live[k]].enqueue_time);
  }
  for (size_t k = 0; k < live.size(); ++k) {
    (*batch)[live[k]].ticket->Complete(scratch->results[k]);
  }
  if (tracing && options_.trace.sink != nullptr && !options_.trace.defer_emit) {
    // Whole-span export happens after tickets complete: a waiting
    // client never blocks on trace-log I/O, and only sampled rows reach
    // the sink at all.
    for (size_t k = 0; k < live.size(); ++k) {
      const TraceSpanSlot& slot = (*batch)[live[k]].ticket->trace;
      if (slot.sampled()) {
        AppendTraceRecord(slot, scratch->results[k].snapshot_version);
      }
    }
  }
  ReleaseScratch(std::move(scratch));
}

void ScoringServer::AppendTraceRecord(const TraceSpanSlot& slot,
                                      uint64_t snapshot_version) {
  Status appended =
      options_.trace.sink->Append(slot, options_.trace.role, snapshot_version);
  if (!appended.ok()) stats_.RecordTraceAppendFailure();
}

void ScoringServer::EmitTrace(const ScoreTicket& ticket) {
  if (options_.trace.sink == nullptr || !ticket.valid()) return;
  const serve_internal::TicketState& state = *ticket.state_;
  if (!state.trace.sampled()) return;
  // Reading result/error without the ticket mutex is ordered: callers
  // emit only after Wait() returned for this ticket on this thread.
  AppendTraceRecord(state.trace,
                    state.error.ok() ? state.result.snapshot_version : 0);
}

}  // namespace fairdrift
