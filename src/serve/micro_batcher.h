// MicroBatcher: coalesces single-row score requests into batches.
//
// Per-request costs on the serving path (queue round-trips, condvar
// wake-ups, task dispatch, per-call kernel overhead) dwarf the per-row
// cost of the batched kernels the library already has. The batcher
// amortizes them: the dispatch loop pops up to `max_batch_size` requests
// at once, waiting at most `max_batch_delay` after the first request for
// stragglers, and hands the whole batch to one ModelSnapshot::ScoreBatch
// call — so per-request cost approaches the batched hot-path numbers.
//
// Batch *composition* is timing-dependent by design; per-row results are
// not (the snapshot's determinism contract), so coalescing never changes
// what a request scores, only how cheaply.

#ifndef FAIRDRIFT_SERVE_MICRO_BATCHER_H_
#define FAIRDRIFT_SERVE_MICRO_BATCHER_H_

#include <chrono>
#include <vector>

#include "serve/request_queue.h"

namespace fairdrift {

/// Coalescing policy.
struct BatchingOptions {
  /// Largest batch one ScoreBatch call receives. 1 disables coalescing
  /// (every request pays the full per-request overhead — the bench's
  /// baseline configuration).
  size_t max_batch_size = 64;
  /// How long the dispatcher waits after a batch's first request for more
  /// arrivals. Bounds the latency cost of batching under light load.
  std::chrono::microseconds max_batch_delay{200};
};

/// Pulls coalesced batches off a RequestQueue.
class MicroBatcher {
 public:
  MicroBatcher(RequestQueue* queue, const BatchingOptions& options);

  /// Blocks for the next batch (clearing and filling `out`); returns its
  /// size, or 0 when the queue is closed and fully drained.
  size_t NextBatch(std::vector<PendingRequest>* out);

  const BatchingOptions& options() const { return options_; }

 private:
  RequestQueue* queue_;
  BatchingOptions options_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_MICRO_BATCHER_H_
