#include "serve/snapshot_io.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "cc/constraint.h"
#include "ml/model_io.h"
#include "util/binary_io.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

constexpr char kMagic[8] = {'F', 'D', 'S', 'N', 'A', 'P', 'S', 'H'};

void SerializeConstraintSet(const ConstraintSet& set, BinaryWriter* w) {
  w->WriteU64(set.size());
  for (size_t i = 0; i < set.size(); ++i) {
    const ConformanceConstraint& c = set.constraint(i);
    w->WriteDoubleVector(c.projection.coeffs);
    w->WriteDouble(c.projection.offset);
    w->WriteDouble(c.lower_bound);
    w->WriteDouble(c.upper_bound);
    w->WriteDouble(c.stddev);
    w->WriteDouble(c.importance);
  }
}

Result<ConstraintSet> DeserializeConstraintSet(BinaryReader* r) {
  Result<uint64_t> count = r->ReadU64();
  if (!count.ok()) return count.status();
  if (count.value() > r->remaining() / 48) {  // >= 6 u64-wide fields each
    return Status::DataLoss("snapshot constraint set claims an implausible "
                            "constraint count");
  }
  std::vector<ConformanceConstraint> constraints;
  constraints.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    ConformanceConstraint c;
    Result<std::vector<double>> coeffs = r->ReadDoubleVector();
    if (!coeffs.ok()) return coeffs.status();
    c.projection.coeffs = std::move(coeffs).value();
    Result<double> offset = r->ReadDouble();
    if (!offset.ok()) return offset.status();
    c.projection.offset = offset.value();
    Result<double> lower = r->ReadDouble();
    if (!lower.ok()) return lower.status();
    c.lower_bound = lower.value();
    Result<double> upper = r->ReadDouble();
    if (!upper.ok()) return upper.status();
    c.upper_bound = upper.value();
    Result<double> stddev = r->ReadDouble();
    if (!stddev.ok()) return stddev.status();
    c.stddev = stddev.value();
    Result<double> importance = r->ReadDouble();
    if (!importance.ok()) return importance.status();
    c.importance = importance.value();
    constraints.push_back(std::move(c));
  }
  // The stored importances are already normalized; renormalizing would
  // perturb them bitwise and break cross-process score identity.
  Result<ConstraintSet> set =
      ConstraintSet::RestoreNormalized(std::move(constraints));
  if (!set.ok()) return Status::DataLoss(set.status().message());
  return set;
}

void SerializeProfile(const GroupLabelProfile& profile, BinaryWriter* w) {
  w->WriteI32(profile.num_groups());
  w->WriteI32(profile.num_classes());
  for (int g = 0; g < profile.num_groups(); ++g) {
    for (int y = 0; y < profile.num_classes(); ++y) {
      const std::optional<ConstraintSet>& cell = profile.cell(g, y);
      w->WriteU8(cell.has_value() ? 1 : 0);
      if (cell.has_value()) SerializeConstraintSet(*cell, w);
    }
  }
}

Result<GroupLabelProfile> DeserializeProfile(BinaryReader* r) {
  Result<int32_t> groups = r->ReadI32();
  if (!groups.ok()) return groups.status();
  Result<int32_t> classes = r->ReadI32();
  if (!classes.ok()) return classes.status();
  if (groups.value() < 0 || classes.value() < 0 ||
      static_cast<uint64_t>(groups.value()) *
          static_cast<uint64_t>(classes.value()) >
      (1u << 20)) {
    return Status::DataLoss("snapshot profile has an implausible shape");
  }
  std::vector<std::optional<ConstraintSet>> cells(
      static_cast<size_t>(groups.value()) *
      static_cast<size_t>(classes.value()));
  for (size_t i = 0; i < cells.size(); ++i) {
    Result<uint8_t> present = r->ReadU8();
    if (!present.ok()) return present.status();
    if (present.value() == 0) continue;
    Result<ConstraintSet> set = DeserializeConstraintSet(r);
    if (!set.ok()) return set.status();
    cells[i] = std::move(set).value();
  }
  Result<GroupLabelProfile> profile = GroupLabelProfile::FromCells(
      groups.value(), classes.value(), std::move(cells));
  if (!profile.ok()) return Status::DataLoss(profile.status().message());
  return profile;
}

void SerializeKdeOptions(const KdeOptions& options, BinaryWriter* w) {
  w->WriteU8(options.bandwidth_rule == BandwidthRule::kSilverman ? 1 : 0);
  w->WriteDouble(options.approximation_atol);
  w->WriteU64(options.leaf_size);
  w->WriteU8(options.tree_backend == KdeTreeBackend::kBallTree ? 1 : 0);
  w->WriteU8(options.use_fit_cache ? 1 : 0);
}

Result<KdeOptions> DeserializeKdeOptions(BinaryReader* r) {
  KdeOptions options;
  Result<uint8_t> rule = r->ReadU8();
  if (!rule.ok()) return rule.status();
  options.bandwidth_rule =
      rule.value() != 0 ? BandwidthRule::kSilverman : BandwidthRule::kScott;
  Result<double> atol = r->ReadDouble();
  if (!atol.ok()) return atol.status();
  options.approximation_atol = atol.value();
  Result<uint64_t> leaf = r->ReadU64();
  if (!leaf.ok()) return leaf.status();
  options.leaf_size = leaf.value();
  Result<uint8_t> backend = r->ReadU8();
  if (!backend.ok()) return backend.status();
  options.tree_backend = backend.value() != 0 ? KdeTreeBackend::kBallTree
                                              : KdeTreeBackend::kKdTree;
  Result<uint8_t> cache = r->ReadU8();
  if (!cache.ok()) return cache.status();
  options.use_fit_cache = cache.value() != 0;
  return options;
}

// The payload is serialized section by section so the chunked
// (manifest) format can persist each section as its own artifact; the
// monolithic payload is the in-order concatenation of the sections, so
// both formats share one parser and one bitwise identity.

void SerializeSchemaSection(const ModelSnapshot& snapshot,
                            BinaryWriter* payload) {
  SerializeSchema(snapshot.schema(), payload);
  snapshot.encoder().SerializeTo(payload);
  payload->WriteU8(snapshot.routed() ? 1 : 0);
  payload->WriteU8(snapshot.routing() == RoutingRule::kViolationOnly ? 1 : 0);
  payload->WriteI32(snapshot.fallback_group());
}

Status SerializeModelsSection(const ModelSnapshot& snapshot,
                              BinaryWriter* payload) {
  payload->WriteU64(static_cast<uint64_t>(snapshot.num_groups()));
  for (int g = 0; g < snapshot.num_groups(); ++g) {
    const Classifier* model = snapshot.group_model(g);
    payload->WriteU8(model != nullptr ? 1 : 0);
    if (model != nullptr) {
      FAIRDRIFT_RETURN_IF_ERROR(SerializeClassifier(*model, payload));
    }
  }
  return Status::OK();
}

void SerializeProfileSection(const ModelSnapshot& snapshot,
                             BinaryWriter* payload) {
  payload->WriteU8(snapshot.has_profile() ? 1 : 0);
  if (snapshot.has_profile()) SerializeProfile(snapshot.profile(), payload);
}

Status SerializeDensitySection(const ModelSnapshot& snapshot,
                               BinaryWriter* payload) {
  payload->WriteU8(snapshot.has_density() ? 1 : 0);
  if (snapshot.has_density()) {
    SerializeKdeOptions(snapshot.density_options(), payload);
    payload->WriteDouble(snapshot.density_floor());
    // v2+: the fitted estimator travels whole (flat tree included), so
    // the loader neither refits nor retains a training-matrix copy.
    FAIRDRIFT_RETURN_IF_ERROR(snapshot.density()->SaveFittedTo(payload));
  }
  return Status::OK();
}

void SerializePolicySection(const ModelSnapshot& snapshot,
                            BinaryWriter* payload) {
  // v3: the serve-time monitoring policy rides with the artifact (written
  // even without a density section so the layout does not branch).
  payload->WriteU8(static_cast<uint8_t>(snapshot.monitor().mode));
  payload->WriteU32(snapshot.monitor().sample_modulus);
  // v4: the audit group field (schema index of the categorical field the
  // serving audit tier reads group ids from; -1 = none).
  payload->WriteI32(snapshot.group_field());
}

/// Serializes everything up to the density section (identical across
/// format versions).
Status SerializeCommonSections(const ModelSnapshot& snapshot,
                               BinaryWriter* payload) {
  SerializeSchemaSection(snapshot, payload);
  FAIRDRIFT_RETURN_IF_ERROR(SerializeModelsSection(snapshot, payload));
  SerializeProfileSection(snapshot, payload);
  return Status::OK();
}

/// Frames `payload` (magic + header + checksum) and writes it atomically.
Status WriteFramedSnapshot(const BinaryWriter& payload, uint32_t version,
                           const std::string& path) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  BinaryWriter header;
  header.WriteU32(version);
  header.WriteU64(payload.buffer().size());
  out.append(header.buffer());
  out.append(payload.buffer());
  BinaryWriter checksum;
  checksum.WriteU64(Fnv1aHash(payload.buffer().data(),
                              payload.buffer().size()));
  out.append(checksum.buffer());
  // Atomic replace: the hot-reload watcher may race this write.
  return WriteFileBytesAtomic(path, out);
}

}  // namespace

Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path) {
  BinaryWriter payload;
  FAIRDRIFT_RETURN_IF_ERROR(SerializeCommonSections(snapshot, &payload));
  FAIRDRIFT_RETURN_IF_ERROR(SerializeDensitySection(snapshot, &payload));
  SerializePolicySection(snapshot, &payload);
  return WriteFramedSnapshot(payload, kSnapshotFormatVersion, path);
}

Status SerializeSnapshotPayloadChunks(const ModelSnapshot& snapshot,
                                      std::vector<SnapshotPayloadChunk>* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("SerializeSnapshotPayloadChunks: null out");
  }
  out->clear();
  out->resize(5);
  BinaryWriter w;
  (*out)[0].name = "schema";
  SerializeSchemaSection(snapshot, &w);
  (*out)[0].bytes = std::move(w).TakeBuffer();
  w = BinaryWriter();
  (*out)[1].name = "models";
  FAIRDRIFT_RETURN_IF_ERROR(SerializeModelsSection(snapshot, &w));
  (*out)[1].bytes = std::move(w).TakeBuffer();
  w = BinaryWriter();
  (*out)[2].name = "profile";
  SerializeProfileSection(snapshot, &w);
  (*out)[2].bytes = std::move(w).TakeBuffer();
  w = BinaryWriter();
  (*out)[3].name = "density";
  FAIRDRIFT_RETURN_IF_ERROR(SerializeDensitySection(snapshot, &w));
  (*out)[3].bytes = std::move(w).TakeBuffer();
  w = BinaryWriter();
  (*out)[4].name = "policy";
  SerializePolicySection(snapshot, &w);
  (*out)[4].bytes = std::move(w).TakeBuffer();
  return Status::OK();
}

Status SaveSnapshotV1(const ModelSnapshot& snapshot,
                      const Matrix& density_train, const std::string& path) {
  BinaryWriter payload;
  FAIRDRIFT_RETURN_IF_ERROR(SerializeCommonSections(snapshot, &payload));
  if (snapshot.has_density() && density_train.empty()) {
    return Status::FailedPrecondition(
        "SaveSnapshotV1: the legacy format persists the density monitor "
        "as its raw training matrix, which was not supplied");
  }
  payload.WriteU8(snapshot.has_density() ? 1 : 0);
  if (snapshot.has_density()) {
    SerializeKdeOptions(snapshot.density_options(), &payload);
    payload.WriteDouble(snapshot.density_floor());
    density_train.SerializeTo(&payload);
  }
  return WriteFramedSnapshot(payload, 1, path);
}

Result<std::shared_ptr<const ModelSnapshot>> LoadSnapshot(
    const std::string& path) {
  SnapshotLoadReport report;
  return LoadSnapshot(path, SnapshotLoadMode::kStrict, &report);
}

Result<std::shared_ptr<const ModelSnapshot>> LoadSnapshot(
    const std::string& path, SnapshotLoadMode mode,
    SnapshotLoadReport* report) {
  if (report == nullptr) {
    return Status::InvalidArgument("LoadSnapshot: null report");
  }
  *report = SnapshotLoadReport{};
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  // Fault site: a torn read — as if the file changed under us mid-read.
  if (FAULT_POINT("snapshot.load")) {
    return Status::DataLoss(
        "'" + path + "' failed its integrity check (injected fault: "
        "snapshot.load)");
  }
  const std::string& file = bytes.value();
  if (file.size() < sizeof(kMagic) + 12 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("'" + path + "' is not a fairdrift snapshot");
  }
  BinaryReader header(file.data() + sizeof(kMagic),
                      file.size() - sizeof(kMagic));
  Result<uint32_t> version = header.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() < kMinSnapshotFormatVersion ||
      version.value() > kSnapshotFormatVersion) {
    return Status::DataLoss(StrFormat(
        "'%s' has snapshot format version %u; this build reads versions "
        "%u through %u",
        path.c_str(), version.value(), kMinSnapshotFormatVersion,
        kSnapshotFormatVersion));
  }
  Result<uint64_t> payload_size = header.ReadU64();
  if (!payload_size.ok()) return payload_size.status();
  // Subtraction-shaped guard: a hostile payload_size must not wrap past
  // the check into an out-of-bounds payload/trailer read.
  if (header.remaining() < 8 ||
      payload_size.value() != header.remaining() - 8) {
    return Status::DataLoss("'" + path + "' is truncated");
  }
  const char* payload_start = file.data() + sizeof(kMagic) + 12;
  BinaryReader trailer(payload_start + payload_size.value(), 8);
  Result<uint64_t> stored_checksum = trailer.ReadU64();
  if (!stored_checksum.ok()) return stored_checksum.status();
  if (Fnv1aHash(payload_start, payload_size.value()) !=
      stored_checksum.value()) {
    return Status::DataLoss("'" + path + "' failed its integrity check");
  }

  return ParseSnapshotPayload(version.value(), payload_start,
                              payload_size.value(), mode, report, path);
}

Result<std::shared_ptr<const ModelSnapshot>> ParseSnapshotPayload(
    uint32_t format_version, const char* data, size_t size,
    SnapshotLoadMode mode, SnapshotLoadReport* report,
    const std::string& origin) {
  if (report == nullptr) {
    return Status::InvalidArgument("ParseSnapshotPayload: null report");
  }
  *report = SnapshotLoadReport{};
  if (format_version < kMinSnapshotFormatVersion ||
      format_version > kSnapshotFormatVersion) {
    return Status::DataLoss(StrFormat(
        "'%s' has snapshot format version %u; this build reads versions "
        "%u through %u",
        origin.c_str(), format_version, kMinSnapshotFormatVersion,
        kSnapshotFormatVersion));
  }
  BinaryReader r(data, size);
  SnapshotParts parts;
  Result<Schema> schema = DeserializeSchema(&r);
  if (!schema.ok()) return schema.status();
  parts.schema = std::move(schema).value();
  Result<FeatureEncoder> encoder = FeatureEncoder::DeserializeFrom(&r);
  if (!encoder.ok()) return encoder.status();
  parts.encoder = std::move(encoder).value();
  // The encoder carries its own schema copy; every downstream width
  // check (constraints, density matrix) validates against the top-level
  // schema while scoring derives views through the encoder — a forged
  // disagreement between the two would undo those checks.
  if (!parts.encoder.schema().Equals(parts.schema)) {
    return Status::DataLoss(
        "snapshot encoder schema disagrees with the snapshot schema");
  }

  Result<uint8_t> routed = r.ReadU8();
  if (!routed.ok()) return routed.status();
  parts.routed = routed.value() != 0;
  Result<uint8_t> routing = r.ReadU8();
  if (!routing.ok()) return routing.status();
  parts.routing = routing.value() != 0 ? RoutingRule::kViolationOnly
                                       : RoutingRule::kSignedMargin;
  Result<int32_t> fallback = r.ReadI32();
  if (!fallback.ok()) return fallback.status();
  parts.fallback_group = fallback.value();

  Result<uint64_t> num_models = r.ReadU64();
  if (!num_models.ok()) return num_models.status();
  if (num_models.value() > (1u << 20)) {
    return Status::DataLoss("snapshot claims an implausible model count");
  }
  parts.models.resize(num_models.value());
  for (uint64_t g = 0; g < num_models.value(); ++g) {
    Result<uint8_t> present = r.ReadU8();
    if (!present.ok()) return present.status();
    if (present.value() == 0) continue;
    Result<std::unique_ptr<Classifier>> model = DeserializeClassifier(&r);
    if (!model.ok()) return model.status();
    // Width cross-check against the encoder: a forged model whose fitted
    // dimension exceeds the design matrix would read past request rows
    // at scoring time.
    size_t dim = ClassifierInputDim(*model.value());
    if (dim != 0 && dim != parts.encoder.encoded_dim()) {
      return Status::DataLoss(StrFormat(
          "snapshot model %llu expects %zu features, encoder produces %zu",
          static_cast<unsigned long long>(g), dim,
          parts.encoder.encoded_dim()));
    }
    parts.models[g] = std::move(model).value();
  }

  Result<uint8_t> has_profile = r.ReadU8();
  if (!has_profile.ok()) return has_profile.status();
  if (has_profile.value() != 0) {
    Result<GroupLabelProfile> profile = DeserializeProfile(&r);
    if (!profile.ok()) return profile.status();
    // Constraint projections scan the numeric attribute view; a forged
    // coefficient vector wider than that view would read out of bounds
    // during routing/margin scans.
    size_t num_numeric = parts.schema.num_numeric();
    for (int g = 0; g < profile.value().num_groups(); ++g) {
      for (int y = 0; y < profile.value().num_classes(); ++y) {
        const std::optional<ConstraintSet>& cell = profile.value().cell(g, y);
        if (!cell.has_value()) continue;
        for (size_t c = 0; c < cell->size(); ++c) {
          if (cell->constraint(c).projection.coeffs.size() != num_numeric) {
            return Status::DataLoss(
                "snapshot constraint width disagrees with the schema");
          }
        }
      }
    }
    parts.profile = std::move(profile).value();
    parts.has_profile = true;
  }

  // Optional monitor tail: density estimator + MonitorSpec. The core
  // sections above (schema, encoder, models, profile) determine the
  // scores; everything from here on only configures drift monitoring —
  // which is what kAllowPartial is allowed to sacrifice.
  auto parse_monitor_tail = [&]() -> Status {
    // Fault site: the density section is unreadable even though the
    // whole-file checksum passed (e.g. a schema-level corruption).
    if (FAULT_POINT("snapshot.density")) {
      return Status::DataLoss(
          "snapshot density section unreadable (injected fault: "
          "snapshot.density)");
    }
    Result<uint8_t> has_density = r.ReadU8();
    if (!has_density.ok()) return has_density.status();
    if (has_density.value() != 0) {
      Result<KdeOptions> options = DeserializeKdeOptions(&r);
      if (!options.ok()) return options.status();
      Result<double> floor = r.ReadDouble();
      if (!floor.ok()) return floor.status();
      if (format_version >= 2) {
        // v2: the fitted estimator (flat tree included) travels whole —
        // an O(n) read with no refit and no resident training-matrix
        // copy.
        Result<KernelDensity> density = KernelDensity::LoadFittedFrom(&r);
        if (!density.ok()) return density.status();
        if (density.value().bandwidth().size() !=
            parts.schema.num_numeric()) {
          return Status::DataLoss(
              "snapshot density estimator width disagrees with the schema");
        }
        parts.density =
            std::make_shared<const KernelDensity>(std::move(density).value());
      } else {
        // v1 compatibility: the density section carries the raw training
        // matrix; refit deterministically (identical data + options
        // rebuild a bitwise-identical estimator) and then DROP the
        // matrix — even legacy files no longer pay the resident copy.
        Result<Matrix> train = Matrix::DeserializeFrom(&r);
        if (!train.ok()) return train.status();
        if (train.value().cols() != parts.schema.num_numeric()) {
          return Status::DataLoss(
              "snapshot density matrix width disagrees with the schema");
        }
        Result<KernelDensity> density =
            KernelDensity::Fit(train.value(), options.value());
        if (!density.ok()) return density.status();
        parts.density =
            std::make_shared<const KernelDensity>(std::move(density).value());
      }
      parts.density_floor = floor.value();
      parts.density_options = options.value();
    }

    if (format_version >= 3) {
      Result<uint8_t> monitor_mode = r.ReadU8();
      if (!monitor_mode.ok()) return monitor_mode.status();
      if (monitor_mode.value() > static_cast<uint8_t>(MonitorMode::kSampled)) {
        return Status::DataLoss("snapshot carries an unknown monitor mode");
      }
      parts.monitor.mode = static_cast<MonitorMode>(monitor_mode.value());
      Result<uint32_t> modulus = r.ReadU32();
      if (!modulus.ok()) return modulus.status();
      if (modulus.value() == 0) {
        return Status::DataLoss("snapshot monitor sample modulus is zero");
      }
      parts.monitor.sample_modulus = modulus.value();
    }

    if (format_version >= 4) {
      // v4: the audit group field index (-1 = none). Range and
      // field-type checks here (not just in Create) so kAllowPartial can
      // degrade a forged index instead of failing the whole load.
      Result<int32_t> group_field = r.ReadI32();
      if (!group_field.ok()) return group_field.status();
      if (group_field.value() < -1 ||
          group_field.value() >=
              static_cast<int32_t>(parts.schema.num_fields())) {
        return Status::DataLoss(
            "snapshot audit group field is outside the schema");
      }
      if (group_field.value() >= 0 &&
          parts.schema.field(static_cast<size_t>(group_field.value())).type ==
              ColumnType::kNumeric) {
        return Status::DataLoss(
            "snapshot audit group field is not categorical");
      }
      parts.group_field = group_field.value();
    }

    if (r.remaining() != 0) {
      return Status::DataLoss("'" + origin + "' carries trailing bytes");
    }
    return Status::OK();
  };
  Status tail = parse_monitor_tail();
  if (!tail.ok()) {
    if (mode == SnapshotLoadMode::kStrict) return tail;
    // Graceful degradation: serve the intact models with the monitor
    // dropped. Scoring is bitwise-identical to the full snapshot with
    // monitoring off (density_checked = false on every result).
    parts.density = nullptr;
    parts.density_floor = -std::numeric_limits<double>::infinity();
    parts.density_options = KdeOptions{};
    parts.monitor = MonitorSpec{};
    parts.group_field = -1;
    report->outcome = SnapshotLoadReport::Outcome::kDegraded;
    report->degraded_note = StrFormat(
        "monitor sections dropped (%s); serving with density monitoring "
        "disabled",
        tail.message().c_str());
  }
  Result<std::shared_ptr<const ModelSnapshot>> snapshot =
      ModelSnapshot::Create(std::move(parts));
  if (!snapshot.ok()) {
    // Structural invariants (fallback model present, routing has a
    // profile) double as integrity checks here.
    return Status::DataLoss("'" + origin +
                            "' is not a valid snapshot: " +
                            snapshot.status().message());
  }
  return snapshot;
}

Result<SnapshotFileSignature> ProbeSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  // magic(8) + version(4) + payload_size(8), then the checksum is the
  // last 8 bytes of the file.
  char head[20];
  size_t got = std::fread(head, 1, sizeof(head), f);
  long file_end = 0;
  char tail[8];
  bool tail_ok = got == sizeof(head) && std::fseek(f, -8, SEEK_END) == 0 &&
                 std::fread(tail, 1, sizeof(tail), f) == sizeof(tail) &&
                 (file_end = std::ftell(f)) >= 0;
  std::fclose(f);
  if (!tail_ok || std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("'" + path + "' is not a fairdrift snapshot");
  }
  BinaryReader header(head + sizeof(kMagic), 12);
  SnapshotFileSignature sig;
  sig.file_size = static_cast<uint64_t>(file_end);
  Result<uint32_t> version = header.ReadU32();
  if (!version.ok()) return version.status();
  sig.format_version = version.value();
  Result<uint64_t> payload_size = header.ReadU64();
  if (!payload_size.ok()) return payload_size.status();
  sig.payload_size = payload_size.value();
  BinaryReader trailer(tail, sizeof(tail));
  Result<uint64_t> checksum = trailer.ReadU64();
  if (!checksum.ok()) return checksum.status();
  sig.checksum = checksum.value();
  if (sig.file_size != sizeof(kMagic) + 12 + sig.payload_size + 8) {
    return Status::DataLoss("'" + path + "' is truncated");
  }
  return sig;
}

}  // namespace fairdrift
