// Request-scoped trace identity + allocation-free span slot.
//
// Trace ids are minted at admission from the request row's bytes
// (FNV-1a content hash), exactly like the density monitor's sampled
// mode selects rows: a row is sampled iff hash % sample_modulus == 0,
// and its trace id IS that hash. Because the id derives from content
// and not from arrival order, the sampled set is deterministic and
// invariant across batch composition, shard assignment, worker counts,
// and process boundaries — every process a sampled row passes through
// re-derives the same trace id without coordination, and the wire only
// has to carry the parent span linkage (net/frame.h trace extension).
//
// Span recording is a fixed-size array of per-stage nanosecond stamps
// (util/timer.h MonotonicNowNs) embedded in the request's TicketState:
// stamping is a store into pre-existing memory, so the sampled path
// allocates nothing extra and the unsampled path only pays one hash.
// Stage index order is the canonical intra-process happens-before
// order; a whole-span record's stamps must be non-decreasing in it.

#ifndef FAIRDRIFT_SERVE_TRACE_TRACE_CONTEXT_H_
#define FAIRDRIFT_SERVE_TRACE_TRACE_CONTEXT_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/timer.h"

namespace fairdrift {

/// Pipeline stages a request's span slot can stamp, in canonical
/// happens-before order within one process.
enum class TraceStage : uint8_t {
  kWireRecv = 0,       ///< daemon received the carrying score frame
  kAdmit = 1,          ///< admission passed, ticket minted
  kEnqueue = 2,        ///< pushed into the request queue
  kDequeue = 3,        ///< dispatcher popped it into a batch
  kBatchAssemble = 4,  ///< batch worker staged the row into scratch
  kScore = 5,          ///< snapshot scoring of its batch finished
  kAuditFold = 6,      ///< fairness-audit fold of its batch finished
  kWireSend = 7,       ///< daemon serialized the reply frame
};

inline constexpr size_t kTraceStageCount = 8;

/// Stable stage key used in trace records and metric labels.
const char* TraceStageName(TraceStage stage);

/// The identity a request's spans hang off. trace_id == 0 means
/// unsampled (the FNV offset basis never hashes to 0 in practice; a
/// pathological zero hash is remapped at mint).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;

  bool sampled() const { return trace_id != 0; }
};

/// Mints the trace context of one request row. Sampled iff the row's
/// FNV-1a hash % sample_modulus == 0 (modulus 0 or 1 samples every
/// row); unsampled rows get the zero context. Deterministic in the row
/// bytes alone.
TraceContext MintTraceContext(const double* row, size_t width,
                              uint32_t sample_modulus);

/// This process's span id within a trace: one FNV-1a chain step of the
/// role name seeded with the trace id, so "router" -> "shard" parent
/// links are reproducible from (trace id, role path) alone.
uint64_t TraceSpanId(uint64_t trace_id, const char* role);

/// Fixed-size per-request span storage (embedded in TicketState — the
/// sampled path never allocates for tracing).
struct TraceSpanSlot {
  TraceContext context;
  /// Stamp of each stage in MonotonicNowNs units; 0 = never stamped.
  std::array<uint64_t, kTraceStageCount> stamp_ns{};

  bool sampled() const { return context.sampled(); }

  void Stamp(TraceStage stage) { StampAt(stage, MonotonicNowNs()); }
  void StampAt(TraceStage stage, uint64_t now_ns) {
    stamp_ns[static_cast<size_t>(stage)] = now_ns;
  }
  uint64_t stamp(TraceStage stage) const {
    return stamp_ns[static_cast<size_t>(stage)];
  }
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_TRACE_TRACE_CONTEXT_H_
