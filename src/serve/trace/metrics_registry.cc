#include "serve/trace/metrics_registry.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace fairdrift {
namespace {

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

void MetricsEmitter::Header(const std::string& name, const std::string& help,
                            const char* type) {
  if (std::find(seen_families_.begin(), seen_families_.end(), name) !=
      seen_families_.end()) {
    return;
  }
  seen_families_.push_back(name);
  out_->append("# HELP ");
  out_->append(name);
  out_->push_back(' ');
  out_->append(help);
  out_->append("\n# TYPE ");
  out_->append(name);
  out_->push_back(' ');
  out_->append(type);
  out_->push_back('\n');
}

void MetricsEmitter::Line(const std::string& name, const std::string& labels,
                          const std::string& value) {
  out_->append(name);
  if (!labels.empty()) {
    out_->push_back('{');
    out_->append(labels);
    out_->push_back('}');
  }
  out_->push_back(' ');
  out_->append(value);
  out_->push_back('\n');
}

void MetricsEmitter::Counter(const std::string& name, const std::string& help,
                             uint64_t value, const std::string& labels) {
  Header(name, help, "counter");
  Line(name, labels, std::to_string(value));
}

void MetricsEmitter::Gauge(const std::string& name, const std::string& help,
                           double value, const std::string& labels) {
  Header(name, help, "gauge");
  Line(name, labels, StrFormat("%.17g", value));
}

void MetricsRegistry::Gauge::Set(double v) {
  bits_.store(DoubleToBits(v), std::memory_order_relaxed);
}

double MetricsRegistry::Gauge::value() const {
  return BitsToDouble(bits_.load(std::memory_order_relaxed));
}

MetricsRegistry::Counter* MetricsRegistry::AddCounter(
    const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back({name, help, std::make_unique<Counter>()});
  return counters_.back().counter.get();
}

MetricsRegistry::Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.push_back({name, help, std::make_unique<Gauge>()});
  return gauges_.back().gauge.get();
}

void MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  MetricsEmitter emitter(&out);
  std::lock_guard<std::mutex> lock(mu_);
  for (const OwnedCounter& c : counters_) {
    emitter.Counter(c.name, c.help, c.counter->value());
  }
  for (const OwnedGauge& g : gauges_) {
    emitter.Gauge(g.name, g.help, g.gauge->value());
  }
  for (const Collector& collector : collectors_) {
    collector(&emitter);
  }
  return out;
}

void EmitStatsViewMetrics(const ServerStats::View& view, MetricsEmitter* out) {
  out->Counter("fairdrift_submitted_total", "Requests admitted and enqueued",
               view.submitted);
  out->Counter("fairdrift_completed_total", "Requests scored to completion",
               view.completed);
  out->Counter("fairdrift_shed_admission_total",
               "Requests shed by admission control", view.shed_admission);
  out->Counter("fairdrift_shed_deadline_total",
               "Requests shed on an expired deadline", view.shed_deadline);
  out->Counter("fairdrift_invalid_total", "Requests rejected as malformed",
               view.invalid);
  out->Counter("fairdrift_batches_total", "Micro-batches scored",
               view.batches);
  out->Counter("fairdrift_snapshot_swaps_total",
               "Model snapshot hot swaps published", view.snapshot_swaps);
  out->Counter("fairdrift_density_checked_total",
               "Rows evaluated by the density drift monitor",
               view.density_checked);
  out->Counter("fairdrift_density_outliers_total",
               "Checked rows below the density floor",
               view.density_outliers);
  out->Counter("fairdrift_audit_windows_total",
               "Fairness audit windows completed", view.audit_windows);
  out->Counter("fairdrift_audit_breaches_total",
               "Audit windows breaching the alert policy",
               view.audit_breaches);
  out->Counter("fairdrift_audit_alerts_raised_total",
               "Fairness alert raise transitions", view.audit_alerts_raised);
  out->Counter("fairdrift_trace_sampled_total",
               "Requests selected by the content-hash trace sampler",
               view.trace_sampled);
  out->Counter("fairdrift_trace_append_failures_total",
               "Sampled span records lost to failed trace-log appends",
               view.trace_append_failures);
  out->Gauge("fairdrift_audit_alert_active",
             "1 while the fairness alert is raised",
             view.audit_alert_active ? 1.0 : 0.0);
  out->Gauge("fairdrift_mean_batch_size", "Mean scored micro-batch size",
             view.mean_batch_size);
  out->Gauge("fairdrift_ewma_batch_latency_us",
             "EWMA of batch scoring latency (admission cost signal)",
             view.ewma_batch_latency_us);
  out->Gauge("fairdrift_ewma_outlier_rate",
             "EWMA of the per-batch density outlier fraction",
             view.ewma_outlier_rate);
  const char* kLatencyHelp =
      "Request submit-to-fulfill latency quantiles (log-hist derived)";
  out->Gauge("fairdrift_latency_us", kLatencyHelp, view.p50_latency_us,
             "quantile=\"0.5\"");
  out->Gauge("fairdrift_latency_us", kLatencyHelp, view.p95_latency_us,
             "quantile=\"0.95\"");
  out->Gauge("fairdrift_latency_us", kLatencyHelp, view.p99_latency_us,
             "quantile=\"0.99\"");
  const char* kStageHelp =
      "Per-pipeline-stage latency of trace-sampled requests";
  for (size_t s = 0; s < ServerStats::kServeStages; ++s) {
    std::string labels =
        StrFormat("stage=\"%s\",quantile=\"0.99\"", ServerStats::StageName(s));
    out->Gauge("fairdrift_stage_latency_us", kStageHelp,
               ServerStats::PercentileUsFromHist(view.stage_hist[s], 0.99),
               labels);
  }
}

}  // namespace fairdrift
