// Chained JSONL trace log: whole-span records of sampled requests.
//
// One record per sampled request, written once the request's span slot
// is fully stamped (after ticket fulfillment on the emitting path —
// never on the scoring hot path, and never at all for unsampled rows):
//
//   {"trace":"<16 hex>","span":"<16 hex>","parent":"<16 hex>",
//    "role":"shard","snapshot":3,
//    "spans":{"admit":<ns>,"enqueue":<ns>,...}}
//
// wrapped in the audit tier's per-record checksum-chain envelope
// (serve/audit/audit_log.h) — the trace log IS an AuditLog with the
// `trace.append` / `trace.fsync` fault sites and the same rotation,
// torn-tail, and verification semantics, so `fairdrift_cli trace
// verify` proves a daemon's trace history intact across SIGKILL exactly
// like `audit verify` does for fairness windows. Span timestamps are
// MonotonicNowNs values: monotonic within the emitting process, only
// ordered within it.
//
// A failed append drops that one record and is counted by the caller
// (ServerStats trace_append_failures); tracing must never fail scoring.

#ifndef FAIRDRIFT_SERVE_TRACE_TRACE_LOG_H_
#define FAIRDRIFT_SERVE_TRACE_TRACE_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/audit/audit_log.h"
#include "serve/trace/trace_context.h"
#include "util/status.h"

namespace fairdrift {

struct TraceLogOptions {
  /// Rotate by size with chained continuation (AuditLogOptions
  /// semantics); 0 = never rotate.
  uint64_t rotate_bytes = 0;
  /// fsync after every record (slow; spans are telemetry, not ledger
  /// entries, so the default trades durability of the last record for
  /// throughput).
  bool fsync_each_append = false;
};

/// The span record's `rec` JSON (without the chain envelope). Only
/// stamped stages appear, in canonical TraceStage order. Exposed for
/// tests and the CLI's `trace show`.
std::string FormatTraceRecord(const TraceSpanSlot& slot, const char* role,
                              uint64_t snapshot_version);

/// Append-side writer of the trace log. Thread-safe.
class TraceLog {
 public:
  /// Opens (creating if absent), resuming the chain across any rotated
  /// segments — AuditLog::Open semantics, trace.* fault sites.
  static Result<std::unique_ptr<TraceLog>> Open(
      const std::string& path, const TraceLogOptions& options = {});

  /// Appends one sampled request's whole-span record. `role` names the
  /// emitting tier ("server", "shard", "router"); the record's span id
  /// is TraceSpanId(trace id, role). Fails without advancing the chain
  /// on the `trace.append` fault site.
  Status Append(const TraceSpanSlot& slot, const char* role,
                uint64_t snapshot_version);

  /// fsyncs (the `trace.fsync` fault site).
  Status Sync() { return log_->Sync(); }

  uint64_t records() const { return log_->records(); }
  uint64_t chain() const { return log_->chain(); }
  uint64_t rotated_segments() const { return log_->rotated_segments(); }
  const std::string& path() const { return log_->path(); }

 private:
  explicit TraceLog(std::unique_ptr<AuditLog> log) : log_(std::move(log)) {}

  std::unique_ptr<AuditLog> log_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_TRACE_TRACE_LOG_H_
