// MetricsRegistry: unified counters/gauges + Prometheus-style text.
//
// Two ways metrics reach a scrape:
//
//  * Owned instruments: AddCounter/AddGauge return stable pointers whose
//    write path is one relaxed atomic op — safe to bump from accept
//    loops and batch workers. RenderText reads them at scrape time.
//  * Collectors: callbacks invoked per scrape that emit samples from
//    state that already aggregates itself (ServerStats::View,
//    FleetStatsView, daemon counters). This is how the serving tier's
//    existing lock-free stats register "into" the registry without a
//    second copy of every counter.
//
// Exposition is the Prometheus text format (one `# HELP`/`# TYPE` per
// family, `name{labels} value` lines). Histograms are exposed as
// quantile-labeled gauges derived via ServerStats::PercentileUsFromHist
// rather than 256 cumulative buckets. EmitStatsViewMetrics defines the
// shared fairdrift_* family set: shard daemons render their own view,
// the router renders the fleet-merged view, so a router scrape equals
// the element-wise sum/merge of its daemons' scrapes family by family.

#ifndef FAIRDRIFT_SERVE_TRACE_METRICS_REGISTRY_H_
#define FAIRDRIFT_SERVE_TRACE_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/server_stats.h"

namespace fairdrift {

/// Builds exposition text sample by sample. Standalone (the router
/// renders a one-off scrape without a registry); RenderText drives one
/// internally.
class MetricsEmitter {
 public:
  explicit MetricsEmitter(std::string* out) : out_(out) {}

  /// One counter sample. `labels` is the rendered label body without
  /// braces (e.g. "stage=\"score\""), empty for none. HELP/TYPE are
  /// emitted once per family, on first sight.
  void Counter(const std::string& name, const std::string& help,
               uint64_t value, const std::string& labels = "");

  /// One gauge sample (%.17g — round-trips doubles).
  void Gauge(const std::string& name, const std::string& help, double value,
             const std::string& labels = "");

 private:
  void Header(const std::string& name, const std::string& help,
              const char* type);
  void Line(const std::string& name, const std::string& labels,
            const std::string& value);

  std::string* out_;
  std::vector<std::string> seen_families_;
};

/// Thread-safe instrument registry. Registration takes a lock; the
/// instrument write path never does.
class MetricsRegistry {
 public:
  class Counter {
   public:
    void Increment(uint64_t n = 1) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

   private:
    std::atomic<uint64_t> value_{0};
  };

  class Gauge {
   public:
    void Set(double v);
    double value() const;

   private:
    std::atomic<uint64_t> bits_{0};  // IEEE-754 bits of the value
  };

  /// Registers an owned instrument; the pointer stays valid for the
  /// registry's lifetime. Names must be valid Prometheus metric names.
  Counter* AddCounter(const std::string& name, const std::string& help);
  Gauge* AddGauge(const std::string& name, const std::string& help);

  /// Registers a scrape-time callback emitting derived samples.
  using Collector = std::function<void(MetricsEmitter*)>;
  void AddCollector(Collector collector);

  /// Renders every owned instrument then every collector's samples.
  std::string RenderText() const;

 private:
  struct OwnedCounter {
    std::string name, help;
    std::unique_ptr<Counter> counter;
  };
  struct OwnedGauge {
    std::string name, help;
    std::unique_ptr<Gauge> gauge;
  };

  mutable std::mutex mu_;
  std::vector<OwnedCounter> counters_;
  std::vector<OwnedGauge> gauges_;
  std::vector<Collector> collectors_;
};

/// Emits the standard fairdrift_* family set of one server-stats view.
/// Shard daemons pass their own view; the router passes the
/// fleet-merged view — counter families then sum exactly across tiers,
/// histogram-derived quantiles re-derive from the merged buckets.
void EmitStatsViewMetrics(const ServerStats::View& view, MetricsEmitter* out);

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_TRACE_METRICS_REGISTRY_H_
