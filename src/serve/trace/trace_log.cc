#include "serve/trace/trace_log.h"

namespace fairdrift {
namespace {

void AppendHex16(uint64_t v, std::string* out) {
  static constexpr char kHex[] = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[v & 0xF];
    v >>= 4;
  }
  out->append(buf, sizeof(buf));
}

}  // namespace

std::string FormatTraceRecord(const TraceSpanSlot& slot, const char* role,
                              uint64_t snapshot_version) {
  std::string out;
  out.reserve(256);
  out.append("{\"trace\":\"");
  AppendHex16(slot.context.trace_id, &out);
  out.append("\",\"span\":\"");
  AppendHex16(TraceSpanId(slot.context.trace_id, role), &out);
  out.append("\",\"parent\":\"");
  AppendHex16(slot.context.parent_span_id, &out);
  out.append("\",\"role\":\"");
  out.append(role);
  out.append("\",\"snapshot\":");
  out.append(std::to_string(snapshot_version));
  out.append(",\"spans\":{");
  bool first = true;
  for (size_t i = 0; i < kTraceStageCount; ++i) {
    uint64_t ns = slot.stamp_ns[i];
    if (ns == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(TraceStageName(static_cast<TraceStage>(i)));
    out.append("\":");
    out.append(std::to_string(ns));
  }
  out.append("}}");
  return out;
}

Result<std::unique_ptr<TraceLog>> TraceLog::Open(
    const std::string& path, const TraceLogOptions& options) {
  AuditLogOptions log_options;
  log_options.fsync_each_append = options.fsync_each_append;
  log_options.rotate_bytes = options.rotate_bytes;
  log_options.append_fault_site = "trace.append";
  log_options.fsync_fault_site = "trace.fsync";
  Result<std::unique_ptr<AuditLog>> log = AuditLog::Open(path, log_options);
  if (!log.ok()) return log.status();
  return std::unique_ptr<TraceLog>(new TraceLog(std::move(log.value())));
}

Status TraceLog::Append(const TraceSpanSlot& slot, const char* role,
                        uint64_t snapshot_version) {
  return log_->Append(FormatTraceRecord(slot, role, snapshot_version));
}

}  // namespace fairdrift
