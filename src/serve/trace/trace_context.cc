#include "serve/trace/trace_context.h"

#include <cstring>

#include "serve/audit/audit_log.h"
#include "util/binary_io.h"

namespace fairdrift {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kWireRecv: return "wire_recv";
    case TraceStage::kAdmit: return "admit";
    case TraceStage::kEnqueue: return "enqueue";
    case TraceStage::kDequeue: return "dequeue";
    case TraceStage::kBatchAssemble: return "batch_assemble";
    case TraceStage::kScore: return "score";
    case TraceStage::kAuditFold: return "audit_fold";
    case TraceStage::kWireSend: return "wire_send";
  }
  return "unknown";
}

TraceContext MintTraceContext(const double* row, size_t width,
                              uint32_t sample_modulus) {
  uint64_t hash = Fnv1aHash(reinterpret_cast<const char*>(row),
                            width * sizeof(double));
  TraceContext context;
  if (sample_modulus > 1 && hash % sample_modulus != 0) {
    return context;  // unsampled: zero context
  }
  // 0 is the unsampled sentinel; remap the (astronomically unlikely)
  // zero hash so a sampled row always carries a nonzero id.
  context.trace_id = hash != 0 ? hash : 1;
  return context;
}

uint64_t TraceSpanId(uint64_t trace_id, const char* role) {
  return Fnv1aChain(trace_id, role, std::strlen(role));
}

}  // namespace fairdrift
