#include "serve/snapshot_manifest.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace fairdrift {
namespace {

constexpr char kManifestMagic[8] = {'F', 'D', 'S', 'N', 'M', 'A', 'N', 'I'};

// The core chunks scores depend on; everything after them is the
// monitor tail kAllowPartial may sacrifice.
constexpr size_t kNumCoreChunks = 3;  // schema, models, profile

std::string ChunkPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".chunk";
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kSnapshotManifestFileName;
}

}  // namespace

size_t SnapshotManifest::FindChunk(const std::string& name) const {
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].name == name) return i;
  }
  return static_cast<size_t>(-1);
}

Result<ChunkedSnapshot> ChunkSnapshot(const ModelSnapshot& snapshot) {
  ChunkedSnapshot out;
  Status st = SerializeSnapshotPayloadChunks(snapshot, &out.chunks);
  if (!st.ok()) return st;
  out.manifest.snapshot_format_version = kSnapshotFormatVersion;
  std::string payload;
  for (const SnapshotPayloadChunk& chunk : out.chunks) {
    SnapshotChunkInfo info;
    info.name = chunk.name;
    info.size = chunk.bytes.size();
    info.checksum = Fnv1aHash(chunk.bytes.data(), chunk.bytes.size());
    out.manifest.chunks.push_back(std::move(info));
    out.manifest.payload_size += chunk.bytes.size();
    payload.append(chunk.bytes);
  }
  out.manifest.payload_checksum = Fnv1aHash(payload.data(), payload.size());
  return out;
}

void SerializeManifest(const SnapshotManifest& manifest, BinaryWriter* w) {
  w->WriteU32(manifest.snapshot_format_version);
  w->WriteU64(manifest.payload_size);
  w->WriteU64(manifest.payload_checksum);
  w->WriteU64(manifest.chunks.size());
  for (const SnapshotChunkInfo& chunk : manifest.chunks) {
    w->WriteString(chunk.name);
    w->WriteU64(chunk.size);
    w->WriteU64(chunk.checksum);
  }
}

Result<SnapshotManifest> DeserializeManifest(BinaryReader* r) {
  SnapshotManifest manifest;
  Result<uint32_t> format = r->ReadU32();
  if (!format.ok()) return format.status();
  manifest.snapshot_format_version = format.value();
  Result<uint64_t> payload_size = r->ReadU64();
  if (!payload_size.ok()) return payload_size.status();
  manifest.payload_size = payload_size.value();
  Result<uint64_t> payload_checksum = r->ReadU64();
  if (!payload_checksum.ok()) return payload_checksum.status();
  manifest.payload_checksum = payload_checksum.value();
  Result<uint64_t> count = r->ReadU64();
  if (!count.ok()) return count.status();
  if (count.value() > 1024) {
    return Status::DataLoss(
        "snapshot manifest claims an implausible chunk count");
  }
  uint64_t total = 0;
  for (uint64_t i = 0; i < count.value(); ++i) {
    SnapshotChunkInfo info;
    Result<std::string> name = r->ReadString();
    if (!name.ok()) return name.status();
    info.name = std::move(name).value();
    if (info.name.empty() ||
        info.name.find_first_not_of(
            "abcdefghijklmnopqrstuvwxyz0123456789_-") != std::string::npos) {
      // Chunk names become file names under the state dir; reject
      // anything that could escape it (slashes, dots, ...).
      return Status::DataLoss(StrFormat(
          "snapshot manifest chunk %llu has an invalid name",
          static_cast<unsigned long long>(i)));
    }
    Result<uint64_t> size = r->ReadU64();
    if (!size.ok()) return size.status();
    info.size = size.value();
    Result<uint64_t> checksum = r->ReadU64();
    if (!checksum.ok()) return checksum.status();
    info.checksum = checksum.value();
    total += info.size;
    manifest.chunks.push_back(std::move(info));
  }
  if (total != manifest.payload_size) {
    return Status::DataLoss(
        "snapshot manifest chunk sizes disagree with the payload size");
  }
  return manifest;
}

Status SaveChunkedSnapshot(const ModelSnapshot& snapshot,
                           const std::string& dir,
                           std::vector<std::string>* written_chunks) {
  if (written_chunks != nullptr) written_chunks->clear();
  Result<ChunkedSnapshot> chunked = ChunkSnapshot(snapshot);
  if (!chunked.ok()) return chunked.status();
  ::mkdir(dir.c_str(), 0755);  // best-effort; the writes below report errors
  // Incremental: trust the previous manifest's checksums (each file was
  // written atomically under it) and only rewrite changed chunks.
  SnapshotManifest previous;
  Result<SnapshotManifest> prev = LoadSnapshotManifest(dir);
  if (prev.ok()) previous = std::move(prev).value();
  for (size_t i = 0; i < chunked.value().chunks.size(); ++i) {
    const SnapshotPayloadChunk& chunk = chunked.value().chunks[i];
    const SnapshotChunkInfo& info = chunked.value().manifest.chunks[i];
    size_t prev_idx = previous.FindChunk(info.name);
    if (prev_idx != static_cast<size_t>(-1) &&
        previous.chunks[prev_idx].checksum == info.checksum &&
        previous.chunks[prev_idx].size == info.size) {
      continue;
    }
    Status st = WriteFileBytesAtomic(ChunkPath(dir, info.name), chunk.bytes);
    if (!st.ok()) return st;
    if (written_chunks != nullptr) written_chunks->push_back(info.name);
  }
  BinaryWriter body;
  SerializeManifest(chunked.value().manifest, &body);
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  BinaryWriter header;
  header.WriteU32(kSnapshotManifestVersion);
  header.WriteU64(body.buffer().size());
  out.append(header.buffer());
  out.append(body.buffer());
  BinaryWriter checksum;
  checksum.WriteU64(Fnv1aHash(body.buffer().data(), body.buffer().size()));
  out.append(checksum.buffer());
  // The manifest lands last. A crash after a chunk rename but before
  // this one leaves the OLD manifest pointing at a NEW chunk file; the
  // per-chunk checksum check in LoadChunkedSnapshot catches that as
  // kDataLoss instead of serving a frankensnapshot.
  return WriteFileBytesAtomic(ManifestPath(dir), out);
}

Result<SnapshotManifest> LoadSnapshotManifest(const std::string& dir) {
  Result<std::string> bytes = ReadFileBytes(ManifestPath(dir));
  if (!bytes.ok()) return bytes.status();
  const std::string& file = bytes.value();
  if (file.size() < sizeof(kManifestMagic) + 12 + 8 ||
      std::memcmp(file.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::DataLoss("'" + dir + "' has no valid snapshot manifest");
  }
  BinaryReader header(file.data() + sizeof(kManifestMagic),
                      file.size() - sizeof(kManifestMagic));
  Result<uint32_t> version = header.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kSnapshotManifestVersion) {
    return Status::DataLoss(StrFormat(
        "'%s' has manifest version %u; this build reads version %u",
        dir.c_str(), version.value(), kSnapshotManifestVersion));
  }
  Result<uint64_t> body_size = header.ReadU64();
  if (!body_size.ok()) return body_size.status();
  if (header.remaining() < 8 || body_size.value() != header.remaining() - 8) {
    return Status::DataLoss("'" + dir + "' has a truncated snapshot manifest");
  }
  const char* body = file.data() + sizeof(kManifestMagic) + 12;
  BinaryReader trailer(body + body_size.value(), 8);
  Result<uint64_t> stored = trailer.ReadU64();
  if (!stored.ok()) return stored.status();
  if (Fnv1aHash(body, body_size.value()) != stored.value()) {
    return Status::DataLoss("'" + dir +
                            "' snapshot manifest failed its integrity check");
  }
  BinaryReader r(body, body_size.value());
  Result<SnapshotManifest> manifest = DeserializeManifest(&r);
  if (!manifest.ok()) return manifest.status();
  if (r.remaining() != 0) {
    return Status::DataLoss("'" + dir +
                            "' snapshot manifest carries trailing bytes");
  }
  return manifest;
}

Result<std::shared_ptr<const ModelSnapshot>> LoadChunkedSnapshot(
    const std::string& dir, SnapshotLoadMode mode,
    SnapshotLoadReport* report) {
  if (report == nullptr) {
    return Status::InvalidArgument("LoadChunkedSnapshot: null report");
  }
  *report = SnapshotLoadReport{};
  Result<SnapshotManifest> manifest_or = LoadSnapshotManifest(dir);
  if (!manifest_or.ok()) return manifest_or.status();
  const SnapshotManifest& manifest = manifest_or.value();
  if (manifest.chunks.size() < kNumCoreChunks) {
    return Status::DataLoss("'" + dir +
                            "' snapshot manifest lacks the core chunks");
  }
  std::string payload;
  payload.reserve(manifest.payload_size);
  bool truncated = false;
  std::string truncated_note;
  for (size_t i = 0; i < manifest.chunks.size(); ++i) {
    const SnapshotChunkInfo& info = manifest.chunks[i];
    auto read_chunk = [&]() -> Status {
      Result<std::string> bytes = ReadFileBytes(ChunkPath(dir, info.name));
      if (!bytes.ok()) return bytes.status();
      if (bytes.value().size() != info.size ||
          Fnv1aHash(bytes.value().data(), bytes.value().size()) !=
              info.checksum) {
        return Status::DataLoss(StrFormat(
            "chunk '%s' in '%s' failed its integrity check", info.name.c_str(),
            dir.c_str()));
      }
      payload.append(bytes.value());
      return Status::OK();
    };
    Status st = read_chunk();
    if (!st.ok()) {
      if (i < kNumCoreChunks || mode == SnapshotLoadMode::kStrict) return st;
      // An optional (monitor-tail) chunk is damaged: stop assembling here
      // and let the shared payload parser degrade, exactly as it does for
      // a corrupt monolithic tail.
      truncated = true;
      truncated_note = st.message();
      break;
    }
  }
  if (!truncated &&
      Fnv1aHash(payload.data(), payload.size()) != manifest.payload_checksum) {
    return Status::DataLoss("'" + dir +
                            "' assembled payload failed its integrity check");
  }
  Result<std::shared_ptr<const ModelSnapshot>> snapshot = ParseSnapshotPayload(
      manifest.snapshot_format_version, payload.data(), payload.size(), mode,
      report, dir);
  if (snapshot.ok() && truncated &&
      report->outcome == SnapshotLoadReport::Outcome::kDegraded &&
      !truncated_note.empty()) {
    report->degraded_note = StrFormat(
        "monitor sections dropped (%s); serving with density monitoring "
        "disabled",
        truncated_note.c_str());
  }
  return snapshot;
}

Result<std::string> AssemblePayload(
    const SnapshotManifest& manifest,
    const std::vector<SnapshotPayloadChunk>& chunks) {
  std::string payload;
  payload.reserve(manifest.payload_size);
  for (const SnapshotChunkInfo& info : manifest.chunks) {
    const SnapshotPayloadChunk* found = nullptr;
    for (const SnapshotPayloadChunk& chunk : chunks) {
      if (chunk.name == info.name) {
        found = &chunk;
        break;
      }
    }
    if (found == nullptr) {
      return Status::FailedPrecondition(StrFormat(
          "snapshot assembly is missing chunk '%s'", info.name.c_str()));
    }
    if (found->bytes.size() != info.size ||
        Fnv1aHash(found->bytes.data(), found->bytes.size()) != info.checksum) {
      return Status::DataLoss(StrFormat(
          "chunk '%s' failed its integrity check during assembly",
          info.name.c_str()));
    }
    payload.append(found->bytes);
  }
  if (Fnv1aHash(payload.data(), payload.size()) != manifest.payload_checksum) {
    return Status::DataLoss(
        "assembled snapshot payload failed its integrity check");
  }
  return payload;
}

}  // namespace fairdrift
