#include "serve/snapshot.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/diffair.h"
#include "util/binary_io.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

std::atomic<uint64_t> g_snapshot_version{0};

uint64_t NextSnapshotVersion() {
  return g_snapshot_version.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Create(
    SnapshotParts parts) {
  if (parts.schema.num_fields() == 0) {
    return Status::InvalidArgument("ModelSnapshot: empty schema");
  }
  if (parts.models.empty()) {
    return Status::InvalidArgument("ModelSnapshot: no models");
  }
  bool any_model = false;
  for (const auto& m : parts.models) {
    if (!m) continue;
    any_model = true;
    if (!m->is_fitted()) {
      return Status::FailedPrecondition("ModelSnapshot: unfitted model");
    }
  }
  if (!any_model) {
    return Status::InvalidArgument("ModelSnapshot: every model is null");
  }
  if (parts.fallback_group < 0 ||
      parts.fallback_group >= static_cast<int>(parts.models.size()) ||
      !parts.models[static_cast<size_t>(parts.fallback_group)]) {
    return Status::InvalidArgument(
        "ModelSnapshot: fallback_group has no model");
  }
  if (parts.routed && !parts.has_profile) {
    return Status::FailedPrecondition(
        "ModelSnapshot: conformance routing needs a profile");
  }
  if (parts.monitor.sample_modulus == 0) {
    return Status::InvalidArgument(
        "ModelSnapshot: monitor sample_modulus must be >= 1");
  }
  if (parts.group_field < -1 ||
      parts.group_field >= static_cast<int>(parts.schema.num_fields())) {
    return Status::InvalidArgument(
        "ModelSnapshot: group_field is outside the schema");
  }
  if (parts.group_field >= 0 &&
      parts.schema.field(static_cast<size_t>(parts.group_field)).type ==
          ColumnType::kNumeric) {
    return Status::InvalidArgument(
        "ModelSnapshot: group_field must be a categorical field");
  }
  if (parts.routed &&
      parts.profile.num_groups() < static_cast<int>(parts.models.size())) {
    // Routing consults the profile for every group that has a model; a
    // narrower profile (possible only via hand-filled parts or a forged
    // snapshot file) would index past its cells.
    return Status::FailedPrecondition(
        "ModelSnapshot: profile covers fewer groups than the model set");
  }

  auto snapshot = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snapshot->version_ = NextSnapshotVersion();
  snapshot->schema_ = std::move(parts.schema);
  snapshot->encoder_ = std::move(parts.encoder);
  snapshot->models_ = std::move(parts.models);
  snapshot->routed_ = parts.routed;
  snapshot->routing_ = parts.routing;
  snapshot->fallback_group_ = parts.fallback_group;
  snapshot->profile_ = std::move(parts.profile);
  snapshot->has_profile_ = parts.has_profile;
  snapshot->density_ = std::move(parts.density);
  snapshot->density_floor_ = parts.density_floor;
  snapshot->density_options_ = parts.density_options;
  snapshot->monitor_ = parts.monitor;
  snapshot->group_field_ = parts.group_field;
  return std::shared_ptr<const ModelSnapshot>(std::move(snapshot));
}

const Classifier* ModelSnapshot::group_model(int g) const {
  if (g < 0 || g >= static_cast<int>(models_.size())) return nullptr;
  return models_[static_cast<size_t>(g)].get();
}

Status ModelSnapshot::ValidateRow(const double* row) const {
  for (size_t j = 0; j < schema_.num_fields(); ++j) {
    const FieldSpec& field = schema_.field(j);
    if (field.type == ColumnType::kNumeric) continue;
    double v = row[j];
    if (v != std::floor(v) || v < 0.0 ||
        v >= static_cast<double>(field.num_categories)) {
      return Status::InvalidArgument(
          StrFormat("request field '%s': %g is not a category code in [0, %d)",
                    field.name.c_str(), v, field.num_categories));
    }
  }
  return Status::OK();
}

Result<std::vector<ScoreResult>> ModelSnapshot::ScoreBatch(
    const Matrix& rows, ScoreScratch* scratch, ThreadPool* pool) const {
  FAIRDRIFT_RETURN_IF_ERROR(ScoreBatchInto(rows, scratch, pool));
  return scratch->results;
}

Status ModelSnapshot::ScoreBatchInto(const Matrix& rows,
                                     ScoreScratch* scratch,
                                     ThreadPool* pool) const {
  return ScoreBatchInto(rows, scratch, monitor_, pool);
}

Status ModelSnapshot::ScoreBatchInto(const Matrix& rows,
                                     ScoreScratch* scratch,
                                     const MonitorSpec& monitor,
                                     ThreadPool* pool) const {
  if (rows.rows() == 0) {
    scratch->results.clear();
    return Status::OK();
  }
  if (rows.cols() != num_features()) {
    return Status::InvalidArgument(
        StrFormat("ModelSnapshot::ScoreBatch: rows have %zu fields, schema "
                  "has %zu",
                  rows.cols(), num_features()));
  }
  size_t n = rows.rows();

  // Encode first: TransformRows also validates category codes, so a
  // malformed row fails the batch before any scoring work. The numeric
  // view feeds the margin scans and the density monitor. Both land in
  // the reusable scratch matrices — no Dataset is ever materialized on
  // the serving path.
  FAIRDRIFT_RETURN_IF_ERROR(encoder_.TransformRows(rows, &scratch->encoded));
  FAIRDRIFT_RETURN_IF_ERROR(encoder_.NumericRows(rows, &scratch->numeric));
  const Matrix& numeric = scratch->numeric;

  // assign (not resize) so every field of every slot is reset — stale
  // results from the previous batch must never leak through a field this
  // batch does not write.
  scratch->results.assign(n, ScoreResult{});
  std::vector<ScoreResult>& out = scratch->results;
  for (ScoreResult& r : out) r.snapshot_version = version_;

  // Group extraction for the audit tier: the group field is a raw
  // categorical code straight off the request row (TransformRows above
  // already validated it), so this is one gather, no model involvement.
  if (group_field_ >= 0) {
    const size_t gf = static_cast<size_t>(group_field_);
    for (size_t i = 0; i < n; ++i) {
      out[i].group = static_cast<int>(rows.At(i, gf));
    }
  }

  // Conformance routing + margins over the numeric attribute view (the
  // shared DIFFAIR dispatch; group membership is never consulted).
  scratch->route.assign(n, fallback_group_);
  std::vector<int>& route = scratch->route;
  if (has_profile_ && numeric.cols() > 0) {
    if (routed_) {
      // The single routing path (ConformanceRouteInto) decides the
      // serving group per the artifact's rule and reports the winner's
      // signed margin — serving routes exactly as Evaluate does.
      ConformanceRouteInto(profile_, models_, numeric, routing_,
                           fallback_group_, &scratch->route,
                           &scratch->margins, pool);
      for (size_t i = 0; i < n; ++i) out[i].margin = scratch->margins[i];
    } else {
      // Single-model serving: the margin is a pure conformance monitor
      // — best over every profiled group.
      ParallelForEach(0, n, pool, [&](size_t i) {
        const double* row = numeric.RowPtr(i);
        double best = std::numeric_limits<double>::infinity();
        for (int g = 0; g < profile_.num_groups(); ++g) {
          if (!profile_.GroupProfiled(g)) continue;
          best = std::min(best, profile_.MinMarginForGroup(g, row));
        }
        out[i].margin = best;
      });
    }
  }

  // One batched prediction per serving group model, gathered by route —
  // the same shared step the offline routed paths use, staged in the
  // recycled scratch buffers.
  FAIRDRIFT_RETURN_IF_ERROR(GatherRoutedPredictionsInto(
      models_, route, scratch->encoded, &scratch->group_proba,
      &scratch->proba, &scratch->labels, pool));
  for (size_t i = 0; i < n; ++i) {
    out[i].routed_group = routed_ ? route[i] : -1;
    out[i].probability = scratch->proba[i];
    out[i].label = scratch->labels[i];
  }

  // Drift monitor. All three modes flag outliers by the identical
  // predicate (log-density < floor; LogDensityBelow is bitwise-equal to
  // the exact comparison), so a row's density_outlier bit never depends
  // on the mode that computed it — only whether log_density is filled and
  // which rows are checked varies.
  if (density_ != nullptr && numeric.cols() > 0) {
    switch (monitor.mode) {
      case MonitorMode::kExact: {
        scratch->logd.resize(n);
        density_->LogDensityAllInto(numeric, scratch->logd.data(), pool);
        for (size_t i = 0; i < n; ++i) {
          out[i].log_density = scratch->logd[i];
          out[i].density_outlier = scratch->logd[i] < density_floor_;
          out[i].density_checked = true;
        }
        break;
      }
      case MonitorMode::kBounded: {
        scratch->below.resize(n);
        density_->ClassifyBelowAllInto(numeric, density_floor_,
                                       scratch->below.data(), pool);
        for (size_t i = 0; i < n; ++i) {
          out[i].density_outlier = scratch->below[i] != 0;
          out[i].density_checked = true;
        }
        break;
      }
      case MonitorMode::kSampled: {
        // Content-hash selection: which rows get checked depends only on
        // the row bytes, never on batch composition, worker count, or
        // shard placement — the cross-shard determinism tests rely on it.
        // Create() validates the snapshot's own spec; a hand-built
        // override with modulus 0 degrades to checking every row.
        const uint32_t modulus =
            monitor.sample_modulus == 0 ? 1 : monitor.sample_modulus;
        const size_t row_bytes = numeric.cols() * sizeof(double);
        ParallelForEach(0, n, pool, [&](size_t i) {
          const double* row = numeric.RowPtr(i);
          uint64_t h =
              Fnv1aHash(reinterpret_cast<const char*>(row), row_bytes);
          if (h % modulus != 0) return;
          out[i].density_outlier =
              density_->LogDensityBelow(row, density_floor_);
          out[i].density_checked = true;
        });
        break;
      }
    }
  }
  return Status::OK();
}

Result<std::vector<ScoreResult>> ModelSnapshot::ScoreBatch(
    const Matrix& rows, ThreadPool* pool) const {
  ScoreScratch scratch;
  return ScoreBatch(rows, &scratch, pool);
}

}  // namespace fairdrift
