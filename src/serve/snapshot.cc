#include "serve/snapshot.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/parallel.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

std::atomic<uint64_t> g_snapshot_version{0};

uint64_t NextSnapshotVersion() {
  return g_snapshot_version.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Create(
    SnapshotParts parts) {
  if (parts.schema.num_fields() == 0) {
    return Status::InvalidArgument("ModelSnapshot: empty schema");
  }
  if (parts.models.empty()) {
    return Status::InvalidArgument("ModelSnapshot: no models");
  }
  bool any_model = false;
  for (const auto& m : parts.models) {
    if (!m) continue;
    any_model = true;
    if (!m->is_fitted()) {
      return Status::FailedPrecondition("ModelSnapshot: unfitted model");
    }
  }
  if (!any_model) {
    return Status::InvalidArgument("ModelSnapshot: every model is null");
  }
  if (parts.fallback_group < 0 ||
      parts.fallback_group >= static_cast<int>(parts.models.size()) ||
      !parts.models[static_cast<size_t>(parts.fallback_group)]) {
    return Status::InvalidArgument(
        "ModelSnapshot: fallback_group has no model");
  }
  if (parts.routed && !parts.has_profile) {
    return Status::FailedPrecondition(
        "ModelSnapshot: conformance routing needs a profile");
  }

  auto snapshot = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snapshot->version_ = NextSnapshotVersion();
  snapshot->schema_ = std::move(parts.schema);
  snapshot->encoder_ = std::move(parts.encoder);
  snapshot->models_ = std::move(parts.models);
  snapshot->routed_ = parts.routed;
  snapshot->fallback_group_ = parts.fallback_group;
  snapshot->profile_ = std::move(parts.profile);
  snapshot->has_profile_ = parts.has_profile;
  snapshot->density_ = std::move(parts.density);
  snapshot->density_floor_ = parts.density_floor;
  return std::shared_ptr<const ModelSnapshot>(std::move(snapshot));
}

const Classifier* ModelSnapshot::group_model(int g) const {
  if (g < 0 || g >= static_cast<int>(models_.size())) return nullptr;
  return models_[static_cast<size_t>(g)].get();
}

Status ModelSnapshot::ValidateRow(const double* row) const {
  for (size_t j = 0; j < schema_.num_fields(); ++j) {
    const FieldSpec& field = schema_.field(j);
    if (field.type == ColumnType::kNumeric) continue;
    double v = row[j];
    if (v != std::floor(v) || v < 0.0 ||
        v >= static_cast<double>(field.num_categories)) {
      return Status::InvalidArgument(
          StrFormat("request field '%s': %g is not a category code in [0, %d)",
                    field.name.c_str(), v, field.num_categories));
    }
  }
  return Status::OK();
}

Result<Dataset> ModelSnapshot::RowsToDataset(const Matrix& rows) const {
  Dataset data;
  for (size_t j = 0; j < schema_.num_fields(); ++j) {
    const FieldSpec& field = schema_.field(j);
    if (field.type == ColumnType::kNumeric) {
      FAIRDRIFT_RETURN_IF_ERROR(
          data.AddNumericColumn(field.name, rows.Col(j)));
    } else {
      std::vector<int> codes(rows.rows());
      for (size_t i = 0; i < rows.rows(); ++i) {
        double v = rows.At(i, j);
        int code = static_cast<int>(v);
        if (v != std::floor(v) || code < 0 || code >= field.num_categories) {
          return Status::InvalidArgument(StrFormat(
              "ModelSnapshot: row %zu field '%s': %g is not a category code "
              "in [0, %d)",
              i, field.name.c_str(), v, field.num_categories));
        }
        codes[i] = code;
      }
      FAIRDRIFT_RETURN_IF_ERROR(data.AddCategoricalColumn(
          field.name, std::move(codes), field.num_categories));
    }
  }
  return data;
}

Result<std::vector<ScoreResult>> ModelSnapshot::ScoreBatch(
    const Matrix& rows, ThreadPool* pool) const {
  if (rows.rows() == 0) return std::vector<ScoreResult>{};
  if (rows.cols() != num_features()) {
    return Status::InvalidArgument(
        StrFormat("ModelSnapshot::ScoreBatch: rows have %zu fields, schema "
                  "has %zu",
                  rows.cols(), num_features()));
  }
  Result<Dataset> data = RowsToDataset(rows);
  if (!data.ok()) return data.status();

  size_t n = rows.rows();
  std::vector<ScoreResult> out(n);
  for (ScoreResult& r : out) r.snapshot_version = version_;

  // Conformance routing + margins over the numeric attribute view (the
  // same per-row scans DiffairModel serves with; group membership is never
  // consulted).
  Matrix numeric = data.value().NumericMatrix();
  std::vector<int> route(n, fallback_group_);
  if (has_profile_ && numeric.cols() > 0) {
    int num_groups = static_cast<int>(models_.size());
    ParallelFor(
        0, n,
        [&](size_t i) {
          const double* row = numeric.RowPtr(i);
          double best = std::numeric_limits<double>::infinity();
          if (routed_) {
            // Dispatch to the most-conforming group that has a model
            // (DIFFAIR's PREDICT); the reported margin is the winner's.
            int best_group = fallback_group_;
            for (int g = 0; g < num_groups; ++g) {
              if (!models_[static_cast<size_t>(g)]) continue;
              if (!profile_.GroupProfiled(g)) continue;
              double margin = profile_.MinMarginForGroup(g, row);
              if (margin < best) {
                best = margin;
                best_group = g;
              }
            }
            route[i] = best_group;
          } else {
            // Single-model serving: the margin is a pure conformance
            // monitor — best over every profiled group.
            for (int g = 0; g < profile_.num_groups(); ++g) {
              if (!profile_.GroupProfiled(g)) continue;
              best = std::min(best, profile_.MinMarginForGroup(g, row));
            }
          }
          out[i].margin = best;
        },
        pool);
  }

  // One batched prediction per group model, gathered by route.
  Result<Matrix> x = encoder_.Transform(data.value());
  if (!x.ok()) return x.status();
  std::vector<std::vector<double>> proba_by_group(models_.size());
  for (size_t g = 0; g < models_.size(); ++g) {
    if (!models_[g]) continue;
    bool serves_any = static_cast<int>(g) == fallback_group_;
    for (size_t i = 0; !serves_any && i < n; ++i) {
      serves_any = route[i] == static_cast<int>(g);
    }
    if (!serves_any) continue;
    Result<std::vector<double>> p = models_[g]->PredictProba(x.value());
    if (!p.ok()) return p.status();
    proba_by_group[g] = std::move(p).value();
  }
  for (size_t i = 0; i < n; ++i) {
    size_t g = static_cast<size_t>(route[i]);
    out[i].routed_group = routed_ ? route[i] : -1;
    out[i].probability = proba_by_group[g][i];
    out[i].label =
        out[i].probability >= models_[g]->threshold() ? 1 : 0;
  }

  // Drift monitor: training log-density of each request row.
  if (density_ != nullptr && numeric.cols() > 0) {
    std::vector<double> logd = density_->LogDensityAll(numeric, pool);
    for (size_t i = 0; i < n; ++i) {
      out[i].log_density = logd[i];
      out[i].density_outlier = logd[i] < density_floor_;
    }
  }
  return out;
}

}  // namespace fairdrift
