#include "serve/micro_batcher.h"

#include <algorithm>

namespace fairdrift {

MicroBatcher::MicroBatcher(RequestQueue* queue, const BatchingOptions& options)
    : queue_(queue), options_(options) {
  options_.max_batch_size = std::max<size_t>(1, options_.max_batch_size);
  if (options_.max_batch_delay.count() < 0) {
    options_.max_batch_delay = std::chrono::microseconds{0};
  }
}

size_t MicroBatcher::NextBatch(std::vector<PendingRequest>* out) {
  out->clear();
  // A batch of one never waits: the coalescing window only matters when
  // there is room to coalesce into.
  auto window = options_.max_batch_size == 1
                    ? std::chrono::nanoseconds{0}
                    : std::chrono::nanoseconds(options_.max_batch_delay);
  return queue_->PopBatch(options_.max_batch_size, window, out);
}

}  // namespace fairdrift
