// Wire codecs for the network serving tier: the payloads that ride
// inside net/frame.h frames between the frontend router, shard daemons,
// and clients.
//
// Everything numeric travels as raw little-endian IEEE-754 bits via
// util/binary_io.h, so a ScoreResult deserialized on the router is
// BITWISE identical to the one the shard daemon computed -- the same
// cross-process identity guarantee the snapshot format gives. Every
// decoder returns typed Status errors (kDataLoss on malformed bytes)
// and validates counts before allocating.

#ifndef FAIRDRIFT_SERVE_NET_WIRE_H_
#define FAIRDRIFT_SERVE_NET_WIRE_H_

#include <string>
#include <vector>

#include "serve/server_stats.h"
#include "serve/snapshot.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace fairdrift {
namespace net {

/// kScoreBatch request: `count` rows of `width` doubles, row-major, plus
/// a per-request deadline (0 = none) applied by the receiving shard.
struct WireScoreRequest {
  uint64_t width = 0;
  std::vector<double> rows;  ///< count * width doubles
  uint64_t deadline_ns = 0;

  size_t count() const { return width == 0 ? 0 : rows.size() / width; }
};

void SerializeScoreRequest(const WireScoreRequest& request, BinaryWriter* w);
Result<WireScoreRequest> DeserializeScoreRequest(BinaryReader* r);

/// One row's outcome inside a kScoreBatchReply: the shard-side Status
/// code (kOk = scored; sheds and invalid rows carry their typed code)
/// plus the full ScoreResult when scored.
struct WireRowOutcome {
  StatusCode code = StatusCode::kOk;
  std::string message;  ///< empty on kOk
  ScoreResult result;
};

void SerializeRowOutcomes(const std::vector<WireRowOutcome>& outcomes,
                          BinaryWriter* w);
Result<std::vector<WireRowOutcome>> DeserializeRowOutcomes(BinaryReader* r);

/// kHealthProbeReply: the progress counters the health state machine
/// crosses to decide stalled-ness, plus the served snapshot version.
struct WireHealthProbe {
  uint64_t completed = 0;
  uint64_t queue_depth = 0;
  uint64_t inflight_batches = 0;
  uint64_t snapshot_version = 0;
};

void SerializeHealthProbe(const WireHealthProbe& probe, BinaryWriter* w);
Result<WireHealthProbe> DeserializeHealthProbe(BinaryReader* r);

/// ServerStats::View codec (kStatsSnapshotReply). Round-trips bitwise:
/// every double travels as raw bits, both histograms travel whole with
/// their bucket counts, and the receiver validates those counts before
/// merging (ServerStats::MergeHistogramInto).
void SerializeStatsView(const ServerStats::View& view, BinaryWriter* w);
Result<ServerStats::View> DeserializeStatsView(BinaryReader* r);

}  // namespace net
}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_NET_WIRE_H_
