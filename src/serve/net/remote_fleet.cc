#include "serve/net/remote_fleet.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

#include "serve/trace/trace_context.h"
#include "util/rng.h"

namespace fairdrift {
namespace net {

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument("address '" + address +
                                   "' is not host:port");
  }
  char* end = nullptr;
  unsigned long parsed = std::strtoul(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || parsed == 0 || parsed > 65535) {
    return Status::InvalidArgument("address '" + address +
                                   "' has an invalid port");
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::OK();
}

RemoteShardClient::RemoteShardClient(std::string host, uint16_t port,
                                     std::chrono::milliseconds io_timeout)
    : host_(std::move(host)), port_(port), io_timeout_(io_timeout) {}

void RemoteShardClient::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  conn_.Close();
  connected_ = false;
}

Result<Frame> RemoteShardClient::Call(FrameType request,
                                      const std::string& payload,
                                      FrameType expected_reply,
                                      const FrameTraceContext* trace) {
  std::lock_guard<std::mutex> lock(mu_);
  bool reconnected = false;
  for (;;) {
    if (!connected_) {
      Result<TcpConnection> conn =
          TcpConnection::Connect(host_, port_, io_timeout_);
      if (!conn.ok()) return conn.status();
      conn_ = std::move(conn).value();
      connected_ = true;
      reconnected = true;
    }
    Status sent =
        trace != nullptr
            ? WriteTracedFrame(conn_, request, payload, *trace, io_timeout_)
            : WriteFrame(conn_, request, payload, io_timeout_);
    if (!sent.ok()) {
      conn_.Close();
      connected_ = false;
      // A send failure on a REUSED connection usually just means the
      // daemon restarted since the last call and the cached socket is
      // stale; the request never arrived, so retrying on a fresh
      // connection is safe (including for non-idempotent push frames).
      // On a fresh connection the failure is real.
      if (!reconnected && sent.code() == StatusCode::kUnavailable) continue;
      return sent;
    }
    Result<Frame> reply = ReadFrame(conn_, io_timeout_);
    if (!reply.ok()) {
      // The request may have been acted on; surfacing the transport
      // error (instead of silently retrying a possibly-committed push)
      // is the caller's signal to probe/eject.
      conn_.Close();
      connected_ = false;
      return reply.status();
    }
    Status expected = ExpectFrame(reply.value(), expected_reply);
    if (!expected.ok()) {
      if (reply.value().type != FrameType::kError) {
        // Unexpected reply type: the stream is desynchronized.
        conn_.Close();
        connected_ = false;
      }
      return expected;
    }
    return reply;
  }
}

Result<std::vector<WireRowOutcome>> RemoteShardClient::ScoreBatch(
    const WireScoreRequest& request, const FrameTraceContext* trace) {
  BinaryWriter w;
  SerializeScoreRequest(request, &w);
  Result<Frame> reply = Call(FrameType::kScoreBatch,
                             std::move(w).TakeBuffer(),
                             FrameType::kScoreBatchReply, trace);
  if (!reply.ok()) return reply.status();
  BinaryReader r(reply.value().payload);
  return DeserializeRowOutcomes(&r);
}

Result<WireHealthProbe> RemoteShardClient::Probe() {
  Result<Frame> reply = Call(FrameType::kHealthProbe, std::string(),
                             FrameType::kHealthProbeReply);
  if (!reply.ok()) return reply.status();
  BinaryReader r(reply.value().payload);
  return DeserializeHealthProbe(&r);
}

Result<ServerStats::View> RemoteShardClient::Stats() {
  Result<Frame> reply = Call(FrameType::kStatsSnapshot, std::string(),
                             FrameType::kStatsSnapshotReply);
  if (!reply.ok()) return reply.status();
  BinaryReader r(reply.value().payload);
  return DeserializeStatsView(&r);
}

Result<std::string> RemoteShardClient::Metrics() {
  Result<Frame> reply = Call(FrameType::kMetrics, std::string(),
                             FrameType::kMetricsReply);
  if (!reply.ok()) return reply.status();
  return std::move(reply.value().payload);
}

Result<std::vector<std::string>> RemoteShardClient::PushManifest(
    const SnapshotManifest& manifest) {
  BinaryWriter w;
  SerializeManifest(manifest, &w);
  Result<Frame> reply = Call(FrameType::kPushManifest,
                             std::move(w).TakeBuffer(),
                             FrameType::kPushManifestReply);
  if (!reply.ok()) return reply.status();
  BinaryReader r(reply.value().payload);
  Result<uint64_t> count = r.ReadU64();
  if (!count.ok()) return count.status();
  if (count.value() > 1024) {
    return Status::DataLoss("manifest reply claims an implausible count");
  }
  std::vector<std::string> needed;
  needed.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    Result<std::string> name = r.ReadString();
    if (!name.ok()) return name.status();
    needed.push_back(std::move(name).value());
  }
  return needed;
}

Status RemoteShardClient::PushChunk(const std::string& name,
                                    const std::string& bytes) {
  BinaryWriter w;
  w.WriteString(name);
  w.WriteString(bytes);
  Result<Frame> reply = Call(FrameType::kPushChunk, std::move(w).TakeBuffer(),
                             FrameType::kPushChunkReply);
  return reply.ok() ? Status::OK() : reply.status();
}

Result<RemoteShardClient::CommitReply> RemoteShardClient::PushCommit() {
  Result<Frame> reply = Call(FrameType::kPushCommit, std::string(),
                             FrameType::kPushCommitReply);
  if (!reply.ok()) return reply.status();
  BinaryReader r(reply.value().payload);
  CommitReply out;
  Result<uint64_t> version = r.ReadU64();
  if (!version.ok()) return version.status();
  out.snapshot_version = version.value();
  Result<uint8_t> degraded = r.ReadU8();
  if (!degraded.ok()) return degraded.status();
  out.degraded = degraded.value() != 0;
  Result<std::string> note = r.ReadString();
  if (!note.ok()) return note.status();
  out.note = std::move(note).value();
  return out;
}

Result<uint64_t> RemoteShardClient::PushRevert() {
  Result<Frame> reply = Call(FrameType::kPushRevert, std::string(),
                             FrameType::kPushRevertReply);
  if (!reply.ok()) return reply.status();
  BinaryReader r(reply.value().payload);
  return r.ReadU64();
}

RemoteFleet::RemoteFleet(const RemoteFleetOptions& options)
    : options_(options) {}

Result<std::unique_ptr<RemoteFleet>> RemoteFleet::Connect(
    const std::vector<std::string>& addresses,
    const RemoteFleetOptions& options) {
  if (addresses.empty()) {
    return Status::InvalidArgument("RemoteFleet: no shard addresses");
  }
  std::unique_ptr<RemoteFleet> fleet(new RemoteFleet(options));
  for (const std::string& address : addresses) {
    std::string host;
    uint16_t port = 0;
    FAIRDRIFT_RETURN_IF_ERROR(ParseHostPort(address, &host, &port));
    fleet->clients_.push_back(std::make_unique<RemoteShardClient>(
        std::move(host), port, options.io_timeout));
  }
  const size_t n = fleet->clients_.size();
  fleet->router_ = std::make_unique<ShardRouter>(options.routing, n);
  fleet->ejected_ = std::make_unique<std::atomic<bool>[]>(n);
  fleet->draining_ = std::make_unique<std::atomic<bool>[]>(n);
  fleet->last_load_ = std::make_unique<std::atomic<size_t>[]>(n);
  fleet->probe_states_.resize(n);
  // Fail fast on a misconfigured fleet: every daemon must answer a
  // probe now. This also seeds the stalled-detection baselines.
  for (size_t s = 0; s < n; ++s) {
    Result<WireHealthProbe> probe = fleet->clients_[s]->Probe();
    if (!probe.ok()) {
      return Status::Unavailable("shard " + std::to_string(s) + " (" +
                                 addresses[s] + "): " +
                                 probe.status().message());
    }
    fleet->probe_states_[s].last_completed = probe.value().completed;
    fleet->probe_states_[s].have_baseline = true;
    fleet->probe_states_[s].last_version = probe.value().snapshot_version;
    fleet->last_load_[s].store(probe.value().queue_depth +
                               probe.value().inflight_batches);
  }
  if (options.start_prober) {
    RemoteFleet* raw = fleet.get();
    fleet->probe_thread_ = std::thread([raw] { raw->ProbeLoop(); });
  }
  return fleet;
}

RemoteFleet::~RemoteFleet() { Stop(); }

void RemoteFleet::Stop() {
  std::call_once(stop_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_ = true;
    }
    stop_cv_.notify_all();
    if (probe_thread_.joinable()) probe_thread_.join();
    for (auto& client : clients_) client->Disconnect();
  });
}

void RemoteFleet::ProbeLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, options_.probe_interval,
                          [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    ProbeOnce();
    lock.lock();
  }
}

void RemoteFleet::ProbeOnce() {
  ShardHealthFsm::Limits limits;
  limits.dead_after_stalled_probes = options_.dead_after_stalled_probes;
  limits.readmit_after_healthy_probes = options_.readmit_after_healthy_probes;
  for (size_t s = 0; s < clients_.size(); ++s) {
    // RPC outside mu_ so a slow daemon never blocks Stop() or a
    // concurrent ProbeOnce caller's state fold for long.
    Result<WireHealthProbe> probe = clients_[s]->Probe();
    ShardHealthFsm::Verdict verdict;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ProbeState& state = probe_states_[s];
      bool stalled;
      if (probe.ok()) {
        // A dead daemon is unreachable, so a probe answer from a kDead
        // shard means the operator restarted the process. There is no
        // explicit RestartShard call across machines — observing the
        // restart is how the remote lifecycle reenters kRecovering.
        if (state.fsm.health() == ShardHealth::kDead) {
          state.fsm.NoteRestarted();
        }
        const WireHealthProbe& p = probe.value();
        bool progressed =
            !state.have_baseline || p.completed != state.last_completed;
        bool pending = p.queue_depth > 0 || p.inflight_batches > 0;
        stalled = pending && !progressed;
        state.last_completed = p.completed;
        state.have_baseline = true;
        state.last_version = p.snapshot_version;
        last_load_[s].store(p.queue_depth + p.inflight_batches,
                            std::memory_order_relaxed);
      } else {
        // Unreachable IS stalled: the remote twin of a wedged dispatcher.
        stalled = true;
        state.have_baseline = false;
      }
      verdict = state.fsm.Observe(
          stalled, false, ejected_[s].load(std::memory_order_acquire),
          limits);
    }
    if (verdict.eject) (void)EjectShard(s);
    if (verdict.readmit) (void)ReadmitShard(s);
  }
}

Status RemoteFleet::EjectShard(size_t s) {
  if (s >= clients_.size()) {
    return Status::InvalidArgument("EjectShard: no such shard");
  }
  if (ejected_[s].load(std::memory_order_acquire)) return Status::OK();
  // Refuse to eject the last routable shard: with nowhere to send the
  // traffic, failing requests with the shard's own typed errors beats
  // refusing everything on routing grounds.
  size_t available = 0;
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (i != s && ShardAvailable(i)) ++available;
  }
  if (available == 0) {
    return Status::FailedPrecondition(
        "EjectShard: shard " + std::to_string(s) +
        " is the last routable shard");
  }
  ejected_[s].store(true, std::memory_order_release);
  ejections_.fetch_add(1);
  return Status::OK();
}

Status RemoteFleet::ReadmitShard(size_t s) {
  if (s >= clients_.size()) {
    return Status::InvalidArgument("ReadmitShard: no such shard");
  }
  if (!ejected_[s].exchange(false, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  readmissions_.fetch_add(1);
  return Status::OK();
}

Result<std::vector<WireRowOutcome>> RemoteFleet::ScoreBatch(
    const std::vector<double>& rows, size_t width,
    std::chrono::nanoseconds deadline) {
  if (width == 0 || rows.size() % width != 0) {
    return Status::InvalidArgument(
        "ScoreBatch: rows are not a whole number of rows of `width`");
  }
  const size_t count = rows.size() / width;
  std::vector<WireRowOutcome> outcomes(count);
  std::vector<size_t> pending(count);
  for (size_t i = 0; i < count; ++i) pending[i] = i;

  // Round 0 routes normally; a shard whose RPC fails is ejected and its
  // rows re-picked among the survivors in round 1 (the rendezvous hash
  // reassigns them deterministically). A round-1 failure is final.
  for (int round = 0; round < 2 && !pending.empty(); ++round) {
    std::map<size_t, std::vector<size_t>> by_shard;
    for (size_t idx : pending) {
      by_shard[router_->Pick(&rows[idx * width], width, *this)].push_back(idx);
    }
    std::vector<size_t> failed;
    for (auto& entry : by_shard) {
      const size_t shard = entry.first;
      const std::vector<size_t>& idxs = entry.second;
      WireScoreRequest request;
      request.width = width;
      request.deadline_ns = static_cast<uint64_t>(
          deadline.count() > 0 ? deadline.count() : 0);
      request.rows.reserve(idxs.size() * width);
      for (size_t idx : idxs) {
        request.rows.insert(request.rows.end(), rows.begin() + idx * width,
                            rows.begin() + (idx + 1) * width);
      }
      // The extension carries tier linkage only: trace_id stays 0 (each
      // sampled row's id re-mints from row content at the daemon), the
      // parent is the router's constant tier span.
      FrameTraceContext trace;
      trace.parent_span_id = TraceSpanId(0, "router");
      Result<std::vector<WireRowOutcome>> reply = clients_[shard]->ScoreBatch(
          request, options_.propagate_trace ? &trace : nullptr);
      if (reply.ok() && reply.value().size() == idxs.size()) {
        for (size_t i = 0; i < idxs.size(); ++i) {
          outcomes[idxs[i]] = std::move(reply.value()[i]);
        }
        continue;
      }
      Status error = reply.ok()
                         ? Status::DataLoss(
                               "score reply row count does not match request")
                         : reply.status();
      // Shed the shard now rather than waiting for the prober: the next
      // Pick must already see it unavailable.
      (void)EjectShard(shard);
      if (round == 0) {
        failed.insert(failed.end(), idxs.begin(), idxs.end());
      } else {
        for (size_t idx : idxs) {
          outcomes[idx].code = error.code();
          outcomes[idx].message = error.message();
        }
      }
    }
    pending.swap(failed);
  }
  return outcomes;
}

Result<ScoreResult> RemoteFleet::Score(const std::vector<double>& row,
                                       std::chrono::nanoseconds deadline) {
  Result<std::vector<WireRowOutcome>> outcomes =
      ScoreBatch(row, row.size(), deadline);
  if (!outcomes.ok()) return outcomes.status();
  const WireRowOutcome& outcome = outcomes.value().front();
  if (outcome.code != StatusCode::kOk) {
    return Status(outcome.code, outcome.message);
  }
  return outcome.result;
}

Status RemoteFleet::PushShard(size_t s, const ChunkedSnapshot& chunked,
                              uint64_t* version) {
  RemoteShardClient* client = clients_[s].get();
  Result<std::vector<std::string>> needed =
      client->PushManifest(chunked.manifest);
  if (!needed.ok()) return needed.status();
  for (const std::string& name : needed.value()) {
    const SnapshotPayloadChunk* chunk = nullptr;
    for (const SnapshotPayloadChunk& c : chunked.chunks) {
      if (c.name == name) {
        chunk = &c;
        break;
      }
    }
    if (chunk == nullptr) {
      return Status::DataLoss("shard requested chunk '" + name +
                              "' which is not in the push set");
    }
    FAIRDRIFT_RETURN_IF_ERROR(client->PushChunk(chunk->name, chunk->bytes));
  }
  Result<RemoteShardClient::CommitReply> commit = client->PushCommit();
  if (!commit.ok()) return commit.status();
  *version = commit.value().snapshot_version;
  return Status::OK();
}

Result<RollingUpdateReport> RemoteFleet::PushRolling(
    const ChunkedSnapshot& chunked, const RollingUpdateOptions& options) {
  const size_t n = clients_.size();
  RollingUpdateReport report;
  report.shards.resize(n);
  report.shard_stall_ms.assign(n, 0.0);
  Rng rng(options.backoff_seed);
  std::vector<size_t> committed;
  bool failed = false;
  std::string failure;

  for (size_t s = 0; s < n && !failed; ++s) {
    ShardRolloutReport& sr = report.shards[s];
    sr.shard = s;
    std::chrono::nanoseconds backoff = options.initial_backoff;
    Status last = Status::OK();
    for (size_t attempt = 1; attempt <= options.max_attempts_per_shard;
         ++attempt) {
      sr.attempts = attempt;
      ++report.total_attempts;
      if (attempt > 1) {
        double factor = rng.Uniform(1.0 - options.backoff_jitter,
                                    1.0 + options.backoff_jitter);
        auto wait = std::chrono::nanoseconds(
            static_cast<int64_t>(backoff.count() * factor));
        std::this_thread::sleep_for(wait);
        backoff = std::chrono::nanoseconds(static_cast<int64_t>(
            backoff.count() * options.backoff_multiplier));
      }
      // One shard out of rotation at a time: traffic steers away while
      // this shard's push conversation runs, exactly like the in-process
      // rolling update's drain window.
      draining_[s].store(true, std::memory_order_release);
      auto t0 = std::chrono::steady_clock::now();
      uint64_t version = 0;
      last = PushShard(s, chunked, &version);
      auto stall = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      draining_[s].store(false, std::memory_order_release);
      if (last.ok()) {
        sr.updated = true;
        sr.stall_ms = stall;
        report.shard_stall_ms[s] = stall;
        report.max_stall_ms = std::max(report.max_stall_ms, stall);
        ++report.shards_updated;
        committed.push_back(s);
        break;
      }
      sr.last_error = last.message();
    }
    if (!last.ok()) {
      failed = true;
      failure = "shard " + std::to_string(s) + ": " + last.message();
    }
  }

  rolling_updates_.fetch_add(1);
  if (failed) {
    if (!options.rollback_on_failure) {
      return Status::DeadlineExceeded("rolling push exhausted retries (" +
                                      failure + "); rollback disabled");
    }
    // Reverse-order revert so the fleet exits with zero version skew.
    for (auto it = committed.rbegin(); it != committed.rend(); ++it) {
      size_t s = *it;
      draining_[s].store(true, std::memory_order_release);
      auto t0 = std::chrono::steady_clock::now();
      Result<uint64_t> reverted = clients_[s]->PushRevert();
      auto stall = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      draining_[s].store(false, std::memory_order_release);
      if (reverted.ok()) {
        report.shards[s].rolled_back = true;
        report.shards[s].rollback_stall_ms = stall;
        report.rollback_stall_ms += stall;
      } else if (report.shards[s].last_error.empty()) {
        report.shards[s].last_error =
            "revert failed: " + reverted.status().message();
      }
    }
    report.state = RolloutState::kRolledBack;
    report.failure = failure;
    rollbacks_.fetch_add(1);
  }
  return report;
}

FleetStatsView RemoteFleet::stats() const {
  const size_t n = clients_.size();
  FleetStatsView view;
  view.num_shards = n;
  view.queue_depths.resize(n);
  view.shard_outlier_rates.assign(n, 0.0);
  view.shard_completed.assign(n, 0);
  view.shard_versions.assign(n, 0);
  view.shard_ejected.assign(n, 0);
  view.audit.shard_alert_active.assign(n, 0);
  view.audit.shard_windows.assign(n, 0);
  std::vector<uint64_t> merged_hist;
  std::array<std::vector<uint64_t>, ServerStats::kServeStages> merged_stage;
  double batch_size_sum = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 0; s < n; ++s) {
      view.shard_versions[s] = probe_states_[s].last_version;
    }
  }
  for (size_t s = 0; s < n; ++s) {
    view.shard_ejected[s] = ejected_[s].load(std::memory_order_acquire);
    view.queue_depths[s] = last_load_[s].load(std::memory_order_relaxed);
    Result<ServerStats::View> remote = clients_[s]->Stats();
    if (!remote.ok()) continue;  // unreachable shard contributes nothing
    const ServerStats::View& sv = remote.value();
    view.submitted += sv.submitted;
    view.completed += sv.completed;
    view.shed_admission += sv.shed_admission;
    view.shed_deadline += sv.shed_deadline;
    view.invalid += sv.invalid;
    view.batches += sv.batches;
    view.snapshot_swaps += sv.snapshot_swaps;
    view.density_checked += sv.density_checked;
    view.density_outliers += sv.density_outliers;
    batch_size_sum += sv.mean_batch_size * static_cast<double>(sv.batches);
    view.shard_completed[s] = sv.completed;
    view.shard_outlier_rates[s] =
        sv.density_checked > 0
            ? static_cast<double>(sv.density_outliers) /
                  static_cast<double>(sv.density_checked)
            : 0.0;
    if (merged_hist.empty()) {
      merged_hist = sv.latency_hist;
    } else {
      // A daemon from a mismatched build (different bucket count) is
      // skipped rather than misread; its scalar counters still merged.
      (void)ServerStats::MergeHistogramInto(&merged_hist, sv.latency_hist);
    }
    view.trace_sampled += sv.trace_sampled;
    view.trace_append_failures += sv.trace_append_failures;
    for (size_t st = 0; st < ServerStats::kServeStages; ++st) {
      if (merged_stage[st].empty()) {
        merged_stage[st] = sv.stage_hist[st];
      } else {
        (void)ServerStats::MergeHistogramInto(&merged_stage[st],
                                              sv.stage_hist[st]);
      }
    }
    // Audit tallies ride the same wire view; a shard with any audit
    // activity marks the fleet view enabled.
    if (sv.audit_windows > 0 || sv.audit_alert_active ||
        sv.audit_has_metrics) {
      view.audit.enabled = true;
    }
    view.audit.windows += sv.audit_windows;
    view.audit.breaches += sv.audit_breaches;
    view.audit.alerts_raised += sv.audit_alerts_raised;
    view.audit.shard_windows[s] = sv.audit_windows;
    if (sv.audit_alert_active) {
      view.audit.shard_alert_active[s] = 1;
      ++view.audit.shards_alerting;
    }
  }
  if (view.batches > 0) {
    view.mean_batch_size = batch_size_sum / static_cast<double>(view.batches);
  }
  if (!merged_hist.empty()) {
    view.p50_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.50);
    view.p95_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.95);
    view.p99_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.99);
  }
  for (size_t st = 0; st < ServerStats::kServeStages; ++st) {
    if (!merged_stage[st].empty()) {
      view.stage_p99_us[st] =
          ServerStats::PercentileUsFromHist(merged_stage[st], 0.99);
    }
  }
  view.outlier_rate =
      view.density_checked > 0
          ? static_cast<double>(view.density_outliers) /
                static_cast<double>(view.density_checked)
          : 0.0;
  view.min_snapshot_version = view.shard_versions.empty()
                                  ? 0
                                  : *std::min_element(
                                        view.shard_versions.begin(),
                                        view.shard_versions.end());
  view.max_snapshot_version = view.shard_versions.empty()
                                  ? 0
                                  : *std::max_element(
                                        view.shard_versions.begin(),
                                        view.shard_versions.end());
  view.rolling_updates = rolling_updates_.load();
  view.rollbacks = rollbacks_.load();
  view.ejections = ejections_.load();
  view.readmissions = readmissions_.load();
  return view;
}

}  // namespace net
}  // namespace fairdrift
