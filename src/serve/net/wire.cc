#include "serve/net/wire.h"

#include <utility>

namespace fairdrift {
namespace net {
namespace {

// Caps that bound a corrupted count field before it allocates.
constexpr uint64_t kMaxRowsPerBatch = 1u << 20;
constexpr uint64_t kMaxRowWidth = 1u << 16;
constexpr uint64_t kMaxHistBuckets = 1u << 16;

}  // namespace

void SerializeScoreRequest(const WireScoreRequest& request, BinaryWriter* w) {
  w->WriteU64(request.width);
  w->WriteU64(request.deadline_ns);
  w->WriteDoubleVector(request.rows);
}

Result<WireScoreRequest> DeserializeScoreRequest(BinaryReader* r) {
  WireScoreRequest request;
  Result<uint64_t> width = r->ReadU64();
  if (!width.ok()) return width.status();
  request.width = width.value();
  Result<uint64_t> deadline = r->ReadU64();
  if (!deadline.ok()) return deadline.status();
  request.deadline_ns = deadline.value();
  Result<std::vector<double>> rows = r->ReadDoubleVector();
  if (!rows.ok()) return rows.status();
  request.rows = std::move(rows).value();
  if (request.width == 0 || request.width > kMaxRowWidth) {
    return Status::DataLoss("score request has an implausible row width");
  }
  if (request.rows.size() % request.width != 0 ||
      request.rows.size() / request.width > kMaxRowsPerBatch) {
    return Status::DataLoss(
        "score request rows are not a whole number of rows");
  }
  return request;
}

void SerializeRowOutcomes(const std::vector<WireRowOutcome>& outcomes,
                          BinaryWriter* w) {
  w->WriteU64(outcomes.size());
  for (const WireRowOutcome& outcome : outcomes) {
    w->WriteU8(static_cast<uint8_t>(outcome.code));
    w->WriteString(outcome.message);
    const ScoreResult& res = outcome.result;
    w->WriteDouble(res.probability);
    w->WriteI32(res.label);
    w->WriteI32(res.routed_group);
    w->WriteDouble(res.margin);
    w->WriteDouble(res.log_density);
    w->WriteU8(res.density_outlier ? 1 : 0);
    w->WriteU8(res.density_checked ? 1 : 0);
    w->WriteU64(res.snapshot_version);
    w->WriteI32(res.group);
    w->WriteU64(res.trace_id);
  }
}

Result<std::vector<WireRowOutcome>> DeserializeRowOutcomes(BinaryReader* r) {
  Result<uint64_t> count = r->ReadU64();
  if (!count.ok()) return count.status();
  if (count.value() > kMaxRowsPerBatch) {
    return Status::DataLoss("score reply claims an implausible row count");
  }
  std::vector<WireRowOutcome> outcomes;
  outcomes.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    WireRowOutcome outcome;
    Result<uint8_t> code = r->ReadU8();
    if (!code.ok()) return code.status();
    outcome.code = static_cast<StatusCode>(code.value());
    Result<std::string> message = r->ReadString();
    if (!message.ok()) return message.status();
    outcome.message = std::move(message).value();
    Result<double> probability = r->ReadDouble();
    if (!probability.ok()) return probability.status();
    outcome.result.probability = probability.value();
    Result<int32_t> label = r->ReadI32();
    if (!label.ok()) return label.status();
    outcome.result.label = label.value();
    Result<int32_t> routed = r->ReadI32();
    if (!routed.ok()) return routed.status();
    outcome.result.routed_group = routed.value();
    Result<double> margin = r->ReadDouble();
    if (!margin.ok()) return margin.status();
    outcome.result.margin = margin.value();
    Result<double> log_density = r->ReadDouble();
    if (!log_density.ok()) return log_density.status();
    outcome.result.log_density = log_density.value();
    Result<uint8_t> outlier = r->ReadU8();
    if (!outlier.ok()) return outlier.status();
    outcome.result.density_outlier = outlier.value() != 0;
    Result<uint8_t> checked = r->ReadU8();
    if (!checked.ok()) return checked.status();
    outcome.result.density_checked = checked.value() != 0;
    Result<uint64_t> version = r->ReadU64();
    if (!version.ok()) return version.status();
    outcome.result.snapshot_version = version.value();
    Result<int32_t> group = r->ReadI32();
    if (!group.ok()) return group.status();
    outcome.result.group = group.value();
    Result<uint64_t> trace_id = r->ReadU64();
    if (!trace_id.ok()) return trace_id.status();
    outcome.result.trace_id = trace_id.value();
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

void SerializeHealthProbe(const WireHealthProbe& probe, BinaryWriter* w) {
  w->WriteU64(probe.completed);
  w->WriteU64(probe.queue_depth);
  w->WriteU64(probe.inflight_batches);
  w->WriteU64(probe.snapshot_version);
}

Result<WireHealthProbe> DeserializeHealthProbe(BinaryReader* r) {
  WireHealthProbe probe;
  Result<uint64_t> completed = r->ReadU64();
  if (!completed.ok()) return completed.status();
  probe.completed = completed.value();
  Result<uint64_t> queue_depth = r->ReadU64();
  if (!queue_depth.ok()) return queue_depth.status();
  probe.queue_depth = queue_depth.value();
  Result<uint64_t> inflight = r->ReadU64();
  if (!inflight.ok()) return inflight.status();
  probe.inflight_batches = inflight.value();
  Result<uint64_t> version = r->ReadU64();
  if (!version.ok()) return version.status();
  probe.snapshot_version = version.value();
  return probe;
}

namespace {

void WriteU64Hist(const std::vector<uint64_t>& hist, BinaryWriter* w) {
  w->WriteU64(hist.size());
  for (uint64_t v : hist) w->WriteU64(v);
}

Result<std::vector<uint64_t>> ReadU64Hist(BinaryReader* r) {
  Result<uint64_t> count = r->ReadU64();
  if (!count.ok()) return count.status();
  if (count.value() > kMaxHistBuckets) {
    return Status::DataLoss("stats view claims an implausible bucket count");
  }
  std::vector<uint64_t> hist;
  hist.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    Result<uint64_t> v = r->ReadU64();
    if (!v.ok()) return v.status();
    hist.push_back(v.value());
  }
  return hist;
}

}  // namespace

void SerializeStatsView(const ServerStats::View& view, BinaryWriter* w) {
  w->WriteU64(view.submitted);
  w->WriteU64(view.completed);
  w->WriteU64(view.shed_admission);
  w->WriteU64(view.shed_deadline);
  w->WriteU64(view.invalid);
  w->WriteU64(view.batches);
  w->WriteU64(view.snapshot_swaps);
  w->WriteDouble(view.mean_batch_size);
  w->WriteDouble(view.p50_latency_us);
  w->WriteDouble(view.p95_latency_us);
  w->WriteDouble(view.p99_latency_us);
  w->WriteDouble(view.ewma_batch_latency_us);
  w->WriteU64(view.density_checked);
  w->WriteU64(view.density_outliers);
  w->WriteDouble(view.ewma_outlier_rate);
  w->WriteU64(view.audit_windows);
  w->WriteU64(view.audit_breaches);
  w->WriteU64(view.audit_alerts_raised);
  w->WriteU8(view.audit_alert_active ? 1 : 0);
  w->WriteU8(view.audit_has_metrics ? 1 : 0);
  w->WriteDouble(view.audit_last_di_star);
  w->WriteDouble(view.audit_last_spd);
  WriteU64Hist(view.batch_size_hist, w);
  WriteU64Hist(view.latency_hist, w);
  w->WriteU64(view.trace_sampled);
  w->WriteU64(view.trace_append_failures);
  for (size_t s = 0; s < ServerStats::kServeStages; ++s) {
    w->WriteDouble(view.stage_p99_us[s]);
  }
  for (size_t s = 0; s < ServerStats::kServeStages; ++s) {
    WriteU64Hist(view.stage_hist[s], w);
  }
}

Result<ServerStats::View> DeserializeStatsView(BinaryReader* r) {
  ServerStats::View view;
  auto read_u64 = [&](uint64_t* dst) -> Status {
    Result<uint64_t> v = r->ReadU64();
    if (!v.ok()) return v.status();
    *dst = v.value();
    return Status::OK();
  };
  auto read_double = [&](double* dst) -> Status {
    Result<double> v = r->ReadDouble();
    if (!v.ok()) return v.status();
    *dst = v.value();
    return Status::OK();
  };
  auto read_bool = [&](bool* dst) -> Status {
    Result<uint8_t> v = r->ReadU8();
    if (!v.ok()) return v.status();
    *dst = v.value() != 0;
    return Status::OK();
  };
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.submitted));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.completed));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.shed_admission));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.shed_deadline));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.invalid));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.batches));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.snapshot_swaps));
  FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.mean_batch_size));
  FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.p50_latency_us));
  FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.p95_latency_us));
  FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.p99_latency_us));
  FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.ewma_batch_latency_us));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.density_checked));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.density_outliers));
  FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.ewma_outlier_rate));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.audit_windows));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.audit_breaches));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.audit_alerts_raised));
  FAIRDRIFT_RETURN_IF_ERROR(read_bool(&view.audit_alert_active));
  FAIRDRIFT_RETURN_IF_ERROR(read_bool(&view.audit_has_metrics));
  FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.audit_last_di_star));
  FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.audit_last_spd));
  Result<std::vector<uint64_t>> batch_hist = ReadU64Hist(r);
  if (!batch_hist.ok()) return batch_hist.status();
  view.batch_size_hist = std::move(batch_hist).value();
  Result<std::vector<uint64_t>> latency_hist = ReadU64Hist(r);
  if (!latency_hist.ok()) return latency_hist.status();
  view.latency_hist = std::move(latency_hist).value();
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.trace_sampled));
  FAIRDRIFT_RETURN_IF_ERROR(read_u64(&view.trace_append_failures));
  for (size_t s = 0; s < ServerStats::kServeStages; ++s) {
    FAIRDRIFT_RETURN_IF_ERROR(read_double(&view.stage_p99_us[s]));
  }
  for (size_t s = 0; s < ServerStats::kServeStages; ++s) {
    Result<std::vector<uint64_t>> stage_hist = ReadU64Hist(r);
    if (!stage_hist.ok()) return stage_hist.status();
    view.stage_hist[s] = std::move(stage_hist).value();
  }
  return view;
}

}  // namespace net
}  // namespace fairdrift
