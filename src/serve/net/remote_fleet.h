// RemoteFleet: the frontend router over shard daemon processes.
//
//   clients --ScoreBatch--> [ShardRouter policies] --frames--> daemon_0
//                                                        \---> daemon_N
//
// The router is the cross-machine twin of ScoringFleet: it implements
// the same ShardDirectory interface, so the round-robin / least-queue /
// hash+rendezvous policies in serve/fleet/fleet.cc route remote shards
// byte-for-byte the way they route in-process ones (a hash-routed row
// lands on the same shard index either way — the CI smoke test holds
// the two topologies bitwise-equal on exactly this property).
//
// Failure model:
//   - Every RPC is deadline-bounded; a transport failure (daemon
//     killed, injected net.read/net.write fault) surfaces as a typed
//     kUnavailable / kDeadlineExceeded / kDataLoss — never a hang.
//   - A shard whose score RPC fails is ejected from routing on the
//     spot and its rows are re-picked ONCE among the survivors (the
//     rendezvous hash reassigns its keys deterministically); a second
//     failure returns the typed error per row.
//   - A prober thread runs the same ShardHealthFsm lifecycle the
//     in-process HealthMonitor runs — stalled here meaning the probe
//     RPC failed OR the daemon reports pending work with no completed
//     progress — ejecting dead daemons and readmitting them after K
//     healthy probes (e.g. after an operator restarts the process).
//
// PushRolling drives the incremental snapshot push across the fleet
// with ScoringFleet::RollingUpdate's semantics: one shard out of
// rotation at a time, per-shard retry with deterministic
// backoff+jitter, and on exhaustion a reverse-order revert of every
// already-committed shard (kPushRevert) so the fleet never stays
// version-skewed.

#ifndef FAIRDRIFT_SERVE_NET_REMOTE_FLEET_H_
#define FAIRDRIFT_SERVE_NET_REMOTE_FLEET_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "serve/fleet/fleet.h"
#include "serve/fleet/health.h"
#include "serve/net/wire.h"
#include "serve/snapshot_manifest.h"

namespace fairdrift {
namespace net {

/// "host:port" -> parts. kInvalidArgument on a malformed address.
Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port);

/// One shard daemon endpoint. Thread-safe: RPCs serialize on an internal
/// mutex over one persistent connection, reconnecting once per call when
/// the cached connection has gone stale (daemon restarted) before
/// reporting the transport error.
class RemoteShardClient {
 public:
  RemoteShardClient(std::string host, uint16_t port,
                    std::chrono::milliseconds io_timeout);

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// Scores `request` remotely; outcomes come back in row order. When
  /// `trace` is non-null the request frame carries the trace extension
  /// (sender tier linkage — the daemon parents every sampled row of the
  /// frame under trace->parent_span_id).
  Result<std::vector<WireRowOutcome>> ScoreBatch(
      const WireScoreRequest& request,
      const FrameTraceContext* trace = nullptr);

  /// Liveness + progress counters.
  Result<WireHealthProbe> Probe();

  /// The daemon's full ServerStats::View.
  Result<ServerStats::View> Stats();

  /// The daemon's Prometheus-style metrics exposition (kMetrics scrape).
  Result<std::string> Metrics();

  /// Push phase 1: offer `manifest`; returns the chunk names the daemon
  /// needs (its checksum diff against what it already holds).
  Result<std::vector<std::string>> PushManifest(
      const SnapshotManifest& manifest);

  /// Push phase 2: one named chunk's bytes.
  Status PushChunk(const std::string& name, const std::string& bytes);

  /// Push phase 3 result.
  struct CommitReply {
    uint64_t snapshot_version = 0;
    bool degraded = false;
    std::string note;
  };
  Result<CommitReply> PushCommit();

  /// Rolls the daemon back to its pre-commit snapshot; returns the
  /// version it serves again.
  Result<uint64_t> PushRevert();

  /// Drops the cached connection (next RPC reconnects).
  void Disconnect();

 private:
  /// One request/reply exchange; reconnects once on a stale connection.
  /// `trace` non-null sends the frame with the trace extension.
  Result<Frame> Call(FrameType request, const std::string& payload,
                     FrameType expected_reply,
                     const FrameTraceContext* trace = nullptr);

  std::string host_;
  uint16_t port_ = 0;
  std::chrono::milliseconds io_timeout_;
  std::mutex mu_;
  TcpConnection conn_;       // guarded by mu_
  bool connected_ = false;   // guarded by mu_
};

struct RemoteFleetOptions {
  FleetRoutingPolicy routing = FleetRoutingPolicy::kHashRow;
  /// Per-RPC deadline (connect + frame send + frame receive each).
  std::chrono::milliseconds io_timeout = std::chrono::milliseconds(5000);
  /// Prober cadence. The prober starts with the fleet unless
  /// start_prober is false (tests step ProbeOnce() deterministically).
  std::chrono::milliseconds probe_interval = std::chrono::milliseconds(100);
  bool start_prober = true;
  /// ShardHealthFsm thresholds (same meaning as HealthMonitorOptions).
  size_t dead_after_stalled_probes = 3;
  size_t readmit_after_healthy_probes = 3;
  /// Attach the trace extension to forwarded score frames, so sampled
  /// rows on the daemons parent under the router's tier span. Turn off
  /// only when fronting daemons from a pre-trace protocol build (they
  /// reject the flag rather than desynchronize).
  bool propagate_trace = true;
};

/// Router over N remote shard daemons. See file comment.
class RemoteFleet : public ShardDirectory {
 public:
  /// `addresses` are "host:port" daemon endpoints. Each must answer a
  /// health probe at startup (fail-fast on a misconfigured fleet).
  static Result<std::unique_ptr<RemoteFleet>> Connect(
      const std::vector<std::string>& addresses,
      const RemoteFleetOptions& options = {});

  ~RemoteFleet();
  RemoteFleet(const RemoteFleet&) = delete;
  RemoteFleet& operator=(const RemoteFleet&) = delete;

  /// Routes each row by the configured policy, fans sub-batches out to
  /// the picked shards, and reassembles per-row outcomes in input
  /// order. A failed shard is ejected and its rows re-picked once among
  /// the survivors (see file comment). `rows` is row-major
  /// count*width; outcomes.size() == count always.
  Result<std::vector<WireRowOutcome>> ScoreBatch(
      const std::vector<double>& rows, size_t width,
      std::chrono::nanoseconds deadline = std::chrono::nanoseconds{0});

  /// Single-row convenience over ScoreBatch: the score, or the row's
  /// typed error.
  Result<ScoreResult> Score(
      const std::vector<double>& row,
      std::chrono::nanoseconds deadline = std::chrono::nanoseconds{0});

  /// Incremental rolling push (see file comment). Returns the same
  /// report shape as ScoringFleet::RollingUpdate: kCommitted when every
  /// shard took the push, kRolledBack (an OK result — the fleet healed
  /// itself) when a shard exhausted its attempts and the committed
  /// shards were reverted in reverse order.
  Result<RollingUpdateReport> PushRolling(
      const ChunkedSnapshot& chunked,
      const RollingUpdateOptions& options = {});

  /// Fleet-wide stats merged from per-daemon Stats() RPCs: counters
  /// summed, fleet percentiles from the element-wise merged latency
  /// histograms (bucket compatibility validated — a daemon from a
  /// mismatched build is skipped, not misread), audit tallies summed.
  /// Unreachable shards contribute nothing (num_shards still counts
  /// them; shard_versions reports 0).
  FleetStatsView stats() const;

  /// One synchronous probe sweep (the prober thread's body). Exposed so
  /// tests drive the eject/readmit lifecycle without sleeping.
  void ProbeOnce();

  /// Manual ejection/readmission (the prober does this automatically).
  Status EjectShard(size_t s);
  Status ReadmitShard(size_t s);

  /// Stops the prober and closes all connections. Idempotent.
  void Stop();

  RemoteShardClient* shard_client(size_t s) { return clients_[s].get(); }

  // ShardDirectory (the routing policies' view):
  size_t num_shards() const override { return clients_.size(); }
  bool ShardAvailable(size_t s) const override {
    return !ejected_[s].load(std::memory_order_acquire) &&
           !draining_[s].load(std::memory_order_acquire);
  }
  size_t ShardLoad(size_t s) const override {
    return last_load_[s].load(std::memory_order_relaxed);
  }

  /// Lifecycle counters (mirrors the FleetStatsView fields).
  uint64_t ejections() const { return ejections_.load(); }
  uint64_t readmissions() const { return readmissions_.load(); }

 private:
  explicit RemoteFleet(const RemoteFleetOptions& options);

  void ProbeLoop();
  /// One shard's complete push conversation (manifest -> chunks ->
  /// commit). Fills `version` with the committed snapshot version.
  Status PushShard(size_t s, const ChunkedSnapshot& chunked,
                   uint64_t* version);

  RemoteFleetOptions options_;
  std::vector<std::unique_ptr<RemoteShardClient>> clients_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<std::atomic<bool>[]> ejected_;
  std::unique_ptr<std::atomic<bool>[]> draining_;
  std::unique_ptr<std::atomic<size_t>[]> last_load_;

  // Prober state (probe thread or ProbeOnce callers; serialized by mu_).
  struct ProbeState {
    ShardHealthFsm fsm;
    uint64_t last_completed = 0;
    bool have_baseline = false;
    uint64_t last_version = 0;
  };
  mutable std::mutex mu_;
  std::vector<ProbeState> probe_states_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread probe_thread_;
  std::once_flag stop_once_;

  std::atomic<uint64_t> ejections_{0};
  std::atomic<uint64_t> readmissions_{0};
  std::atomic<uint64_t> rolling_updates_{0};
  std::atomic<uint64_t> rollbacks_{0};
};

}  // namespace net
}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_NET_REMOTE_FLEET_H_
