#include "serve/net/shard_daemon.h"

#include <utility>

#include "serve/net/wire.h"
#include "serve/trace/trace_context.h"
#include "util/fault.h"
#include "util/timer.h"

namespace fairdrift {
namespace net {

Result<std::unique_ptr<ShardDaemon>> ShardDaemon::Start(
    std::shared_ptr<const ModelSnapshot> snapshot,
    const ShardDaemonOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("ShardDaemon: null snapshot");
  }
  std::unique_ptr<ShardDaemon> daemon(new ShardDaemon());
  daemon->options_ = options;

  // A trace log path turns the wrapped server into a tracing server:
  // the daemon owns the sink (destroyed after the server), stamps the
  // wire stages itself, and emits whole-span records after the reply
  // serializes (defer_emit).
  if (!options.trace_log_path.empty()) {
    TraceLogOptions log_options;
    log_options.rotate_bytes = options.trace_rotate_bytes;
    Result<std::unique_ptr<TraceLog>> log =
        TraceLog::Open(options.trace_log_path, log_options);
    if (!log.ok()) return log.status();
    daemon->trace_log_ = std::move(log).value();
    daemon->options_.server.trace.enabled = true;
    daemon->options_.server.trace.sample_modulus =
        options.trace_sample_modulus;
    daemon->options_.server.trace.sink = daemon->trace_log_.get();
    daemon->options_.server.trace.role = "shard";
    daemon->options_.server.trace.defer_emit = true;
  }

  Result<std::unique_ptr<ScoringServer>> server =
      ScoringServer::Create(snapshot, daemon->options_.server);
  if (!server.ok()) return server.status();
  daemon->server_ = std::move(server).value();

  // One collector renders everything a scrape needs: the server's
  // lock-free stats view in the shared fairdrift_* family set, the
  // daemon's wire counters, and point-in-time serving gauges.
  ShardDaemon* raw = daemon.get();
  daemon->metrics_.AddCollector([raw](MetricsEmitter* out) {
    EmitStatsViewMetrics(raw->server_->stats(), out);
    Counters wire = raw->counters();
    out->Counter("fairdrift_net_connections_accepted_total",
                 "TCP connections accepted", wire.connections_accepted);
    out->Counter("fairdrift_net_frames_served_total",
                 "Request frames answered", wire.frames_served);
    out->Counter("fairdrift_net_frame_errors_total",
                 "Error frames sent to peers", wire.frame_errors);
    out->Counter("fairdrift_net_push_commits_total",
                 "Snapshot pushes committed", wire.push_commits);
    out->Counter("fairdrift_net_push_reverts_total",
                 "Snapshot pushes reverted", wire.push_reverts);
    out->Gauge("fairdrift_queue_depth", "Admitted requests awaiting a batch",
               static_cast<double>(raw->server_->queue_depth()));
    out->Gauge("fairdrift_snapshot_version",
               "Model snapshot version serving new batches",
               static_cast<double>(raw->server_->CurrentSnapshot()->version()));
    if (raw->trace_log_ != nullptr) {
      out->Counter("fairdrift_trace_log_records_total",
                   "Whole-span records appended to the trace log",
                   raw->trace_log_->records());
    }
  });

  // Seed the chunk store from the snapshot we serve, so the very first
  // push already diffs against real content: a pusher whose snapshot
  // shares four of five chunks with ours sends one chunk, not five.
  Result<ChunkedSnapshot> chunked = ChunkSnapshot(*snapshot);
  if (!chunked.ok()) return chunked.status();
  daemon->current_manifest_ = chunked.value().manifest;
  for (SnapshotPayloadChunk& chunk : chunked.value().chunks) {
    daemon->current_chunks_[chunk.name] = std::move(chunk.bytes);
  }

  Result<TcpListener> listener = TcpListener::Listen(options.host,
                                                     options.port);
  if (!listener.ok()) return listener.status();
  daemon->listener_ = std::move(listener).value();

  daemon->accept_thread_ = std::thread([raw] { raw->AcceptLoop(); });
  return daemon;
}

ShardDaemon::~ShardDaemon() { Stop(); }

void ShardDaemon::Stop() {
  // call_once serializes concurrent stoppers: exactly one runs the join
  // sequence, and every caller returns only after it has completed --
  // no two threads ever join the same std::thread.
  std::call_once(stop_once_, [this] { StopImpl(); });
}

void ShardDaemon::StopImpl() {
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<ConnThread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (ConnThread& c : conns) {
    if (c.thread.joinable()) c.thread.join();
  }
  listener_.Close();
  if (server_) server_->Stop();
}

ShardDaemon::Counters ShardDaemon::counters() const {
  std::lock_guard<std::mutex> lock(counter_mu_);
  return counters_;
}

void ShardDaemon::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    ReapFinishedConnections();
    Result<TcpConnection> conn = listener_.Accept(options_.poll_tick);
    if (!conn.ok()) continue;  // poll tick elapsed, or a transient failure
    {
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.connections_accepted;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.push_back(ConnThread{
        std::thread(&ShardDaemon::ServeConnection, this,
                    std::move(conn).value(), done),
        done});
  }
}

void ShardDaemon::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = conn_threads_.begin(); it != conn_threads_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();
      it = conn_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardDaemon::ServeConnection(TcpConnection conn,
                                  std::shared_ptr<std::atomic<bool>> done) {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Idle connections park in short readability polls so Stop() is
    // never stuck behind a silent peer; only an actual frame start pays
    // the full io_timeout read.
    if (!conn.WaitReadable(options_.poll_tick)) continue;
    Result<Frame> frame = ReadFrame(conn, options_.io_timeout);
    if (!frame.ok()) {
      // kUnavailable here is normally just the peer hanging up; anything
      // else (checksum, desync, timeout) is worth reporting back if the
      // socket still works. Either way this connection is done — a
      // desynchronized stream cannot be re-framed.
      if (frame.status().code() != StatusCode::kUnavailable) {
        std::lock_guard<std::mutex> lock(counter_mu_);
        ++counters_.frame_errors;
      }
      (void)WriteErrorFrame(conn, frame.status(), options_.io_timeout);
      break;
    }
    Frame reply = HandleFrame(frame.value());
    {
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.frames_served;
      if (reply.type == FrameType::kError) ++counters_.frame_errors;
    }
    if (!WriteFrame(conn, reply.type, reply.payload, options_.io_timeout)
             .ok()) {
      break;
    }
  }
  conn.Close();
  done->store(true, std::memory_order_release);
}

Frame ShardDaemon::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kScoreBatch:
      return HandleScoreBatch(frame);
    case FrameType::kHealthProbe:
      return HandleHealthProbe();
    case FrameType::kStatsSnapshot:
      return HandleStatsSnapshot();
    case FrameType::kMetrics:
      return HandleMetrics();
    case FrameType::kPushManifest:
      return HandlePushManifest(frame);
    case FrameType::kPushChunk:
      return HandlePushChunk(frame);
    case FrameType::kPushCommit:
      return HandlePushCommit();
    case FrameType::kPushRevert:
      return HandlePushRevert();
    default:
      return ErrorFrame(Status::InvalidArgument(
          std::string("shard daemon cannot serve frame type ") +
          FrameTypeName(frame.type)));
  }
}

Frame ShardDaemon::ErrorFrame(const Status& error) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(error.code()));
  w.WriteString(error.message());
  return Frame{FrameType::kError, std::move(w).TakeBuffer()};
}

Frame ShardDaemon::HandleScoreBatch(const Frame& frame) {
  // Stamped before deserialization so the wire_recv span covers decode.
  const uint64_t wire_recv_ns =
      options_.server.trace.enabled ? MonotonicNowNs() : 0;
  BinaryReader r(frame.payload);
  Result<WireScoreRequest> request = DeserializeScoreRequest(&r);
  if (!request.ok()) return ErrorFrame(request.status());
  const WireScoreRequest& req = request.value();
  const size_t count = req.count();
  const std::chrono::nanoseconds deadline{req.deadline_ns};

  // Every sampled row in this frame parents under the sender's span id
  // from the frame's trace extension (per-row trace ids re-mint from
  // row content at admission, so the extension only carries linkage).
  SubmitTraceInfo trace;
  trace.parent_span_id = frame.has_trace ? frame.trace.parent_span_id : 0;
  trace.wire_recv_ns = wire_recv_ns;

  // Submit every row first so the whole batch coalesces, then wait.
  // Shed/invalid rows carry their typed code per row instead of failing
  // the frame: one overloaded row must not poison its batch-mates.
  std::vector<ScoreTicket> tickets(count);
  std::vector<WireRowOutcome> outcomes(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> row(req.rows.begin() + i * req.width,
                            req.rows.begin() + (i + 1) * req.width);
    Result<ScoreTicket> ticket =
        server_->Submit(std::move(row), RequestAuditInfo{}, trace, deadline);
    if (ticket.ok()) {
      tickets[i] = std::move(ticket).value();
    } else {
      outcomes[i].code = ticket.status().code();
      outcomes[i].message = ticket.status().message();
    }
  }
  for (size_t i = 0; i < count; ++i) {
    if (!tickets[i].valid()) continue;
    Result<ScoreResult> result = tickets[i].Wait();
    if (result.ok()) {
      outcomes[i].result = result.value();
    } else {
      outcomes[i].code = result.status().code();
      outcomes[i].message = result.status().message();
    }
  }
  BinaryWriter w;
  SerializeRowOutcomes(outcomes, &w);
  Frame reply{FrameType::kScoreBatchReply, std::move(w).TakeBuffer()};
  if (trace_log_ != nullptr) {
    // Emission is deferred to here so wire_send (reply serialized,
    // about to hit the socket) closes each sampled row's span. Wait()
    // above ordered these slot reads after the scoring thread's writes.
    const uint64_t wire_send_ns = MonotonicNowNs();
    for (ScoreTicket& ticket : tickets) {
      if (!ticket.valid()) continue;
      TraceSpanSlot* slot = ticket.trace_slot();
      if (slot == nullptr || !slot->sampled()) continue;
      slot->StampAt(TraceStage::kWireSend, wire_send_ns);
      server_->EmitTrace(ticket);
    }
  }
  return reply;
}

Frame ShardDaemon::HandleHealthProbe() {
  WireHealthProbe probe;
  probe.completed = server_->stats().completed;
  probe.queue_depth = server_->queue_depth();
  probe.inflight_batches = server_->inflight_batches();
  probe.snapshot_version = server_->CurrentSnapshot()->version();
  BinaryWriter w;
  SerializeHealthProbe(probe, &w);
  return Frame{FrameType::kHealthProbeReply, std::move(w).TakeBuffer()};
}

Frame ShardDaemon::HandleStatsSnapshot() {
  BinaryWriter w;
  SerializeStatsView(server_->stats(), &w);
  return Frame{FrameType::kStatsSnapshotReply, std::move(w).TakeBuffer()};
}

Frame ShardDaemon::HandleMetrics() {
  return Frame{FrameType::kMetricsReply, metrics_.RenderText()};
}

Frame ShardDaemon::HandlePushManifest(const Frame& frame) {
  BinaryReader r(frame.payload);
  Result<SnapshotManifest> manifest = DeserializeManifest(&r);
  if (!manifest.ok()) return ErrorFrame(manifest.status());

  std::lock_guard<std::mutex> lock(push_mu_);
  pending_manifest_ = std::move(manifest).value();
  pending_chunks_.clear();
  pending_valid_ = true;

  // Reply with the names of the chunks we cannot reuse — a chunk whose
  // bytes we already hold (same name, size, and checksum) never travels.
  std::vector<std::string> needed;
  for (const SnapshotChunkInfo& info : pending_manifest_.chunks) {
    auto held = current_chunks_.find(info.name);
    bool reusable = held != current_chunks_.end() &&
                    held->second.size() == info.size &&
                    Fnv1aHash(held->second.data(), held->second.size()) ==
                        info.checksum;
    if (!reusable) needed.push_back(info.name);
  }
  BinaryWriter w;
  w.WriteU64(needed.size());
  for (const std::string& name : needed) w.WriteString(name);
  return Frame{FrameType::kPushManifestReply, std::move(w).TakeBuffer()};
}

Frame ShardDaemon::HandlePushChunk(const Frame& frame) {
  BinaryReader r(frame.payload);
  Result<std::string> name = r.ReadString();
  if (!name.ok()) return ErrorFrame(name.status());
  Result<std::string> bytes = r.ReadString();
  if (!bytes.ok()) return ErrorFrame(bytes.status());

  std::lock_guard<std::mutex> lock(push_mu_);
  if (!pending_valid_) {
    return ErrorFrame(Status::FailedPrecondition(
        "push chunk without a pending manifest (send kPushManifest first)"));
  }
  size_t index = pending_manifest_.FindChunk(name.value());
  if (index == static_cast<size_t>(-1)) {
    return ErrorFrame(Status::InvalidArgument(
        "pushed chunk '" + name.value() + "' is not in the pending manifest"));
  }
  const SnapshotChunkInfo& info = pending_manifest_.chunks[index];
  if (FAULT_POINT_ARG("net.push.chunk", static_cast<uint64_t>(index)) ||
      bytes.value().size() != info.size ||
      Fnv1aHash(bytes.value().data(), bytes.value().size()) != info.checksum) {
    return ErrorFrame(Status::DataLoss(
        "pushed chunk '" + name.value() +
        "' does not match its manifest entry (size or checksum)"));
  }
  pending_chunks_[info.name] = std::move(bytes).value();
  {
    std::lock_guard<std::mutex> counters(counter_mu_);
    ++counters_.push_chunks_received;
  }
  return Frame{FrameType::kPushChunkReply, std::string()};
}

Frame ShardDaemon::HandlePushCommit() {
  std::lock_guard<std::mutex> lock(push_mu_);
  if (!pending_valid_) {
    return ErrorFrame(Status::FailedPrecondition(
        "push commit without a pending manifest"));
  }
  // Assemble the full payload: staged chunks where the pusher sent new
  // bytes, our held chunks where the manifest said they were unchanged.
  std::vector<SnapshotPayloadChunk> chunks;
  chunks.reserve(pending_manifest_.chunks.size());
  for (const SnapshotChunkInfo& info : pending_manifest_.chunks) {
    auto staged = pending_chunks_.find(info.name);
    if (staged != pending_chunks_.end()) {
      chunks.push_back({info.name, staged->second});
      continue;
    }
    auto held = current_chunks_.find(info.name);
    if (held == current_chunks_.end()) {
      return ErrorFrame(Status::FailedPrecondition(
          "chunk '" + info.name +
          "' was neither pushed nor already held; cannot commit"));
    }
    chunks.push_back({info.name, held->second});
  }
  Result<std::string> payload = AssemblePayload(pending_manifest_, chunks);
  if (!payload.ok()) return ErrorFrame(payload.status());

  SnapshotLoadReport report;
  Result<std::shared_ptr<const ModelSnapshot>> parsed = ParseSnapshotPayload(
      pending_manifest_.snapshot_format_version, payload.value().data(),
      payload.value().size(), options_.push_load_mode, &report,
      "pushed snapshot");
  if (!parsed.ok()) return ErrorFrame(parsed.status());

  // Keep a one-deep revert history, then swap. In-flight batches finish
  // on the snapshot they grabbed — the swap drops nothing.
  previous_snapshot_ = server_->CurrentSnapshot();
  previous_manifest_ = current_manifest_;
  previous_chunks_ = current_chunks_;
  Status swapped = server_->UpdateSnapshot(parsed.value());
  if (!swapped.ok()) return ErrorFrame(swapped);

  current_manifest_ = pending_manifest_;
  current_chunks_.clear();
  for (SnapshotPayloadChunk& chunk : chunks) {
    current_chunks_[chunk.name] = std::move(chunk.bytes);
  }
  pending_valid_ = false;
  pending_chunks_.clear();

  std::string note = report.degraded_note;
  if (!options_.state_dir.empty()) {
    Status persisted = SaveChunkedSnapshot(*parsed.value(),
                                           options_.state_dir);
    if (!persisted.ok()) {
      // The swap already happened and serving is correct; surface the
      // persistence problem to the pusher instead of unwinding it.
      if (!note.empty()) note += "; ";
      note += "state persist failed: " + persisted.message();
    }
  }
  {
    std::lock_guard<std::mutex> counters(counter_mu_);
    ++counters_.push_commits;
  }
  BinaryWriter w;
  w.WriteU64(parsed.value()->version());
  w.WriteU8(report.outcome == SnapshotLoadReport::Outcome::kDegraded ? 1 : 0);
  w.WriteString(note);
  return Frame{FrameType::kPushCommitReply, std::move(w).TakeBuffer()};
}

Frame ShardDaemon::HandlePushRevert() {
  std::lock_guard<std::mutex> lock(push_mu_);
  pending_valid_ = false;
  pending_chunks_.clear();
  if (previous_snapshot_ == nullptr) {
    return ErrorFrame(Status::FailedPrecondition(
        "no committed push to revert"));
  }
  Status swapped = server_->UpdateSnapshot(previous_snapshot_);
  if (!swapped.ok()) return ErrorFrame(swapped);
  current_manifest_ = previous_manifest_;
  current_chunks_ = previous_chunks_;
  uint64_t version = previous_snapshot_->version();
  previous_snapshot_.reset();
  previous_chunks_.clear();
  if (!options_.state_dir.empty()) {
    // Best effort: a revert that cannot persist still serves correctly.
    std::shared_ptr<const ModelSnapshot> current = server_->CurrentSnapshot();
    (void)SaveChunkedSnapshot(*current, options_.state_dir);
  }
  {
    std::lock_guard<std::mutex> counters(counter_mu_);
    ++counters_.push_reverts;
  }
  BinaryWriter w;
  w.WriteU64(version);
  return Frame{FrameType::kPushRevertReply, std::move(w).TakeBuffer()};
}

}  // namespace net
}  // namespace fairdrift
