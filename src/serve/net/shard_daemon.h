// ShardDaemon: one ScoringServer behind the wire.
//
// The daemon wraps a single in-process ScoringServer with a TCP
// listener speaking net/frame.h frames: score-batch, health-probe,
// stats-snapshot, and the three-phase snapshot-push RPCs
// (manifest -> chunks -> commit, plus revert). One accept loop polls
// the listener (reaping finished handler threads each tick); each
// accepted connection gets its own handler thread with deadline-bounded
// reads, so a frame-level error on one
// connection (checksum mismatch, injected partial read, dead client)
// closes that connection and nothing else.
//
// Push protocol (receiver side):
//   kPushManifest  the pusher's SnapshotManifest. The daemon diffs it
//                  against the chunk set of the snapshot it currently
//                  serves (seeded at startup by chunking the loaded
//                  snapshot) and replies with the names of the chunks
//                  it needs -- an unchanged artifact never travels.
//   kPushChunk     one named chunk; verified against the pending
//                  manifest's size + FNV-1a before staging. Fault site
//                  "net.push.chunk" rejects here with kDataLoss.
//   kPushCommit    assembles pending + reusable current chunks into the
//                  full payload, re-verifies the whole-payload checksum,
//                  parses it (kAllowPartial: a damaged monitor tail
//                  serves degraded), atomically swaps it into the
//                  server (in-flight batches finish on the old snapshot
//                  -- zero dropped requests), and persists the chunked
//                  form to state_dir when configured, so a restarted
//                  daemon serves the pushed version.
//   kPushRevert    swaps back to the pre-commit snapshot (one-deep
//                  history) -- the router's reverse-order rollback path.

#ifndef FAIRDRIFT_SERVE_NET_SHARD_DAEMON_H_
#define FAIRDRIFT_SERVE_NET_SHARD_DAEMON_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "serve/server.h"
#include "serve/snapshot_manifest.h"
#include "serve/trace/metrics_registry.h"
#include "serve/trace/trace_log.h"

namespace fairdrift {
namespace net {

struct ShardDaemonOptions {
  /// Interface to bind ("127.0.0.1" keeps the daemon loopback-only).
  std::string host = "127.0.0.1";
  /// Port to listen on; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// The wrapped ScoringServer's configuration.
  ServerOptions server;
  /// When non-empty: every committed push is also persisted here as a
  /// chunked snapshot (manifest + chunks), so a restarted daemon can
  /// load the version it was serving.
  std::string state_dir;
  /// Per-frame send/receive deadline. A peer that stalls mid-frame is
  /// disconnected with kDeadlineExceeded rather than wedging a handler.
  std::chrono::milliseconds io_timeout = std::chrono::milliseconds(5000);
  /// Accept/readability poll tick (stop-flag latency bound).
  std::chrono::milliseconds poll_tick = std::chrono::milliseconds(50);
  /// How strictly pushed payloads parse. kAllowPartial (default) lets a
  /// push whose monitor tail is damaged serve degraded, mirroring the
  /// file loader.
  SnapshotLoadMode push_load_mode = SnapshotLoadMode::kAllowPartial;
  /// When non-empty: enables request tracing with a chained JSONL trace
  /// log at this path. Overrides options.server.trace (enabled, sink,
  /// role "shard", deferred emission so wire_send lands in the span).
  std::string trace_log_path;
  /// Content-hash sampling modulus for the trace log (1-in-N rows).
  uint32_t trace_sample_modulus = 64;
  /// Trace log segment rotation threshold (0 = never rotate).
  uint64_t trace_rotate_bytes = 0;
};

class ShardDaemon {
 public:
  /// Starts serving `snapshot` on options.host:options.port. The daemon
  /// is accepting connections when Start returns.
  static Result<std::unique_ptr<ShardDaemon>> Start(
      std::shared_ptr<const ModelSnapshot> snapshot,
      const ShardDaemonOptions& options = {});

  ~ShardDaemon();
  ShardDaemon(const ShardDaemon&) = delete;
  ShardDaemon& operator=(const ShardDaemon&) = delete;

  /// The bound port (resolved for ephemeral binds).
  uint16_t port() const { return listener_.port(); }

  /// The wrapped server (test/CLI introspection; the daemon owns it).
  ScoringServer* server() { return server_.get(); }

  /// The trace log, or null when tracing is off (test introspection).
  TraceLog* trace_log() { return trace_log_.get(); }

  /// The daemon's metrics registry. kMetrics scrapes render it; owners
  /// may register additional instruments/collectors before traffic.
  MetricsRegistry* metrics() { return &metrics_; }

  /// Wire activity counters.
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t frames_served = 0;
    uint64_t frame_errors = 0;   ///< error frames sent to peers
    uint64_t push_commits = 0;
    uint64_t push_reverts = 0;
    uint64_t push_chunks_received = 0;
  };
  Counters counters() const;

  /// Stops accepting, closes connections, and stops the server
  /// (draining its queue). Idempotent; called by the destructor.
  void Stop();

 private:
  ShardDaemon() = default;

  void AcceptLoop();
  void StopImpl();
  /// Joins handler threads whose connection has finished, so a
  /// long-running daemon never holds a joinable pthread per client it
  /// has ever served. Runs on the accept loop's poll tick.
  void ReapFinishedConnections();
  void ServeConnection(TcpConnection conn,
                       std::shared_ptr<std::atomic<bool>> done);
  /// Dispatches one request frame; returns the reply frame to send.
  Frame HandleFrame(const Frame& frame);
  Frame ErrorFrame(const Status& error);

  Frame HandleScoreBatch(const Frame& frame);
  Frame HandleHealthProbe();
  Frame HandleStatsSnapshot();
  Frame HandleMetrics();
  Frame HandlePushManifest(const Frame& frame);
  Frame HandlePushChunk(const Frame& frame);
  Frame HandlePushCommit();
  Frame HandlePushRevert();

  ShardDaemonOptions options_;
  /// Declared before server_: the server holds a raw sink pointer into
  /// the trace log and may emit during its Stop() drain, so the log
  /// must be destroyed after the server.
  std::unique_ptr<TraceLog> trace_log_;
  MetricsRegistry metrics_;
  std::unique_ptr<ScoringServer> server_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
  std::once_flag stop_once_;
  std::thread accept_thread_;

  /// One handler thread per live connection; `done` flips when the
  /// handler exits so the accept loop can reap (join) it.
  struct ConnThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex conn_mu_;
  std::vector<ConnThread> conn_threads_;

  // Push state (one push in flight at a time; conn threads serialize on
  // push_mu_). current_* describes the snapshot the server serves;
  // previous_* is the one-deep revert history.
  std::mutex push_mu_;
  SnapshotManifest current_manifest_;
  std::map<std::string, std::string> current_chunks_;
  bool pending_valid_ = false;
  SnapshotManifest pending_manifest_;
  std::map<std::string, std::string> pending_chunks_;
  std::shared_ptr<const ModelSnapshot> previous_snapshot_;
  SnapshotManifest previous_manifest_;
  std::map<std::string, std::string> previous_chunks_;

  mutable std::mutex counter_mu_;
  Counters counters_;
};

}  // namespace net
}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_NET_SHARD_DAEMON_H_
