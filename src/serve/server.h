// ScoringServer: the asynchronous online scoring front end.
//
// Architecture (one arrow = one thread boundary):
//
//   client threads --Submit--> [AdmissionController] --> [RequestQueue]
//        --> dispatch thread --[MicroBatcher]--> batch
//        --ThreadPool::Submit--> batch worker:
//              cull expired deadlines, validate rows,
//              ModelSnapshot::ScoreBatch (one immutable snapshot per
//              batch), fulfill tickets, record ServerStats
//
// Snapshot isolation: UpdateSnapshot atomically publishes a new
// ModelSnapshot; batches already dispatched keep scoring the snapshot
// they grabbed, new batches see the new one. No request ever observes a
// half-swapped model, and no swap ever waits for traffic to drain.
//
// Determinism: a given request row produces bitwise-identical
// ScoreResult fields under every batching configuration and worker
// count (the snapshot's contract). Only batch *composition* and
// therefore throughput/latency depend on the configuration.

#ifndef FAIRDRIFT_SERVE_SERVER_H_
#define FAIRDRIFT_SERVE_SERVER_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/micro_batcher.h"
#include "serve/request_queue.h"
#include "serve/server_stats.h"
#include "serve/snapshot.h"
#include "serve/ticket.h"
#include "util/status.h"

namespace fairdrift {

class ThreadPool;    // util/parallel.h
class ShardAuditor;  // serve/audit/auditor.h
class TraceLog;      // serve/trace/trace_log.h

/// Request-scoped tracing configuration (serve/trace/). Sampling is
/// content-hash deterministic (MintTraceContext), so the same rows are
/// sampled regardless of batching, shard assignment, or worker count.
struct ServerTraceOptions {
  /// Master switch. Off = zero tracing work on every path (the
  /// historical behavior).
  bool enabled = false;
  /// Sample 1-in-modulus rows by content hash (0 or 1 = every row).
  uint32_t sample_modulus = 64;
  /// Whole-span record sink for sampled requests. Not owned; must
  /// outlive the server. Null = stamp spans + fold stage histograms
  /// only, emit no records.
  TraceLog* sink = nullptr;
  /// Role name stamped into emitted records ("server", "shard", ...).
  const char* role = "server";
  /// When true the server does NOT emit records after scoring; the
  /// owner (a shard daemon) stamps transport stages on the completed
  /// ticket and calls EmitTrace itself, so wire_send lands inside the
  /// span.
  bool defer_emit = false;
};

/// Full server configuration.
struct ServerOptions {
  BatchingOptions batching;
  AdmissionOptions admission;
  /// Batches scored concurrently (the dispatcher stops coalescing new
  /// batches while this many are in flight). 0 = scoring-pool workers + 1.
  size_t max_inflight_batches = 0;
  /// Pool the batch workers run on (global pool when null). A 0-worker
  /// pool degrades to scoring on the dispatch thread — still correct.
  ThreadPool* pool = nullptr;
  /// When set, batches score the density monitor under this policy
  /// instead of the snapshot's own MonitorSpec — a per-deployment knob
  /// that survives snapshot hot-swaps (it applies to whatever snapshot
  /// is current). Unset = honor each snapshot's persisted spec.
  std::optional<MonitorSpec> monitor_override;
  /// Opaque tag passed to this server's fault-injection sites
  /// (FAULT_POINT_ARG), so a rule can target one server of a fleet.
  /// ScoringFleet sets it to the shard index.
  uint64_t fault_tag = 0;
  /// Fairness audit sink (serve/audit/): every scored row of every batch
  /// is folded into this shard accumulator right after scoring, before
  /// tickets complete. Not owned; must outlive the server. Null = no
  /// auditing (the historical behavior, zero overhead).
  ShardAuditor* audit = nullptr;
  /// Request-scoped tracing (serve/trace/).
  ServerTraceOptions trace;
};

/// Trace linkage a transport layer attaches to a Submit: the upstream
/// span to parent under and the wire-receive stamp taken when the
/// carrying frame arrived (0 = not a wire request).
struct SubmitTraceInfo {
  uint64_t parent_span_id = 0;
  uint64_t wire_recv_ns = 0;
};

/// Asynchronous micro-batching scoring server over immutable snapshots.
class ScoringServer {
 public:
  /// Validates options, installs `snapshot`, and starts the dispatch
  /// thread. The server is accepting requests when Create returns.
  static Result<std::unique_ptr<ScoringServer>> Create(
      std::shared_ptr<const ModelSnapshot> snapshot,
      const ServerOptions& options = {});

  /// Stops and drains (see Stop).
  ~ScoringServer();

  ScoringServer(const ScoringServer&) = delete;
  ScoringServer& operator=(const ScoringServer&) = delete;

  /// Submits one request row. `deadline_after` bounds how long the
  /// request may wait before being shed (<= 0 uses the admission
  /// policy's default; no default = no deadline). Fails fast with the
  /// typed admission status (Unavailable on overload/shutdown,
  /// DeadlineExceeded, InvalidArgument on a width mismatch); otherwise
  /// the returned ticket completes when a batch worker scores the row.
  Result<ScoreTicket> Submit(
      std::vector<double> row,
      std::chrono::nanoseconds deadline_after = std::chrono::nanoseconds{0});

  /// Submit with audit metadata attached: an explicit group id (overrides
  /// the snapshot's own group-field extraction) and/or a ground-truth
  /// label, folded into the fairness windows when the server audits.
  Result<ScoreTicket> Submit(
      std::vector<double> row, const RequestAuditInfo& audit,
      std::chrono::nanoseconds deadline_after = std::chrono::nanoseconds{0});

  /// Submit with upstream trace linkage (shard daemons): the sampled
  /// request's span parents under `trace.parent_span_id` and its slot
  /// carries the wire-receive stamp. No-ops into the plain Submit
  /// behavior when tracing is disabled.
  Result<ScoreTicket> Submit(std::vector<double> row,
                             const RequestAuditInfo& audit,
                             const SubmitTraceInfo& trace,
                             std::chrono::nanoseconds deadline_after);

  /// Emits one completed, trace-sampled ticket's whole-span record to
  /// the configured sink. Only for owners that set
  /// ServerTraceOptions::defer_emit (they stamp transport stages on the
  /// ticket's slot first); no-op for unsampled tickets or without a
  /// sink. Append failures are counted
  /// (ServerStats::trace_append_failures), never surfaced — tracing
  /// must not fail serving.
  void EmitTrace(const ScoreTicket& ticket);

  /// Submit + Wait. Not callable from the scoring pool's own workers.
  Result<ScoreResult> ScoreSync(
      std::vector<double> row,
      std::chrono::nanoseconds deadline_after = std::chrono::nanoseconds{0});

  /// Atomically publishes a new snapshot for subsequent batches.
  /// In-flight batches finish against the snapshot they started with.
  Status UpdateSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The snapshot new batches will score against.
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const;

  /// Closes admission, drains every queued request through the normal
  /// scoring path (tickets all complete), and joins the dispatcher.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Requests currently waiting in this server's queue (racy snapshot —
  /// the fleet router's load signal, not a synchronization primitive).
  size_t queue_depth() const { return queue_.size(); }

  /// Batches currently being scored by pool workers (racy snapshot).
  size_t inflight_batches() const;

  /// Blocks until this server is provably drained: nothing queued
  /// (unless `require_empty_queue` is false), nothing checked out of
  /// the queue (the pop-to-completion handshake — covers requests the
  /// dispatcher popped but is still coalescing or handing to a worker),
  /// and no batch in flight. The fleet's rolling update uses this as
  /// its per-shard drain barrier — the router has already steered
  /// traffic away, so the queue empties and the barrier certifies every
  /// previously admitted request scored against the pre-swap snapshot.
  /// Returns DeadlineExceeded when `timeout` elapses first (traffic
  /// kept arriving, or a batch is stuck). Does NOT close admission; new
  /// submits keep working throughout.
  Status Quiesce(std::chrono::nanoseconds timeout,
                 bool require_empty_queue = true) const;

  /// Live statistics view.
  ServerStats::View stats() const { return stats_.Snapshot(); }

  const ServerOptions& options() const { return options_; }

 private:
  ScoringServer(std::shared_ptr<const ModelSnapshot> snapshot,
                const ServerOptions& options);

  void DispatchLoop();
  void ProcessBatch(std::vector<PendingRequest>* batch);
  /// Appends `slot`'s record to the trace sink, counting (never
  /// propagating) failures.
  void AppendTraceRecord(const TraceSpanSlot& slot, uint64_t snapshot_version);
  void AcquireInflightSlot();
  void ReleaseInflightSlot();

  /// Per-worker batch buffers, recycled across batches so a steady-state
  /// worker re-encodes into the same matrices instead of rebuilding a
  /// Dataset + encoded matrix per batch. The pool holds at most
  /// max_inflight_ scratches (one per concurrent batch).
  std::unique_ptr<ScoreScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<ScoreScratch> scratch);

  ServerOptions options_;
  RequestQueue queue_;
  MicroBatcher batcher_;
  AdmissionController admission_;
  ServerStats stats_;
  ThreadPool* pool_;  // resolved, never null

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_;

  mutable std::mutex inflight_mu_;
  mutable std::condition_variable inflight_cv_;
  size_t inflight_ = 0;
  size_t max_inflight_ = 1;

  std::mutex scratch_mu_;
  std::vector<std::unique_ptr<ScoreScratch>> scratch_pool_;

  std::thread dispatcher_;
  std::once_flag stop_once_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_SERVER_H_
