#include "serve/fleet/fleet.h"

#include <algorithm>
#include <utility>

#include "serve/server_stats.h"
#include "util/binary_io.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace fairdrift {

const char* FleetRoutingPolicyName(FleetRoutingPolicy policy) {
  switch (policy) {
    case FleetRoutingPolicy::kRoundRobin:
      return "round-robin";
    case FleetRoutingPolicy::kLeastQueueDepth:
      return "least-queue";
    case FleetRoutingPolicy::kHashRow:
      return "hash-row";
  }
  return "?";
}

ShardRouter::ShardRouter(FleetRoutingPolicy policy, size_t num_shards)
    : policy_(policy), num_shards_(num_shards) {}

size_t ShardRouter::Pick(const double* row, size_t width,
                         const ScoringFleet& fleet) {
  size_t nominal = 0;
  switch (policy_) {
    case FleetRoutingPolicy::kRoundRobin:
      nominal = static_cast<size_t>(
                    cursor_.fetch_add(1, std::memory_order_relaxed)) %
                num_shards_;
      break;
    case FleetRoutingPolicy::kLeastQueueDepth: {
      // Racy scan by design: the depths move while we look, but steering
      // toward a stale minimum still balances. Ties break toward the
      // lowest shard id so the scan stays deterministic given the loads.
      bool found = false;
      size_t best_load = 0;
      for (size_t s = 0; s < num_shards_; ++s) {
        if (fleet.ShardDraining(s)) continue;
        size_t load = fleet.ShardLoad(s);
        if (!found || load < best_load) {
          found = true;
          best_load = load;
          nominal = s;
        }
      }
      break;
    }
    case FleetRoutingPolicy::kHashRow:
      // The row's raw IEEE-754 bytes hash the same in every process, so
      // a replayed request trace shards identically run after run.
      nominal = static_cast<size_t>(Fnv1aHash(
                    reinterpret_cast<const char*>(row),
                    width * sizeof(double))) %
                num_shards_;
      break;
  }
  // Walk off a draining shard (rolling update in progress). With every
  // shard draining — only possible on a 1-shard fleet — keep the nominal
  // pick: its queue stays open, requests just wait out the swap.
  for (size_t step = 0; step < num_shards_; ++step) {
    size_t s = (nominal + step) % num_shards_;
    if (!fleet.ShardDraining(s)) return s;
  }
  return nominal;
}

Result<std::unique_ptr<ScoringFleet>> ScoringFleet::Create(
    std::shared_ptr<const ModelSnapshot> snapshot,
    const FleetOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("ScoringFleet: null snapshot");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ScoringFleet: zero shards");
  }
  std::unique_ptr<ScoringFleet> fleet(new ScoringFleet(options));
  for (size_t s = 0; s < options.num_shards; ++s) {
    ServerOptions shard_options = options.shard;
    if (options.workers_per_shard > 0) {
      fleet->shard_pools_.push_back(
          std::make_unique<ThreadPool>(options.workers_per_shard));
      shard_options.pool = fleet->shard_pools_.back().get();
    }
    Result<std::unique_ptr<ScoringServer>> server =
        ScoringServer::Create(snapshot, shard_options);
    if (!server.ok()) return server.status();
    fleet->servers_.push_back(std::move(server).value());
  }
  return fleet;
}

ScoringFleet::ScoringFleet(const FleetOptions& options)
    : options_(options),
      draining_(new std::atomic<bool>[options.num_shards]),
      router_(options.routing, options.num_shards) {
  for (size_t s = 0; s < options.num_shards; ++s) {
    draining_[s].store(false, std::memory_order_relaxed);
  }
}

ScoringFleet::~ScoringFleet() { Stop(); }

void ScoringFleet::Stop() {
  if (stopped_.exchange(true)) return;
  // Shards stop independently (each drains its own queue); the private
  // pools outlive the servers that score on them, then fall with the
  // fleet.
  for (auto& server : servers_) server->Stop();
}

size_t ScoringFleet::ShardLoad(size_t s) const {
  const ScoringServer* server = servers_[s].get();
  return server->queue_depth() +
         server->inflight_batches() *
             server->options().batching.max_batch_size;
}

Result<ScoreTicket> ScoringFleet::Submit(
    std::vector<double> row, std::chrono::nanoseconds deadline_after) {
  size_t shard = router_.Pick(row.data(), row.size(), *this);
  return servers_[shard]->Submit(std::move(row), deadline_after);
}

Result<ScoreResult> ScoringFleet::ScoreSync(
    std::vector<double> row, std::chrono::nanoseconds deadline_after) {
  Result<ScoreTicket> ticket = Submit(std::move(row), deadline_after);
  if (!ticket.ok()) return ticket.status();
  return ticket.value().Wait();
}

Status ScoringFleet::UpdateSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("UpdateSnapshot: null snapshot");
  }
  std::lock_guard<std::mutex> lock(update_mu_);
  for (auto& server : servers_) {
    FAIRDRIFT_RETURN_IF_ERROR(server->UpdateSnapshot(snapshot));
  }
  return Status::OK();
}

Result<RollingUpdateReport> ScoringFleet::RollingUpdate(
    std::shared_ptr<const ModelSnapshot> snapshot,
    const RollingUpdateOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("RollingUpdate: null snapshot");
  }
  std::lock_guard<std::mutex> lock(update_mu_);
  RollingUpdateReport report;
  report.shard_stall_ms.reserve(servers_.size());
  for (size_t s = 0; s < servers_.size(); ++s) {
    // Take the shard out of rotation, then wait for what it already
    // admitted to finish scoring against the current snapshot. On a
    // 1-shard fleet the router keeps feeding the shard, so the barrier
    // only waits out the in-flight batches (per-batch isolation still
    // gives every request one consistent version).
    draining_[s].store(true, std::memory_order_release);
    WallTimer stall;
    Status drained =
        servers_[s]->Quiesce(options.drain_timeout,
                             /*require_empty_queue=*/servers_.size() > 1);
    if (!drained.ok()) {
      draining_[s].store(false, std::memory_order_release);
      return Status::DeadlineExceeded(StrFormat(
          "RollingUpdate: shard %zu did not drain within the barrier "
          "timeout (%zu of %zu shards already updated)",
          s, report.shards_updated, servers_.size()));
    }
    Status swapped = servers_[s]->UpdateSnapshot(snapshot);
    draining_[s].store(false, std::memory_order_release);
    FAIRDRIFT_RETURN_IF_ERROR(swapped);
    double stalled = stall.ElapsedMillis();
    report.shard_stall_ms.push_back(stalled);
    report.max_stall_ms = std::max(report.max_stall_ms, stalled);
    ++report.shards_updated;
  }
  rolling_updates_.fetch_add(1, std::memory_order_relaxed);
  return report;
}

FleetStatsView ScoringFleet::stats() const {
  FleetStatsView view;
  view.num_shards = servers_.size();
  view.queue_depths.reserve(servers_.size());
  view.shard_completed.reserve(servers_.size());
  view.shard_versions.reserve(servers_.size());
  std::vector<uint64_t> merged_hist(ServerStats::kLatencyBuckets, 0);
  uint64_t batched_weighted = 0;
  for (const auto& server : servers_) {
    ServerStats::View s = server->stats();
    view.submitted += s.submitted;
    view.completed += s.completed;
    view.shed_admission += s.shed_admission;
    view.shed_deadline += s.shed_deadline;
    view.invalid += s.invalid;
    view.batches += s.batches;
    view.snapshot_swaps += s.snapshot_swaps;
    view.density_checked += s.density_checked;
    view.density_outliers += s.density_outliers;
    batched_weighted +=
        static_cast<uint64_t>(s.mean_batch_size * s.batches + 0.5);
    for (size_t b = 0; b < merged_hist.size(); ++b) {
      merged_hist[b] += s.latency_hist[b];
    }
    view.queue_depths.push_back(server->queue_depth());
    view.shard_completed.push_back(s.completed);
    view.shard_versions.push_back(server->CurrentSnapshot()->version());
  }
  view.mean_batch_size =
      view.batches == 0 ? 0.0
                        : static_cast<double>(batched_weighted) /
                              static_cast<double>(view.batches);
  view.outlier_rate =
      view.density_checked == 0
          ? 0.0
          : static_cast<double>(view.density_outliers) /
                static_cast<double>(view.density_checked);
  // Fleet percentiles from the merged counts — averaging per-shard
  // percentiles would misweight unevenly loaded shards.
  view.p50_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.50);
  view.p95_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.95);
  view.p99_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.99);
  view.min_snapshot_version = view.shard_versions.empty()
                                  ? 0
                                  : *std::min_element(
                                        view.shard_versions.begin(),
                                        view.shard_versions.end());
  view.max_snapshot_version = view.shard_versions.empty()
                                  ? 0
                                  : *std::max_element(
                                        view.shard_versions.begin(),
                                        view.shard_versions.end());
  view.rolling_updates = rolling_updates_.load(std::memory_order_relaxed);
  return view;
}

}  // namespace fairdrift
