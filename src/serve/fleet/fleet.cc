#include "serve/fleet/fleet.h"

#include <algorithm>
#include <utility>

#include <thread>

#include "serve/server_stats.h"
#include "util/binary_io.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace fairdrift {

namespace {

// SplitMix64 finalizer: the rendezvous weights need a full avalanche of
// (row hash, shard id) — raw FNV xored with a shard id correlates.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* FleetRoutingPolicyName(FleetRoutingPolicy policy) {
  switch (policy) {
    case FleetRoutingPolicy::kRoundRobin:
      return "round-robin";
    case FleetRoutingPolicy::kLeastQueueDepth:
      return "least-queue";
    case FleetRoutingPolicy::kHashRow:
      return "hash-row";
  }
  return "?";
}

Result<FleetRoutingPolicy> ParseFleetRoutingPolicy(const std::string& name) {
  if (name == "rr" || name == "round-robin") {
    return FleetRoutingPolicy::kRoundRobin;
  }
  if (name == "least" || name == "least-queue") {
    return FleetRoutingPolicy::kLeastQueueDepth;
  }
  if (name == "hash" || name == "hash-row") {
    return FleetRoutingPolicy::kHashRow;
  }
  return Status::InvalidArgument("unknown routing policy '" + name +
                                 "' (want rr|least|hash)");
}

const char* RolloutStateName(RolloutState state) {
  switch (state) {
    case RolloutState::kCommitted:
      return "committed";
    case RolloutState::kRolledBack:
      return "rolled-back";
  }
  return "?";
}

ShardRouter::ShardRouter(FleetRoutingPolicy policy, size_t num_shards)
    : policy_(policy), num_shards_(num_shards) {}

size_t ShardRouter::Pick(const double* row, size_t width,
                         const ShardDirectory& fleet) {
  size_t nominal = 0;
  switch (policy_) {
    case FleetRoutingPolicy::kRoundRobin:
      nominal = static_cast<size_t>(
                    cursor_.fetch_add(1, std::memory_order_relaxed)) %
                num_shards_;
      break;
    case FleetRoutingPolicy::kLeastQueueDepth: {
      // Racy scan by design: the depths move while we look, but steering
      // toward a stale minimum still balances. Ties break toward the
      // lowest shard id so the scan stays deterministic given the loads.
      bool found = false;
      size_t best_load = 0;
      for (size_t s = 0; s < num_shards_; ++s) {
        if (!fleet.ShardAvailable(s)) continue;
        size_t load = fleet.ShardLoad(s);
        if (!found || load < best_load) {
          found = true;
          best_load = load;
          nominal = s;
        }
      }
      break;
    }
    case FleetRoutingPolicy::kHashRow: {
      // The row's raw IEEE-754 bytes hash the same in every process, so
      // a replayed request trace shards identically run after run.
      uint64_t row_hash = Fnv1aHash(reinterpret_cast<const char*>(row),
                                    width * sizeof(double));
      nominal = static_cast<size_t>(row_hash) % num_shards_;
      if (fleet.ShardAvailable(nominal)) return nominal;
      // Home shard unavailable: rendezvous (highest-random-weight) hash
      // over the available shards. Deterministic in (row, available
      // set): a row's keys always fail over to the same survivor, and
      // snap back to the home shard on readmission — no modulo
      // reshuffle of the whole keyspace.
      bool found = false;
      uint64_t best_weight = 0;
      size_t best = nominal;
      for (size_t s = 0; s < num_shards_; ++s) {
        if (!fleet.ShardAvailable(s)) continue;
        uint64_t weight = Mix64(row_hash ^ (0x9e3779b97f4a7c15ULL *
                                            static_cast<uint64_t>(s + 1)));
        if (!found || weight > best_weight ||
            (weight == best_weight && s < best)) {
          found = true;
          best_weight = weight;
          best = s;
        }
      }
      // No shard available at all: keep the home pick — its queue stays
      // open, requests wait out the swap/restart.
      return best;
    }
  }
  // Walk off an unavailable shard (rolling update draining it, or the
  // health monitor ejected it). With every shard unavailable — only
  // possible transiently on a 1-shard fleet — keep the nominal pick:
  // its queue stays open, requests just wait out the swap.
  for (size_t step = 0; step < num_shards_; ++step) {
    size_t s = (nominal + step) % num_shards_;
    if (fleet.ShardAvailable(s)) return s;
  }
  return nominal;
}

Result<std::unique_ptr<ScoringFleet>> ScoringFleet::Create(
    std::shared_ptr<const ModelSnapshot> snapshot,
    const FleetOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("ScoringFleet: null snapshot");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ScoringFleet: zero shards");
  }
  std::unique_ptr<ScoringFleet> fleet(new ScoringFleet(options));
  if (options.audit.enabled) {
    Result<std::unique_ptr<FleetAuditor>> auditor = FleetAuditor::Create(
        options.audit, options.num_shards, snapshot->num_features());
    if (!auditor.ok()) return auditor.status();
    fleet->auditor_ = std::move(auditor).value();
  }
  for (size_t s = 0; s < options.num_shards; ++s) {
    ServerOptions shard_options = options.shard;
    if (options.workers_per_shard > 0) {
      fleet->shard_pools_.push_back(
          std::make_unique<ThreadPool>(options.workers_per_shard));
      shard_options.pool = fleet->shard_pools_.back().get();
    }
    // Tag each shard's fault sites with its index so a rule can target
    // one shard of the fleet (e.g. wedge shard 1, stall shard 2's drain).
    shard_options.fault_tag = static_cast<uint64_t>(s);
    // The fleet's audit tier supersedes any caller-supplied per-shard
    // auditor (one FleetAuditor must own every shard's windows).
    if (fleet->auditor_ != nullptr) {
      shard_options.audit = fleet->auditor_->shard(s);
    }
    Result<std::unique_ptr<ScoringServer>> server =
        ScoringServer::Create(snapshot, shard_options);
    if (!server.ok()) return server.status();
    fleet->servers_.push_back(std::move(server).value());
  }
  return fleet;
}

ScoringFleet::ScoringFleet(const FleetOptions& options)
    : options_(options),
      draining_(new std::atomic<bool>[options.num_shards]),
      ejected_(new std::atomic<bool>[options.num_shards]),
      router_(options.routing, options.num_shards) {
  for (size_t s = 0; s < options.num_shards; ++s) {
    draining_[s].store(false, std::memory_order_relaxed);
    ejected_[s].store(false, std::memory_order_relaxed);
  }
}

ScoringFleet::~ScoringFleet() { Stop(); }

void ScoringFleet::Stop() {
  if (stopped_.exchange(true)) return;
  // Shards stop independently (each drains its own queue); the private
  // pools outlive the servers that score on them, then fall with the
  // fleet.
  for (size_t s = 0; s < servers_.size(); ++s) shard_ref(s)->Stop();
}

size_t ScoringFleet::ShardLoad(size_t s) const {
  std::shared_ptr<ScoringServer> server = shard_ref(s);
  return server->queue_depth() +
         server->inflight_batches() *
             server->options().batching.max_batch_size;
}

Result<ScoreTicket> ScoringFleet::Submit(
    std::vector<double> row, std::chrono::nanoseconds deadline_after) {
  return Submit(std::move(row), RequestAuditInfo{}, deadline_after);
}

Result<ScoreTicket> ScoringFleet::Submit(
    std::vector<double> row, const RequestAuditInfo& audit,
    std::chrono::nanoseconds deadline_after) {
  size_t shard = router_.Pick(row.data(), row.size(), *this);
  return shard_ref(shard)->Submit(std::move(row), audit, deadline_after);
}

Result<ScoreResult> ScoringFleet::ScoreSync(
    std::vector<double> row, std::chrono::nanoseconds deadline_after) {
  Result<ScoreTicket> ticket = Submit(std::move(row), deadline_after);
  if (!ticket.ok()) return ticket.status();
  return ticket.value().Wait();
}

Status ScoringFleet::UpdateSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("UpdateSnapshot: null snapshot");
  }
  std::lock_guard<std::mutex> lock(update_mu_);
  for (size_t s = 0; s < servers_.size(); ++s) {
    FAIRDRIFT_RETURN_IF_ERROR(shard_ref(s)->UpdateSnapshot(snapshot));
  }
  return Status::OK();
}

Result<RollingUpdateReport> ScoringFleet::RollingUpdate(
    std::shared_ptr<const ModelSnapshot> snapshot,
    const RollingUpdateOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("RollingUpdate: null snapshot");
  }
  if (options.max_attempts_per_shard == 0) {
    return Status::InvalidArgument("RollingUpdate: zero attempts per shard");
  }
  std::lock_guard<std::mutex> lock(update_mu_);
  RollingUpdateReport report;
  report.shard_stall_ms.reserve(servers_.size());
  report.shards.reserve(servers_.size());
  // Each shard's pre-rollout snapshot, captured so a rollback restores
  // exactly what that shard was serving (shards can disagree when a
  // previous rollout was aborted with rollback disabled).
  std::vector<std::shared_ptr<const ModelSnapshot>> prior(servers_.size());
  Rng jitter_rng(options.backoff_seed);

  size_t failed_shard = servers_.size();
  for (size_t s = 0; s < servers_.size() && failed_shard == servers_.size();
       ++s) {
    ShardRolloutReport shard_report;
    shard_report.shard = s;
    std::shared_ptr<ScoringServer> server = shard_ref(s);
    prior[s] = server->CurrentSnapshot();
    std::chrono::nanoseconds backoff = options.initial_backoff;
    for (size_t attempt = 1; attempt <= options.max_attempts_per_shard;
         ++attempt) {
      shard_report.attempts = attempt;
      ++report.total_attempts;
      // Take the shard out of rotation, then wait for what it already
      // admitted to finish scoring against the current snapshot. On a
      // 1-shard fleet the router keeps feeding the shard, so the barrier
      // only waits out the in-flight batches (per-batch isolation still
      // gives every request one consistent version).
      draining_[s].store(true, std::memory_order_release);
      WallTimer stall;
      Status attempted =
          server->Quiesce(options.drain_timeout,
                          /*require_empty_queue=*/servers_.size() > 1);
      if (attempted.ok()) {
        // Fault site: the swap itself fails (e.g. the shard rejects the
        // snapshot) — retried like a drain stall.
        if (FAULT_POINT_ARG("fleet.swap", s)) {
          attempted = Status::Unavailable(
              "RollingUpdate: snapshot swap failed (injected fault: "
              "fleet.swap)");
        } else {
          attempted = server->UpdateSnapshot(snapshot);
        }
      }
      // Between attempts (and on every exit path) the shard re-enters
      // rotation — a stalled rollout must never leave it routed around.
      draining_[s].store(false, std::memory_order_release);
      if (attempted.ok()) {
        shard_report.updated = true;
        shard_report.stall_ms = stall.ElapsedMillis();
        break;
      }
      shard_report.last_error = attempted.message();
      if (attempt == options.max_attempts_per_shard) {
        failed_shard = s;
        break;
      }
      // Exponential backoff with deterministic jitter: the shard serves
      // traffic while the backlog that stalled the barrier drains.
      double factor =
          1.0 + options.backoff_jitter * (2.0 * jitter_rng.Uniform() - 1.0);
      if (factor < 0.0) factor = 0.0;
      auto wait = std::chrono::nanoseconds(static_cast<int64_t>(
          static_cast<double>(backoff.count()) * factor));
      if (wait.count() > 0) std::this_thread::sleep_for(wait);
      backoff = std::chrono::nanoseconds(static_cast<int64_t>(
          static_cast<double>(backoff.count()) * options.backoff_multiplier));
    }
    if (shard_report.updated) {
      report.shard_stall_ms.push_back(shard_report.stall_ms);
      report.max_stall_ms =
          std::max(report.max_stall_ms, shard_report.stall_ms);
      ++report.shards_updated;
    }
    report.shards.push_back(std::move(shard_report));
  }

  if (failed_shard == servers_.size()) {
    rolling_updates_.fetch_add(1, std::memory_order_relaxed);
    return report;
  }

  report.failure = StrFormat(
      "RollingUpdate: shard %zu did not drain within the barrier timeout "
      "after %zu attempts (%zu of %zu shards already updated)",
      failed_shard, options.max_attempts_per_shard, report.shards_updated,
      servers_.size());
  if (!options.rollback_on_failure) {
    // Legacy abort: updated shards keep the new snapshot; the skew is
    // visible in FleetStats until a later rollout. The failed shard is
    // already back in rotation (reset above).
    rolling_updates_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded(report.failure);
  }

  // Rollback: restore already-updated shards to their prior snapshots in
  // reverse order through the same drain barrier, so each rolled-back
  // shard's admitted requests score one consistent version too. A shard
  // whose rollback barrier ALSO stalls is force-swapped without the
  // barrier — per-batch isolation keeps that safe (in-flight batches
  // finish on the snapshot they grabbed), and the fleet must converge to
  // zero skew no matter what.
  for (size_t i = report.shards.size(); i-- > 0;) {
    ShardRolloutReport& shard_report = report.shards[i];
    if (!shard_report.updated) continue;
    size_t s = shard_report.shard;
    std::shared_ptr<ScoringServer> server = shard_ref(s);
    draining_[s].store(true, std::memory_order_release);
    WallTimer stall;
    Status drained =
        server->Quiesce(options.drain_timeout,
                        /*require_empty_queue=*/servers_.size() > 1);
    (void)drained;  // forced swap below is safe either way
    Status swapped = server->UpdateSnapshot(prior[s]);
    draining_[s].store(false, std::memory_order_release);
    if (!swapped.ok()) {
      // UpdateSnapshot only fails on a null snapshot; prior[s] is not.
      return Status::Internal("RollingUpdate rollback: " + swapped.message());
    }
    shard_report.rolled_back = true;
    shard_report.rollback_stall_ms = stall.ElapsedMillis();
    report.rollback_stall_ms += shard_report.rollback_stall_ms;
  }
  report.state = RolloutState::kRolledBack;
  rolling_updates_.fetch_add(1, std::memory_order_relaxed);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  return report;
}

Status ScoringFleet::EjectShard(size_t s) {
  if (s >= servers_.size()) {
    return Status::OutOfRange(StrFormat("EjectShard: shard %zu of %zu", s,
                                        servers_.size()));
  }
  if (servers_.size() == 1) {
    return Status::FailedPrecondition(
        "EjectShard: cannot eject the only shard");
  }
  if (!ejected_[s].exchange(true, std::memory_order_acq_rel)) {
    ejections_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ScoringFleet::ReadmitShard(size_t s) {
  if (s >= servers_.size()) {
    return Status::OutOfRange(StrFormat("ReadmitShard: shard %zu of %zu", s,
                                        servers_.size()));
  }
  if (ejected_[s].exchange(false, std::memory_order_acq_rel)) {
    readmissions_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ScoringFleet::RestartShard(size_t s) {
  if (s >= servers_.size()) {
    return Status::OutOfRange(StrFormat("RestartShard: shard %zu of %zu", s,
                                        servers_.size()));
  }
  std::lock_guard<std::mutex> lock(restart_mu_);
  std::shared_ptr<ScoringServer> old = shard_ref(s);
  // The replacement inherits the old server's resolved options (pool,
  // fault tag) and whatever snapshot it was serving.
  Result<std::unique_ptr<ScoringServer>> fresh =
      ScoringServer::Create(old->CurrentSnapshot(), old->options());
  if (!fresh.ok()) return fresh.status();
  std::shared_ptr<ScoringServer> replacement = std::move(fresh).value();
  std::atomic_store(&servers_[s], replacement);
  // Stop the old server AFTER the swap: new traffic already routes to
  // the replacement while the old queue drains through the normal
  // scoring path (every admitted ticket completes). Blocks on in-flight
  // batches — a still-wedged batch holds the restart here.
  old->Stop();
  restarts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

FleetStatsView ScoringFleet::stats() const {
  FleetStatsView view;
  view.num_shards = servers_.size();
  view.queue_depths.reserve(servers_.size());
  view.shard_outlier_rates.reserve(servers_.size());
  view.shard_completed.reserve(servers_.size());
  view.shard_versions.reserve(servers_.size());
  view.shard_ejected.reserve(servers_.size());
  std::vector<uint64_t> merged_hist(ServerStats::kLatencyBuckets, 0);
  std::array<std::vector<uint64_t>, ServerStats::kServeStages> merged_stage;
  for (auto& h : merged_stage) h.assign(ServerStats::kLatencyBuckets, 0);
  uint64_t batched_weighted = 0;
  for (size_t i = 0; i < servers_.size(); ++i) {
    std::shared_ptr<ScoringServer> server = shard_ref(i);
    ServerStats::View s = server->stats();
    view.submitted += s.submitted;
    view.completed += s.completed;
    view.shed_admission += s.shed_admission;
    view.shed_deadline += s.shed_deadline;
    view.invalid += s.invalid;
    view.batches += s.batches;
    view.snapshot_swaps += s.snapshot_swaps;
    view.density_checked += s.density_checked;
    view.density_outliers += s.density_outliers;
    batched_weighted +=
        static_cast<uint64_t>(s.mean_batch_size * s.batches + 0.5);
    // In-process views always carry kLatencyBuckets buckets, but the
    // merge validates anyway (the same helper merges wire-deserialized
    // views, where the count is genuinely untrusted). A mismatched
    // histogram is skipped rather than misaligned.
    (void)ServerStats::MergeHistogramInto(&merged_hist, s.latency_hist);
    view.trace_sampled += s.trace_sampled;
    view.trace_append_failures += s.trace_append_failures;
    for (size_t st = 0; st < ServerStats::kServeStages; ++st) {
      (void)ServerStats::MergeHistogramInto(&merged_stage[st],
                                            s.stage_hist[st]);
    }
    view.queue_depths.push_back(server->queue_depth());
    view.shard_outlier_rates.push_back(
        s.density_checked == 0
            ? 0.0
            : static_cast<double>(s.density_outliers) /
                  static_cast<double>(s.density_checked));
    view.shard_completed.push_back(s.completed);
    view.shard_versions.push_back(server->CurrentSnapshot()->version());
    view.shard_ejected.push_back(ShardEjected(i) ? 1 : 0);
  }
  view.mean_batch_size =
      view.batches == 0 ? 0.0
                        : static_cast<double>(batched_weighted) /
                              static_cast<double>(view.batches);
  view.outlier_rate =
      view.density_checked == 0
          ? 0.0
          : static_cast<double>(view.density_outliers) /
                static_cast<double>(view.density_checked);
  // Fleet percentiles from the merged counts — averaging per-shard
  // percentiles would misweight unevenly loaded shards.
  view.p50_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.50);
  view.p95_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.95);
  view.p99_latency_us = ServerStats::PercentileUsFromHist(merged_hist, 0.99);
  for (size_t st = 0; st < ServerStats::kServeStages; ++st) {
    view.stage_p99_us[st] =
        ServerStats::PercentileUsFromHist(merged_stage[st], 0.99);
  }
  view.min_snapshot_version = view.shard_versions.empty()
                                  ? 0
                                  : *std::min_element(
                                        view.shard_versions.begin(),
                                        view.shard_versions.end());
  view.max_snapshot_version = view.shard_versions.empty()
                                  ? 0
                                  : *std::max_element(
                                        view.shard_versions.begin(),
                                        view.shard_versions.end());
  view.rolling_updates = rolling_updates_.load(std::memory_order_relaxed);
  view.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  view.ejections = ejections_.load(std::memory_order_relaxed);
  view.restarts = restarts_.load(std::memory_order_relaxed);
  view.readmissions = readmissions_.load(std::memory_order_relaxed);
  if (auditor_ != nullptr) view.audit = auditor_->view();
  return view;
}

}  // namespace fairdrift
