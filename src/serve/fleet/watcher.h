// SnapshotWatcher: hot-reload of snapshot files saved by other processes.
//
// The operational loop the watcher closes: a training process Fits,
// Freezes, and SaveSnapshot()s to a path; the serving process watches
// that path and pushes every new file through its fleet without a
// restart. Detection is cheap, torn-read-proof, and content-based:
//
//   1. stat(2) every poll_interval — only to stay silent while the file
//      does not exist yet (the training job may not have written it).
//   2. ProbeSnapshotFile reads the fixed header + trailing checksum
//      (one open, two small reads). The file's identity is its
//      (size, checksum) pair — never its mtime, whose granularity on
//      some filesystems is a full second: two saves inside one tick
//      with equal sizes would look identical to an mtime short-circuit
//      and the second snapshot would silently never deploy.
//   3. On an identity change, LoadSnapshot parses and verifies the whole
//      file, and the watcher hands the fresh snapshot to its callback
//      (typically ScoringFleet::RollingUpdate).
//
// SaveSnapshot writes atomically (tmp + rename), so the watcher never
// observes a half-written file; if a non-atomic writer hands it garbage
// anyway, LoadSnapshot's checksum rejects it and the error lands in
// stats().last_error.
//
// Failure handling:
//   - QUARANTINE: an identity (size, checksum) that fails to load
//     quarantine_after times is never loaded again — the same bytes
//     deterministically fail the same way, so retrying forever only
//     burns I/O and log noise. One warning is logged; the watcher keeps
//     serving the old snapshot and a subsequent GOOD save (different
//     identity) still hot-reloads normally.
//   - BACKOFF: repeated probe/stat errors stretch the poll interval
//     (exponential, capped) so a persistently unreadable path does not
//     busy-poll; one clean probe snaps the interval back.
//   - PARTIAL LOADS: with load_mode = kAllowPartial, a snapshot whose
//     optional monitor tail is corrupt still deploys, serving with
//     density monitoring disabled (stats().degraded_loads counts these,
//     last_degraded_note says why).

#ifndef FAIRDRIFT_SERVE_FLEET_WATCHER_H_
#define FAIRDRIFT_SERVE_FLEET_WATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "serve/snapshot.h"
#include "serve/snapshot_io.h"
#include "util/status.h"

namespace fairdrift {

/// Watcher configuration.
struct SnapshotWatcherOptions {
  /// How often the file is stat()ed.
  std::chrono::milliseconds poll_interval{200};
  /// The identity of the snapshot the caller already loaded and serves
  /// (from ProbeSnapshotFile, taken consistently with that load). When
  /// set, it is the watcher's baseline — a file that changed between
  /// the caller's load and Start still fires. When unset, whatever file
  /// is on disk at Start becomes the baseline without firing.
  std::optional<SnapshotFileSignature> baseline;
  /// Failed loads of ONE file identity before that identity is
  /// quarantined (never retried; logged once). 0 disables quarantine.
  size_t quarantine_after = 3;
  /// How LoadSnapshot treats a damaged optional monitor section —
  /// kAllowPartial deploys such snapshots degraded instead of counting
  /// them as failed loads.
  SnapshotLoadMode load_mode = SnapshotLoadMode::kStrict;
  /// Consecutive probe/stat errors before the poll interval starts
  /// backing off exponentially.
  size_t backoff_after = 3;
  /// Backoff growth per additional failed poll, capped at max_backoff.
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{5000};
};

/// Background poller that loads a snapshot path on change.
class SnapshotWatcher {
 public:
  /// Invoked (on the watcher thread) with each successfully loaded new
  /// snapshot. Keep it quick or hand off; polling pauses while it runs —
  /// which is exactly right for RollingUpdate, where a second file
  /// change should queue behind the in-progress rollout.
  using Callback = std::function<void(std::shared_ptr<const ModelSnapshot>)>;

  /// Starts watching `path`. A file already present at start becomes the
  /// baseline and does NOT fire the callback (the caller typically just
  /// loaded it); the file may also not exist yet — its first appearance
  /// fires. The watcher thread is running when Start returns.
  static Result<std::unique_ptr<SnapshotWatcher>> Start(
      std::string path, Callback on_load,
      const SnapshotWatcherOptions& options = {});

  /// Stops and joins the watcher thread (idempotent).
  ~SnapshotWatcher();
  void Stop();

  SnapshotWatcher(const SnapshotWatcher&) = delete;
  SnapshotWatcher& operator=(const SnapshotWatcher&) = delete;

  /// Observable watcher state.
  struct View {
    uint64_t polls = 0;          ///< poll sweeps performed
    uint64_t reloads = 0;        ///< snapshots loaded and delivered
    uint64_t failed_loads = 0;   ///< probe/load attempts that errored
    std::string last_error;      ///< most recent failure ("" when none)
    /// File identities quarantined after repeated load failures.
    uint64_t quarantined_identities = 0;
    /// Polls that ran on a backed-off (stretched) interval.
    uint64_t backoff_polls = 0;
    /// Snapshots delivered degraded under kAllowPartial.
    uint64_t degraded_loads = 0;
    /// Why the most recent degraded load degraded ("" when none).
    std::string last_degraded_note;
  };
  View stats() const;

  const std::string& path() const { return path_; }

 private:
  SnapshotWatcher(std::string path, Callback on_load,
                  const SnapshotWatcherOptions& options);

  void WatchLoop();
  /// One poll step; returns true when the file changed and loaded.
  bool PollOnce();
  /// Failed poll: records the error and stretches current_wait_.
  void RecordPollError(const Status& error);
  /// Clean poll: resets the error streak and current_wait_.
  void RecordPollClean();

  std::string path_;
  Callback on_load_;
  SnapshotWatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  View view_;

  // Last-seen file identity (watcher thread only): (size, checksum) of
  // the snapshot last delivered or adopted. Deliberately no mtime.
  bool have_baseline_ = false;
  uint64_t seen_size_ = 0;
  uint64_t seen_checksum_ = 0;

  // Quarantine bookkeeping (watcher thread only), keyed by identity.
  std::map<std::pair<uint64_t, uint64_t>, size_t> identity_failures_;
  std::set<std::pair<uint64_t, uint64_t>> quarantined_;

  // Poll backoff (current_wait_ read by the loop under mu_).
  size_t consecutive_poll_errors_ = 0;
  std::chrono::milliseconds current_wait_{0};

  std::thread thread_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_FLEET_WATCHER_H_
