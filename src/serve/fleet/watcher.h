// SnapshotWatcher: hot-reload of snapshot files saved by other processes.
//
// The operational loop the watcher closes: a training process Fits,
// Freezes, and SaveSnapshot()s to a path; the serving process watches
// that path and pushes every new file through its fleet without a
// restart. Detection is cheap, torn-read-proof, and content-based:
//
//   1. stat(2) every poll_interval — only to stay silent while the file
//      does not exist yet (the training job may not have written it).
//   2. ProbeSnapshotFile reads the fixed header + trailing checksum
//      (one open, two small reads). The file's identity is its
//      (size, checksum) pair — never its mtime, whose granularity on
//      some filesystems is a full second: two saves inside one tick
//      with equal sizes would look identical to an mtime short-circuit
//      and the second snapshot would silently never deploy.
//   3. On an identity change, LoadSnapshot parses and verifies the whole
//      file, and the watcher hands the fresh snapshot to its callback
//      (typically ScoringFleet::RollingUpdate).
//
// SaveSnapshot writes atomically (tmp + rename), so the watcher never
// observes a half-written file; if a non-atomic writer hands it garbage
// anyway, LoadSnapshot's checksum rejects it, the error lands in
// stats().last_error, and the watcher simply retries next poll.

#ifndef FAIRDRIFT_SERVE_FLEET_WATCHER_H_
#define FAIRDRIFT_SERVE_FLEET_WATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "serve/snapshot.h"
#include "serve/snapshot_io.h"
#include "util/status.h"

namespace fairdrift {

/// Watcher configuration.
struct SnapshotWatcherOptions {
  /// How often the file is stat()ed.
  std::chrono::milliseconds poll_interval{200};
  /// The identity of the snapshot the caller already loaded and serves
  /// (from ProbeSnapshotFile, taken consistently with that load). When
  /// set, it is the watcher's baseline — a file that changed between
  /// the caller's load and Start still fires. When unset, whatever file
  /// is on disk at Start becomes the baseline without firing.
  std::optional<SnapshotFileSignature> baseline;
};

/// Background poller that loads a snapshot path on change.
class SnapshotWatcher {
 public:
  /// Invoked (on the watcher thread) with each successfully loaded new
  /// snapshot. Keep it quick or hand off; polling pauses while it runs —
  /// which is exactly right for RollingUpdate, where a second file
  /// change should queue behind the in-progress rollout.
  using Callback = std::function<void(std::shared_ptr<const ModelSnapshot>)>;

  /// Starts watching `path`. A file already present at start becomes the
  /// baseline and does NOT fire the callback (the caller typically just
  /// loaded it); the file may also not exist yet — its first appearance
  /// fires. The watcher thread is running when Start returns.
  static Result<std::unique_ptr<SnapshotWatcher>> Start(
      std::string path, Callback on_load,
      const SnapshotWatcherOptions& options = {});

  /// Stops and joins the watcher thread (idempotent).
  ~SnapshotWatcher();
  void Stop();

  SnapshotWatcher(const SnapshotWatcher&) = delete;
  SnapshotWatcher& operator=(const SnapshotWatcher&) = delete;

  /// Observable watcher state.
  struct View {
    uint64_t polls = 0;          ///< poll sweeps performed
    uint64_t reloads = 0;        ///< snapshots loaded and delivered
    uint64_t failed_loads = 0;   ///< probe/load attempts that errored
    std::string last_error;      ///< most recent failure ("" when none)
  };
  View stats() const;

  const std::string& path() const { return path_; }

 private:
  SnapshotWatcher(std::string path, Callback on_load,
                  const SnapshotWatcherOptions& options);

  void WatchLoop();
  /// One poll step; returns true when the file changed and loaded.
  bool PollOnce();

  std::string path_;
  Callback on_load_;
  SnapshotWatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  View view_;

  // Last-seen file identity (watcher thread only): (size, checksum) of
  // the snapshot last delivered or adopted. Deliberately no mtime.
  bool have_baseline_ = false;
  uint64_t seen_size_ = 0;
  uint64_t seen_checksum_ = 0;

  std::thread thread_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_FLEET_WATCHER_H_
