#include "serve/fleet/health.h"

#include "serve/server_stats.h"

namespace fairdrift {

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kDead:
      return "dead";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "?";
}

ShardHealthFsm::Verdict ShardHealthFsm::Observe(bool stalled,
                                                bool degraded_hint,
                                                bool ejected,
                                                const Limits& limits) {
  Verdict verdict;
  if (ejected) {
    if (health_ != ShardHealth::kDead &&
        health_ != ShardHealth::kRecovering) {
      // Ejected out-of-band (operator); shepherd it back like one of
      // our own restarts.
      health_ = ShardHealth::kRecovering;
      healthy_probes_ = 0;
    }
    // A kDead shard stays dead until a restart flips it to kRecovering;
    // only kRecovering accumulates probes toward readmission.
    if (health_ == ShardHealth::kRecovering) {
      if (stalled) {
        healthy_probes_ = 0;
      } else if (++healthy_probes_ >= limits.readmit_after_healthy_probes) {
        verdict.readmit = true;
        health_ = ShardHealth::kHealthy;
        stalled_probes_ = 0;
        healthy_probes_ = 0;
      }
    }
    verdict.health = health_;
    return verdict;
  }

  if (stalled) {
    ++stalled_probes_;
    healthy_probes_ = 0;
    if (stalled_probes_ >= limits.dead_after_stalled_probes) {
      health_ = ShardHealth::kDead;
      stalled_probes_ = 0;
      verdict.eject = true;
    } else {
      health_ = ShardHealth::kDegraded;
    }
    verdict.health = health_;
    return verdict;
  }

  stalled_probes_ = 0;
  health_ = degraded_hint ? ShardHealth::kDegraded : ShardHealth::kHealthy;
  verdict.health = health_;
  return verdict;
}

void ShardHealthFsm::NoteRestarted() {
  health_ = ShardHealth::kRecovering;
  healthy_probes_ = 0;
}

HealthMonitor::~HealthMonitor() { Stop(); }

Status HealthMonitor::Start(ScoringFleet* fleet,
                            const HealthMonitorOptions& options) {
  if (fleet == nullptr) {
    return Status::InvalidArgument("HealthMonitor: null fleet");
  }
  if (options.dead_after_stalled_probes == 0 ||
      options.readmit_after_healthy_probes == 0) {
    return Status::InvalidArgument(
        "HealthMonitor: probe thresholds must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("HealthMonitor: already running");
  }
  fleet_ = fleet;
  options_ = options;
  probes_ = ejections_ = restarts_ = readmissions_ = 0;
  shards_.assign(fleet->num_shards(), ShardState{});
  // Seed the progress counters so the first probe measures advancement
  // from now, not from zero.
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].last_completed = fleet->shard_ref(s)->stats().completed;
  }
  stop_requested_ = false;
  running_ = true;
  probe_thread_ = std::thread([this] { ProbeLoop(); });
  return Status::OK();
}

void HealthMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void HealthMonitor::ProbeLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, options_.probe_interval,
                          [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    ProbeOnce();
    lock.lock();
  }
}

void HealthMonitor::ProbeOnce() {
  ShardHealthFsm::Limits limits;
  limits.dead_after_stalled_probes = options_.dead_after_stalled_probes;
  limits.readmit_after_healthy_probes = options_.readmit_after_healthy_probes;
  std::vector<size_t> to_restart;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      ShardState& state = shards_[s];
      std::shared_ptr<ScoringServer> server = fleet_->shard_ref(s);
      ServerStats::View sv = server->stats();
      size_t queued = server->queue_depth();
      size_t inflight = server->inflight_batches();
      bool progressed = sv.completed != state.last_completed;
      // Stalled = pending work with no dispatcher progress since the
      // last probe. An idle shard is healthy by definition.
      bool pending = queued > 0 || inflight > 0;
      bool stalled = pending && !progressed;
      state.last_completed = sv.completed;

      bool over_depth = options_.degraded_queue_depth > 0 &&
                        queued > options_.degraded_queue_depth;
      bool over_latency =
          options_.degraded_ewma_latency_ms > 0.0 &&
          sv.ewma_batch_latency_us / 1000.0 > options_.degraded_ewma_latency_ms;
      ShardHealthFsm::Verdict verdict = state.fsm.Observe(
          stalled, over_depth || over_latency, fleet_->ShardEjected(s),
          limits);
      if (verdict.readmit) {
        if (fleet_->ReadmitShard(s).ok()) ++readmissions_;
      }
      if (verdict.eject) {
        // EjectShard refuses on a 1-shard fleet — there is nowhere to
        // send the traffic; the shard stays kDead but routed.
        if (fleet_->EjectShard(s).ok()) {
          ++ejections_;
          if (options_.auto_restart) to_restart.push_back(s);
        }
      }
    }
    ++probes_;
  }
  // Restarts run outside the lock: RestartShard blocks until the shard's
  // wedged batch releases, and stats()/Stop() must stay responsive while
  // it does.
  for (size_t s : to_restart) {
    if (fleet_->RestartShard(s).ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++restarts_;
      shards_[s].fsm.NoteRestarted();
    }
  }
}

HealthMonitor::View HealthMonitor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  View view;
  view.probes = probes_;
  view.ejections = ejections_;
  view.restarts = restarts_;
  view.readmissions = readmissions_;
  view.shard_health.reserve(shards_.size());
  for (const ShardState& s : shards_) {
    view.shard_health.push_back(s.fsm.health());
  }
  return view;
}

}  // namespace fairdrift
