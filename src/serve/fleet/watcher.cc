#include "serve/fleet/watcher.h"

#include <sys/stat.h>

#include <utility>

#include "serve/snapshot_io.h"

namespace fairdrift {

namespace {

/// stat() the file; returns false when it does not exist (not an error —
/// the training job may not have written it yet).
bool StatFile(const std::string& path, int64_t* mtime_ns, uint64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  *mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
              static_cast<int64_t>(st.st_mtim.tv_nsec);
  *size = static_cast<uint64_t>(st.st_size);
  return true;
}

}  // namespace

Result<std::unique_ptr<SnapshotWatcher>> SnapshotWatcher::Start(
    std::string path, Callback on_load,
    const SnapshotWatcherOptions& options) {
  if (path.empty()) {
    return Status::InvalidArgument("SnapshotWatcher: empty path");
  }
  if (on_load == nullptr) {
    return Status::InvalidArgument("SnapshotWatcher: null callback");
  }
  std::unique_ptr<SnapshotWatcher> watcher(
      new SnapshotWatcher(std::move(path), std::move(on_load), options));
  if (options.baseline.has_value()) {
    // The caller supplied the identity of the snapshot it actually
    // loaded. Seed only the checksum: the first poll re-stats the file,
    // probes it, and fires iff the bytes differ from what the caller
    // serves — a save that landed between the caller's load and Start
    // is therefore delivered, not silently adopted.
    watcher->have_baseline_ = true;
    watcher->seen_checksum_ = options.baseline->checksum;
    watcher->seen_mtime_ns_ = -1;  // force a probe on the first poll
    watcher->seen_size_ = 0;
  } else {
    // Baseline: a file already on disk is what the caller is serving —
    // remember its identity so only a *new* file fires. The stat and
    // the checksum probe must describe the SAME file generation: if a
    // save renames a new file in between, pairing the old stat with the
    // new checksum would mark the unseen snapshot as already delivered.
    // Stat again after the probe and retry until the pair is consistent.
    for (int attempt = 0; attempt < 4; ++attempt) {
      int64_t mtime_ns = 0;
      uint64_t size = 0;
      if (!StatFile(watcher->path_, &mtime_ns, &size)) break;
      Result<SnapshotFileSignature> sig = ProbeSnapshotFile(watcher->path_);
      if (!sig.ok()) break;
      int64_t mtime_after = 0;
      uint64_t size_after = 0;
      if (StatFile(watcher->path_, &mtime_after, &size_after) &&
          mtime_after == mtime_ns && size_after == size) {
        watcher->have_baseline_ = true;
        watcher->seen_mtime_ns_ = mtime_ns;
        watcher->seen_size_ = size;
        watcher->seen_checksum_ = sig.value().checksum;
        break;
      }
    }
  }
  watcher->thread_ = std::thread([w = watcher.get()] { w->WatchLoop(); });
  return watcher;
}

SnapshotWatcher::SnapshotWatcher(std::string path, Callback on_load,
                                 const SnapshotWatcherOptions& options)
    : path_(std::move(path)),
      on_load_(std::move(on_load)),
      options_(options) {}

SnapshotWatcher::~SnapshotWatcher() { Stop(); }

void SnapshotWatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

SnapshotWatcher::View SnapshotWatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

void SnapshotWatcher::WatchLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_cv_.wait_for(lock, options_.poll_interval,
                        [this] { return stopping_; });
      if (stopping_) return;
      ++view_.polls;
    }
    PollOnce();
  }
}

bool SnapshotWatcher::PollOnce() {
  int64_t mtime_ns = 0;
  uint64_t size = 0;
  if (!StatFile(path_, &mtime_ns, &size)) return false;  // not written yet
  if (have_baseline_ && mtime_ns == seen_mtime_ns_ && size == seen_size_) {
    return false;  // steady state: one stat(), nothing else
  }
  Result<SnapshotFileSignature> sig = ProbeSnapshotFile(path_);
  if (!sig.ok()) {
    // Torn by a non-atomic writer, or not a snapshot (yet). Record and
    // retry next poll without advancing the baseline.
    std::lock_guard<std::mutex> lock(mu_);
    ++view_.failed_loads;
    view_.last_error = sig.status().ToString();
    return false;
  }
  if (have_baseline_ && sig.value().checksum == seen_checksum_) {
    // Same bytes, new stat identity (e.g. re-saved verbatim): update the
    // baseline, skip the reload.
    seen_mtime_ns_ = mtime_ns;
    seen_size_ = size;
    return false;
  }
  Result<std::shared_ptr<const ModelSnapshot>> snapshot = LoadSnapshot(path_);
  if (!snapshot.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++view_.failed_loads;
    view_.last_error = snapshot.status().ToString();
    return false;
  }
  have_baseline_ = true;
  seen_mtime_ns_ = mtime_ns;
  seen_size_ = size;
  seen_checksum_ = sig.value().checksum;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++view_.reloads;
    view_.last_error.clear();
  }
  on_load_(std::move(snapshot).value());
  return true;
}

}  // namespace fairdrift
