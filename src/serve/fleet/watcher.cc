#include "serve/fleet/watcher.h"

#include <sys/stat.h>

#include <utility>

#include "serve/snapshot_io.h"

namespace fairdrift {

namespace {

/// stat() the file; returns false when it does not exist (not an error —
/// the training job may not have written it yet). Existence is the only
/// fact taken from stat: identity is (size, checksum) from the probe,
/// never mtime — filesystem timestamp granularity can be a full second,
/// which would make two rapid equal-size saves indistinguishable.
bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Result<std::unique_ptr<SnapshotWatcher>> SnapshotWatcher::Start(
    std::string path, Callback on_load,
    const SnapshotWatcherOptions& options) {
  if (path.empty()) {
    return Status::InvalidArgument("SnapshotWatcher: empty path");
  }
  if (on_load == nullptr) {
    return Status::InvalidArgument("SnapshotWatcher: null callback");
  }
  std::unique_ptr<SnapshotWatcher> watcher(
      new SnapshotWatcher(std::move(path), std::move(on_load), options));
  if (options.baseline.has_value()) {
    // The caller supplied the identity of the snapshot it actually
    // loaded; the first poll probes the file and fires iff the bytes
    // differ from what the caller serves — a save that landed between
    // the caller's load and Start is therefore delivered, not silently
    // adopted.
    watcher->have_baseline_ = true;
    watcher->seen_size_ = options.baseline->file_size;
    watcher->seen_checksum_ = options.baseline->checksum;
  } else {
    // Baseline: a file already on disk is what the caller is serving —
    // remember its identity so only a *new* file fires. One probe
    // suffices: it reads header and trailing checksum through a single
    // open descriptor, so a concurrent atomic save (rename) cannot mix
    // two file generations into one signature.
    Result<SnapshotFileSignature> sig = ProbeSnapshotFile(watcher->path_);
    if (sig.ok()) {
      watcher->have_baseline_ = true;
      watcher->seen_size_ = sig.value().file_size;
      watcher->seen_checksum_ = sig.value().checksum;
    }
  }
  watcher->thread_ = std::thread([w = watcher.get()] { w->WatchLoop(); });
  return watcher;
}

SnapshotWatcher::SnapshotWatcher(std::string path, Callback on_load,
                                 const SnapshotWatcherOptions& options)
    : path_(std::move(path)),
      on_load_(std::move(on_load)),
      options_(options) {}

SnapshotWatcher::~SnapshotWatcher() { Stop(); }

void SnapshotWatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

SnapshotWatcher::View SnapshotWatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

void SnapshotWatcher::WatchLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_cv_.wait_for(lock, options_.poll_interval,
                        [this] { return stopping_; });
      if (stopping_) return;
      ++view_.polls;
    }
    PollOnce();
  }
}

bool SnapshotWatcher::PollOnce() {
  if (!FileExists(path_)) return false;  // not written yet
  // Probe every poll. The steady-state cost is one open + two small
  // reads instead of a bare stat — the price of a correct identity:
  // comparing (mtime, size) here used to miss a save that landed within
  // the filesystem's timestamp granularity of the previous one with the
  // same byte count, leaving the newest snapshot undeployed until an
  // unrelated change. (size, checksum) identity has no such window.
  Result<SnapshotFileSignature> sig = ProbeSnapshotFile(path_);
  if (!sig.ok()) {
    // Torn by a non-atomic writer, or not a snapshot (yet). Record and
    // retry next poll without advancing the baseline.
    std::lock_guard<std::mutex> lock(mu_);
    ++view_.failed_loads;
    view_.last_error = sig.status().ToString();
    return false;
  }
  if (have_baseline_ && sig.value().file_size == seen_size_ &&
      sig.value().checksum == seen_checksum_) {
    return false;  // steady state: same bytes as what the caller serves
  }
  Result<std::shared_ptr<const ModelSnapshot>> snapshot = LoadSnapshot(path_);
  if (!snapshot.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++view_.failed_loads;
    view_.last_error = snapshot.status().ToString();
    return false;
  }
  have_baseline_ = true;
  seen_size_ = sig.value().file_size;
  seen_checksum_ = sig.value().checksum;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++view_.reloads;
    view_.last_error.clear();
  }
  on_load_(std::move(snapshot).value());
  return true;
}

}  // namespace fairdrift
