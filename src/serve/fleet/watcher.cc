#include "serve/fleet/watcher.h"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "serve/snapshot_io.h"
#include "util/fault.h"
#include "util/logging.h"

namespace fairdrift {

namespace {

/// stat() the file; returns false when it does not exist (not an error —
/// the training job may not have written it yet). Existence is the only
/// fact taken from stat: identity is (size, checksum) from the probe,
/// never mtime — filesystem timestamp granularity can be a full second,
/// which would make two rapid equal-size saves indistinguishable.
bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Result<std::unique_ptr<SnapshotWatcher>> SnapshotWatcher::Start(
    std::string path, Callback on_load,
    const SnapshotWatcherOptions& options) {
  if (path.empty()) {
    return Status::InvalidArgument("SnapshotWatcher: empty path");
  }
  if (on_load == nullptr) {
    return Status::InvalidArgument("SnapshotWatcher: null callback");
  }
  std::unique_ptr<SnapshotWatcher> watcher(
      new SnapshotWatcher(std::move(path), std::move(on_load), options));
  if (options.baseline.has_value()) {
    // The caller supplied the identity of the snapshot it actually
    // loaded; the first poll probes the file and fires iff the bytes
    // differ from what the caller serves — a save that landed between
    // the caller's load and Start is therefore delivered, not silently
    // adopted.
    watcher->have_baseline_ = true;
    watcher->seen_size_ = options.baseline->file_size;
    watcher->seen_checksum_ = options.baseline->checksum;
  } else {
    // Baseline: a file already on disk is what the caller is serving —
    // remember its identity so only a *new* file fires. One probe
    // suffices: it reads header and trailing checksum through a single
    // open descriptor, so a concurrent atomic save (rename) cannot mix
    // two file generations into one signature.
    Result<SnapshotFileSignature> sig = ProbeSnapshotFile(watcher->path_);
    if (sig.ok()) {
      watcher->have_baseline_ = true;
      watcher->seen_size_ = sig.value().file_size;
      watcher->seen_checksum_ = sig.value().checksum;
    }
  }
  watcher->thread_ = std::thread([w = watcher.get()] { w->WatchLoop(); });
  return watcher;
}

SnapshotWatcher::SnapshotWatcher(std::string path, Callback on_load,
                                 const SnapshotWatcherOptions& options)
    : path_(std::move(path)),
      on_load_(std::move(on_load)),
      options_(options),
      current_wait_(options.poll_interval) {}

SnapshotWatcher::~SnapshotWatcher() { Stop(); }

void SnapshotWatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

SnapshotWatcher::View SnapshotWatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

void SnapshotWatcher::WatchLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // current_wait_ stretches under repeated poll errors (PollOnce) and
      // snaps back to poll_interval on the first clean poll.
      std::chrono::milliseconds wait = current_wait_;
      stop_cv_.wait_for(lock, wait, [this] { return stopping_; });
      if (stopping_) return;
      ++view_.polls;
      if (wait > options_.poll_interval) ++view_.backoff_polls;
    }
    PollOnce();
  }
}

void SnapshotWatcher::RecordPollError(const Status& error) {
  std::lock_guard<std::mutex> lock(mu_);
  ++view_.failed_loads;
  view_.last_error = error.ToString();
  ++consecutive_poll_errors_;
  if (consecutive_poll_errors_ >= options_.backoff_after &&
      options_.backoff_multiplier > 1.0) {
    auto stretched = std::chrono::milliseconds(static_cast<int64_t>(
        static_cast<double>(
            std::max(current_wait_, options_.poll_interval).count()) *
        options_.backoff_multiplier));
    current_wait_ = std::min(stretched, options_.max_backoff);
  }
}

void SnapshotWatcher::RecordPollClean() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_poll_errors_ = 0;
  current_wait_ = options_.poll_interval;
}

bool SnapshotWatcher::PollOnce() {
  if (!FileExists(path_)) {
    // Not written yet — not an error; keep polling at the base interval.
    RecordPollClean();
    return false;
  }
  // Probe every poll. The steady-state cost is one open + two small
  // reads instead of a bare stat — the price of a correct identity:
  // comparing (mtime, size) here used to miss a save that landed within
  // the filesystem's timestamp granularity of the previous one with the
  // same byte count, leaving the newest snapshot undeployed until an
  // unrelated change. (size, checksum) identity has no such window.
  Result<SnapshotFileSignature> sig = ProbeSnapshotFile(path_);
  if (!sig.ok()) {
    // Torn by a non-atomic writer, or not a snapshot (yet). Record and
    // retry next poll without advancing the baseline; repeated errors
    // stretch the poll interval.
    RecordPollError(sig.status());
    return false;
  }
  RecordPollClean();
  const std::pair<uint64_t, uint64_t> identity(sig.value().file_size,
                                               sig.value().checksum);
  if (have_baseline_ && identity.first == seen_size_ &&
      identity.second == seen_checksum_) {
    return false;  // steady state: same bytes as what the caller serves
  }
  if (quarantined_.count(identity) != 0) {
    // These exact bytes already failed quarantine_after loads; the same
    // bytes fail the same way, so never try them again. The warning was
    // logged when the identity was quarantined.
    return false;
  }
  SnapshotLoadReport report;
  Result<std::shared_ptr<const ModelSnapshot>> snapshot =
      LoadSnapshot(path_, options_.load_mode, &report);
  // Fault site: the verified load fails even though the probe passed
  // (e.g. a section-level corruption) — feeds the quarantine counter.
  if (snapshot.ok() && FAULT_POINT("watcher.load")) {
    snapshot = Status::DataLoss(
        "'" + path_ + "' failed its integrity check (injected fault: "
        "watcher.load)");
  }
  if (!snapshot.ok()) {
    size_t failures = options_.quarantine_after == 0
                          ? 0
                          : ++identity_failures_[identity];
    bool quarantine_now = options_.quarantine_after != 0 &&
                          failures >= options_.quarantine_after;
    if (quarantine_now) {
      quarantined_.insert(identity);
      identity_failures_.erase(identity);
      FD_LOG_WARN << "SnapshotWatcher: quarantined snapshot identity (size="
                  << identity.first << ", checksum=" << identity.second
                  << ") at '" << path_ << "' after " << failures
                  << " failed loads; still serving the previous snapshot. "
                  << snapshot.status().ToString();
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++view_.failed_loads;
    view_.last_error = snapshot.status().ToString();
    if (quarantine_now) {
      view_.quarantined_identities = quarantined_.size();
    }
    return false;
  }
  identity_failures_.erase(identity);
  have_baseline_ = true;
  seen_size_ = identity.first;
  seen_checksum_ = identity.second;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++view_.reloads;
    view_.last_error.clear();
    if (report.outcome == SnapshotLoadReport::Outcome::kDegraded) {
      ++view_.degraded_loads;
      view_.last_degraded_note = report.degraded_note;
    }
  }
  on_load_(std::move(snapshot).value());
  return true;
}

}  // namespace fairdrift
