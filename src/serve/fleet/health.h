// HealthMonitor: shard heartbeat, ejection, restart, and readmission.
//
// A wedged batch worker is invisible to the router: the shard's queue
// stays open, requests keep landing on it, and every one of them stalls
// behind the stuck batch. The monitor turns "wedged" into an observable,
// recoverable state:
//
//   kHealthy --stalled probe--> kDegraded --K stalled probes--> kDead
//      ^                                                          |
//      |                                    eject from routing,   |
//      |                                    restart with current  |
//      +-- K healthy probes <-- kRecovering <-- snapshot ---------+
//
// The heartbeat is the dispatcher's progress counter (ServerStats
// completed) crossed with pending work: a shard with queued requests or
// in-flight batches whose completed count is not advancing is STALLED.
// An idle shard (nothing pending) is healthy by definition — no traffic
// is not a fault. Optional queue-depth / EWMA-latency thresholds mark a
// slow-but-alive shard kDegraded without ejecting it.
//
// Ejection reroutes new traffic (ScoringFleet::EjectShard — the hash
// policy rendezvous-reassigns the shard's keys deterministically);
// requests already queued on the shard stay queued behind the wedge and
// complete when it releases. Restart (ScoringFleet::RestartShard) swaps
// in a fresh server with the shard's current snapshot, then drains the
// old one — so a restart blocks until the wedged batch actually
// releases; the probe thread rides that out while survivors serve.
// After K consecutive healthy probes the shard is readmitted.

#ifndef FAIRDRIFT_SERVE_FLEET_HEALTH_H_
#define FAIRDRIFT_SERVE_FLEET_HEALTH_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/fleet/fleet.h"
#include "util/status.h"

namespace fairdrift {

/// Monitor verdict for one shard.
enum class ShardHealth : uint8_t {
  kHealthy = 0,
  /// Stalled or over a degradation threshold, not yet ejected.
  kDegraded = 1,
  /// Stalled for dead_after_stalled_probes consecutive probes; ejected.
  kDead = 2,
  /// Restarted (or awaiting restart) and accumulating healthy probes
  /// toward readmission.
  kRecovering = 3,
};

const char* ShardHealthName(ShardHealth health);

/// The per-shard transition core of the health state machine, factored
/// out of HealthMonitor so the network tier's remote prober
/// (serve/net/remote_fleet.h) runs the exact same
/// healthy -> degraded -> dead -> eject -> recovering -> readmit
/// lifecycle over probe RPCs that the in-process monitor runs over
/// shared-memory counters. Pure state: the caller performs the eject /
/// readmit / restart side effects its verdicts call for.
class ShardHealthFsm {
 public:
  struct Limits {
    /// Consecutive stalled probes before kDead (the first already marks
    /// kDegraded).
    size_t dead_after_stalled_probes = 3;
    /// Consecutive healthy probes an ejected shard needs to readmit.
    size_t readmit_after_healthy_probes = 3;
  };

  /// What one observation asks the caller to do.
  struct Verdict {
    ShardHealth health = ShardHealth::kHealthy;
    /// The shard just crossed into kDead: remove it from routing.
    bool eject = false;
    /// Recovery threshold met: return the shard to routing.
    bool readmit = false;
  };

  /// Folds one probe. `stalled` = pending work with no progress since
  /// the last probe (for a remote shard: also an unreachable or failed
  /// probe RPC). `degraded_hint` = slow-but-alive thresholds tripped.
  /// `ejected` = the shard is currently out of routing (by this
  /// monitor's verdict or out-of-band, e.g. an operator).
  Verdict Observe(bool stalled, bool degraded_hint, bool ejected,
                  const Limits& limits);

  /// The shard was rebuilt in place; accumulate recovery probes anew.
  void NoteRestarted();

  ShardHealth health() const { return health_; }

 private:
  ShardHealth health_ = ShardHealth::kHealthy;
  size_t stalled_probes_ = 0;
  size_t healthy_probes_ = 0;
};

struct HealthMonitorOptions {
  /// Time between probe sweeps over the shards.
  std::chrono::nanoseconds probe_interval = std::chrono::milliseconds(25);
  /// Consecutive stalled probes before a shard is declared kDead and
  /// ejected. The first stalled probe already marks it kDegraded.
  size_t dead_after_stalled_probes = 3;
  /// Consecutive healthy probes an ejected shard needs to be readmitted.
  size_t readmit_after_healthy_probes = 3;
  /// Restart a dead shard (fresh server, current snapshot) right after
  /// ejecting it. The restart blocks the probe thread until the shard's
  /// in-flight batches release; survivors keep serving meanwhile. When
  /// false the shard stays ejected (kDead) until an operator restarts
  /// or readmits it.
  bool auto_restart = true;
  /// When > 0: a queue depth above this marks the shard kDegraded even
  /// while it is making progress.
  size_t degraded_queue_depth = 0;
  /// When > 0: an EWMA batch latency above this (ms) marks the shard
  /// kDegraded even while it is making progress.
  double degraded_ewma_latency_ms = 0.0;
};

/// One probe thread watching one fleet. Start/Stop bracketed; the fleet
/// must outlive the monitor's Stop.
class HealthMonitor {
 public:
  HealthMonitor() = default;
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Starts probing `fleet`. Fails FailedPrecondition when already
  /// running, InvalidArgument on a null fleet or zero thresholds.
  Status Start(ScoringFleet* fleet, const HealthMonitorOptions& options = {});

  /// Stops the probe thread. Idempotent; called by the destructor.
  void Stop();

  /// Monitor statistics + per-shard verdicts.
  struct View {
    /// Probe sweeps completed.
    uint64_t probes = 0;
    /// Shards this monitor ejected / restarted / readmitted.
    uint64_t ejections = 0;
    uint64_t restarts = 0;
    uint64_t readmissions = 0;
    std::vector<ShardHealth> shard_health;
  };
  View stats() const;

  /// Runs one probe sweep immediately on the caller's thread (the same
  /// sweep the probe thread runs every probe_interval). Exposed so tests
  /// can step the state machine deterministically without sleeping.
  void ProbeOnce();

 private:
  struct ShardState {
    ShardHealthFsm fsm;
    uint64_t last_completed = 0;
  };

  void ProbeLoop();

  ScoringFleet* fleet_ = nullptr;
  HealthMonitorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  uint64_t probes_ = 0;
  uint64_t ejections_ = 0;
  uint64_t restarts_ = 0;
  uint64_t readmissions_ = 0;
  std::vector<ShardState> shards_;
  std::thread probe_thread_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_FLEET_HEALTH_H_
