// ScoringFleet: N ScoringServer shards behind one router.
//
// One ScoringServer runs one dispatch thread over one request queue —
// fine for a core or two, a bottleneck on a multi-core box. The fleet is
// the sharded deployment shape: each shard owns its own RequestQueue,
// dispatch thread, micro-batcher, admission controller, and (optionally)
// its own worker pool, so aggregate dispatch capacity scales with the
// shard count instead of serializing on one queue's mutex.
//
//   clients --Submit--> [ShardRouter] --> shard_i (a full ScoringServer)
//
// Routing policies (ShardRouter):
//   kRoundRobin       cheapest; an atomic cursor walks the shards.
//   kLeastQueueDepth  balances bursty clients by each shard's queue
//                     depth + in-flight batches (ServerStats-style load
//                     signal, sampled racily — good enough to steer).
//   kHashRow          FNV-1a over the request row's bytes: a given row
//                     always lands on the same shard, so a replayed
//                     trace distributes identically run after run.
//
// Because every shard scores through the same immutable ModelSnapshot
// machinery, per-row results are bitwise identical whichever shard
// serves them (the snapshot determinism contract) — sharding changes
// throughput, never scores.
//
// RollingUpdate pushes a new snapshot shard-by-shard: the router stops
// steering traffic to the shard being updated, a drain barrier
// (ScoringServer::Quiesce) waits for its queue + in-flight batches to
// empty, the shard swaps, routing resumes, next shard. At most one shard
// is ever out of rotation, so the fleet keeps serving throughout, and the
// barrier guarantees each admitted request scores against one consistent
// snapshot version. FleetStats reports the per-shard served versions, so
// mid-rollout skew is observable instead of silent.
//
// Failure handling (this layer's robustness contract):
//   - A shard whose drain barrier stalls is RETRIED with exponential
//     backoff + deterministic jitter; between attempts it is back in
//     rotation, so a stalled rollout never starves a shard.
//   - When a shard exhausts its attempts, the rollout ROLLS BACK:
//     already-updated shards return to their prior snapshots in reverse
//     order through the same drain barrier, so the fleet is never left
//     version-skewed. The report's terminal state says which way it went.
//   - A wedged or dead shard can be EJECTED from routing (all three
//     policies skip it; the hash policy rendezvous-reassigns its keys
//     deterministically to survivors), RESTARTED with its current
//     snapshot, and READMITTED — see serve/fleet/health.h for the
//     monitor that automates this.

#ifndef FAIRDRIFT_SERVE_FLEET_FLEET_H_
#define FAIRDRIFT_SERVE_FLEET_FLEET_H_

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/audit/auditor.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/ticket.h"
#include "util/status.h"

namespace fairdrift {

class ScoringFleet;

/// How the fleet spreads requests over its shards.
enum class FleetRoutingPolicy {
  kRoundRobin,
  kLeastQueueDepth,
  kHashRow,
};

/// Display name ("round-robin", "least-queue", "hash-row").
const char* FleetRoutingPolicyName(FleetRoutingPolicy policy);

/// Parses a policy name as printed by FleetRoutingPolicyName (also
/// accepts the CLI shorthands "rr", "least", "hash"). kInvalidArgument
/// on anything else.
Result<FleetRoutingPolicy> ParseFleetRoutingPolicy(const std::string& name);

/// What a ShardRouter needs to know about the shard set it routes over.
/// ScoringFleet implements it for in-process shards; the network tier's
/// RemoteFleet (serve/net/remote_fleet.h) implements it for shard daemon
/// processes — one router, one set of policies, both topologies.
class ShardDirectory {
 public:
  virtual ~ShardDirectory() = default;
  virtual size_t num_shards() const = 0;
  /// Routable: neither draining under an update nor ejected.
  virtual bool ShardAvailable(size_t s) const = 0;
  /// Load signal for least-queue routing (queued + in-flight charge).
  virtual size_t ShardLoad(size_t s) const = 0;
};

/// Pluggable shard-selection policy. Thread-safe; one router per fleet.
class ShardRouter {
 public:
  ShardRouter(FleetRoutingPolicy policy, size_t num_shards);

  /// Shard for a request row of `width` doubles. Unavailable shards —
  /// draining under a rolling update, or ejected by the health monitor —
  /// are skipped: round-robin/least-queue walk or scan past them, and
  /// the hash policy rendezvous-reassigns the row deterministically
  /// among the available shards (a given row always lands on the same
  /// survivor for a given available set, and returns to its home shard
  /// on readmission). When every shard is unavailable the nominal pick
  /// is returned anyway so the fleet never refuses on routing grounds.
  size_t Pick(const double* row, size_t width, const ShardDirectory& fleet);

  FleetRoutingPolicy policy() const { return policy_; }

 private:
  FleetRoutingPolicy policy_;
  size_t num_shards_;
  std::atomic<uint64_t> cursor_{0};
};

/// Fleet configuration.
struct FleetOptions {
  /// Number of ScoringServer shards.
  size_t num_shards = 2;
  FleetRoutingPolicy routing = FleetRoutingPolicy::kLeastQueueDepth;
  /// Per-shard server configuration (batching, admission, inflight cap).
  /// `shard.pool` is honored only when `workers_per_shard` is 0.
  ServerOptions shard;
  /// When non-zero, each shard gets its own private ThreadPool with this
  /// many workers (owned by the fleet) — full isolation, no cross-shard
  /// contention on one task queue. 0 = all shards share `shard.pool`
  /// (the global pool when that is null).
  size_t workers_per_shard = 0;
  /// Fairness audit tier (serve/audit/). When audit.enabled the fleet
  /// owns a FleetAuditor and wires one ShardAuditor into each shard
  /// (`shard.audit` is then ignored — the fleet overwrites it).
  AuditOptions audit;
};

/// Per-shard drain + swap schedule knobs.
struct RollingUpdateOptions {
  /// How long the drain barrier waits for one shard to empty before the
  /// attempt counts as failed.
  std::chrono::nanoseconds drain_timeout = std::chrono::seconds(10);
  /// Drain/swap attempts per shard before the rollout gives up on it.
  size_t max_attempts_per_shard = 3;
  /// Backoff before the second attempt; doubles (backoff_multiplier)
  /// each further attempt. The shard is back in rotation while waiting.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(10);
  double backoff_multiplier = 2.0;
  /// Jitter fraction: each wait is scaled by a factor drawn uniformly
  /// from [1 - jitter, 1 + jitter] — deterministically from
  /// backoff_seed, so a fault-injected rollout replays exactly.
  double backoff_jitter = 0.25;
  uint64_t backoff_seed = 0;
  /// On exhausted retries, roll already-updated shards back to their
  /// prior snapshots (reverse order, same drain barrier) so the fleet
  /// exits with zero version skew. false restores the legacy abort:
  /// the rollout fails DeadlineExceeded with updated shards keeping the
  /// new snapshot (skew visible in FleetStats until a later rollout).
  bool rollback_on_failure = true;
};

/// How a rolling update terminated.
enum class RolloutState : uint8_t {
  /// Every shard drained and swapped to the new snapshot.
  kCommitted = 0,
  /// A shard exhausted its attempts; updated shards were rolled back to
  /// their prior snapshots. The fleet exits with zero version skew.
  kRolledBack = 1,
};

const char* RolloutStateName(RolloutState state);

/// One shard's slice of a rolling update.
struct ShardRolloutReport {
  size_t shard = 0;
  /// Drain/swap attempts consumed (1 = first try succeeded).
  size_t attempts = 0;
  /// The shard swapped to the new snapshot (possibly rolled back later).
  bool updated = false;
  /// The shard was returned to its prior snapshot by a rollback.
  bool rolled_back = false;
  /// Successful-attempt drain-barrier stall (out-of-rotation time).
  double stall_ms = 0.0;
  /// Rollback drain-barrier stall, when rolled_back.
  double rollback_stall_ms = 0.0;
  /// Last attempt error (empty when the first attempt succeeded).
  std::string last_error;
};

/// What one rolling update did: how many shards swapped, how long each
/// shard's drain barrier stalled it (its only out-of-rotation time —
/// the fleet as a whole never stops serving), and per-shard
/// attempt/outcome detail with the terminal committed/rolled-back state.
struct RollingUpdateReport {
  size_t shards_updated = 0;
  std::vector<double> shard_stall_ms;
  double max_stall_ms = 0.0;
  RolloutState state = RolloutState::kCommitted;
  std::vector<ShardRolloutReport> shards;
  /// Drain/swap attempts summed over shards (== num_shards when nothing
  /// retried).
  size_t total_attempts = 0;
  /// Total rollback drain-barrier stall across rolled-back shards.
  double rollback_stall_ms = 0.0;
  /// Why the rollout rolled back (empty when committed).
  std::string failure;
};

/// Fleet-wide aggregated statistics: counter sums, fleet percentiles
/// derived from the element-wise merged latency histograms (NOT averaged
/// per-shard percentiles), per-shard load, and snapshot-version skew.
struct FleetStatsView {
  size_t num_shards = 0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed_admission = 0;
  uint64_t shed_deadline = 0;
  uint64_t invalid = 0;
  uint64_t batches = 0;
  uint64_t snapshot_swaps = 0;
  double mean_batch_size = 0.0;
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  /// Density-monitor rows evaluated across the fleet (all completed rows
  /// in exact/bounded modes; the content-hash subset in sampled mode).
  uint64_t density_checked = 0;
  /// Checked rows below the density floor.
  uint64_t density_outliers = 0;
  /// density_outliers / density_checked (0 before any row is checked) —
  /// the fleet drift signal. Computed from the summed counts, not an
  /// average of per-shard rates, so unevenly loaded shards weigh
  /// correctly; under sampled monitoring its staleness is bounded by the
  /// sampling interval (~sample_modulus rows per fresh data point per
  /// shard).
  double outlier_rate = 0.0;
  /// Sampled per-shard queue depths (the router's load signal).
  std::vector<size_t> queue_depths;
  /// Per-shard density outlier rate (checked-row fraction below the
  /// floor, 0 before any checked row) — the per-shard drift signal the
  /// serve status line prints next to each shard's served version.
  std::vector<double> shard_outlier_rates;
  /// Completed requests per shard (routing-balance witness).
  std::vector<uint64_t> shard_completed;
  /// Snapshot version each shard currently serves new batches from.
  std::vector<uint64_t> shard_versions;
  /// min/max over shard_versions: equal outside a rollout, skewed by at
  /// most one generation during one.
  uint64_t min_snapshot_version = 0;
  uint64_t max_snapshot_version = 0;
  /// Completed RollingUpdate calls.
  uint64_t rolling_updates = 0;
  /// Rolling updates that terminated kRolledBack.
  uint64_t rollbacks = 0;
  /// Shards removed from routing (EjectShard — typically the health
  /// monitor on a wedged/dead shard).
  uint64_t ejections = 0;
  /// Shards rebuilt in place with their current snapshot (RestartShard).
  uint64_t restarts = 0;
  /// Ejected shards returned to routing (ReadmitShard).
  uint64_t readmissions = 0;
  /// Per-shard ejected flag (1 = currently out of routing).
  std::vector<uint8_t> shard_ejected;
  /// Requests selected by the content-hash trace sampler, fleet-wide.
  uint64_t trace_sampled = 0;
  /// Sampled span records lost to failed trace-log appends, fleet-wide.
  uint64_t trace_append_failures = 0;
  /// p99 latency per pipeline stage of sampled requests, derived from
  /// the element-wise merged per-stage histograms (indexed by
  /// ServerStats::StageName order). Zero until a sampled request lands.
  std::array<double, ServerStats::kServeStages> stage_p99_us{};
  /// Fairness audit aggregates (audit.enabled == false when the fleet
  /// was built without the audit tier).
  FleetAuditView audit;
};

/// N scoring-server shards behind a router, updated as one unit.
class ScoringFleet : public ShardDirectory {
 public:
  /// Validates options, builds the shards (each already serving), and
  /// installs `snapshot` on all of them.
  static Result<std::unique_ptr<ScoringFleet>> Create(
      std::shared_ptr<const ModelSnapshot> snapshot,
      const FleetOptions& options = {});

  /// Stops every shard (drains; see ScoringServer::Stop).
  ~ScoringFleet();

  ScoringFleet(const ScoringFleet&) = delete;
  ScoringFleet& operator=(const ScoringFleet&) = delete;

  /// Routes one request row to a shard and submits it there. Admission,
  /// deadlines, and ticket semantics are the shard server's.
  Result<ScoreTicket> Submit(
      std::vector<double> row,
      std::chrono::nanoseconds deadline_after = std::chrono::nanoseconds{0});

  /// Submit with audit metadata (explicit group and/or ground-truth
  /// label) attached; see ScoringServer::Submit.
  Result<ScoreTicket> Submit(
      std::vector<double> row, const RequestAuditInfo& audit,
      std::chrono::nanoseconds deadline_after = std::chrono::nanoseconds{0});

  /// Submit + Wait (not callable from a shard pool's own workers).
  Result<ScoreResult> ScoreSync(
      std::vector<double> row,
      std::chrono::nanoseconds deadline_after = std::chrono::nanoseconds{0});

  /// Immediate fleet-wide swap: every shard's next batch scores the new
  /// snapshot (no drain barrier — in-flight batches finish on the old one
  /// per the per-batch isolation contract). Use RollingUpdate when whole-
  /// shard version consistency during the push matters.
  Status UpdateSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Shard-by-shard drain + swap with retry/backoff and rollback (see
  /// file comment). Serialized against concurrent updates. With
  /// rollback_on_failure (the default) an exhausted shard yields an OK
  /// result whose report.state == kRolledBack — the fleet healed itself;
  /// callers decide whether a rolled-back push is an error. With
  /// rollback disabled, exhaustion fails DeadlineExceeded (the drained
  /// shard is always re-entered into rotation first).
  Result<RollingUpdateReport> RollingUpdate(
      std::shared_ptr<const ModelSnapshot> snapshot,
      const RollingUpdateOptions& options = {});

  /// Removes shard `s` from routing (every policy skips it; the hash
  /// policy rendezvous-reassigns its keys deterministically). Requests
  /// already queued on the shard still score. Idempotent.
  Status EjectShard(size_t s);

  /// Returns an ejected shard to routing. Idempotent.
  Status ReadmitShard(size_t s);

  /// Rebuilds shard `s` in place: a fresh ScoringServer is created with
  /// the shard's current snapshot and options and swapped into the slot;
  /// the old server is then stopped, which drains its queue through the
  /// normal scoring path (every admitted ticket completes). Blocks until
  /// the old server's in-flight batches finish — a still-wedged batch
  /// holds the restart until it unwedges. Usually called on an ejected
  /// shard; does not change the ejected flag.
  Status RestartShard(size_t s);

  /// Stops all shards. Idempotent; called by the destructor.
  void Stop();

  FleetStatsView stats() const;

  /// The fleet's auditor (null when options.audit.enabled is false).
  /// Flush() it before reading the audit log from another process.
  FleetAuditor* auditor() const { return auditor_.get(); }

  size_t num_shards() const override { return servers_.size(); }
  /// Owning reference to shard `s`'s current server — safe against a
  /// concurrent RestartShard swapping the slot.
  std::shared_ptr<ScoringServer> shard_ref(size_t s) const {
    return std::atomic_load(&servers_[s]);
  }
  /// Borrowed pointer; invalidated by RestartShard. Test/bench use.
  ScoringServer* shard(size_t s) { return shard_ref(s).get(); }
  const ScoringServer* shard(size_t s) const { return shard_ref(s).get(); }
  const FleetOptions& options() const { return options_; }

  /// Router load signal: queued requests + a batch-sized pessimistic
  /// charge per in-flight batch on shard `s`.
  size_t ShardLoad(size_t s) const override;

  /// True while a rolling update is draining shard `s`.
  bool ShardDraining(size_t s) const {
    return draining_[s].load(std::memory_order_acquire);
  }

  /// True while shard `s` is ejected from routing.
  bool ShardEjected(size_t s) const {
    return ejected_[s].load(std::memory_order_acquire);
  }

  /// Routable: neither draining nor ejected.
  bool ShardAvailable(size_t s) const override {
    return !ShardDraining(s) && !ShardEjected(s);
  }

 private:
  ScoringFleet(const FleetOptions& options);

  FleetOptions options_;
  std::vector<std::unique_ptr<ThreadPool>> shard_pools_;
  /// Declared before servers_ so it destructs after them: batch workers
  /// fold into their ShardAuditor until every server has stopped.
  std::unique_ptr<FleetAuditor> auditor_;
  /// Slots are written only by RestartShard, via the shared_ptr atomic
  /// free functions; readers take owning refs through shard_ref(). The
  /// vector itself never resizes after Create.
  std::vector<std::shared_ptr<ScoringServer>> servers_;
  std::unique_ptr<std::atomic<bool>[]> draining_;
  std::unique_ptr<std::atomic<bool>[]> ejected_;
  ShardRouter router_;
  std::mutex update_mu_;
  /// Serializes RestartShard against itself (slot swaps are atomic for
  /// readers; two concurrent restarts of one shard would leak a stop).
  std::mutex restart_mu_;
  std::atomic<uint64_t> rolling_updates_{0};
  std::atomic<uint64_t> rollbacks_{0};
  std::atomic<uint64_t> ejections_{0};
  std::atomic<uint64_t> restarts_{0};
  std::atomic<uint64_t> readmissions_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_FLEET_FLEET_H_
