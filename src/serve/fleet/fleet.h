// ScoringFleet: N ScoringServer shards behind one router.
//
// One ScoringServer runs one dispatch thread over one request queue —
// fine for a core or two, a bottleneck on a multi-core box. The fleet is
// the sharded deployment shape: each shard owns its own RequestQueue,
// dispatch thread, micro-batcher, admission controller, and (optionally)
// its own worker pool, so aggregate dispatch capacity scales with the
// shard count instead of serializing on one queue's mutex.
//
//   clients --Submit--> [ShardRouter] --> shard_i (a full ScoringServer)
//
// Routing policies (ShardRouter):
//   kRoundRobin       cheapest; an atomic cursor walks the shards.
//   kLeastQueueDepth  balances bursty clients by each shard's queue
//                     depth + in-flight batches (ServerStats-style load
//                     signal, sampled racily — good enough to steer).
//   kHashRow          FNV-1a over the request row's bytes: a given row
//                     always lands on the same shard, so a replayed
//                     trace distributes identically run after run.
//
// Because every shard scores through the same immutable ModelSnapshot
// machinery, per-row results are bitwise identical whichever shard
// serves them (the snapshot determinism contract) — sharding changes
// throughput, never scores.
//
// RollingUpdate pushes a new snapshot shard-by-shard: the router stops
// steering traffic to the shard being updated, a drain barrier
// (ScoringServer::Quiesce) waits for its queue + in-flight batches to
// empty, the shard swaps, routing resumes, next shard. At most one shard
// is ever out of rotation, so the fleet keeps serving throughout, and the
// barrier guarantees each admitted request scores against one consistent
// snapshot version. FleetStats reports the per-shard served versions, so
// mid-rollout skew is observable instead of silent.

#ifndef FAIRDRIFT_SERVE_FLEET_FLEET_H_
#define FAIRDRIFT_SERVE_FLEET_FLEET_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/ticket.h"
#include "util/status.h"

namespace fairdrift {

class ScoringFleet;

/// How the fleet spreads requests over its shards.
enum class FleetRoutingPolicy {
  kRoundRobin,
  kLeastQueueDepth,
  kHashRow,
};

/// Display name ("round-robin", "least-queue", "hash-row").
const char* FleetRoutingPolicyName(FleetRoutingPolicy policy);

/// Pluggable shard-selection policy. Thread-safe; one router per fleet.
class ShardRouter {
 public:
  ShardRouter(FleetRoutingPolicy policy, size_t num_shards);

  /// Shard for a request row of `width` doubles. Shards marked draining
  /// by a rolling update are skipped (when every shard is draining —
  /// only possible transiently on a 1-shard fleet — the nominal pick is
  /// returned anyway so the fleet never refuses on routing grounds).
  size_t Pick(const double* row, size_t width, const ScoringFleet& fleet);

  FleetRoutingPolicy policy() const { return policy_; }

 private:
  FleetRoutingPolicy policy_;
  size_t num_shards_;
  std::atomic<uint64_t> cursor_{0};
};

/// Fleet configuration.
struct FleetOptions {
  /// Number of ScoringServer shards.
  size_t num_shards = 2;
  FleetRoutingPolicy routing = FleetRoutingPolicy::kLeastQueueDepth;
  /// Per-shard server configuration (batching, admission, inflight cap).
  /// `shard.pool` is honored only when `workers_per_shard` is 0.
  ServerOptions shard;
  /// When non-zero, each shard gets its own private ThreadPool with this
  /// many workers (owned by the fleet) — full isolation, no cross-shard
  /// contention on one task queue. 0 = all shards share `shard.pool`
  /// (the global pool when that is null).
  size_t workers_per_shard = 0;
};

/// Per-shard drain + swap schedule knobs.
struct RollingUpdateOptions {
  /// How long the drain barrier waits for one shard to empty before the
  /// rollout aborts (shards already updated keep the new snapshot; the
  /// version skew is visible in FleetStats until a later rollout).
  std::chrono::nanoseconds drain_timeout = std::chrono::seconds(10);
};

/// What one rolling update did: how many shards swapped and how long
/// each shard's drain barrier stalled that shard (its only out-of-
/// rotation time — the fleet as a whole never stops serving).
struct RollingUpdateReport {
  size_t shards_updated = 0;
  std::vector<double> shard_stall_ms;
  double max_stall_ms = 0.0;
};

/// Fleet-wide aggregated statistics: counter sums, fleet percentiles
/// derived from the element-wise merged latency histograms (NOT averaged
/// per-shard percentiles), per-shard load, and snapshot-version skew.
struct FleetStatsView {
  size_t num_shards = 0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed_admission = 0;
  uint64_t shed_deadline = 0;
  uint64_t invalid = 0;
  uint64_t batches = 0;
  uint64_t snapshot_swaps = 0;
  double mean_batch_size = 0.0;
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  /// Density-monitor rows evaluated across the fleet (all completed rows
  /// in exact/bounded modes; the content-hash subset in sampled mode).
  uint64_t density_checked = 0;
  /// Checked rows below the density floor.
  uint64_t density_outliers = 0;
  /// density_outliers / density_checked (0 before any row is checked) —
  /// the fleet drift signal. Computed from the summed counts, not an
  /// average of per-shard rates, so unevenly loaded shards weigh
  /// correctly; under sampled monitoring its staleness is bounded by the
  /// sampling interval (~sample_modulus rows per fresh data point per
  /// shard).
  double outlier_rate = 0.0;
  /// Sampled per-shard queue depths (the router's load signal).
  std::vector<size_t> queue_depths;
  /// Completed requests per shard (routing-balance witness).
  std::vector<uint64_t> shard_completed;
  /// Snapshot version each shard currently serves new batches from.
  std::vector<uint64_t> shard_versions;
  /// min/max over shard_versions: equal outside a rollout, skewed by at
  /// most one generation during one.
  uint64_t min_snapshot_version = 0;
  uint64_t max_snapshot_version = 0;
  /// Completed RollingUpdate calls.
  uint64_t rolling_updates = 0;
};

/// N scoring-server shards behind a router, updated as one unit.
class ScoringFleet {
 public:
  /// Validates options, builds the shards (each already serving), and
  /// installs `snapshot` on all of them.
  static Result<std::unique_ptr<ScoringFleet>> Create(
      std::shared_ptr<const ModelSnapshot> snapshot,
      const FleetOptions& options = {});

  /// Stops every shard (drains; see ScoringServer::Stop).
  ~ScoringFleet();

  ScoringFleet(const ScoringFleet&) = delete;
  ScoringFleet& operator=(const ScoringFleet&) = delete;

  /// Routes one request row to a shard and submits it there. Admission,
  /// deadlines, and ticket semantics are the shard server's.
  Result<ScoreTicket> Submit(
      std::vector<double> row,
      std::chrono::nanoseconds deadline_after = std::chrono::nanoseconds{0});

  /// Submit + Wait (not callable from a shard pool's own workers).
  Result<ScoreResult> ScoreSync(
      std::vector<double> row,
      std::chrono::nanoseconds deadline_after = std::chrono::nanoseconds{0});

  /// Immediate fleet-wide swap: every shard's next batch scores the new
  /// snapshot (no drain barrier — in-flight batches finish on the old one
  /// per the per-batch isolation contract). Use RollingUpdate when whole-
  /// shard version consistency during the push matters.
  Status UpdateSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Shard-by-shard drain + swap (see file comment). Serialized against
  /// concurrent updates; fails DeadlineExceeded when a shard does not
  /// drain within options.drain_timeout.
  Result<RollingUpdateReport> RollingUpdate(
      std::shared_ptr<const ModelSnapshot> snapshot,
      const RollingUpdateOptions& options = {});

  /// Stops all shards. Idempotent; called by the destructor.
  void Stop();

  FleetStatsView stats() const;

  size_t num_shards() const { return servers_.size(); }
  ScoringServer* shard(size_t s) { return servers_[s].get(); }
  const ScoringServer* shard(size_t s) const { return servers_[s].get(); }
  const FleetOptions& options() const { return options_; }

  /// Router load signal: queued requests + a batch-sized pessimistic
  /// charge per in-flight batch on shard `s`.
  size_t ShardLoad(size_t s) const;

  /// True while a rolling update is draining shard `s`.
  bool ShardDraining(size_t s) const {
    return draining_[s].load(std::memory_order_acquire);
  }

 private:
  ScoringFleet(const FleetOptions& options);

  FleetOptions options_;
  std::vector<std::unique_ptr<ThreadPool>> shard_pools_;
  std::vector<std::unique_ptr<ScoringServer>> servers_;
  std::unique_ptr<std::atomic<bool>[]> draining_;
  ShardRouter router_;
  std::mutex update_mu_;
  std::atomic<uint64_t> rolling_updates_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_FLEET_FLEET_H_
