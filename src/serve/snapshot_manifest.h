// Chunked snapshot persistence: a manifest plus per-artifact chunks.
//
// The monolithic snapshot file (serve/snapshot_io.h) freezes everything
// into one payload. For a fleet behind the network that is the wrong
// shape: a retrain that only moves the model coefficients should not
// ship the (much larger) fitted density tree to every shard again. This
// layer splits the SAME payload at its section boundaries into named
// chunks -- "schema", "models", "profile", "density", "policy" -- and
// describes them in a checksummed manifest:
//
//   MANIFEST file:  magic "FDSNMANI" | u32 manifest version | u64 body
//                   size | body | u64 FNV-1a(body)
//   body:           u32 snapshot format version | u64 payload size
//                   | u64 payload FNV-1a | u64 chunk count
//                   | per chunk { string name, u64 size, u64 FNV-1a }
//   chunk files:    <dir>/<name>.chunk  (raw section bytes)
//
// Because the chunks are byte-exact slices of the monolithic payload,
// concatenating them in manifest order and handing the result to
// ParseSnapshotPayload loads a snapshot BITWISE identical to the
// monolithic file -- one parser, one identity guarantee, two layouts.
// The push protocol (serve/net/) sends the manifest first; the receiver
// answers with the chunk names whose checksums differ from what it
// already holds, so an incremental push moves only the changed
// artifacts.
//
// Partial loads: the core chunks (schema, models, profile) are
// required. Under SnapshotLoadMode::kAllowPartial a missing or corrupt
// "density"/"policy" chunk degrades to serving without monitoring --
// the same semantics (and the same report) as a corrupt monitor tail in
// the monolithic file.

#ifndef FAIRDRIFT_SERVE_SNAPSHOT_MANIFEST_H_
#define FAIRDRIFT_SERVE_SNAPSHOT_MANIFEST_H_

#include <memory>
#include <string>
#include <vector>

#include "serve/snapshot_io.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace fairdrift {

/// Current manifest format version.
inline constexpr uint32_t kSnapshotManifestVersion = 1;

/// The manifest file's name inside a chunked-snapshot directory.
inline constexpr const char* kSnapshotManifestFileName = "MANIFEST";

/// Identity of one chunk as recorded in the manifest.
struct SnapshotChunkInfo {
  std::string name;
  uint64_t size = 0;
  uint64_t checksum = 0;  ///< FNV-1a of the chunk bytes
};

struct SnapshotManifest {
  uint32_t snapshot_format_version = 0;
  uint64_t payload_size = 0;      ///< sum of chunk sizes
  uint64_t payload_checksum = 0;  ///< FNV-1a of the concatenated payload
  std::vector<SnapshotChunkInfo> chunks;

  /// Index of `name` in `chunks`, or npos.
  size_t FindChunk(const std::string& name) const;
};

/// A manifest together with the chunk bytes, in manifest order.
struct ChunkedSnapshot {
  SnapshotManifest manifest;
  std::vector<SnapshotPayloadChunk> chunks;
};

/// Serializes `snapshot` into manifest + chunks (in memory). The
/// concatenation of the chunk bytes equals the monolithic SaveSnapshot
/// payload byte for byte.
Result<ChunkedSnapshot> ChunkSnapshot(const ModelSnapshot& snapshot);

/// Manifest body codec (shared by the MANIFEST file and the
/// kPushManifest wire frame).
void SerializeManifest(const SnapshotManifest& manifest, BinaryWriter* w);
Result<SnapshotManifest> DeserializeManifest(BinaryReader* r);

/// Writes `snapshot` as `<dir>/MANIFEST` + `<dir>/<name>.chunk` files,
/// creating `dir` if needed. Incremental: a chunk file whose existing
/// manifest entry already matches the new checksum is left untouched.
/// Each written file is atomic (tmp + rename); the manifest is written
/// last, so a crash mid-save leaves the previous manifest describing
/// the previous (still loadable) chunk set. When `written_chunks` is
/// non-null it receives the names of the chunks actually rewritten.
Status SaveChunkedSnapshot(const ModelSnapshot& snapshot,
                           const std::string& dir,
                           std::vector<std::string>* written_chunks = nullptr);

/// Reads and verifies `<dir>/MANIFEST`.
Result<SnapshotManifest> LoadSnapshotManifest(const std::string& dir);

/// Loads a chunked snapshot from `dir`. Core chunks must verify; a
/// damaged optional chunk degrades under kAllowPartial exactly like a
/// corrupt monolithic monitor tail (report->outcome = kDegraded).
Result<std::shared_ptr<const ModelSnapshot>> LoadChunkedSnapshot(
    const std::string& dir, SnapshotLoadMode mode, SnapshotLoadReport* report);

/// Strict in-memory assembly used by the push receiver: every manifest
/// chunk must be present in `chunks` (manifest order, already
/// checksum-verified by the caller or not -- this re-verifies), and the
/// concatenation must match the manifest's whole-payload checksum.
Result<std::string> AssemblePayload(
    const SnapshotManifest& manifest,
    const std::vector<SnapshotPayloadChunk>& chunks);

}  // namespace fairdrift

#endif  // FAIRDRIFT_SERVE_SNAPSHOT_MANIFEST_H_
