#include "baselines/capuchin.h"

#include <algorithm>
#include <cmath>

namespace fairdrift {

Result<Dataset> CapuchinRepair(const Dataset& train, Rng* rng,
                               const CapuchinOptions& options) {
  if (!train.has_labels() || !train.has_groups()) {
    return Status::FailedPrecondition("CAP: needs labels and groups");
  }
  size_t n = train.size();
  double dn = static_cast<double>(n);

  // Target: count(g, y) == |g| * P(y). Build the repaired index multiset.
  std::vector<size_t> repaired;
  repaired.reserve(n);
  for (int g = 0; g < train.num_groups(); ++g) {
    double ng = static_cast<double>(train.GroupCount(g));
    for (int y = 0; y < train.num_classes(); ++y) {
      std::vector<size_t> cell = train.CellIndices(g, y);
      if (cell.empty()) continue;
      double p_y = static_cast<double>(train.LabelCount(y)) / dn;
      auto target = static_cast<size_t>(std::llround(ng * p_y));
      target = std::max<size_t>(target, 1);
      target = std::min(
          target,
          static_cast<size_t>(options.max_duplication *
                              static_cast<double>(cell.size())));

      if (target <= cell.size()) {
        if (options.allow_dropping && target < cell.size()) {
          // Subsample the over-represented cell.
          std::vector<size_t> picks =
              rng->SampleWithoutReplacement(cell.size(), target);
          for (size_t p : picks) repaired.push_back(cell[p]);
        } else {
          repaired.insert(repaired.end(), cell.begin(), cell.end());
        }
      } else {
        // Duplicate the under-represented cell: keep every original tuple,
        // then draw the deficit with replacement.
        repaired.insert(repaired.end(), cell.begin(), cell.end());
        size_t deficit = target - cell.size();
        for (size_t k = 0; k < deficit; ++k) {
          size_t pick = static_cast<size_t>(rng->UniformInt(
              0, static_cast<int64_t>(cell.size()) - 1));
          repaired.push_back(cell[pick]);
        }
      }
    }
  }
  if (repaired.empty()) {
    return Status::InvalidArgument("CAP: repair produced an empty dataset");
  }
  Dataset out = train.Subset(repaired);
  out.ResetWeights();  // the repair is in the data, not in weights
  return out;
}

}  // namespace fairdrift
