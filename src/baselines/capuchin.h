// CAP — a Capuchin-style invasive repair baseline (Salimi et al.,
// SIGMOD'19).
//
// Capuchin repairs the *training database* (by inserting/deleting tuples)
// until the label is independent of the sensitive attribute, then trains a
// standard learner on the repaired data. The defining property for the
// paper's comparison is that the intervention is invasive: it alters the
// data itself rather than attaching weights.
//
// Substitution note (DESIGN.md §3): the original system performs a causal
// MaxSAT/matching repair over the Markov boundary; we implement the
// contingency-table repair that duplicates under-represented cell tuples
// and subsamples over-represented ones until the (group x label) joint
// satisfies independence. This preserves the compared behaviour: an
// invasive data repair achieving statistical parity in the training set
// at comparable utility.

#ifndef FAIRDRIFT_BASELINES_CAPUCHIN_H_
#define FAIRDRIFT_BASELINES_CAPUCHIN_H_

#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

/// Configuration for the CAP baseline.
struct CapuchinOptions {
  /// Allow dropping tuples from over-represented cells (in addition to
  /// duplicating under-represented ones). Insertion-only repairs inflate
  /// the dataset instead.
  bool allow_dropping = true;
  /// Cap on the per-cell duplication factor (repair-cost guard).
  double max_duplication = 10.0;
};

/// Returns a *repaired copy* of `train` in which each group's label
/// distribution matches the overall label distribution (Y independent of
/// the group attribute). The returned dataset generally differs from the
/// input in size and contents — this baseline is invasive by design.
Result<Dataset> CapuchinRepair(const Dataset& train, Rng* rng,
                               const CapuchinOptions& options = {});

}  // namespace fairdrift

#endif  // FAIRDRIFT_BASELINES_CAPUCHIN_H_
