// OMN — an OmniFair-style declarative group reweighing baseline
// (Zhang et al., SIGMOD'21).
//
// OmniFair expresses a fairness intervention as group-level weights scaled
// by a single parameter lambda, and calibrates lambda *against the declared
// model*: for each candidate lambda the model is retrained and the fairness
// constraint is checked on validation data. Two properties of this design
// — faithfully reproduced here — drive the contrasts in the paper:
//
//  * every tuple of a (group x label) cell receives the identical weight,
//    so noise and outliers are amplified together with the signal
//    (non-monotonic fairness response, Figs. 8-9);
//  * the calibration loop consumes model output, so the weights are tied
//    to the learner they were tuned with (Fig. 7) and the search retrains
//    many models (runtime, Fig. 14). Aggressive lambdas can zero out whole
//    cells and collapse the learner to one-class predictions (Fig. 6).

#ifndef FAIRDRIFT_BASELINES_OMNIFAIR_H_
#define FAIRDRIFT_BASELINES_OMNIFAIR_H_

#include <vector>

#include "data/dataset.h"
#include "data/encode.h"
#include "fairness/metrics.h"
#include "ml/model.h"
#include "util/status.h"

namespace fairdrift {

/// Configuration for the OMN baseline.
struct OmnifairOptions {
  FairnessObjective objective = FairnessObjective::kDisparateImpact;
  /// Candidate intervention degrees; empty selects the default grid
  /// {0.0, 0.1, ..., 1.0}.
  std::vector<double> lambda_grid;
  /// Calibration keeps the lambda with the smallest validation gap whose
  /// balanced accuracy stays above this floor; if none qualifies, the
  /// smallest-gap lambda wins regardless (mirrors OmniFair's
  /// constraint-satisfaction semantics).
  double accuracy_floor = 0.55;
};

/// Group-level weights for one lambda:
///   w(t) = max(0, 1 + lambda * dir(g, y) * n / (2 |cell(g, y)|)),
/// dir = +1 for the disadvantaged cell, -1 for the advantaged cell, 0
/// elsewhere. Identical for all tuples of a cell.
Result<std::vector<double>> OmnifairWeightsForLambda(
    const Dataset& train, double lambda, FairnessObjective objective);

/// Output of the model-in-the-loop calibration.
struct OmnifairResult {
  std::vector<double> weights;  ///< weights at the chosen lambda
  double lambda = 0.0;
  int models_trained = 0;  ///< size of the calibration loop (runtime driver)
};

/// Calibrates lambda by retraining `prototype` per grid point and
/// evaluating the objective gap on `val`. This is the step that makes OMN
/// model-dependent.
Result<OmnifairResult> OmnifairCalibrate(const Dataset& train,
                                         const Dataset& val,
                                         const Classifier& prototype,
                                         const FeatureEncoder& encoder,
                                         const OmnifairOptions& options);

}  // namespace fairdrift

#endif  // FAIRDRIFT_BASELINES_OMNIFAIR_H_
