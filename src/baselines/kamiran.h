// KAM — the reweighing baseline of Kamiran & Calders (2011).
//
// Every tuple in cell (group g, label y) receives the identical weight
//   w(g, y) = P(g) * P(y) / P(g, y) = |g| * |y| / (n * |g ∩ y|),
// which makes the weighted label distribution statistically independent of
// the group. Unlike CONFAIR there is no intra-group variability and no
// tunable intervention degree (paper Fig. 2).

#ifndef FAIRDRIFT_BASELINES_KAMIRAN_H_
#define FAIRDRIFT_BASELINES_KAMIRAN_H_

#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace fairdrift {

/// Per-tuple Kamiran-Calders weights. Requires labels and groups; empty
/// cells are impossible by construction (a tuple defines its own cell).
Result<std::vector<double>> KamiranWeights(const Dataset& train);

/// Copy of `train` with the KAM weights installed.
Result<Dataset> KamiranReweigh(const Dataset& train);

}  // namespace fairdrift

#endif  // FAIRDRIFT_BASELINES_KAMIRAN_H_
