// MULTIMODEL — the naive model-splitting baseline.
//
// Splits the input by the mapping function g, trains one model per group,
// and deploys by *group membership*: a serving tuple is always handled by
// its own group's model. DIFFAIR differs exactly in the deployment rule
// (conformance routing instead of membership).

#ifndef FAIRDRIFT_BASELINES_MULTIMODEL_H_
#define FAIRDRIFT_BASELINES_MULTIMODEL_H_

#include <memory>
#include <vector>

#include "core/diffair.h"  // TrainGroupModels + RoutedPredictions
#include "data/dataset.h"
#include "data/encode.h"
#include "ml/model.h"
#include "util/status.h"

namespace fairdrift {

/// The membership dispatch rule shared by MULTIMODEL and the artifact
/// Evaluate path: each tuple's own group, or `fallback_group` when that
/// group is out of range or has no model.
std::vector<int> RouteByMembership(
    const std::vector<int>& groups,
    const std::vector<std::unique_ptr<Classifier>>& models,
    int fallback_group);

/// Trained per-group models deployed by group membership.
class MultiModelBaseline {
 public:
  /// Trains one `prototype` clone per group present in `train`;
  /// thresholds tuned per group on `val` when requested.
  static Result<MultiModelBaseline> Train(const Dataset& train,
                                          const Dataset& val,
                                          const Classifier& prototype,
                                          const FeatureEncoder& encoder,
                                          bool tune_thresholds = false);

  /// Predicts each serving tuple with its own group's model (requires
  /// serving groups — this baseline *does* consult membership). Tuples of
  /// groups without a model fall back to the largest trained group.
  Result<std::vector<int>> Predict(const Dataset& serving) const;

  /// Positive-class probabilities under membership routing.
  Result<std::vector<double>> PredictProba(const Dataset& serving) const;

 private:
  MultiModelBaseline() = default;

  /// The serving group per tuple: its own group, or the fallback when
  /// that group has no model.
  Result<std::vector<int>> MembershipRoute(const Dataset& serving) const;

  /// Route + encode + gather in one step (Predict/PredictProba pick a
  /// member of the result).
  Result<RoutedPredictions> Routed(const Dataset& serving) const;

  int num_groups_ = 0;
  std::vector<std::unique_ptr<Classifier>> models_;
  FeatureEncoder encoder_;
  int fallback_group_ = 0;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_BASELINES_MULTIMODEL_H_
