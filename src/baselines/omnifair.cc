#include "baselines/omnifair.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/confair.h"  // PlanBoosts: shared skew detection
#include "fairness/report.h"

namespace fairdrift {

Result<std::vector<double>> OmnifairWeightsForLambda(
    const Dataset& train, double lambda, FairnessObjective objective) {
  if (!train.has_labels() || !train.has_groups()) {
    return Status::FailedPrecondition("OMN: needs labels and groups");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("OMN: lambda must be >= 0");
  }
  Result<ConfairBoostPlan> plan = PlanBoosts(train, objective);
  if (!plan.ok()) return plan.status();

  size_t n = train.size();
  double dn = static_cast<double>(n);
  // Boost the plan's primary cell; shrink the *other group's* cell with
  // the same label (their relative influence must fall for the gap to
  // close). Every member of a cell receives the identical weight.
  int boost_group = plan.value().primary_group;
  int boost_label = plan.value().primary_label;
  int shrink_group =
      boost_group == kMinorityGroup ? kMajorityGroup : kMinorityGroup;
  int shrink_label = boost_label;

  double boost_cell =
      static_cast<double>(train.CellCount(boost_group, boost_label));
  double shrink_cell =
      static_cast<double>(train.CellCount(shrink_group, shrink_label));

  std::vector<double> weights(n, 1.0);
  if (lambda == 0.0) return weights;
  for (size_t i = 0; i < n; ++i) {
    int g = train.groups()[i];
    int y = train.labels()[i];
    if (g == boost_group && y == boost_label && boost_cell > 0.0) {
      weights[i] = 1.0 + lambda * dn / (2.0 * boost_cell);
    } else if (g == shrink_group && y == shrink_label && shrink_cell > 0.0) {
      weights[i] = std::max(0.0, 1.0 - lambda * dn / (2.0 * shrink_cell));
    }
  }
  return weights;
}

Result<OmnifairResult> OmnifairCalibrate(const Dataset& train,
                                         const Dataset& val,
                                         const Classifier& prototype,
                                         const FeatureEncoder& encoder,
                                         const OmnifairOptions& options) {
  std::vector<double> grid = options.lambda_grid;
  if (grid.empty()) {
    for (int i = 0; i <= 10; ++i) grid.push_back(0.1 * i);
  }
  Result<Matrix> x_train = encoder.Transform(train);
  if (!x_train.ok()) return x_train.status();
  Result<Matrix> x_val = encoder.Transform(val);
  if (!x_val.ok()) return x_val.status();

  OmnifairResult best;
  best.lambda = -1.0;
  double best_gap = std::numeric_limits<double>::infinity();
  double best_gap_any = std::numeric_limits<double>::infinity();
  OmnifairResult best_any;
  best_any.lambda = -1.0;

  for (double lambda : grid) {
    Result<std::vector<double>> w =
        OmnifairWeightsForLambda(train, lambda, options.objective);
    if (!w.ok()) return w.status();

    std::unique_ptr<Classifier> learner = prototype.CloneUnfitted();
    Status st = learner->Fit(x_train.value(), train.labels(), w.value());
    ++best.models_trained;
    if (!st.ok()) continue;  // e.g. degenerate weights: skip this lambda

    Result<std::vector<int>> pred = learner->Predict(x_val.value());
    if (!pred.ok()) continue;
    Result<FairnessReport> report =
        EvaluateFairness(val.labels(), pred.value(), val.groups());
    if (!report.ok()) continue;

    double gap = ObjectiveGap(report.value().stats, options.objective);
    if (gap < best_gap_any) {
      best_gap_any = gap;
      best_any.lambda = lambda;
      best_any.weights = w.value();
    }
    if (report.value().balanced_accuracy >= options.accuracy_floor &&
        gap < best_gap) {
      best_gap = gap;
      best.lambda = lambda;
      best.weights = std::move(w).value();
    }
  }

  if (best.lambda < 0.0) {
    // No lambda met the accuracy constraint; fall back to the smallest gap
    // (OmniFair reports the constraint-violating optimum in that case).
    if (best_any.lambda < 0.0) {
      return Status::NumericalError(
          "OMN: no lambda produced a trainable model");
    }
    best_any.models_trained = best.models_trained;
    return best_any;
  }
  return best;
}

}  // namespace fairdrift
