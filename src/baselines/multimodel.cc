#include "baselines/multimodel.h"

#include "ml/threshold.h"
#include "util/string_util.h"

namespace fairdrift {

Result<MultiModelBaseline> MultiModelBaseline::Train(
    const Dataset& train, const Dataset& val, const Classifier& prototype,
    const FeatureEncoder& encoder, bool tune_thresholds) {
  if (!train.has_labels() || !train.has_groups()) {
    return Status::FailedPrecondition(
        "MULTIMODEL: training data needs labels and groups");
  }
  MultiModelBaseline model;
  model.num_groups_ = train.num_groups();
  model.encoder_ = encoder;
  model.models_.resize(static_cast<size_t>(model.num_groups_));

  size_t largest = 0;
  for (int g = 0; g < model.num_groups_; ++g) {
    std::vector<size_t> idx = train.GroupIndices(g);
    if (idx.empty()) continue;
    if (idx.size() > largest) {
      largest = idx.size();
      model.fallback_group_ = g;
    }
    Dataset group_train = train.Subset(idx);
    Result<Matrix> x = encoder.Transform(group_train);
    if (!x.ok()) return x.status();

    std::unique_ptr<Classifier> learner = prototype.CloneUnfitted();
    Status st =
        learner->Fit(x.value(), group_train.labels(), group_train.weights());
    if (!st.ok()) {
      return Status(st.code(), StrFormat("MULTIMODEL: group %d: %s", g,
                                         st.message().c_str()));
    }
    if (tune_thresholds && !val.empty()) {
      std::vector<size_t> vidx = val.GroupIndices(g);
      if (vidx.size() >= 10) {
        Dataset group_val = val.Subset(vidx);
        Result<Matrix> xv = encoder.Transform(group_val);
        if (!xv.ok()) return xv.status();
        Result<std::vector<double>> proba = learner->PredictProba(xv.value());
        if (!proba.ok()) return proba.status();
        Result<double> thr = TuneThreshold(group_val.labels(), proba.value());
        if (thr.ok()) learner->set_threshold(thr.value());
      }
    }
    model.models_[static_cast<size_t>(g)] = std::move(learner);
  }

  bool any = false;
  for (const auto& m : model.models_) {
    if (m) any = true;
  }
  if (!any) {
    return Status::InvalidArgument("MULTIMODEL: no group had training data");
  }
  return model;
}

Result<std::vector<double>> MultiModelBaseline::PredictProba(
    const Dataset& serving) const {
  if (!serving.has_groups()) {
    return Status::FailedPrecondition(
        "MULTIMODEL: serving data needs group membership");
  }
  Result<Matrix> x = encoder_.Transform(serving);
  if (!x.ok()) return x.status();

  std::vector<std::vector<double>> proba_by_group(
      static_cast<size_t>(num_groups_));
  for (int g = 0; g < num_groups_; ++g) {
    if (!models_[static_cast<size_t>(g)]) continue;
    Result<std::vector<double>> p =
        models_[static_cast<size_t>(g)]->PredictProba(x.value());
    if (!p.ok()) return p.status();
    proba_by_group[static_cast<size_t>(g)] = std::move(p).value();
  }
  std::vector<double> out(serving.size());
  for (size_t i = 0; i < serving.size(); ++i) {
    int g = serving.groups()[i];
    if (g >= num_groups_ || !models_[static_cast<size_t>(g)]) {
      g = fallback_group_;
    }
    out[i] = proba_by_group[static_cast<size_t>(g)][i];
  }
  return out;
}

Result<std::vector<int>> MultiModelBaseline::Predict(
    const Dataset& serving) const {
  Result<std::vector<double>> proba = PredictProba(serving);
  if (!proba.ok()) return proba.status();
  std::vector<int> out(serving.size());
  for (size_t i = 0; i < serving.size(); ++i) {
    int g = serving.groups()[i];
    if (g >= num_groups_ || !models_[static_cast<size_t>(g)]) {
      g = fallback_group_;
    }
    double thr = models_[static_cast<size_t>(g)]->threshold();
    out[i] = proba.value()[i] >= thr ? 1 : 0;
  }
  return out;
}

}  // namespace fairdrift
