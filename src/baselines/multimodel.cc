#include "baselines/multimodel.h"

#include "core/diffair.h"
#include "util/string_util.h"

namespace fairdrift {

Result<MultiModelBaseline> MultiModelBaseline::Train(
    const Dataset& train, const Dataset& val, const Classifier& prototype,
    const FeatureEncoder& encoder, bool tune_thresholds) {
  MultiModelBaseline model;
  model.num_groups_ = train.num_groups();
  model.encoder_ = encoder;

  // Same model-splitting step as DIFFAIR; only the deployment rule
  // (membership vs conformance routing) differs.
  Result<GroupModelSet> models = TrainGroupModels(
      train, val, prototype, encoder, tune_thresholds, "MULTIMODEL");
  if (!models.ok()) return models.status();
  model.models_ = std::move(models.value().models);
  model.fallback_group_ = models.value().fallback_group;
  return model;
}

std::vector<int> RouteByMembership(
    const std::vector<int>& groups,
    const std::vector<std::unique_ptr<Classifier>>& models,
    int fallback_group) {
  int num_groups = static_cast<int>(models.size());
  std::vector<int> route(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    int g = groups[i];
    if (g >= num_groups || !models[static_cast<size_t>(g)]) {
      g = fallback_group;
    }
    route[i] = g;
  }
  return route;
}

Result<std::vector<int>> MultiModelBaseline::MembershipRoute(
    const Dataset& serving) const {
  if (!serving.has_groups()) {
    return Status::FailedPrecondition(
        "MULTIMODEL: serving data needs group membership");
  }
  return RouteByMembership(serving.groups(), models_, fallback_group_);
}

Result<RoutedPredictions> MultiModelBaseline::Routed(
    const Dataset& serving) const {
  Result<std::vector<int>> route = MembershipRoute(serving);
  if (!route.ok()) return route.status();
  Result<Matrix> x = encoder_.Transform(serving);
  if (!x.ok()) return x.status();
  return GatherRoutedPredictions(models_, route.value(), x.value());
}

Result<std::vector<double>> MultiModelBaseline::PredictProba(
    const Dataset& serving) const {
  Result<RoutedPredictions> predictions = Routed(serving);
  if (!predictions.ok()) return predictions.status();
  return std::move(predictions.value().proba);
}

Result<std::vector<int>> MultiModelBaseline::Predict(
    const Dataset& serving) const {
  Result<RoutedPredictions> predictions = Routed(serving);
  if (!predictions.ok()) return predictions.status();
  return std::move(predictions.value().labels);
}

}  // namespace fairdrift
