#include "baselines/kamiran.h"

namespace fairdrift {

Result<std::vector<double>> KamiranWeights(const Dataset& train) {
  if (!train.has_labels() || !train.has_groups()) {
    return Status::FailedPrecondition("KAM: needs labels and groups");
  }
  size_t n = train.size();
  double dn = static_cast<double>(n);

  // Precompute w(g, y) per cell.
  std::vector<std::vector<double>> cell_weight(
      static_cast<size_t>(train.num_groups()),
      std::vector<double>(static_cast<size_t>(train.num_classes()), 1.0));
  for (int g = 0; g < train.num_groups(); ++g) {
    double ng = static_cast<double>(train.GroupCount(g));
    for (int y = 0; y < train.num_classes(); ++y) {
      double ny = static_cast<double>(train.LabelCount(y));
      double ngy = static_cast<double>(train.CellCount(g, y));
      if (ngy > 0.0) {
        cell_weight[static_cast<size_t>(g)][static_cast<size_t>(y)] =
            (ng * ny) / (dn * ngy);
      }
    }
  }

  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = cell_weight[static_cast<size_t>(train.groups()[i])]
                            [static_cast<size_t>(train.labels()[i])];
  }
  return weights;
}

Result<Dataset> KamiranReweigh(const Dataset& train) {
  Result<std::vector<double>> w = KamiranWeights(train);
  if (!w.ok()) return w.status();
  Dataset out = train;
  FAIRDRIFT_RETURN_IF_ERROR(out.SetWeights(std::move(w).value()));
  return out;
}

}  // namespace fairdrift
