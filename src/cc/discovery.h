// Conformance-constraint discovery (the GetCCs primitive of the paper).
//
// Following the construction of Fariha et al. (SIGMOD'21): the data is
// standardized, its principal directions are computed, and every direction
// becomes a bounded linear projection. Directions along which the data
// varies *little* yield tight constraints and receive high importance
// weights; the quantitative semantics then aggregate per-constraint
// violations (see cc/constraint.h).
//
// Deviation from the paper, documented in DESIGN.md §6.1: the paper's
// importance formula q_i = 1 - sigma_i/(max sigma - min sigma) can be
// negative; we use the clamped, normalized variant
// q_i ∝ 1 - (sigma_i - min)/(max - min + eps).

#ifndef FAIRDRIFT_CC_DISCOVERY_H_
#define FAIRDRIFT_CC_DISCOVERY_H_

#include "cc/constraint.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Tuning knobs for constraint discovery.
struct CcOptions {
  /// Bounds are mean ± bound_sigma * stddev of the projection values.
  double bound_sigma = 1.75;
  /// Keep at most this many projections (lowest variance first);
  /// 0 keeps all q directions.
  size_t max_projections = 0;
  /// Drop projections whose (standardized-space) variance exceeds this
  /// multiple of the smallest variance. <= 0 disables the filter.
  double max_variance_ratio = 0.0;
};

/// Derives a conformance-constraint set from the rows of `numeric_data`
/// (tuples x numeric attributes). The projections are expressed over the
/// raw attribute space. Fails on empty input; degenerate inputs (single
/// tuple, constant attributes) produce point-interval constraints rather
/// than errors, since tiny minority cells are an expected condition.
Result<ConstraintSet> DiscoverConstraints(const Matrix& numeric_data,
                                          const CcOptions& options = {});

}  // namespace fairdrift

#endif  // FAIRDRIFT_CC_DISCOVERY_H_
