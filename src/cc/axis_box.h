// Axis-aligned interval profiling — an alternative data-profiling
// primitive behind the same ConstraintSet interface.
//
// The paper's methods are designed to "integrate with other profiling
// tools that produce similar quantitative descriptions of input data"
// (§I) and name this integration as future work (§VI). This module
// supplies the simplest such alternative: one interval constraint per
// numeric attribute (a bounding box), with the same quantitative
// violation semantics as conformance constraints.
//
// The contrast with CC discovery is the point: boxes cannot express
// correlation between attributes, so when groups drift along *combined*
// directions (the situation motivating CCs), box profiles stay wide and
// lose discriminative power. The profiler-ablation bench measures this.

#ifndef FAIRDRIFT_CC_AXIS_BOX_H_
#define FAIRDRIFT_CC_AXIS_BOX_H_

#include "cc/constraint.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Tuning knobs for axis-box discovery.
struct AxisBoxOptions {
  /// With use_quantiles = false, bounds are mean ± bound_sigma * stddev
  /// of each attribute (mirroring CC discovery's bound rule).
  double bound_sigma = 1.75;
  /// With use_quantiles = true, bounds are the [quantile_low,
  /// 1 - quantile_low] empirical quantiles per attribute — robust to
  /// outliers, at the price of a fixed coverage level.
  bool use_quantiles = false;
  double quantile_low = 0.05;
};

/// Derives one interval constraint per numeric attribute of
/// `numeric_data` (tuples x attributes). The result is a regular
/// ConstraintSet — violations, signed margins, and every consumer
/// (DIFFAIR routing, CONFAIR boosts) work unchanged. Importance weights
/// follow the same low-variance-is-important rule as CC discovery.
Result<ConstraintSet> DiscoverAxisBoxConstraints(
    const Matrix& numeric_data, const AxisBoxOptions& options = {});

}  // namespace fairdrift

#endif  // FAIRDRIFT_CC_AXIS_BOX_H_
