// Linear projections over numeric attributes.
//
// A conformance constraint bounds the value of a projection
// F(x) = sum_j coeffs[j] * x[j] + offset. Discovery produces projections in
// the *raw* attribute space (standardization is folded into the
// coefficients), so serving tuples can be evaluated without carrying the
// profiling statistics around.

#ifndef FAIRDRIFT_CC_PROJECTION_H_
#define FAIRDRIFT_CC_PROJECTION_H_

#include <vector>

#include "linalg/matrix.h"

namespace fairdrift {

/// Affine functional over numeric attributes: F(x) = coeffs . x + offset.
struct Projection {
  std::vector<double> coeffs;
  double offset = 0.0;

  /// Applies the projection to a raw attribute row.
  double Apply(const std::vector<double>& row) const;

  /// Applies the projection to a raw attribute span of coeffs.size()
  /// entries (the allocation-free form the hot query loops use).
  double Apply(const double* row) const;

  /// Applies the projection to row `r` of `data`.
  double ApplyRow(const Matrix& data, size_t r) const;

  /// Projection values for every row of `data`.
  std::vector<double> ApplyAll(const Matrix& data) const;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_CC_PROJECTION_H_
