#include "cc/projection.h"

#include <cassert>

namespace fairdrift {

double Projection::Apply(const std::vector<double>& row) const {
  assert(row.size() == coeffs.size());
  return Apply(row.data());
}

double Projection::Apply(const double* row) const {
  double acc = offset;
  for (size_t j = 0; j < coeffs.size(); ++j) acc += coeffs[j] * row[j];
  return acc;
}

double Projection::ApplyRow(const Matrix& data, size_t r) const {
  assert(data.cols() == coeffs.size());
  assert(r < data.rows());
  return Apply(data.RowPtr(r));
}

std::vector<double> Projection::ApplyAll(const Matrix& data) const {
  std::vector<double> out(data.rows());
  for (size_t r = 0; r < data.rows(); ++r) out[r] = ApplyRow(data, r);
  return out;
}

}  // namespace fairdrift
