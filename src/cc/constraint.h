// Conformance constraints and their quantitative violation semantics.
//
// A constraint phi is `lb <= F(X) <= ub`; a ConstraintSet Phi is the
// conjunction of several such constraints with importance weights q_i
// (sum q_i = 1). The quantitative violation of a tuple t follows Eq. (1)
// of the paper (Yang & Meliou, after Fariha et al.):
//
//   [[Phi]](t)  = sum_i q_i * [[phi_i]](t)
//   [[phi_i]](t) = eta(dist(F_i, t) / sigma(F_i))
//   dist(F_i,t) = max(0, F_i(t) - ub_i, lb_i - F_i(t))
//   eta(x)      = 1 - exp(-x)
//
// A tuple with zero violation *satisfies* the set (Boolean semantics).

#ifndef FAIRDRIFT_CC_CONSTRAINT_H_
#define FAIRDRIFT_CC_CONSTRAINT_H_

#include <string>
#include <vector>

#include "cc/projection.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// One bounded projection: lb <= F(X) <= ub.
struct ConformanceConstraint {
  Projection projection;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  /// Standard deviation of the projection over the profiled data; scales
  /// distances in the violation semantics (floored at a small epsilon).
  double stddev = 1.0;
  /// Importance weight q_i; the owning ConstraintSet keeps sum q_i = 1.
  double importance = 1.0;

  /// dist(F, t): how far the projection value falls outside the bounds.
  double Distance(const std::vector<double>& row) const;
  double Distance(const double* row) const;  ///< span form, no copies

  /// [[phi]](t) = 1 - exp(-dist/sigma), in [0, 1).
  double Violation(const std::vector<double>& row) const;
  double Violation(const double* row) const;  ///< span form, no copies

  /// Signed, sigma-scaled margin: positive distance beyond the bounds, or
  /// *negative* depth inside them (how comfortably the tuple conforms).
  /// Used by DIFFAIR's router to break zero-violation ties in regions
  /// where several cells' constraints all hold.
  double SignedMargin(const std::vector<double>& row) const;
  double SignedMargin(const double* row) const;  ///< span form, no copies

  /// Boolean semantics: inside the bounds.
  bool Satisfies(const std::vector<double>& row) const;
  bool Satisfies(const double* row) const;  ///< span form, no copies

  /// Pretty "lb <= c1*x1 + ... <= ub" rendering for reports.
  std::string ToString(const std::vector<std::string>& attr_names = {}) const;
};

/// Conjunction of conformance constraints with quantitative semantics.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Builds a set, normalizing importances to sum to 1. Fails when the
  /// constraint list is empty or the importance mass is non-positive.
  static Result<ConstraintSet> Create(
      std::vector<ConformanceConstraint> constraints);

  /// Rebuilds a set from *already-normalized* constraints without
  /// renormalizing. Deserialization only (serve/snapshot_io.cc): a stored
  /// set's importances sum to 1 up to rounding, and dividing by that
  /// near-1 sum again would perturb the weights bitwise — breaking the
  /// cross-process determinism contract. Fails on an empty list.
  static Result<ConstraintSet> RestoreNormalized(
      std::vector<ConformanceConstraint> constraints);

  size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }
  const ConformanceConstraint& constraint(size_t i) const {
    return constraints_[i];
  }

  /// [[Phi]](t): importance-weighted violation in [0, 1).
  double Violation(const std::vector<double>& row) const;
  double Violation(const double* row) const;  ///< span form, no copies

  /// Importance-weighted signed margin (see
  /// ConformanceConstraint::SignedMargin); equals 0 exactly on the bound
  /// surface, negative strictly inside every constraint.
  double SignedMargin(const std::vector<double>& row) const;
  double SignedMargin(const double* row) const;  ///< span form, no copies

  /// Violations for every row of `data`.
  std::vector<double> ViolationAll(const Matrix& data) const;

  /// Boolean semantics: all member constraints satisfied.
  bool Satisfies(const std::vector<double>& row) const;
  bool Satisfies(const double* row) const;  ///< span form, no copies

  /// Number of attributes the projections expect.
  size_t input_dim() const {
    return constraints_.empty() ? 0 : constraints_[0].projection.coeffs.size();
  }

 private:
  std::vector<ConformanceConstraint> constraints_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_CC_CONSTRAINT_H_
