// Human-readable explanations of conformance constraints and violations.
//
// The paper argues non-invasive interventions are "explicit and easy to
// interpret and audit" (§I). This module backs that claim: it renders a
// discovered constraint set and decomposes a tuple's quantitative
// violation into per-constraint contributions, so an auditor can see
// *which* learned relationship a serving tuple breaks and by how much.

#ifndef FAIRDRIFT_CC_EXPLAIN_H_
#define FAIRDRIFT_CC_EXPLAIN_H_

#include <string>
#include <vector>

#include "cc/constraint.h"

namespace fairdrift {

/// One constraint's share of a tuple's violation.
struct ViolationContribution {
  size_t constraint_index = 0;
  double projection_value = 0.0;  ///< F_i(t)
  double distance = 0.0;          ///< dist(F_i, t), 0 when inside bounds
  double violation = 0.0;         ///< [[phi_i]](t)
  double weighted = 0.0;          ///< q_i * [[phi_i]](t)
};

/// Per-constraint breakdown of [[Phi]](t), sorted by descending weighted
/// contribution. The weighted column sums to ConstraintSet::Violation.
std::vector<ViolationContribution> ExplainViolation(
    const ConstraintSet& constraints, const std::vector<double>& row);

/// Multi-line rendering of a constraint set, one constraint per line,
/// most important (highest q_i) first. `attr_names` labels the attribute
/// coefficients (falls back to x1..xq).
std::string DescribeConstraintSet(const ConstraintSet& constraints,
                                  const std::vector<std::string>& attr_names = {});

/// Multi-line audit report for one tuple: total violation plus the
/// top `max_constraints` contributing constraints with their bounds and
/// observed projection values.
std::string ExplainViolationReport(
    const ConstraintSet& constraints, const std::vector<double>& row,
    const std::vector<std::string>& attr_names = {},
    size_t max_constraints = 3);

}  // namespace fairdrift

#endif  // FAIRDRIFT_CC_EXPLAIN_H_
