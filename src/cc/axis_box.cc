#include "cc/axis_box.h"

#include <algorithm>
#include <cmath>

#include "linalg/stats.h"

namespace fairdrift {

namespace {
constexpr double kEps = 1e-12;
}

Result<ConstraintSet> DiscoverAxisBoxConstraints(const Matrix& numeric_data,
                                                 const AxisBoxOptions& options) {
  size_t n = numeric_data.rows();
  size_t q = numeric_data.cols();
  if (n == 0 || q == 0) {
    return Status::InvalidArgument(
        "DiscoverAxisBoxConstraints: no tuples or no numeric attributes");
  }
  if (options.use_quantiles &&
      (options.quantile_low < 0.0 || options.quantile_low >= 0.5)) {
    return Status::InvalidArgument(
        "DiscoverAxisBoxConstraints: quantile_low must lie in [0, 0.5)");
  }

  std::vector<ConformanceConstraint> constraints;
  constraints.reserve(q);
  std::vector<double> sigmas;
  sigmas.reserve(q);
  for (size_t j = 0; j < q; ++j) {
    std::vector<double> values = numeric_data.Col(j);
    ConformanceConstraint c;
    c.projection.coeffs.assign(q, 0.0);
    c.projection.coeffs[j] = 1.0;
    c.projection.offset = 0.0;
    c.stddev = StdDev(values);
    if (options.use_quantiles) {
      c.lower_bound = Quantile(values, options.quantile_low);
      c.upper_bound = Quantile(values, 1.0 - options.quantile_low);
    } else {
      double mu = Mean(values);
      c.lower_bound = mu - options.bound_sigma * c.stddev;
      c.upper_bound = mu + options.bound_sigma * c.stddev;
    }
    sigmas.push_back(c.stddev);
    constraints.push_back(std::move(c));
  }

  // Same importance rule as CC discovery: the lower an attribute's spread,
  // the more discriminative its interval.
  double smin = *std::min_element(sigmas.begin(), sigmas.end());
  double smax = *std::max_element(sigmas.begin(), sigmas.end());
  double denom = smin + smax + kEps;
  for (size_t j = 0; j < constraints.size(); ++j) {
    constraints[j].importance = std::max(1.0 - sigmas[j] / denom, kEps);
  }
  return ConstraintSet::Create(std::move(constraints));
}

}  // namespace fairdrift
