#include "cc/constraint.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace fairdrift {

namespace {
/// Floor for sigma in the violation denominator; prevents division by zero
/// on degenerate (constant) projections.
constexpr double kSigmaFloor = 1e-9;
}  // namespace

double ConformanceConstraint::Distance(const std::vector<double>& row) const {
  return Distance(row.data());
}

double ConformanceConstraint::Distance(const double* row) const {
  double v = projection.Apply(row);
  return std::max({0.0, v - upper_bound, lower_bound - v});
}

double ConformanceConstraint::Violation(const std::vector<double>& row) const {
  return Violation(row.data());
}

double ConformanceConstraint::Violation(const double* row) const {
  double dist = Distance(row);
  if (dist <= 0.0) return 0.0;
  double sigma = std::max(stddev, kSigmaFloor);
  return 1.0 - std::exp(-dist / sigma);
}

bool ConformanceConstraint::Satisfies(const std::vector<double>& row) const {
  return Satisfies(row.data());
}

bool ConformanceConstraint::Satisfies(const double* row) const {
  return Distance(row) <= 0.0;
}

double ConformanceConstraint::SignedMargin(
    const std::vector<double>& row) const {
  return SignedMargin(row.data());
}

double ConformanceConstraint::SignedMargin(const double* row) const {
  double v = projection.Apply(row);
  double sigma = std::max(stddev, kSigmaFloor);
  double above = v - upper_bound;
  double below = lower_bound - v;
  double outside = std::max(above, below);
  // Positive when outside (scaled distance past the nearer bound),
  // negative when inside (depth to the nearer bound).
  return outside / sigma;
}

std::string ConformanceConstraint::ToString(
    const std::vector<std::string>& attr_names) const {
  std::vector<std::string> terms;
  for (size_t j = 0; j < projection.coeffs.size(); ++j) {
    if (projection.coeffs[j] == 0.0) continue;
    std::string attr = j < attr_names.size()
                           ? attr_names[j]
                           : StrFormat("x%zu", j + 1);
    terms.push_back(
        StrFormat("%+.3f*%s", projection.coeffs[j], attr.c_str()));
  }
  if (projection.offset != 0.0) {
    terms.push_back(StrFormat("%+.3f", projection.offset));
  }
  std::string body = terms.empty() ? "0" : Join(terms, " ");
  return StrFormat("%.3f <= %s <= %.3f  (sigma=%.4f, q=%.3f)", lower_bound,
                   body.c_str(), upper_bound, stddev, importance);
}

Result<ConstraintSet> ConstraintSet::Create(
    std::vector<ConformanceConstraint> constraints) {
  if (constraints.empty()) {
    return Status::InvalidArgument("ConstraintSet: no constraints");
  }
  double total = 0.0;
  for (const auto& c : constraints) {
    if (c.importance < 0.0) {
      return Status::InvalidArgument("ConstraintSet: negative importance");
    }
    total += c.importance;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument(
        "ConstraintSet: importance mass must be positive");
  }
  ConstraintSet set;
  set.constraints_ = std::move(constraints);
  for (auto& c : set.constraints_) c.importance /= total;
  return set;
}

Result<ConstraintSet> ConstraintSet::RestoreNormalized(
    std::vector<ConformanceConstraint> constraints) {
  if (constraints.empty()) {
    return Status::InvalidArgument("ConstraintSet: no constraints");
  }
  for (const auto& c : constraints) {
    if (c.importance < 0.0) {
      return Status::InvalidArgument("ConstraintSet: negative importance");
    }
  }
  ConstraintSet set;
  set.constraints_ = std::move(constraints);
  return set;
}

double ConstraintSet::Violation(const std::vector<double>& row) const {
  return Violation(row.data());
}

double ConstraintSet::Violation(const double* row) const {
  double acc = 0.0;
  for (const auto& c : constraints_) {
    acc += c.importance * c.Violation(row);
  }
  return acc;
}

double ConstraintSet::SignedMargin(const std::vector<double>& row) const {
  return SignedMargin(row.data());
}

double ConstraintSet::SignedMargin(const double* row) const {
  double acc = 0.0;
  for (const auto& c : constraints_) {
    acc += c.importance * c.SignedMargin(row);
  }
  return acc;
}

std::vector<double> ConstraintSet::ViolationAll(const Matrix& data) const {
  std::vector<double> out(data.rows());
  for (size_t r = 0; r < data.rows(); ++r) {
    out[r] = Violation(data.RowPtr(r));
  }
  return out;
}

bool ConstraintSet::Satisfies(const std::vector<double>& row) const {
  return Satisfies(row.data());
}

bool ConstraintSet::Satisfies(const double* row) const {
  for (const auto& c : constraints_) {
    if (!c.Satisfies(row)) return false;
  }
  return true;
}

}  // namespace fairdrift
