#include "cc/explain.h"

#include <algorithm>

#include "util/string_util.h"

namespace fairdrift {

std::vector<ViolationContribution> ExplainViolation(
    const ConstraintSet& constraints, const std::vector<double>& row) {
  std::vector<ViolationContribution> out;
  out.reserve(constraints.size());
  for (size_t i = 0; i < constraints.size(); ++i) {
    const ConformanceConstraint& c = constraints.constraint(i);
    ViolationContribution contrib;
    contrib.constraint_index = i;
    contrib.projection_value = c.projection.Apply(row);
    contrib.distance = c.Distance(row);
    contrib.violation = c.Violation(row);
    contrib.weighted = c.importance * contrib.violation;
    out.push_back(contrib);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ViolationContribution& a,
                      const ViolationContribution& b) {
                     return a.weighted > b.weighted;
                   });
  return out;
}

std::string DescribeConstraintSet(
    const ConstraintSet& constraints,
    const std::vector<std::string>& attr_names) {
  // Order by importance so the most characteristic relationships lead.
  std::vector<size_t> order(constraints.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return constraints.constraint(a).importance >
           constraints.constraint(b).importance;
  });
  std::string out;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    out += StrFormat("  [%zu] ", rank + 1);
    out += constraints.constraint(order[rank]).ToString(attr_names);
    out += "\n";
  }
  return out;
}

std::string ExplainViolationReport(
    const ConstraintSet& constraints, const std::vector<double>& row,
    const std::vector<std::string>& attr_names, size_t max_constraints) {
  double total = constraints.Violation(row);
  std::string out =
      StrFormat("total violation [[Phi]](t) = %.4f (%s)\n", total,
                total == 0.0 ? "tuple conforms" : "tuple drifts");
  std::vector<ViolationContribution> contribs =
      ExplainViolation(constraints, row);
  size_t shown = 0;
  for (const ViolationContribution& c : contribs) {
    if (shown >= max_constraints) break;
    if (c.weighted <= 0.0 && shown > 0) break;
    const ConformanceConstraint& phi =
        constraints.constraint(c.constraint_index);
    out += StrFormat(
        "  phi_%zu contributes %.4f: F(t) = %.3f vs bounds [%.3f, %.3f] "
        "(dist %.3f)\n",
        c.constraint_index, c.weighted, c.projection_value, phi.lower_bound,
        phi.upper_bound, c.distance);
    out += "    " + phi.ToString(attr_names) + "\n";
    ++shown;
  }
  return out;
}

}  // namespace fairdrift
