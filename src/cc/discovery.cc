#include "cc/discovery.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace fairdrift {

namespace {
constexpr double kEps = 1e-12;
}

Result<ConstraintSet> DiscoverConstraints(const Matrix& numeric_data,
                                          const CcOptions& options) {
  size_t n = numeric_data.rows();
  size_t q = numeric_data.cols();
  if (n == 0 || q == 0) {
    return Status::InvalidArgument(
        "DiscoverConstraints: no tuples or no numeric attributes");
  }

  // Standardize columns; constant columns are centered only. Projections
  // are later mapped back to the raw attribute space.
  std::vector<double> mu = ColumnMeans(numeric_data);
  std::vector<double> sd = ColumnStdDevs(numeric_data);
  Matrix z(n, q);
  for (size_t i = 0; i < n; ++i) {
    const double* src = numeric_data.RowPtr(i);
    double* dst = z.RowPtr(i);
    for (size_t j = 0; j < q; ++j) {
      dst[j] = sd[j] > 0.0 ? (src[j] - mu[j]) / sd[j] : 0.0;
    }
  }

  // Principal directions of the standardized data, ascending variance.
  Matrix directions;
  std::vector<double> variances;
  if (n >= 2) {
    Result<Matrix> cov = Covariance(z);
    if (!cov.ok()) return cov.status();
    Result<EigenDecomposition> eig = JacobiEigenDecomposition(cov.value());
    if (!eig.ok()) return eig.status();
    directions = std::move(eig.value().vectors);
    variances = std::move(eig.value().values);
  } else {
    // Single tuple: fall back to axis-aligned point constraints.
    directions = Matrix::Identity(q);
    variances.assign(q, 0.0);
  }

  // Optional projection filtering (lowest-variance directions first; the
  // eigensolver already returns them in ascending order).
  size_t keep = directions.rows();
  if (options.max_projections > 0) {
    keep = std::min(keep, options.max_projections);
  }
  if (options.max_variance_ratio > 0.0) {
    double base = std::max(variances[0], kEps);
    size_t limit = 0;
    while (limit < keep &&
           variances[limit] <= options.max_variance_ratio * base) {
      ++limit;
    }
    keep = std::max<size_t>(1, limit);
  }

  std::vector<ConformanceConstraint> constraints;
  constraints.reserve(keep);
  std::vector<double> sigmas;
  sigmas.reserve(keep);
  for (size_t k = 0; k < keep; ++k) {
    ConformanceConstraint c;
    // Map direction from standardized space to raw attribute space:
    // v . z = sum_j v_j (x_j - mu_j) / sd_j. Constant attributes (sd = 0)
    // keep the unscaled centered term so deviations from the constant
    // value still register at serving time.
    c.projection.coeffs.resize(q, 0.0);
    double offset = 0.0;
    for (size_t j = 0; j < q; ++j) {
      double vj = directions.At(k, j);
      double scale = sd[j] > 0.0 ? sd[j] : 1.0;
      c.projection.coeffs[j] = vj / scale;
      offset -= vj * mu[j] / scale;
    }
    c.projection.offset = offset;

    std::vector<double> values = c.projection.ApplyAll(numeric_data);
    double pmu = Mean(values);
    double psd = StdDev(values);
    c.stddev = psd;
    c.lower_bound = pmu - options.bound_sigma * psd;
    c.upper_bound = pmu + options.bound_sigma * psd;
    sigmas.push_back(psd);
    constraints.push_back(std::move(c));
  }

  // Importance: lower projection stddev => more discriminative constraint.
  // We use q~_k = 1 - sigma_k / (sigma_min + sigma_max + eps): equal sigmas
  // yield equal importances, while a near-constant projection dominates a
  // loose one. (The paper's raw formula divides by (max - min), which
  // degenerates on isotropic data; see DESIGN.md §6.1.)
  double smin = *std::min_element(sigmas.begin(), sigmas.end());
  double smax = *std::max_element(sigmas.begin(), sigmas.end());
  double denom = smin + smax + kEps;
  for (size_t k = 0; k < constraints.size(); ++k) {
    double qk = 1.0 - sigmas[k] / denom;
    constraints[k].importance = std::max(qk, kEps);
  }
  return ConstraintSet::Create(std::move(constraints));
}

}  // namespace fairdrift
