// Reusable thread pool and data-parallel loops.
//
// The density-based drift scoring (Algorithm 3's KDE ranking, DIFFAIR's
// per-tuple routing, CONFAIR's conformance scans) is embarrassingly
// parallel over rows; this is the substrate every batched hot path routes
// through. Design constraints, in order:
//
//   1. Determinism: ParallelFor/ParallelMap assign each index to exactly
//      one invocation that writes only its own output slot, so results are
//      bitwise identical across worker counts (including 0).
//   2. Exceptions: the first exception thrown by a body is captured and
//      rethrown on the calling thread after the loop drains; remaining
//      chunks are abandoned promptly.
//   3. Nesting: a parallel loop entered from inside a pool worker runs
//      inline on that worker instead of re-enqueueing, so nested
//      parallelism (e.g. a parallel per-cell filter whose cells each call
//      the parallel KDE) cannot deadlock the pool.

#ifndef FAIRDRIFT_UTIL_PARALLEL_H_
#define FAIRDRIFT_UTIL_PARALLEL_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace fairdrift {

/// Completion token of a task handed to ThreadPool::Submit. Copyable: every
/// copy observes the same underlying task. Waiting rethrows the task's
/// exception (if any) on the waiting thread, once per Wait call that
/// observes completion.
///
/// Do not Wait on a token from inside a pool worker of the same pool: the
/// submitted task may be queued behind the waiter, which would deadlock a
/// fully busy pool. (Submitting from a worker is fine — only waiting is
/// restricted.)
class Completion {
 public:
  /// An already-completed token (what Submit returns for inline execution).
  Completion();

  /// True once the task finished (normally or by exception).
  bool done() const;

  /// Blocks until the task finishes; rethrows its exception if it threw.
  void Wait() const;

  /// Waits up to `timeout`; returns done(). Rethrows on observed failure.
  bool WaitFor(std::chrono::nanoseconds timeout) const;

 private:
  friend class ThreadPool;

  struct State {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
  };

  std::shared_ptr<State> state_;
};

/// Worker count used by the global pool: the `FAIRDRIFT_THREADS` environment
/// variable when set to a non-negative integer (0 forces fully inline
/// execution), else hardware_concurrency().
size_t DefaultParallelism();

/// Fixed-size pool of worker threads with a shared task queue.
///
/// A pool with 0 workers is valid and degrades every operation to inline
/// execution on the calling thread — callers never branch on pool size.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = fully inline pool).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs `body(i)` for every i in [begin, end). Blocks until all indices
  /// complete (or an exception aborts the loop; see class comment).
  /// `grain` indices are handed to a worker at a time; 0 picks a grain
  /// that yields ~4 chunks per worker.
  void For(size_t begin, size_t end, const std::function<void(size_t)>& body,
           size_t grain = 0);

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  /// Asynchronously runs `task` on a worker and returns a completion token
  /// the caller (or any copy holder) can Wait on. A 0-worker pool runs the
  /// task inline before returning (the token comes back already done), so
  /// callers never branch on pool size. Unlike For(), Submit never blocks:
  /// it is the entry point for request-driven work (the serving
  /// subsystem's batch dispatch) as opposed to fork-join loops.
  Completion Submit(std::function<void()> task);

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> task);

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  bool shutdown_ = false;
};

/// The process-wide pool (DefaultParallelism() workers, created on first
/// use). All batched library entry points default to this pool when the
/// caller does not pass one.
ThreadPool& GlobalThreadPool();

/// Runs `body(i)` for i in [begin, end) on `pool` (global pool when null).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 ThreadPool* pool = nullptr);

/// ParallelFor that never touches the task machinery on an inline pool:
/// when the resolved pool has 0 workers the loop runs as a plain serial
/// `for` — no std::function conversion, no task enqueue, zero heap
/// allocations. Results are bitwise identical either way (each index
/// writes only its own slots), so the serving hot paths use this to stay
/// allocation-free when scored inline while still fanning out on real
/// pools.
template <typename Body>
void ParallelForEach(size_t begin, size_t end, ThreadPool* pool, Body&& body) {
  ThreadPool* p = pool != nullptr ? pool : &GlobalThreadPool();
  if (p->num_threads() == 0) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  p->For(begin, end, body);
}

/// Block size of the deterministic reductions below. Fixed (never derived
/// from the worker count) so partial results depend only on the range.
inline constexpr size_t kReductionChunk = 1024;

/// Cap on the number of reduction blocks when a caller's per-block state
/// is expensive (e.g. a Hessian partial per block): BoundedReductionChunk
/// grows the block size with n so at most this many blocks exist.
inline constexpr size_t kMaxReductionSlots = 256;

/// Number of `chunk_size`-sized blocks covering n indices.
inline size_t ReductionChunks(size_t n, size_t chunk_size = kReductionChunk) {
  return (n + chunk_size - 1) / chunk_size;
}

/// Block size for a bounded-slot reduction over n indices: at least
/// kReductionChunk, and large enough that there are at most
/// kMaxReductionSlots blocks. A function of n only, so determinism across
/// worker counts is preserved.
inline size_t BoundedReductionChunk(size_t n) {
  return std::max(kReductionChunk, (n + kMaxReductionSlots - 1) /
                                       kMaxReductionSlots);
}

/// Runs `body(chunk, chunk_begin, chunk_end)` over fixed-size blocks of
/// [begin, end). Block boundaries depend only on the range and on
/// `chunk_size` — NOT on the pool — so a body that writes one output slot
/// per chunk and a caller that reduces those slots in chunk order produce
/// bitwise-identical results for every worker count (the pool's
/// determinism contract, extended to reductions). `chunk_size` must
/// itself be worker-count-independent (kReductionChunk, or
/// BoundedReductionChunk(n) for expensive per-block state).
void ParallelForChunks(
    size_t begin, size_t end,
    const std::function<void(size_t chunk, size_t chunk_begin,
                             size_t chunk_end)>& body,
    ThreadPool* pool = nullptr, size_t chunk_size = kReductionChunk);

/// Deterministic parallel sum of term(i) over [begin, end): fixed-slot
/// partial sums (one per kReductionChunk block, each accumulated in index
/// order) reduced in block order on the calling thread. The result is
/// bitwise identical for every worker count, though its association
/// differs from a plain sequential loop.
double ParallelSum(size_t begin, size_t end,
                   const std::function<double(size_t)>& term,
                   ThreadPool* pool = nullptr);

/// Maps `fn` over [0, n) into a vector. `T` must be default-constructible;
/// out[i] is written only by the invocation that computed fn(i), so the
/// result is identical for every worker count. T = bool is rejected:
/// std::vector<bool> packs bits, so adjacent slots share a byte and
/// concurrent writes would race — use uint8_t.
template <typename T>
std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& fn,
                           ThreadPool* pool = nullptr) {
  static_assert(!std::is_same<T, bool>::value,
                "ParallelMap<bool> races on std::vector<bool>'s packed "
                "bits; use uint8_t");
  std::vector<T> out(n);
  ParallelFor(
      0, n, [&](size_t i) { out[i] = fn(i); }, pool);
  return out;
}

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_PARALLEL_H_
