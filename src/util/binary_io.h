// Bounds-checked binary (de)serialization primitives.
//
// The versioned on-disk artifacts (snapshot files, see
// serve/snapshot_io.h) are built from fixed-width little-endian scalars:
// doubles travel as their IEEE-754 bit patterns, so a value read back is
// *bitwise identical* to the value written — the property the snapshot
// determinism contract extends across process boundaries.
//
// BinaryWriter appends to an in-memory buffer (the caller frames and
// writes the file); BinaryReader walks a byte span and fails with a typed
// Status::DataLoss on any out-of-bounds read, so truncated or corrupted
// payloads surface as errors instead of undefined behavior.

#ifndef FAIRDRIFT_UTIL_BINARY_IO_H_
#define FAIRDRIFT_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fairdrift {

/// Append-only little-endian byte sink.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  /// Raw IEEE-754 bits; NaNs and signed zeros round-trip exactly.
  void WriteDouble(double v);
  /// u64 length followed by the bytes.
  void WriteString(const std::string& s);
  void WriteDoubleVector(const std::vector<double>& v);
  /// u64 length followed by the elements (size_t travels as u64).
  void WriteU64Vector(const std::vector<size_t>& v);
  void WriteI32Vector(const std::vector<int32_t>& v);

  const std::string& buffer() const { return buffer_; }
  /// Moves the accumulated bytes out (rvalue-only; avoids copying large
  /// payloads when handing the buffer to a frame or file writer).
  std::string TakeBuffer() && { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Forward-only little-endian byte source over a borrowed buffer.
class BinaryReader {
 public:
  /// `data` must outlive the reader.
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::string& data)
      : BinaryReader(data.data(), data.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubleVector();
  Result<std::vector<size_t>> ReadU64Vector();
  Result<std::vector<int32_t>> ReadI32Vector();

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }

 private:
  /// Advances past `n` bytes, failing with DataLoss when fewer remain.
  Result<const char*> Take(size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// FNV-1a over a byte buffer; the snapshot files carry it as a trailing
/// integrity check so random corruption is detected, not mis-parsed.
uint64_t Fnv1aHash(const char* data, size_t size);

/// Writes `payload` to `path` directly (a crash mid-write leaves a
/// partial file, which readers catch via the checksum).
Status WriteFileBytes(const std::string& path, const std::string& payload);

/// Writes `payload` to `<path>.tmp.<pid>` and renames it over `path`.
/// rename(2) is atomic on POSIX, so a concurrent reader (the snapshot
/// hot-reload watcher) observes either the previous complete file or the
/// new complete file — never a partially written one.
Status WriteFileBytesAtomic(const std::string& path,
                            const std::string& payload);

/// Reads the whole file at `path`.
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_BINARY_IO_H_
