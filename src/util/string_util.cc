#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace fairdrift {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& ch : out) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace fairdrift
