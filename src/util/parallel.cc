#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace fairdrift {

namespace {

// Pool the current thread is a worker of (nullptr on external threads).
// Used to detect nested parallel loops and run them inline.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

Completion::Completion() : state_(std::make_shared<State>()) {
  state_->done = true;
}

bool Completion::done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void Completion::Wait() const {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  if (state_->error) {
    std::exception_ptr error = state_->error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool Completion::WaitFor(std::chrono::nanoseconds timeout) const {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->cv.wait_for(lock, timeout, [this] { return state_->done; })) {
    return false;
  }
  if (state_->error) {
    std::exception_ptr error = state_->error;
    lock.unlock();
    std::rethrow_exception(error);
  }
  return true;
}

size_t DefaultParallelism() {
  if (const char* env = std::getenv("FAIRDRIFT_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

Completion ThreadPool::Submit(std::function<void()> task) {
  Completion completion;
  auto state = completion.state_;
  auto run = [state, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done = true;
      state->error = error;
    }
    state->cv.notify_all();
  };
  if (threads_.empty()) {
    run();  // inline pool: execute on the caller, token returns done
    return completion;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->done = false;
  }
  Enqueue(std::move(run));
  return completion;
}

void ThreadPool::For(size_t begin, size_t end,
                     const std::function<void(size_t)>& body, size_t grain) {
  if (begin >= end) return;
  size_t n = end - begin;
  // Inline paths: no workers, a trivial range, or a nested loop on a worker
  // (re-enqueueing from a worker could deadlock with every worker waiting).
  if (threads_.empty() || n == 1 || OnWorkerThread()) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  if (grain == 0) {
    grain = std::max<size_t>(1, n / (threads_.size() * 4));
  }

  // Shared loop state. Lives on the caller's stack: For() only returns
  // after every helper task has finished with it.
  struct LoopState {
    std::atomic<size_t> next;
    std::atomic<bool> abort{false};
    std::exception_ptr error;
    size_t pending = 0;
    std::mutex mu;
    std::condition_variable done;
  } state;
  state.next.store(begin, std::memory_order_relaxed);

  auto run_chunks = [&state, &body, end, grain] {
    while (!state.abort.load(std::memory_order_relaxed)) {
      size_t chunk = state.next.fetch_add(grain, std::memory_order_relaxed);
      if (chunk >= end) break;
      size_t chunk_end = std::min(chunk + grain, end);
      try {
        for (size_t i = chunk; i < chunk_end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.error) state.error = std::current_exception();
        state.abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  size_t num_chunks = (n + grain - 1) / grain;
  // The caller participates, so helpers beyond num_chunks - 1 would only
  // ever see an exhausted counter.
  size_t helpers = std::min(threads_.size(), num_chunks - 1);
  state.pending = helpers;
  for (size_t t = 0; t < helpers; ++t) {
    Enqueue([&state, &run_chunks] {
      run_chunks();
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.pending == 0) state.done.notify_one();
    });
  }
  run_chunks();
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.pending == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool(DefaultParallelism());
  return *pool;
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body, ThreadPool* pool) {
  (pool ? *pool : GlobalThreadPool()).For(begin, end, body);
}

void ParallelForChunks(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& body,
    ThreadPool* pool, size_t chunk_size) {
  if (begin >= end) return;
  size_t chunks = ReductionChunks(end - begin, chunk_size);
  ParallelFor(
      0, chunks,
      [&](size_t c) {
        size_t b = begin + c * chunk_size;
        size_t e = std::min(end, b + chunk_size);
        body(c, b, e);
      },
      pool);
}

double ParallelSum(size_t begin, size_t end,
                   const std::function<double(size_t)>& term,
                   ThreadPool* pool) {
  if (begin >= end) return 0.0;
  std::vector<double> partial(ReductionChunks(end - begin), 0.0);
  ParallelForChunks(
      begin, end,
      [&](size_t c, size_t b, size_t e) {
        double acc = 0.0;
        for (size_t i = b; i < e; ++i) acc += term(i);
        partial[c] = acc;
      },
      pool);
  double total = 0.0;
  for (double v : partial) total += v;
  return total;
}

}  // namespace fairdrift
