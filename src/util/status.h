// Status / Result error-handling primitives.
//
// The library avoids exceptions on expected failure paths (bad input shapes,
// empty groups, singular systems) and instead returns a Status, following the
// idiom used by production database engines. Programming errors (violated
// internal invariants) are still guarded by assertions.

#ifndef FAIRDRIFT_UTIL_STATUS_H_
#define FAIRDRIFT_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fairdrift {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed malformed input (shape mismatch, ...).
  kNotFound,          ///< A referenced column/group/file does not exist.
  kFailedPrecondition,///< Object not in the required state (e.g. unfitted model).
  kOutOfRange,        ///< Index or parameter outside its valid range.
  kNumericalError,    ///< Divergence, singular matrix, NaN encountered.
  kInternal,          ///< Invariant violation that is a library bug.
  kIoError,           ///< Filesystem / parsing failure.
  kUnavailable,       ///< Transient overload / shutdown; the caller may retry.
  kDeadlineExceeded,  ///< The request's deadline passed before completion.
  kDataLoss,          ///< Stored artifact corrupted, truncated, or of an
                      ///< unsupported format version.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given error code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. On success holds T; on failure holds the Status.
///
/// Usage:
///   Result<Matrix> r = Matrix::Create(...);
///   if (!r.ok()) return r.status();
///   Matrix m = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK status out of the enclosing function.
#define FAIRDRIFT_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::fairdrift::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_STATUS_H_
