#include "util/fault.h"

#include <cstdlib>
#include <thread>
#include <vector>

#include "util/string_util.h"

namespace fairdrift {
namespace {

// SplitMix64 finalizer — the per-hit coin must be a high-quality mix of
// (seed, site, index) so neighbouring hit indices decorrelate.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(const std::string& site) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Deterministic coin for hit `index` at `site` under `seed`: fires iff
// the mixed value, mapped to [0, 1), falls under `probability`.
bool CoinFires(uint64_t seed, uint64_t site_hash, uint64_t index,
               double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  uint64_t v = Mix64(seed ^ Mix64(site_hash ^ Mix64(index)));
  double unit = static_cast<double>(v >> 11) * 0x1.0p-53;
  return unit < probability;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& [site, state] : sites_) {
    state.hits = 0;
    state.fires = 0;
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  for (auto& [site, state] : sites_) {
    state.has_rule = false;
    ++state.wedge_generation;
  }
  wedge_cv_.notify_all();
}

uint64_t FaultInjector::fault_seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

void FaultInjector::SetRule(const std::string& site, const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.rule = rule;
  state.has_rule = true;
}

void FaultInjector::ClearRule(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  it->second.has_rule = false;
  ++it->second.wedge_generation;
  wedge_cv_.notify_all();
}

uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

bool FaultInjector::Hit(const char* site_cstr, uint64_t arg) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::string site(site_cstr);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Unruled sites still count hits so tests can assert coverage.
    SiteState& state = sites_[site];
    ++state.hits;
    return false;
  }
  SiteState& state = it->second;
  uint64_t index = state.hits++;
  if (!state.has_rule) return false;
  const FaultRule& rule = state.rule;
  if (rule.arg.has_value() && *rule.arg != arg) return false;
  if (index < rule.skip) return false;
  if (state.fires >= rule.max_fires) return false;
  if (!CoinFires(seed_, HashSite(site), index, rule.probability)) return false;
  ++state.fires;

  switch (rule.action) {
    case FaultAction::kFail:
      return true;
    case FaultAction::kDelay: {
      auto delay = rule.delay;
      lock.unlock();
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
      return false;
    }
    case FaultAction::kWedge: {
      // Block until the rule is cleared or the injector disarmed; the
      // generation bump distinguishes "released" from spurious wakes.
      uint64_t entered = state.wedge_generation;
      wedge_cv_.wait(lock, [&] {
        auto sit = sites_.find(site);
        return sit == sites_.end() || sit->second.wedge_generation != entered;
      });
      return false;
    }
  }
  return false;
}

Status FaultInjector::ArmFromEnv() {
  const char* seed_env = std::getenv("FAULT_SEED");
  if (seed_env == nullptr || seed_env[0] == '\0') return Status::OK();
  char* end = nullptr;
  uint64_t seed = std::strtoull(seed_env, &end, 10);
  if (end == seed_env || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("FAULT_SEED is not a u64: '%s'", seed_env));
  }

  const char* sites_env = std::getenv("FAULT_SITES");
  std::vector<std::pair<std::string, FaultRule>> rules;
  if (sites_env != nullptr && sites_env[0] != '\0') {
    std::string spec(sites_env);
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t semi = spec.find(';', pos);
      std::string entry = spec.substr(
          pos, semi == std::string::npos ? std::string::npos : semi - pos);
      pos = semi == std::string::npos ? spec.size() : semi + 1;
      if (entry.empty()) continue;

      size_t colon = entry.find(':');
      std::string site = entry.substr(0, colon);
      if (site.empty()) {
        return Status::InvalidArgument(StrFormat("FAULT_SITES entry has no site: '%s'",
                                entry.c_str()));
      }
      FaultRule rule;
      if (colon != std::string::npos) {
        std::string kvs = entry.substr(colon + 1);
        size_t kpos = 0;
        while (kpos < kvs.size()) {
          size_t comma = kvs.find(',', kpos);
          std::string kv = kvs.substr(
              kpos,
              comma == std::string::npos ? std::string::npos : comma - kpos);
          kpos = comma == std::string::npos ? kvs.size() : comma + 1;
          if (kv.empty()) continue;
          size_t eq = kv.find('=');
          if (eq == std::string::npos) {
            return Status::InvalidArgument(StrFormat(
                "FAULT_SITES key without value: '%s'", kv.c_str()));
          }
          std::string key = kv.substr(0, eq);
          std::string val = kv.substr(eq + 1);
          if (key == "action") {
            if (val == "fail") {
              rule.action = FaultAction::kFail;
            } else if (val == "delay") {
              rule.action = FaultAction::kDelay;
            } else if (val == "wedge") {
              rule.action = FaultAction::kWedge;
            } else {
              return Status::InvalidArgument(StrFormat(
                  "FAULT_SITES unknown action: '%s'", val.c_str()));
            }
          } else if (key == "skip") {
            rule.skip = std::strtoull(val.c_str(), nullptr, 10);
          } else if (key == "fires") {
            rule.max_fires = std::strtoull(val.c_str(), nullptr, 10);
          } else if (key == "p") {
            rule.probability = std::strtod(val.c_str(), nullptr);
          } else if (key == "delay_ms") {
            rule.delay = std::chrono::milliseconds(
                std::strtoull(val.c_str(), nullptr, 10));
          } else if (key == "arg") {
            rule.arg = std::strtoull(val.c_str(), nullptr, 10);
          } else {
            return Status::InvalidArgument(StrFormat(
                "FAULT_SITES unknown key: '%s'", key.c_str()));
          }
        }
      }
      rules.emplace_back(std::move(site), rule);
    }
  }

  for (const auto& [site, rule] : rules) SetRule(site, rule);
  Arm(seed);
  return Status::OK();
}

}  // namespace fairdrift
