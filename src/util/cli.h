// Tiny command-line flag parser for the bench and example binaries.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.

#ifndef FAIRDRIFT_UTIL_CLI_H_
#define FAIRDRIFT_UTIL_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace fairdrift {

/// Parsed command-line flags with typed accessors and defaults.
class CliFlags {
 public:
  /// Parses argv. Unknown flags are kept (benches share a common set).
  static CliFlags Parse(int argc, char** argv);

  /// True when --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Integer value of --name or `def` when absent/unparsable.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Double value of --name or `def` when absent/unparsable.
  double GetDouble(const std::string& name, double def) const;

  /// Boolean: present without value or with value in {1,true,yes,on}.
  bool GetBool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_CLI_H_
