#include "util/binary_io.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/fault.h"
#include "util/string_util.h"

namespace fairdrift {

void BinaryWriter::WriteU32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buffer_.append(bytes, 4);
}

void BinaryWriter::WriteU64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buffer_.append(bytes, 8);
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  buffer_.append(s);
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteDouble(x);
}

void BinaryWriter::WriteU64Vector(const std::vector<size_t>& v) {
  WriteU64(v.size());
  for (size_t x : v) WriteU64(static_cast<uint64_t>(x));
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteU64(v.size());
  for (int32_t x : v) WriteI32(x);
}

Result<const char*> BinaryReader::Take(size_t n) {
  if (n > size_ - pos_) {
    return Status::DataLoss(
        StrFormat("binary payload truncated: need %zu bytes at offset %zu, "
                  "have %zu",
                  n, pos_, size_ - pos_));
  }
  const char* p = data_ + pos_;
  pos_ += n;
  return p;
}

Result<uint8_t> BinaryReader::ReadU8() {
  Result<const char*> p = Take(1);
  if (!p.ok()) return p.status();
  return static_cast<uint8_t>((*p.value()));
}

Result<uint32_t> BinaryReader::ReadU32() {
  Result<const char*> p = Take(4);
  if (!p.ok()) return p.status();
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p.value()[i]))
         << (8 * i);
  }
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  Result<const char*> p = Take(8);
  if (!p.ok()) return p.status();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p.value()[i]))
         << (8 * i);
  }
  return v;
}

Result<int32_t> BinaryReader::ReadI32() {
  Result<uint32_t> v = ReadU32();
  if (!v.ok()) return v.status();
  return static_cast<int32_t>(v.value());
}

Result<double> BinaryReader::ReadDouble() {
  Result<uint64_t> bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double v;
  uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  Result<uint64_t> len = ReadU64();
  if (!len.ok()) return len.status();
  Result<const char*> p = Take(len.value());
  if (!p.ok()) return p.status();
  return std::string(p.value(), len.value());
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector() {
  Result<uint64_t> len = ReadU64();
  if (!len.ok()) return len.status();
  // Divide instead of multiplying: a hostile length must not overflow
  // past the guard into a gigantic vector allocation.
  if (len.value() > remaining() / 8) {
    return Status::DataLoss(
        StrFormat("binary payload truncated: vector claims %llu entries",
                  static_cast<unsigned long long>(len.value())));
  }
  std::vector<double> v(len.value());
  for (double& x : v) {
    Result<double> r = ReadDouble();
    if (!r.ok()) return r.status();
    x = r.value();
  }
  return v;
}

Result<std::vector<size_t>> BinaryReader::ReadU64Vector() {
  Result<uint64_t> len = ReadU64();
  if (!len.ok()) return len.status();
  if (len.value() > remaining() / 8) {
    return Status::DataLoss(
        StrFormat("binary payload truncated: vector claims %llu entries",
                  static_cast<unsigned long long>(len.value())));
  }
  std::vector<size_t> v(len.value());
  for (size_t& x : v) {
    Result<uint64_t> r = ReadU64();
    if (!r.ok()) return r.status();
    x = static_cast<size_t>(r.value());
  }
  return v;
}

Result<std::vector<int32_t>> BinaryReader::ReadI32Vector() {
  Result<uint64_t> len = ReadU64();
  if (!len.ok()) return len.status();
  if (len.value() > remaining() / 4) {
    return Status::DataLoss(
        StrFormat("binary payload truncated: vector claims %llu entries",
                  static_cast<unsigned long long>(len.value())));
  }
  std::vector<int32_t> v(len.value());
  for (int32_t& x : v) {
    Result<int32_t> r = ReadI32();
    if (!r.ok()) return r.status();
    x = r.value();
  }
  return v;
}

uint64_t Fnv1aHash(const char* data, size_t size) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

Status WriteFileBytes(const std::string& path, const std::string& payload) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  int close_err = std::fclose(f);
  if (written != payload.size() || close_err != 0) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Status WriteFileBytesAtomic(const std::string& path,
                            const std::string& payload) {
  // The temporary lives in the same directory as the target so the
  // rename never crosses a filesystem boundary (rename(2) atomicity).
  // pid + a process-wide counter keep the name unique across processes
  // AND across concurrent savers inside one process — two threads
  // sharing a tmp name would interleave writes and rename torn bytes
  // into place.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string tmp = StrFormat(
      "%s.tmp.%ld.%llu", path.c_str(), static_cast<long>(::getpid()),
      static_cast<unsigned long long>(
          tmp_counter.fetch_add(1, std::memory_order_relaxed)));
  // Fault sites: a writer that dies (or errors) mid-write must leave
  // only a torn TMP file behind — the rename below is what publishes,
  // so the target stays intact either way. snapshot.save.crash is the
  // crash-during-save smoke: write half, then die like a SIGKILLed
  // trainer.
  if (FAULT_POINT("snapshot.save.crash")) {
    (void)WriteFileBytes(tmp, payload.substr(0, payload.size() / 2));
    _exit(42);
  }
  if (FAULT_POINT("snapshot.save.partial")) {
    (void)WriteFileBytes(tmp, payload.substr(0, payload.size() / 2));
    std::remove(tmp.c_str());
    return Status::IoError("short write to '" + tmp +
                           "' (injected fault: snapshot.save.partial)");
  }
  Status written = WriteFileBytes(tmp, payload);
  if (!written.ok()) {
    // Don't strand a partial temp file (each call uses a fresh name, so
    // leaks would accumulate — e.g. periodic saves retrying on ENOSPC).
    std::remove(tmp.c_str());
    return written;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' over '" + path + "'");
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string out;
  char chunk[1 << 16];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out.append(chunk, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read error on '" + path + "'");
  return out;
}

}  // namespace fairdrift
