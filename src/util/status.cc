#include "util/status.h"

namespace fairdrift {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fairdrift
