// Seeded random number generation.
//
// All stochastic components of the library (data generators, splitters,
// subsampling learners, tuners) draw from an explicitly passed Rng so that
// every experiment is reproducible from a single seed. Rng::Fork() derives
// statistically independent child streams, which keeps per-component
// randomness stable when unrelated components add or remove draws.

#ifndef FAIRDRIFT_UTIL_RNG_H_
#define FAIRDRIFT_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace fairdrift {

/// Deterministic pseudo-random generator with convenience samplers.
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(uint64_t seed = 42) : engine_(seed), seed_(seed) {}

  /// Derives an independent child stream. Successive calls yield distinct
  /// streams; the parent's state advances by one draw per call.
  Rng Fork();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw.
  double Gaussian();

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// Samples `k` distinct indices from {0, ..., n-1} (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// The seed this generator was created with.
  uint64_t seed() const { return seed_; }

  /// Underlying engine, for interoperation with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_RNG_H_
