#include "util/cli.h"

#include <cstdlib>

#include "util/string_util.h"

namespace fairdrift {

CliFlags CliFlags::Parse(int argc, char** argv) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        flags.values_[body] = argv[++i];
      } else {
        flags.values_[body] = "";  // boolean switch
      }
    } else {
      flags.positional_.push_back(arg);
    }
  }
  return flags;
}

bool CliFlags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliFlags::GetString(const std::string& name,
                                const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t CliFlags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : def;
}

double CliFlags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool CliFlags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second.empty()) return true;
  std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace fairdrift
