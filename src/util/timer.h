// Wall-clock timing for the runtime experiments (paper Fig. 14).

#ifndef FAIRDRIFT_UTIL_TIMER_H_
#define FAIRDRIFT_UTIL_TIMER_H_

#include <chrono>

namespace fairdrift {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_TIMER_H_
