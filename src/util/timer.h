// Wall-clock timing for the runtime experiments (paper Fig. 14).

#ifndef FAIRDRIFT_UTIL_TIMER_H_
#define FAIRDRIFT_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fairdrift {

/// Monotonic clock reading in nanoseconds (steady_clock epoch). Span
/// stamps across threads of one process compare directly; stamps from
/// different processes only order within their own process.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_TIMER_H_
