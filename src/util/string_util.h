// Small string helpers used across the library (CSV parsing, table output).

#ifndef FAIRDRIFT_UTIL_STRING_UTIL_H_
#define FAIRDRIFT_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace fairdrift {

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Removes leading and trailing whitespace.
std::string Trim(const std::string& s);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Lower-cases ASCII characters.
std::string ToLower(const std::string& s);

/// True when `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits = 3);

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_STRING_UTIL_H_
