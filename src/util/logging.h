// Minimal leveled logging. Off by default at DEBUG; benches and examples
// raise the level with --verbose.

#ifndef FAIRDRIFT_UTIL_LOGGING_H_
#define FAIRDRIFT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fairdrift {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Emits `message` to stderr when `level` passes the global threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log line; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define FD_LOG_DEBUG ::fairdrift::internal::LogLine(::fairdrift::LogLevel::kDebug)
#define FD_LOG_INFO ::fairdrift::internal::LogLine(::fairdrift::LogLevel::kInfo)
#define FD_LOG_WARN ::fairdrift::internal::LogLine(::fairdrift::LogLevel::kWarning)
#define FD_LOG_ERROR ::fairdrift::internal::LogLine(::fairdrift::LogLevel::kError)

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_LOGGING_H_
