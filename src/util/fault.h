// Deterministic fault injection for robustness testing.
//
// Production failure paths — drain stalls, torn snapshot reads, wedged
// batch workers, load failures — are rare by construction, which makes
// them untestable by waiting for them. FaultInjector turns each one into
// a named, seeded, replayable event: code marks a site with
// FAULT_POINT("fleet.drain") and a test (or the FAULT_SEED/FAULT_SITES
// environment) arms a rule that decides, deterministically from
// (seed, site, hit index), which hits fire. The same seed always fires
// the same hits, so a failing fault run replays exactly.
//
// Sites are cheap when disarmed: FAULT_POINT compiles to one relaxed
// atomic load (branch-predicted false in production). Builds that must
// not carry the sites at all compile them out entirely with
// -DFAIRDRIFT_NO_FAULT_INJECTION (CMake: -DFAIRDRIFT_FAULT_INJECTION=OFF).
//
// What a fired rule does is the SITE's decision, not the injector's: the
// injector only answers "does this hit fire?"; the drain site turns a
// fire into a DeadlineExceeded, the load site into a DataLoss, the wedge
// site blocks inside Hit() until the rule is cleared — so every failure
// is typed exactly like its real counterpart and flows through the real
// recovery machinery.
//
// Known sites (grep for FAULT_POINT to enumerate):
//   fleet.drain           ScoringServer::Quiesce stalls (arg = shard tag)
//   fleet.swap            RollingUpdate's per-shard snapshot swap fails
//   server.wedge          a batch worker wedges mid-batch (arg = shard tag)
//   queue.pop             RequestQueue::PopBatch delays (kDelay rules)
//   watcher.load          SnapshotWatcher's verified load fails
//   snapshot.load         LoadSnapshot sees a torn read
//   snapshot.density      LoadSnapshot's density section is corrupt
//   snapshot.save.partial SaveSnapshot writes half its tmp file and fails
//   snapshot.save.crash   SaveSnapshot writes half its tmp file and
//                         _exit(42)s — the crash-during-save smoke
//   audit.append          AuditLog::Append fails before writing (the
//                         record is lost, the checksum chain stays valid)
//   audit.fsync           AuditLog::Sync's fsync fails after the write
//   net.accept            TcpListener::Accept drops the connection after
//                         the kernel handshake
//   net.read              TcpConnection::RecvAll truncates mid-buffer
//                         (peer sees a partial read, conn is closed)
//   net.write             TcpConnection::SendAll truncates mid-buffer
//   net.push.chunk        shard daemon rejects a pushed snapshot chunk
//                         with kDataLoss (arg = chunk index)
//   trace.append          TraceLog::Append fails before writing (the
//                         span record is lost, the chain stays valid,
//                         scoring is never affected)
//   trace.fsync           TraceLog::Sync's fsync fails after the write

#ifndef FAIRDRIFT_UTIL_FAULT_H_
#define FAIRDRIFT_UTIL_FAULT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "util/status.h"

namespace fairdrift {

/// What a triggered fault site does on a firing hit.
enum class FaultAction : uint8_t {
  /// Hit() returns true; the site converts that into its typed failure
  /// (DeadlineExceeded at a drain barrier, DataLoss at a load, ...).
  kFail = 0,
  /// Hit() sleeps the rule's delay, then returns false (proceed).
  kDelay = 1,
  /// Hit() blocks until the rule is cleared or the injector disarmed,
  /// then returns false — a wedged worker, releasable from the test.
  kWedge = 2,
};

/// When and how a site fires. All counting is per site.
struct FaultRule {
  FaultAction action = FaultAction::kFail;
  /// Hits that pass untouched before the rule starts considering fires.
  uint64_t skip = 0;
  /// Stop firing after this many fires (the transient-fault knob:
  /// max_fires=2 fails twice, then heals).
  uint64_t max_fires = UINT64_MAX;
  /// Chance an eligible hit fires, decided by a deterministic coin from
  /// (seed, site, hit index) — the same seed replays the same fires.
  double probability = 1.0;
  /// Sleep applied by kDelay fires.
  std::chrono::nanoseconds delay{0};
  /// When set, only hits whose site argument matches fire (e.g. a shard
  /// index, so one shard of a fleet wedges while the rest stay healthy).
  std::optional<uint64_t> arg;
};

/// Process-global, seeded, site-keyed fault injector.
class FaultInjector {
 public:
  /// The process-wide injector every FAULT_POINT consults.
  static FaultInjector& Global();

  /// Arms the injector with `seed`. Counters reset; rules persist until
  /// Disarm or ClearRule.
  void Arm(uint64_t seed);

  /// Disarms: clears every rule and counter and releases wedged threads.
  void Disarm();

  /// Cheap armed probe (the FAULT_POINT fast path).
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  uint64_t fault_seed() const;

  /// Installs (or replaces) the rule for `site`.
  void SetRule(const std::string& site, const FaultRule& rule);

  /// Removes `site`'s rule and releases threads wedged at it.
  void ClearRule(const std::string& site);

  /// Total hits / fires recorded at `site` since Arm.
  uint64_t hits(const std::string& site) const;
  uint64_t fires(const std::string& site) const;

  /// Arms from the environment:
  ///   FAULT_SEED=<u64>       required to arm
  ///   FAULT_SITES=site[:k=v[,k=v...]][;site2...]   optional rules, keys:
  ///     action=fail|delay|wedge  skip=N  fires=N  p=0.5  delay_ms=N  arg=N
  /// Returns OK without arming when FAULT_SEED is unset; InvalidArgument
  /// on a malformed spec.
  Status ArmFromEnv();

  /// One hit at `site`. Returns true when the site should fail; applies
  /// kDelay sleeps and kWedge blocking internally. Use via FAULT_POINT.
  bool Hit(const char* site, uint64_t arg = 0);

 private:
  struct SiteState {
    FaultRule rule;
    bool has_rule = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
    /// Generation bumped by ClearRule/Disarm so wedged threads wake.
    uint64_t wedge_generation = 0;
  };

  mutable std::mutex mu_;
  std::condition_variable wedge_cv_;
  std::atomic<bool> armed_{false};
  uint64_t seed_ = 0;
  std::map<std::string, SiteState> sites_;
};

#ifdef FAIRDRIFT_NO_FAULT_INJECTION
#define FAULT_POINT(site) false
#define FAULT_POINT_ARG(site, arg) false
#else
/// True when the armed injector fires the fault at `site` on this hit.
/// Disarmed cost: one relaxed atomic load, no call.
#define FAULT_POINT(site)                            \
  (::fairdrift::FaultInjector::Global().armed() &&   \
   ::fairdrift::FaultInjector::Global().Hit(site))
#define FAULT_POINT_ARG(site, arg)                   \
  (::fairdrift::FaultInjector::Global().armed() &&   \
   ::fairdrift::FaultInjector::Global().Hit(site, (arg)))
#endif

}  // namespace fairdrift

#endif  // FAIRDRIFT_UTIL_FAULT_H_
