#include "util/rng.h"

#include <cassert>
#include <numeric>

namespace fairdrift {

Rng Rng::Fork() {
  // SplitMix64-style remix of a fresh draw gives a well-separated child seed.
  uint64_t z = engine_() + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return Rng(z);
}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // Guard against accumulated rounding error.
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  Shuffle(&idx);
  return idx;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates: only the first k positions need to be settled.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace fairdrift
