// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Conformance-constraint discovery needs the full spectrum of small
// covariance matrices (q x q with q = number of numeric attributes, typically
// < 40), for which Jacobi is simple, numerically robust, and fast enough:
// the paper's O(q^3) bound corresponds exactly to a constant number of
// Jacobi sweeps.

#ifndef FAIRDRIFT_LINALG_EIGEN_H_
#define FAIRDRIFT_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Eigenvectors as rows, `vectors.Row(i)` pairs with `values[i]`;
  /// each vector has unit Euclidean norm.
  Matrix vectors;
};

/// Decomposes a symmetric matrix. Fails if `m` is not square, not symmetric
/// (tolerance 1e-8 relative), or the iteration does not converge.
Result<EigenDecomposition> JacobiEigenDecomposition(const Matrix& m,
                                                    int max_sweeps = 64,
                                                    double tol = 1e-12);

}  // namespace fairdrift

#endif  // FAIRDRIFT_LINALG_EIGEN_H_
