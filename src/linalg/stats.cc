#include "linalg/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fairdrift {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double mu = Mean(v);
  double acc = 0.0;
  for (double x : v) {
    double d = x - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double WeightedMean(const std::vector<double>& v,
                    const std::vector<double>& w) {
  assert(v.size() == w.size());
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    num += v[i] * w[i];
    den += w[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double Min(const std::vector<double>& v) {
  double out = std::numeric_limits<double>::infinity();
  for (double x : v) out = std::min(out, x);
  return out;
}

double Max(const std::vector<double>& v) {
  double out = -std::numeric_limits<double>::infinity();
  for (double x : v) out = std::max(out, x);
  return out;
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

std::vector<double> ColumnMeans(const Matrix& m) {
  std::vector<double> means(m.cols(), 0.0);
  if (m.rows() == 0) return means;
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) means[c] += row[c];
  }
  for (double& v : means) v /= static_cast<double>(m.rows());
  return means;
}

std::vector<double> ColumnStdDevs(const Matrix& m) {
  std::vector<double> out(m.cols(), 0.0);
  if (m.rows() < 2) return out;
  std::vector<double> means = ColumnMeans(m);
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      double d = row[c] - means[c];
      out[c] += d * d;
    }
  }
  for (double& v : out) v = std::sqrt(v / static_cast<double>(m.rows()));
  return out;
}

Result<Matrix> Covariance(const Matrix& m) {
  if (m.rows() == 0 || m.cols() == 0) {
    return Status::InvalidArgument("Covariance: empty matrix");
  }
  size_t n = m.rows();
  size_t d = m.cols();
  std::vector<double> means = ColumnMeans(m);
  Matrix cov(d, d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = m.RowPtr(r);
    for (size_t i = 0; i < d; ++i) {
      double di = row[i] - means[i];
      for (size_t j = i; j < d; ++j) {
        cov.At(i, j) += di * (row[j] - means[j]);
      }
    }
  }
  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov.At(i, j) *= inv_n;
      cov.At(j, i) = cov.At(i, j);
    }
  }
  return cov;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a);
  double mb = Mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double xa = a[i] - ma;
    double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace fairdrift
