#include "linalg/pca.h"

#include <cassert>

#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace fairdrift {

Result<PcaModel> FitPca(const Matrix& data) {
  Result<Matrix> cov = Covariance(data);
  if (!cov.ok()) return cov.status();
  Result<EigenDecomposition> eig = JacobiEigenDecomposition(cov.value());
  if (!eig.ok()) return eig.status();

  PcaModel model;
  model.means = ColumnMeans(data);
  model.components = std::move(eig.value().vectors);
  model.variances = std::move(eig.value().values);
  return model;
}

double PcaProject(const PcaModel& model, const std::vector<double>& row,
                  size_t k) {
  assert(k < model.components.rows());
  assert(row.size() == model.means.size());
  const double* comp = model.components.RowPtr(k);
  double acc = 0.0;
  for (size_t i = 0; i < row.size(); ++i) {
    acc += comp[i] * (row[i] - model.means[i]);
  }
  return acc;
}

}  // namespace fairdrift
