// Principal component analysis over the covariance spectrum.
//
// The conformance-constraint profiler uses the *low-variance* principal
// directions: a direction in which the data barely varies yields a tight,
// highly discriminative linear constraint (Fariha et al., SIGMOD'21).

#ifndef FAIRDRIFT_LINALG_PCA_H_
#define FAIRDRIFT_LINALG_PCA_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Result of a PCA fit.
struct PcaModel {
  /// Column means used for centering.
  std::vector<double> means;
  /// Principal directions as rows, sorted by ascending eigenvalue
  /// (components.Row(0) is the *least*-variance direction).
  Matrix components;
  /// Eigenvalues (variances along each direction), ascending.
  std::vector<double> variances;
};

/// Fits PCA on the rows of `data`. Fails on an empty matrix or a
/// non-converging eigendecomposition.
Result<PcaModel> FitPca(const Matrix& data);

/// Projects `row` onto component `k` of the model (centered dot product).
double PcaProject(const PcaModel& model, const std::vector<double>& row,
                  size_t k);

}  // namespace fairdrift

#endif  // FAIRDRIFT_LINALG_PCA_H_
