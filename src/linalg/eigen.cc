#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/string_util.h"

namespace fairdrift {

namespace {

/// Sum of absolute off-diagonal entries (convergence measure).
double OffDiagonalNorm(const Matrix& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = i + 1; j < a.cols(); ++j) {
      acc += std::fabs(a.At(i, j));
    }
  }
  return acc;
}

}  // namespace

Result<EigenDecomposition> JacobiEigenDecomposition(const Matrix& m,
                                                    int max_sweeps,
                                                    double tol) {
  if (m.rows() != m.cols()) {
    return Status::InvalidArgument(
        StrFormat("Jacobi: matrix is %zux%zu, must be square", m.rows(),
                  m.cols()));
  }
  size_t n = m.rows();
  if (n == 0) {
    return Status::InvalidArgument("Jacobi: empty matrix");
  }
  // Symmetry check with a relative tolerance.
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) scale = std::max(scale, std::fabs(m.At(i, j)));
  double sym_tol = 1e-8 * std::max(scale, 1.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(m.At(i, j) - m.At(j, i)) > sym_tol) {
        return Status::InvalidArgument("Jacobi: matrix is not symmetric");
      }
    }
  }

  Matrix a = m;                      // Working copy, rotated toward diagonal.
  Matrix v = Matrix::Identity(n);   // Accumulated rotations (columns = eigvecs).

  double conv_tol = tol * std::max(scale, 1.0);
  bool converged = (OffDiagonalNorm(a) <= conv_tol);
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = a.At(p, q);
        if (std::fabs(apq) <= conv_tol / static_cast<double>(n * n)) continue;
        double app = a.At(p, p);
        double aqq = a.At(q, q);
        // Classic stable rotation computation.
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        // Apply the rotation A <- J^T A J on rows/cols p and q.
        for (size_t k = 0; k < n; ++k) {
          double akp = a.At(k, p);
          double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          double apk = a.At(p, k);
          double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors: V <- V J.
        for (size_t k = 0; k < n; ++k) {
          double vkp = v.At(k, p);
          double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = (OffDiagonalNorm(a) <= conv_tol);
  }
  if (!converged) {
    return Status::NumericalError(
        StrFormat("Jacobi: no convergence after %d sweeps", max_sweeps));
  }

  // Collect and sort ascending by eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a.At(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] < diag[y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    out.values[i] = diag[order[i]];
    for (size_t k = 0; k < n; ++k) {
      out.vectors.At(i, k) = v.At(k, order[i]);  // column -> row layout
    }
  }
  return out;
}

}  // namespace fairdrift
