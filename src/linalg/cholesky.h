// Cholesky factorization and SPD linear solves.
//
// Used by the weighted Newton (IRLS) steps of logistic regression, where
// the Hessian X^T W X + lambda*I is symmetric positive definite.

#ifndef FAIRDRIFT_LINALG_CHOLESKY_H_
#define FAIRDRIFT_LINALG_CHOLESKY_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Fails when `a` is not square or not positive definite.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky. Fails on shape mismatch or a
/// non-SPD matrix.
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

/// Solves (A + ridge*I) x = b, retrying with increasing ridge when A is
/// semi-definite. Intended for regularized Newton steps.
Result<std::vector<double>> RidgeSolve(const Matrix& a,
                                       const std::vector<double>& b,
                                       double ridge = 1e-8,
                                       int max_attempts = 6);

}  // namespace fairdrift

#endif  // FAIRDRIFT_LINALG_CHOLESKY_H_
