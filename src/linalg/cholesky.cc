#include "linalg/cholesky.h"

#include <cmath>

#include "util/string_util.h"

namespace fairdrift {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix must be square");
  }
  size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::NumericalError(
              StrFormat("Cholesky: non-positive pivot at %zu (%.3e)", i, sum));
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return l;
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("CholeskySolve: shape mismatch");
  }
  Result<Matrix> lr = CholeskyFactor(a);
  if (!lr.ok()) return lr.status();
  const Matrix& l = lr.value();
  size_t n = b.size();

  // Forward substitution: L y = b.
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
    y[i] = sum / l.At(i, i);
  }
  // Backward substitution: L^T x = y.
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

Result<std::vector<double>> RidgeSolve(const Matrix& a,
                                       const std::vector<double>& b,
                                       double ridge, int max_attempts) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("RidgeSolve: shape mismatch");
  }
  double lambda = ridge;
  Status last = Status::OK();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Matrix reg = a;
    for (size_t i = 0; i < reg.rows(); ++i) reg.At(i, i) += lambda;
    Result<std::vector<double>> sol = CholeskySolve(reg, b);
    if (sol.ok()) return sol;
    last = sol.status();
    lambda *= 100.0;
  }
  return Status::NumericalError("RidgeSolve: failed even with heavy ridge (" +
                                last.ToString() + ")");
}

}  // namespace fairdrift
