// Dense row-major matrix of doubles.
//
// This is the numeric workhorse under the dataset layer, the conformance-
// constraint profiler (covariance + eigendecomposition), the KDE, and the
// learners. It deliberately stays small: only the operations the library
// needs, each validated for shape at the API boundary.

#ifndef FAIRDRIFT_LINALG_MATRIX_H_
#define FAIRDRIFT_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/status.h"

namespace fairdrift {

class BinaryWriter;  // util/binary_io.h
class BinaryReader;

/// Dense row-major matrix.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from nested initializer lists; all rows must agree in width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a matrix from a flat row-major buffer (size must be rows*cols).
  static Result<Matrix> FromFlat(size_t rows, size_t cols,
                                 std::vector<double> flat);

  /// n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Reshapes to rows x cols filled with `fill`, reusing the existing
  /// storage capacity (no reallocation when the new size fits). The
  /// serving path's per-worker batch buffers rely on this to stay
  /// allocation-free across batches.
  void Reshape(size_t rows, size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// Reshape without clearing retained elements — for callers that
  /// overwrite every cell immediately (no fill pass on the hot path;
  /// stale values persist until written, so don't read before writing).
  void ReshapeForOverwrite(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row pointer (row-major layout).
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row `r` into a vector.
  std::vector<double> Row(size_t r) const;

  /// Copies column `c` into a vector.
  std::vector<double> Col(size_t c) const;

  /// Sets row `r` from `values` (must have cols() entries).
  void SetRow(size_t r, const std::vector<double>& values);

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Matrix product; shapes must agree (cols() == other.rows()).
  Result<Matrix> Multiply(const Matrix& other) const;

  /// Matrix-vector product; v.size() must equal cols().
  Result<std::vector<double>> MultiplyVector(const std::vector<double>& v) const;

  /// Returns the submatrix with the given row indices (gather).
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Returns the submatrix with the given column indices (gather).
  Matrix SelectCols(const std::vector<size_t>& indices) const;

  /// Appends a row (must have cols() entries; sets width on first row).
  void AppendRow(const std::vector<double>& values);

  /// Element-wise in-place scale.
  void Scale(double factor);

  /// Frobenius-norm distance to another same-shape matrix.
  Result<double> FrobeniusDistance(const Matrix& other) const;

  /// Flat row-major storage (read-only).
  const std::vector<double>& data() const { return data_; }

  /// Appends (rows, cols, row-major IEEE-754 cells) to `w`; the snapshot
  /// format's matrix wire form (serve/snapshot_io.h, tree persistence).
  void SerializeTo(BinaryWriter* w) const;

  /// Reads SerializeTo's payload. Hostile dimensions that claim more data
  /// than the payload holds fail with Status::DataLoss before allocating.
  static Result<Matrix> DeserializeFrom(BinaryReader* r);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

namespace vec {

/// Dot product. Sizes must match (asserted).
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm(const std::vector<double>& v);

/// a + b element-wise.
std::vector<double> Add(const std::vector<double>& a, const std::vector<double>& b);

/// a - b element-wise.
std::vector<double> Sub(const std::vector<double>& a, const std::vector<double>& b);

/// v * s element-wise.
std::vector<double> Scale(const std::vector<double>& v, double s);

/// Squared Euclidean distance.
double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace vec

}  // namespace fairdrift

#endif  // FAIRDRIFT_LINALG_MATRIX_H_
