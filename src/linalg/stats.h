// Column statistics: means, standard deviations, covariance, correlation,
// quantiles. These feed the conformance-constraint profiler and the dataset
// normalizers.

#ifndef FAIRDRIFT_LINALG_STATS_H_
#define FAIRDRIFT_LINALG_STATS_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population variance (divides by n); 0 for fewer than 2 entries.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double StdDev(const std::vector<double>& v);

/// Weighted mean; weights must be non-negative with positive sum.
double WeightedMean(const std::vector<double>& v, const std::vector<double>& w);

/// Minimum; +inf for empty.
double Min(const std::vector<double>& v);

/// Maximum; -inf for empty.
double Max(const std::vector<double>& v);

/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts.
double Quantile(std::vector<double> v, double q);

/// Per-column means of a matrix.
std::vector<double> ColumnMeans(const Matrix& m);

/// Per-column population standard deviations of a matrix.
std::vector<double> ColumnStdDevs(const Matrix& m);

/// Population covariance matrix (cols x cols) of the rows of `m`.
/// Fails on an empty matrix.
Result<Matrix> Covariance(const Matrix& m);

/// Pearson correlation of two equal-length vectors; 0 when either is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace fairdrift

#endif  // FAIRDRIFT_LINALG_STATS_H_
