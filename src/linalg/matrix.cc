#include "linalg/matrix.h"

#include <cassert>
#include <cmath>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace fairdrift {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& row : rows) {
    if (cols_ == 0) cols_ = row.size();
    assert(row.size() == cols_ && "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Result<Matrix> Matrix::FromFlat(size_t rows, size_t cols,
                                std::vector<double> flat) {
  if (flat.size() != rows * cols) {
    return Status::InvalidArgument(StrFormat(
        "FromFlat: buffer has %zu values, expected %zu", flat.size(),
        rows * cols));
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(flat);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

std::vector<double> Matrix::Col(size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

Result<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(StrFormat(
        "Multiply: %zux%zu times %zux%zu", rows_, cols_, other.rows_,
        other.cols_));
  }
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(r, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(r);
      for (size_t c = 0; c < other.cols_; ++c) {
        orow[c] += a * brow[c];
      }
    }
  }
  return out;
}

Result<std::vector<double>> Matrix::MultiplyVector(
    const std::vector<double>& v) const {
  if (v.size() != cols_) {
    return Status::InvalidArgument(StrFormat(
        "MultiplyVector: matrix has %zu cols, vector has %zu", cols_,
        v.size()));
  }
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    const double* src = RowPtr(indices[i]);
    std::copy(src, src + cols_, out.RowPtr(i));
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& indices) const {
  Matrix out(rows_, indices.size());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < indices.size(); ++i) {
      assert(indices[i] < cols_);
      out.At(r, i) = At(r, indices[i]);
    }
  }
  return out;
}

void Matrix::AppendRow(const std::vector<double>& values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  assert(values.size() == cols_ && "AppendRow width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
}

Result<double> Matrix::FrobeniusDistance(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("FrobeniusDistance: shape mismatch");
  }
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void Matrix::SerializeTo(BinaryWriter* w) const {
  w->WriteU64(rows_);
  w->WriteU64(cols_);
  for (double v : data_) w->WriteDouble(v);
}

Result<Matrix> Matrix::DeserializeFrom(BinaryReader* r) {
  Result<uint64_t> rows = r->ReadU64();
  if (!rows.ok()) return rows.status();
  Result<uint64_t> cols = r->ReadU64();
  if (!cols.ok()) return cols.status();
  // Division-shaped guard: hostile dimensions must not overflow past it
  // into a gigantic allocation.
  if (cols.value() != 0 && rows.value() > r->remaining() / 8 / cols.value()) {
    return Status::DataLoss("matrix payload claims more data than stored");
  }
  std::vector<double> flat;
  flat.reserve(rows.value() * cols.value());
  for (uint64_t i = 0; i < rows.value() * cols.value(); ++i) {
    Result<double> v = r->ReadDouble();
    if (!v.ok()) return v.status();
    flat.push_back(v.value());
  }
  Result<Matrix> m =
      Matrix::FromFlat(rows.value(), cols.value(), std::move(flat));
  if (!m.ok()) return Status::DataLoss(m.status().message());
  return m;
}

namespace vec {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(const std::vector<double>& v, double s) {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace vec

}  // namespace fairdrift
