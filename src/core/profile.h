// Shared (group x label) conformance-constraint profiling.
//
// Both DIFFAIR (Algorithm 1, lines 4-8) and CONFAIR (Algorithm 2, lines
// 2-4) derive one constraint set per (group x label) cell of the training
// data; both optionally strengthen the constraints with the density filter
// of Algorithm 3 first. This module implements that common step.

#ifndef FAIRDRIFT_CORE_PROFILE_H_
#define FAIRDRIFT_CORE_PROFILE_H_

#include <optional>
#include <vector>

#include "cc/axis_box.h"
#include "cc/discovery.h"
#include "core/density_filter.h"
#include "data/dataset.h"
#include "util/status.h"

namespace fairdrift {

/// Data-profiling primitive used to describe each (group x label) cell.
/// The paper's methods are primitive-agnostic as long as the profile
/// yields quantitative violations (§I); the profiler ablation bench
/// contrasts the two.
enum class ProfilePrimitive {
  kConformance,  ///< CC discovery (the paper's choice).
  kAxisBox,      ///< per-attribute intervals (correlation-blind baseline).
};

/// Profiling configuration shared by DIFFAIR and CONFAIR.
struct ProfileOptions {
  ProfilePrimitive primitive = ProfilePrimitive::kConformance;
  CcOptions cc;
  AxisBoxOptions axis_box;
  /// Apply Algorithm 3 before constraint discovery (the paper's default;
  /// the "DIFFAIR-0 / CONFAIR-0" ablation of Fig. 13 turns this off).
  bool use_density_filter = true;
  DensityFilterOptions filter;
};

/// Constraint sets per (group x label) cell. Cells that are empty in the
/// training data carry no set.
class GroupLabelProfile {
 public:
  /// Creates an empty profile; use Profile() to obtain a usable one.
  GroupLabelProfile() = default;

  /// Profiles `data` (requires labels and groups): for every cell, filter
  /// by density (optional) and run constraint discovery over the cell's
  /// numeric attributes.
  static Result<GroupLabelProfile> Profile(const Dataset& data,
                                           const ProfileOptions& options);

  /// Rebuilds a profile from stored cells (deserialization;
  /// serve/snapshot_io.cc). `cells` holds num_groups * num_classes
  /// entries, cell (g, y) at index g * num_classes + y.
  static Result<GroupLabelProfile> FromCells(
      int num_groups, int num_classes,
      std::vector<std::optional<ConstraintSet>> cells);

  int num_groups() const { return num_groups_; }
  int num_classes() const { return num_classes_; }

  /// Constraint set of cell (g, y); nullopt when the cell was empty.
  const std::optional<ConstraintSet>& cell(int g, int y) const;

  /// min over labels y of [[Phi_{g,y}]](row): the group-level violation
  /// DIFFAIR's PREDICT uses (Algorithm 1, lines 15-16). Returns +inf when
  /// the group has no profiled cells.
  double MinViolationForGroup(int g, const std::vector<double>& numeric_row) const;
  double MinViolationForGroup(int g, const double* numeric_row) const;  ///< span form

  /// min over labels y of the signed margin of cell (g, y): like
  /// MinViolationForGroup but strictly negative for tuples inside a
  /// cell's bounds, so zero-violation ties between groups resolve toward
  /// the cell the tuple conforms to most deeply. +inf when unprofiled.
  double MinMarginForGroup(int g, const std::vector<double>& numeric_row) const;
  double MinMarginForGroup(int g, const double* numeric_row) const;  ///< span form

  /// The label y whose cell (g, y) the row conforms to best; -1 when the
  /// group has no profiled cells.
  int BestLabelForGroup(int g, const std::vector<double>& numeric_row) const;
  int BestLabelForGroup(int g, const double* numeric_row) const;  ///< span form

  /// True when at least one cell of group g is profiled.
  bool GroupProfiled(int g) const;

 private:
  int num_groups_ = 0;
  int num_classes_ = 0;
  // cells_[g * num_classes_ + y]
  std::vector<std::optional<ConstraintSet>> cells_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_CORE_PROFILE_H_
