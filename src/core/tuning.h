// Automatic search for CONFAIR's intervention degree.
//
// The paper's protocol (§IV, "Algorithm parameters"): search alpha_u on
// the validation split for the value that optimizes the fairness objective
// (DI closest to parity), with alpha_w = alpha_u / 2. Because CONFAIR's
// fairness response is monotone in alpha (only conforming tuples are
// boosted), a coarse-to-fine grid converges quickly. Each candidate
// retrains the model — the dominant cost in the paper's Fig. 14, removable
// by supplying the intervention degree directly.

#ifndef FAIRDRIFT_CORE_TUNING_H_
#define FAIRDRIFT_CORE_TUNING_H_

#include <vector>

#include "core/confair.h"
#include "data/encode.h"
#include "ml/model.h"
#include "util/status.h"

namespace fairdrift {

/// Configuration for the alpha search.
struct ConfairTuneOptions {
  /// Candidate alpha_u values; empty selects the default grid
  /// {0, 0.25, 0.5, ..., 3.0}.
  std::vector<double> alpha_grid;
  /// alpha_w = alpha_w_ratio * alpha_u (paper: 1/2) for the DI objective;
  /// the EO objectives keep alpha_w = 0.
  double alpha_w_ratio = 0.5;
  /// Candidates whose validation balanced accuracy falls below this floor
  /// are rejected unless nothing else qualifies.
  double accuracy_floor = 0.55;
};

/// Result of the search.
struct ConfairTuneResult {
  ConfairOptions options;  ///< base options with the winning alphas filled in
  double alpha_u = 0.0;
  double validation_gap = 0.0;  ///< objective gap at the winner
  int models_trained = 0;       ///< retraining count (runtime driver)
};

/// Grid-searches alpha_u, retraining `prototype` on CONFAIR-reweighed
/// `train` and scoring the objective gap on `val`.
Result<ConfairTuneResult> TuneConfairAlpha(const Dataset& train,
                                           const Dataset& val,
                                           const Classifier& prototype,
                                           const FeatureEncoder& encoder,
                                           const ConfairOptions& base,
                                           const ConfairTuneOptions& tune = {});

}  // namespace fairdrift

#endif  // FAIRDRIFT_CORE_TUNING_H_
