// End-to-end experiment pipeline: split -> Fit -> Evaluate.
//
// This is the top-level API the examples and every figure bench drive. It
// reproduces the paper's experimental protocol: 70/15/15 i.i.d. split,
// hyperparameters (decision threshold, CONFAIR alpha, OMN lambda) tuned on
// validation, metrics reported on the test split.
//
// The pipeline is a thin wrapper over the artifact-centric API of
// core/artifacts.h: one Fit() call trains the intervention, Evaluate()
// scores it — the same FittedArtifacts could equally be Freeze()d into a
// serving snapshot, so the experiment and deployment paths share every
// trained model.

#ifndef FAIRDRIFT_CORE_PIPELINE_H_
#define FAIRDRIFT_CORE_PIPELINE_H_

#include "core/artifacts.h"
#include "data/split.h"
#include "fairness/report.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

/// Full pipeline configuration: a TrainSpec (the intervention, learner,
/// and tuning knobs — see core/artifacts.h) plus the split protocol.
struct PipelineOptions : TrainSpec {
  double train_frac = 0.70;
  double val_frac = 0.15;
};

/// Outcome of one pipeline run.
struct PipelineResult {
  FairnessReport report;        ///< test-split fairness + utility
  double runtime_seconds = 0.0; ///< wall-clock of intervention + training
  double tuned_alpha = 0.0;     ///< CONFAIR alpha_u (when tuned)
  double tuned_lambda = 0.0;    ///< OMN lambda (when calibrated)
  int models_trained = 1;       ///< total learner fits (runtime driver)
};

/// Runs `options.method` on a pre-split dataset: Fit on train/val,
/// Evaluate on test.
Result<PipelineResult> RunPipelineOnSplit(const TrainValTest& split,
                                          const PipelineOptions& options,
                                          Rng* rng);

/// Splits `data` (70/15/15 by default) and runs the pipeline.
Result<PipelineResult> RunPipeline(const Dataset& data,
                                   const PipelineOptions& options, Rng* rng);

}  // namespace fairdrift

#endif  // FAIRDRIFT_CORE_PIPELINE_H_
