// End-to-end experiment pipeline: split -> intervene -> train -> evaluate.
//
// This is the top-level API the examples and every figure bench drive. It
// reproduces the paper's experimental protocol: 70/15/15 i.i.d. split,
// hyperparameters (decision threshold, CONFAIR alpha, OMN lambda) tuned on
// validation, metrics reported on the test split.

#ifndef FAIRDRIFT_CORE_PIPELINE_H_
#define FAIRDRIFT_CORE_PIPELINE_H_

#include <optional>
#include <string>

#include "baselines/capuchin.h"
#include "baselines/omnifair.h"
#include "core/confair.h"
#include "core/diffair.h"
#include "core/tuning.h"
#include "data/split.h"
#include "fairness/report.h"
#include "ml/model.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

/// Fairness interventions covered by the evaluation (paper §IV "Methods").
enum class Method {
  kNoIntervention,
  kMultiModel,
  kDiffair,
  kConfair,
  kKamiran,   ///< KAM
  kOmnifair,  ///< OMN
  kCapuchin,  ///< CAP
};

/// Display name ("NO-INT", "MULTI", "DIFFAIR", "CONFAIR", "KAM", "OMN",
/// "CAP").
const char* MethodName(Method method);

/// Full pipeline configuration.
struct PipelineOptions {
  Method method = Method::kNoIntervention;
  /// Learner used for the final (deployed) model.
  LearnerKind learner = LearnerKind::kLogisticRegression;
  /// Learner used while calibrating weights (CONFAIR alpha search, OMN
  /// lambda search). Defaults to `learner`; the cross-model experiment of
  /// Fig. 7 sets it to the other family.
  std::optional<LearnerKind> calibration_learner;

  ConfairOptions confair;
  /// Auto-tune CONFAIR's alpha on validation (paper protocol). When false,
  /// `confair.alpha_u/alpha_w` are used as supplied (the paper's
  /// user-specified fast path).
  bool tune_confair = true;
  ConfairTuneOptions confair_tune;

  DiffairOptions diffair;
  OmnifairOptions omnifair;
  CapuchinOptions capuchin;

  /// Tune the final model's decision threshold on validation for balanced
  /// accuracy. Off by default: the paper's learners predict at the
  /// standard 0.5 threshold, and balanced-accuracy tuning would itself act
  /// as a (non-paper) bias correction.
  bool tune_threshold = false;

  double train_frac = 0.70;
  double val_frac = 0.15;
};

/// Outcome of one pipeline run.
struct PipelineResult {
  FairnessReport report;        ///< test-split fairness + utility
  double runtime_seconds = 0.0; ///< wall-clock of intervention + training
  double tuned_alpha = 0.0;     ///< CONFAIR alpha_u (when tuned)
  double tuned_lambda = 0.0;    ///< OMN lambda (when calibrated)
  int models_trained = 1;       ///< total learner fits (runtime driver)
};

/// Runs `options.method` on a pre-split dataset.
Result<PipelineResult> RunPipelineOnSplit(const TrainValTest& split,
                                          const PipelineOptions& options,
                                          Rng* rng);

/// Splits `data` (70/15/15 by default) and runs the pipeline.
Result<PipelineResult> RunPipeline(const Dataset& data,
                                   const PipelineOptions& options, Rng* rng);

}  // namespace fairdrift

#endif  // FAIRDRIFT_CORE_PIPELINE_H_
