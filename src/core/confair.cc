#include "core/confair.h"

#include <cmath>
#include <cstdint>

#include "util/parallel.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

// Line 5 of Algorithm 2: S += P(Y=y_t) * |G_t| / |G_t ∩ y_t|, applied per
// tuple. Shared by the binary and the K-group entry points.
void AddSkewBalancing(const Dataset& train, std::vector<double>* weights) {
  double dn = static_cast<double>(train.size());
  std::vector<std::vector<double>> skew(
      static_cast<size_t>(train.num_groups()),
      std::vector<double>(static_cast<size_t>(train.num_classes()), 1.0));
  for (int g = 0; g < train.num_groups(); ++g) {
    double group_count = static_cast<double>(train.GroupCount(g));
    for (int y = 0; y < train.num_classes(); ++y) {
      double cell_count = static_cast<double>(train.CellCount(g, y));
      double label_prob = static_cast<double>(train.LabelCount(y)) / dn;
      if (cell_count > 0.0) {
        skew[static_cast<size_t>(g)][static_cast<size_t>(y)] =
            label_prob * group_count / cell_count;
      }
    }
  }
  const std::vector<int>& labels = train.labels();
  const std::vector<int>& groups = train.groups();
  for (size_t i = 0; i < train.size(); ++i) {
    (*weights)[i] += skew[static_cast<size_t>(groups[i])]
                         [static_cast<size_t>(labels[i])];
  }
}

}  // namespace

Result<ConfairBoostPlan> PlanBoosts(const Dataset& data,
                                    FairnessObjective objective) {
  if (!data.has_labels() || !data.has_groups()) {
    return Status::FailedPrecondition("PlanBoosts: needs labels and groups");
  }
  if (data.num_classes() != 2) {
    return Status::InvalidArgument(
        "PlanBoosts: the boost planner assumes binary labels");
  }
  size_t n_u = data.GroupCount(kMinorityGroup);
  size_t n_w = data.GroupCount(kMajorityGroup);
  if (n_u == 0 || n_w == 0) {
    return Status::InvalidArgument("PlanBoosts: a group is empty");
  }
  double pos_rate_u =
      static_cast<double>(data.CellCount(kMinorityGroup, 1)) /
      static_cast<double>(n_u);
  double pos_rate_w =
      static_cast<double>(data.CellCount(kMajorityGroup, 1)) /
      static_cast<double>(n_w);
  // When the minority skews negative (the paper's running assumption), a
  // learner under-predicts positives for it: high FNR_U and, mirrored,
  // high FPR_W. The boost plan targets the cell whose emphasis closes the
  // objective's gap; a reversed skew flips every choice.
  bool minority_skews_negative = pos_rate_u <= pos_rate_w;

  ConfairBoostPlan plan;
  switch (objective) {
    case FairnessObjective::kDisparateImpact:
      // Raise the under-selected group's positives and the over-selected
      // group's negatives (the pseudo-code's lines 8-11).
      plan.primary_group = kMinorityGroup;
      plan.primary_label = minority_skews_negative ? 1 : 0;
      plan.has_secondary = true;
      plan.secondary_group = kMajorityGroup;
      plan.secondary_label = minority_skews_negative ? 0 : 1;
      break;
    case FairnessObjective::kEqualizedOddsFnr:
      // Lower the FNR of the group that misses its positives: the group
      // whose labels skew negative.
      plan.primary_group =
          minority_skews_negative ? kMinorityGroup : kMajorityGroup;
      plan.primary_label = 1;
      break;
    case FairnessObjective::kEqualizedOddsFpr:
      // Raise the FPR of the group the model under-fires on (the group
      // skewing negative) by emphasizing its positives. Emphasizing the
      // other group's *negatives* looks symmetric but is ineffective: the
      // conforming core of a dominant negative cell is already classified
      // with near-zero loss gradient, so extra weight there barely moves
      // the learner.
      plan.primary_group =
          minority_skews_negative ? kMinorityGroup : kMajorityGroup;
      plan.primary_label = 1;
      break;
  }
  return plan;
}

Result<ConfairWeights> ComputeConfairWeights(const Dataset& train,
                                             const ConfairOptions& options) {
  if (!train.has_labels() || !train.has_groups()) {
    return Status::FailedPrecondition(
        "CONFAIR: training data needs labels and groups");
  }
  if (options.alpha_u < 0.0 || options.alpha_w < 0.0) {
    return Status::InvalidArgument("CONFAIR: alphas must be >= 0");
  }

  ConfairBoostPlan plan_value;
  if (options.plan_override.has_value()) {
    plan_value = *options.plan_override;
  } else {
    Result<ConfairBoostPlan> plan = PlanBoosts(train, options.objective);
    if (!plan.ok()) return plan.status();
    plan_value = plan.value();
  }

  // Lines 2-4: per-cell conformance constraints (with Algorithm 3 inside
  // ProfileOptions when enabled).
  Result<GroupLabelProfile> profile =
      GroupLabelProfile::Profile(train, options.profile);
  if (!profile.ok()) return profile.status();

  size_t n = train.size();
  ConfairWeights out;
  out.plan = plan_value;
  out.weights.assign(n, 0.0);  // line 1 of the pseudo-code

  // Line 5: skew balancing S += P(Y=y_t) * |G_t| / |G_t ∩ y_t|.
  AddSkewBalancing(train, &out.weights);
  const std::vector<int>& labels = train.labels();
  const std::vector<int>& groups = train.groups();

  // Lines 6-11: boost tuples with zero violation of their cell's
  // constraints, in the objective's target cells. The violation check
  // dominates, so it runs as a parallel scan into per-row marks; weights
  // and counters are then applied sequentially, which keeps the totals
  // identical for every worker count.
  Matrix numeric = train.NumericMatrix();
  if (numeric.cols() == 0) return out;  // no attributes to conform to
  enum : uint8_t { kNoBoost = 0, kPrimary = 1, kSecondary = 2 };
  std::vector<uint8_t> marks(n, kNoBoost);
  ParallelFor(0, n, [&](size_t i) {
    int g = groups[i];
    int y = labels[i];
    bool is_primary = (g == out.plan.primary_group &&
                       y == out.plan.primary_label && options.alpha_u > 0.0);
    bool is_secondary =
        (out.plan.has_secondary && g == out.plan.secondary_group &&
         y == out.plan.secondary_label && options.alpha_w > 0.0);
    if (!is_primary && !is_secondary) return;

    const std::optional<ConstraintSet>& cs = profile.value().cell(g, y);
    if (!cs.has_value()) return;
    if (cs->Violation(numeric.RowPtr(i)) > 0.0) return;  // conforming only
    marks[i] = is_primary ? kPrimary : kSecondary;
  });
  for (size_t i = 0; i < n; ++i) {
    if (marks[i] == kPrimary) {
      out.weights[i] += options.alpha_u;
      ++out.boosted_primary;
    } else if (marks[i] == kSecondary) {
      out.weights[i] += options.alpha_w;
      ++out.boosted_secondary;
    }
  }
  return out;
}

Result<std::vector<ConfairBoostCell>> PlanBoostsMultiGroup(const Dataset& data,
                                                           double alpha_u,
                                                           double alpha_w) {
  if (!data.has_labels() || !data.has_groups()) {
    return Status::FailedPrecondition(
        "PlanBoostsMultiGroup: needs labels and groups");
  }
  if (data.num_classes() != 2) {
    return Status::InvalidArgument(
        "PlanBoostsMultiGroup: the planner assumes binary labels");
  }
  if (alpha_u < 0.0 || alpha_w < 0.0) {
    return Status::InvalidArgument(
        "PlanBoostsMultiGroup: alphas must be >= 0");
  }
  // Reference group: the one whose labels skew toward positives the most
  // (the group every other group's selection rate is levelled toward).
  int reference = -1;
  double best_rate = -1.0;
  std::vector<double> pos_rate(static_cast<size_t>(data.num_groups()), 0.0);
  for (int g = 0; g < data.num_groups(); ++g) {
    size_t count = data.GroupCount(g);
    if (count == 0) {
      return Status::InvalidArgument(
          StrFormat("PlanBoostsMultiGroup: group %d is empty", g));
    }
    pos_rate[static_cast<size_t>(g)] =
        static_cast<double>(data.CellCount(g, 1)) / static_cast<double>(count);
    if (pos_rate[static_cast<size_t>(g)] > best_rate) {
      best_rate = pos_rate[static_cast<size_t>(g)];
      reference = g;
    }
  }
  std::vector<ConfairBoostCell> cells;
  for (int g = 0; g < data.num_groups(); ++g) {
    if (g == reference) continue;
    cells.push_back({g, /*label=*/1, alpha_u});
  }
  if (alpha_w > 0.0) {
    cells.push_back({reference, /*label=*/0, alpha_w});
  }
  return cells;
}

Result<ConfairMultiWeights> ComputeConfairWeightsMultiGroup(
    const Dataset& train, const std::vector<ConfairBoostCell>& cells,
    const ProfileOptions& profile_options) {
  if (!train.has_labels() || !train.has_groups()) {
    return Status::FailedPrecondition(
        "CONFAIR: training data needs labels and groups");
  }
  for (const ConfairBoostCell& cell : cells) {
    if (cell.group < 0 || cell.group >= train.num_groups() ||
        cell.label < 0 || cell.label >= train.num_classes()) {
      return Status::InvalidArgument(
          StrFormat("CONFAIR: boost cell (%d, %d) outside the data's "
                    "%d groups x %d classes",
                    cell.group, cell.label, train.num_groups(),
                    train.num_classes()));
    }
    if (cell.alpha < 0.0) {
      return Status::InvalidArgument("CONFAIR: cell alphas must be >= 0");
    }
  }
  Result<GroupLabelProfile> profile =
      GroupLabelProfile::Profile(train, profile_options);
  if (!profile.ok()) return profile.status();

  ConfairMultiWeights out;
  out.weights.assign(train.size(), 0.0);
  out.boosted_per_cell.assign(cells.size(), 0);
  AddSkewBalancing(train, &out.weights);

  Matrix numeric = train.NumericMatrix();
  if (numeric.cols() == 0) return out;  // no attributes to conform to
  for (size_t c = 0; c < cells.size(); ++c) {
    const ConfairBoostCell& cell = cells[c];
    if (cell.alpha <= 0.0) continue;
    const std::optional<ConstraintSet>& cs =
        profile.value().cell(cell.group, cell.label);
    if (!cs.has_value()) continue;
    // Parallel violation scan over the cell's rows; the weight updates
    // stay sequential so the per-cell counters are deterministic.
    std::vector<size_t> idx = train.CellIndices(cell.group, cell.label);
    std::vector<uint8_t> conforming = ParallelMap<uint8_t>(
        idx.size(), [&](size_t j) -> uint8_t {
          return cs->Violation(numeric.RowPtr(idx[j])) > 0.0 ? 0 : 1;
        });
    for (size_t j = 0; j < idx.size(); ++j) {
      if (!conforming[j]) continue;
      out.weights[idx[j]] += cell.alpha;
      ++out.boosted_per_cell[c];
    }
  }
  return out;
}

Result<Dataset> ConfairReweigh(const Dataset& train,
                               const ConfairOptions& options) {
  Result<ConfairWeights> w = ComputeConfairWeights(train, options);
  if (!w.ok()) return w.status();
  Dataset out = train;
  FAIRDRIFT_RETURN_IF_ERROR(out.SetWeights(std::move(w).value().weights));
  return out;
}

}  // namespace fairdrift
