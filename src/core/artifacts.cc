#include "core/artifacts.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "baselines/kamiran.h"
#include "baselines/multimodel.h"
#include "kde/kde_cache.h"
#include "ml/threshold.h"
#include "util/string_util.h"

namespace fairdrift {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kNoIntervention:
      return "NO-INT";
    case Method::kMultiModel:
      return "MULTI";
    case Method::kDiffair:
      return "DIFFAIR";
    case Method::kConfair:
      return "CONFAIR";
    case Method::kKamiran:
      return "KAM";
    case Method::kOmnifair:
      return "OMN";
    case Method::kCapuchin:
      return "CAP";
  }
  return "?";
}

TrainSpec ServingSpec(Method method) {
  TrainSpec spec;
  spec.method = method;
  // Deployment freezes the supplied intervention degree; the validation
  // searches belong to the offline experiment protocol.
  spec.tune_confair = false;
  spec.include_profile = true;
  spec.include_density = true;
  return spec;
}

namespace {

/// Fits the drift-monitor density on the fit data's numeric attributes
/// and derives the outlier floor from that split's own log-densities.
/// The raw matrix stays in the (training-side) artifacts for diagnostics
/// and the legacy-format tests; frozen snapshots no longer retain it —
/// persistence serializes the fitted estimator's flat tree directly.
Status AttachDensityMonitor(const Dataset& fit_data, const TrainSpec& spec,
                            FittedArtifacts* artifacts) {
  Matrix numeric = fit_data.NumericMatrix();
  if (numeric.cols() == 0) return Status::OK();  // nothing to monitor
  std::shared_ptr<const KernelDensity> density;
  if (spec.density_kde.use_fit_cache) {
    Result<std::shared_ptr<const KernelDensity>> fitted =
        GlobalKdeCache().FitOrGet(
            numeric, spec.density_kde,
            KdeCacheHint{fit_data.version(), 0, kKdeHintSpaceFullDataset});
    if (!fitted.ok()) return fitted.status();
    density = std::move(fitted).value();
  } else {
    Result<KernelDensity> fitted =
        KernelDensity::Fit(numeric, spec.density_kde);
    if (!fitted.ok()) return fitted.status();
    density =
        std::make_shared<const KernelDensity>(std::move(fitted).value());
  }
  // Leave-one-out calibration: a serve-time query never contributes a
  // self kernel term, but a training row's plain LogDensity does (and in
  // small-n / high-d fits that term dominates the sum). Quantiling the
  // self-inflated values would place the floor at roughly the self-term
  // level, flagging a large fraction of genuinely in-distribution
  // traffic — and parking every query in the near-threshold band where
  // bounded classification degenerates to full evaluation.
  std::vector<double> logd = density->LeaveOneOutLogDensityAll(numeric);
  std::sort(logd.begin(), logd.end());
  double q = std::clamp(spec.density_outlier_quantile, 0.0, 1.0);
  size_t idx = static_cast<size_t>(
      q * static_cast<double>(logd.size() == 0 ? 0 : logd.size() - 1));
  artifacts->density = std::move(density);
  artifacts->density_floor = logd.empty()
                                 ? -std::numeric_limits<double>::infinity()
                                 : logd[idx];
  artifacts->density_train = std::move(numeric);
  return Status::OK();
}

/// Fits the final single model on (fit_data, weights) and optionally
/// tunes its decision threshold on val — the one place any single-model
/// method trains its deployed learner.
Status FitSingleModel(const Dataset& fit_data,
                      const std::vector<double>& weights, const Dataset& val,
                      const FeatureEncoder& encoder, bool tune_threshold,
                      Classifier* learner) {
  Result<Matrix> x_train = encoder.Transform(fit_data);
  if (!x_train.ok()) return x_train.status();
  FAIRDRIFT_RETURN_IF_ERROR(
      learner->Fit(x_train.value(), fit_data.labels(), weights));
  if (tune_threshold && !val.empty()) {
    Result<Matrix> x_val = encoder.Transform(val);
    if (!x_val.ok()) return x_val.status();
    Result<std::vector<double>> proba = learner->PredictProba(x_val.value());
    if (!proba.ok()) return proba.status();
    Result<double> thr = TuneThreshold(val.labels(), proba.value());
    if (thr.ok()) learner->set_threshold(thr.value());
  }
  return Status::OK();
}

}  // namespace

Result<FittedArtifacts> Fit(const TrainValTest& split, const TrainSpec& spec,
                            Rng* rng) {
  return Fit(split.train, split.val, spec, rng);
}

Result<FittedArtifacts> Fit(const Dataset& train, const Dataset& val,
                            const TrainSpec& spec, Rng* rng) {
  if (train.empty() || !train.has_labels()) {
    return Status::InvalidArgument(
        "Fit: training split needs rows and labels");
  }
  bool needs_groups =
      spec.method != Method::kNoIntervention || spec.include_profile;
  if (needs_groups && !train.has_groups()) {
    return Status::FailedPrecondition(
        "Fit: this method needs a group assignment");
  }

  Result<FeatureEncoder> encoder = FeatureEncoder::Fit(train);
  if (!encoder.ok()) return encoder.status();

  uint64_t learner_seed = rng != nullptr ? rng->Fork().seed()
                                         : spec.learner_seed;
  std::unique_ptr<Classifier> learner =
      MakeLearner(spec.learner, learner_seed);
  LearnerKind calib_kind = spec.calibration_learner.value_or(spec.learner);
  std::unique_ptr<Classifier> calibration_learner =
      MakeLearner(calib_kind, learner_seed);

  FittedArtifacts artifacts;
  artifacts.spec = spec;
  artifacts.schema = train.GetSchema();
  artifacts.encoder = encoder.value();

  // The dataset the final model(s) actually fit on: `train` for the
  // non-invasive methods, the repaired copy for CAP. Serving artifacts
  // (profile, density monitor) describe this same data.
  const Dataset* fit_data = &train;
  Dataset repaired;

  switch (spec.method) {
    case Method::kNoIntervention: {
      artifacts.training_weights = train.weights();
      break;
    }

    case Method::kKamiran: {
      Result<std::vector<double>> weights = KamiranWeights(train);
      if (!weights.ok()) return weights.status();
      artifacts.training_weights = std::move(weights).value();
      break;
    }

    case Method::kConfair: {
      ConfairOptions confair = spec.confair;
      if (spec.tune_confair && val.empty()) {
        return Status::FailedPrecondition(
            "Fit: CONFAIR alpha tuning needs a non-empty split.val (or set "
            "tune_confair = false to use the supplied degrees)");
      }
      if (spec.tune_confair) {
        Result<ConfairTuneResult> tuned =
            TuneConfairAlpha(train, val, *calibration_learner, encoder.value(),
                             spec.confair, spec.confair_tune);
        if (!tuned.ok()) return tuned.status();
        confair = tuned.value().options;
        artifacts.tuned_alpha = tuned.value().alpha_u;
        artifacts.models_trained += tuned.value().models_trained;
      } else {
        artifacts.tuned_alpha = confair.alpha_u;
      }
      artifacts.spec.confair = confair;  // resolved degrees travel along
      Result<ConfairWeights> weights = ComputeConfairWeights(train, confair);
      if (!weights.ok()) return weights.status();
      artifacts.training_weights = std::move(weights).value().weights;
      break;
    }

    case Method::kOmnifair: {
      if (val.empty()) {
        // OMN is model-in-the-loop by design: lambda only exists relative
        // to a validation objective. Fail clearly instead of letting the
        // calibration trip over an empty dataset's schema.
        return Status::FailedPrecondition(
            "Fit: OMN calibrates lambda on a validation split; supply a "
            "non-empty split.val");
      }
      Result<OmnifairResult> calibrated =
          OmnifairCalibrate(train, val, *calibration_learner, encoder.value(),
                            spec.omnifair);
      if (!calibrated.ok()) return calibrated.status();
      artifacts.tuned_lambda = calibrated.value().lambda;
      artifacts.models_trained += calibrated.value().models_trained;
      artifacts.training_weights = std::move(calibrated).value().weights;
      break;
    }

    case Method::kCapuchin: {
      Rng cap_rng = rng != nullptr ? rng->Fork() : Rng(learner_seed);
      Result<Dataset> r = CapuchinRepair(train, &cap_rng, spec.capuchin);
      if (!r.ok()) return r.status();
      repaired = std::move(r).value();
      // The repaired data replaces the training set (invasive); the
      // encoder stays fitted on the original schema, which is unchanged.
      fit_data = &repaired;
      artifacts.training_weights = repaired.weights();
      break;
    }

    case Method::kMultiModel: {
      Result<GroupModelSet> models =
          TrainGroupModels(train, val, *learner, encoder.value(),
                           spec.tune_threshold, "MULTIMODEL");
      if (!models.ok()) return models.status();
      artifacts.models = std::move(models.value().models);
      artifacts.fallback_group = models.value().fallback_group;
      artifacts.route = ServingRoute::kGroupMembership;
      artifacts.training_weights = train.weights();
      artifacts.models_trained = train.num_groups();
      break;
    }

    case Method::kDiffair: {
      // Lines 4-8: constraints per (group x label) cell, then lines 9-10:
      // one model per group.
      Result<GroupLabelProfile> profile =
          GroupLabelProfile::Profile(train, spec.diffair.profile);
      if (!profile.ok()) return profile.status();
      artifacts.profile = std::move(profile).value();
      artifacts.has_profile = true;
      Result<GroupModelSet> models =
          TrainGroupModels(train, val, *learner, encoder.value(),
                           spec.diffair.tune_thresholds, "DIFFAIR");
      if (!models.ok()) return models.status();
      artifacts.models = std::move(models.value().models);
      artifacts.fallback_group = models.value().fallback_group;
      artifacts.route = ServingRoute::kConformance;
      artifacts.training_weights = train.weights();
      artifacts.models_trained = train.num_groups();
      break;
    }
  }

  // Single-model methods: one learner fit on the intervention's weights.
  if (artifacts.models.empty()) {
    FAIRDRIFT_RETURN_IF_ERROR(FitSingleModel(*fit_data,
                                             artifacts.training_weights, val,
                                             encoder.value(),
                                             spec.tune_threshold,
                                             learner.get()));
    artifacts.models.push_back(std::move(learner));
    artifacts.fallback_group = 0;
    artifacts.route = ServingRoute::kSingleModel;
  }

  // Optional serving artifacts. DIFFAIR already owns its routing profile.
  if (spec.include_profile && !artifacts.has_profile) {
    ProfileOptions profile_options = spec.method == Method::kConfair
                                         ? spec.confair.profile
                                         : spec.profile;
    Result<GroupLabelProfile> profile =
        GroupLabelProfile::Profile(*fit_data, profile_options);
    if (!profile.ok()) return profile.status();
    artifacts.profile = std::move(profile).value();
    artifacts.has_profile = true;
  }
  if (spec.include_density) {
    FAIRDRIFT_RETURN_IF_ERROR(
        AttachDensityMonitor(*fit_data, spec, &artifacts));
  }
  return artifacts;
}

Result<FairnessReport> Evaluate(const FittedArtifacts& artifacts,
                                const Dataset& test) {
  if (test.empty()) {
    return Status::InvalidArgument("Evaluate: empty test split");
  }
  Result<Matrix> x = artifacts.encoder.Transform(test);
  if (!x.ok()) return x.status();

  std::vector<int> pred(test.size());
  switch (artifacts.route) {
    case ServingRoute::kSingleModel: {
      const Classifier* model =
          artifacts.models[static_cast<size_t>(artifacts.fallback_group)]
              .get();
      Result<std::vector<int>> p = model->Predict(x.value());
      if (!p.ok()) return p.status();
      pred = std::move(p).value();
      break;
    }

    case ServingRoute::kGroupMembership:
    case ServingRoute::kConformance: {
      std::vector<int> route;
      if (artifacts.route == ServingRoute::kConformance) {
        Matrix numeric = test.NumericMatrix();
        route = ConformanceRoute(artifacts.profile, artifacts.models, numeric,
                                 artifacts.spec.diffair.routing,
                                 artifacts.fallback_group);
      } else {
        if (!test.has_groups()) {
          return Status::FailedPrecondition(
              "Evaluate: membership routing needs serving groups");
        }
        route = RouteByMembership(test.groups(), artifacts.models,
                                  artifacts.fallback_group);
      }
      Result<RoutedPredictions> predictions =
          GatherRoutedPredictions(artifacts.models, route, x.value());
      if (!predictions.ok()) return predictions.status();
      pred = std::move(predictions.value().labels);
      break;
    }
  }
  return EvaluateFairness(test.labels(), pred, test.groups());
}

Result<std::shared_ptr<const ModelSnapshot>> Freeze(
    FittedArtifacts artifacts) {
  if (artifacts.route == ServingRoute::kGroupMembership) {
    return Status::FailedPrecondition(
        "Freeze: membership routing needs the group attribute, which "
        "serving requests do not carry (use DIFFAIR's conformance routing)");
  }
  SnapshotParts parts;
  parts.schema = std::move(artifacts.schema);
  parts.encoder = std::move(artifacts.encoder);
  parts.models = std::move(artifacts.models);
  parts.routed = artifacts.route == ServingRoute::kConformance;
  parts.routing = artifacts.spec.diffair.routing;
  parts.fallback_group = artifacts.fallback_group;
  parts.profile = std::move(artifacts.profile);
  parts.has_profile = artifacts.has_profile;
  parts.density = std::move(artifacts.density);
  parts.density_floor = artifacts.density_floor;
  parts.density_options = artifacts.spec.density_kde;
  parts.monitor = artifacts.spec.monitor;
  if (!artifacts.spec.audit_group_field.empty()) {
    // Resolve against parts.schema (the schema moved above) so the index
    // matches exactly what the snapshot will serve with.
    int idx = parts.schema.FindField(artifacts.spec.audit_group_field);
    if (idx < 0) {
      return Status::NotFound("Freeze: audit group field '" +
                              artifacts.spec.audit_group_field +
                              "' is not in the schema");
    }
    if (parts.schema.field(static_cast<size_t>(idx)).type ==
        ColumnType::kNumeric) {
      return Status::InvalidArgument("Freeze: audit group field '" +
                                     artifacts.spec.audit_group_field +
                                     "' must be categorical");
    }
    parts.group_field = idx;
  }
  return ModelSnapshot::Create(std::move(parts));
}

}  // namespace fairdrift
