// CC-weighted soft ensemble — the paper's suggested DIFFAIR extension.
//
// §III-A: "One can easily augment this with more sophisticated mechanisms
// (e.g., ensemble learning), where conformance constraints can be used as
// an explicit heuristic for aggregating predictions from involved models."
//
// Instead of dispatching each serving tuple to the single most-conforming
// group model (hard routing), the soft ensemble blends every group
// model's probability with weights derived from the tuple's conformance:
//
//   weight_g(t) ∝ exp(-margin_g(t) / temperature)
//
// where margin_g is the group's best signed conformance margin (negative
// when the tuple sits inside a cell's bounds). Low temperature recovers
// hard routing; high temperature approaches uniform averaging. The
// routing-ablation bench compares the two regimes.

#ifndef FAIRDRIFT_CORE_ENSEMBLE_H_
#define FAIRDRIFT_CORE_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "core/profile.h"
#include "data/dataset.h"
#include "data/encode.h"
#include "ml/model.h"
#include "util/status.h"

namespace fairdrift {

/// Configuration for the soft ensemble.
struct CcEnsembleOptions {
  ProfileOptions profile;
  /// Softmax temperature over conformance margins; must be > 0.
  double temperature = 0.5;
};

/// Per-group models blended by conformance-derived weights.
class CcEnsembleModel {
 public:
  /// Trains one model per group (as DIFFAIR does) and profiles the
  /// (group x label) cells for serving-time weighting.
  static Result<CcEnsembleModel> Train(const Dataset& train,
                                       const Dataset& val,
                                       const Classifier& prototype,
                                       const FeatureEncoder& encoder,
                                       const CcEnsembleOptions& options);

  /// Blended positive-class probabilities for the serving tuples.
  Result<std::vector<double>> PredictProba(const Dataset& serving) const;

  /// Hard labels at the 0.5 blended-probability threshold.
  Result<std::vector<int>> Predict(const Dataset& serving) const;

  /// Ensemble weights per tuple (rows) and group (cols); each row sums
  /// to 1 over the groups that have models.
  Result<Matrix> Weights(const Dataset& serving) const;

 private:
  CcEnsembleModel() = default;

  int num_groups_ = 0;
  double temperature_ = 0.5;
  std::vector<std::unique_ptr<Classifier>> models_;
  GroupLabelProfile profile_;
  FeatureEncoder encoder_;
};

}  // namespace fairdrift

#endif  // FAIRDRIFT_CORE_ENSEMBLE_H_
