#include "core/profile.h"

#include <cmath>
#include <limits>

namespace fairdrift {

Result<GroupLabelProfile> GroupLabelProfile::Profile(
    const Dataset& data, const ProfileOptions& options) {
  if (!data.has_labels() || !data.has_groups()) {
    return Status::FailedPrecondition(
        "GroupLabelProfile: dataset needs labels and groups");
  }
  GroupLabelProfile profile;
  profile.num_groups_ = data.num_groups();
  profile.num_classes_ = data.num_classes();
  profile.cells_.resize(static_cast<size_t>(profile.num_groups_) *
                        static_cast<size_t>(profile.num_classes_));

  // Optionally strengthen constraints with Algorithm 3. The filter is
  // applied to the whole dataset once; cells below pick up the surviving
  // tuples.
  const Dataset* source = &data;
  Dataset filtered;
  if (options.use_density_filter) {
    Result<Dataset> f = ApplyDensityFilter(data, options.filter);
    if (!f.ok()) return f.status();
    filtered = std::move(f).value();
    source = &filtered;
  }

  for (int g = 0; g < profile.num_groups_; ++g) {
    for (int y = 0; y < profile.num_classes_; ++y) {
      std::vector<size_t> cell = source->CellIndices(g, y);
      if (cell.empty()) continue;
      Matrix numeric = source->Subset(cell).NumericMatrix();
      if (numeric.cols() == 0) continue;
      Result<ConstraintSet> cs =
          options.primitive == ProfilePrimitive::kConformance
              ? DiscoverConstraints(numeric, options.cc)
              : DiscoverAxisBoxConstraints(numeric, options.axis_box);
      if (!cs.ok()) return cs.status();
      profile.cells_[static_cast<size_t>(g) *
                         static_cast<size_t>(profile.num_classes_) +
                     static_cast<size_t>(y)] = std::move(cs).value();
    }
  }
  return profile;
}

Result<GroupLabelProfile> GroupLabelProfile::FromCells(
    int num_groups, int num_classes,
    std::vector<std::optional<ConstraintSet>> cells) {
  if (num_groups < 0 || num_classes < 0 ||
      cells.size() != static_cast<size_t>(num_groups) *
                          static_cast<size_t>(num_classes)) {
    return Status::InvalidArgument(
        "GroupLabelProfile::FromCells: cell count disagrees with shape");
  }
  GroupLabelProfile profile;
  profile.num_groups_ = num_groups;
  profile.num_classes_ = num_classes;
  profile.cells_ = std::move(cells);
  return profile;
}

const std::optional<ConstraintSet>& GroupLabelProfile::cell(int g,
                                                            int y) const {
  return cells_[static_cast<size_t>(g) * static_cast<size_t>(num_classes_) +
                static_cast<size_t>(y)];
}

double GroupLabelProfile::MinViolationForGroup(
    int g, const std::vector<double>& numeric_row) const {
  return MinViolationForGroup(g, numeric_row.data());
}

double GroupLabelProfile::MinViolationForGroup(
    int g, const double* numeric_row) const {
  double best = std::numeric_limits<double>::infinity();
  for (int y = 0; y < num_classes_; ++y) {
    const std::optional<ConstraintSet>& cs = cell(g, y);
    if (!cs.has_value()) continue;
    best = std::min(best, cs->Violation(numeric_row));
  }
  return best;
}

double GroupLabelProfile::MinMarginForGroup(
    int g, const std::vector<double>& numeric_row) const {
  return MinMarginForGroup(g, numeric_row.data());
}

double GroupLabelProfile::MinMarginForGroup(int g,
                                            const double* numeric_row) const {
  double best = std::numeric_limits<double>::infinity();
  for (int y = 0; y < num_classes_; ++y) {
    const std::optional<ConstraintSet>& cs = cell(g, y);
    if (!cs.has_value()) continue;
    best = std::min(best, cs->SignedMargin(numeric_row));
  }
  return best;
}

int GroupLabelProfile::BestLabelForGroup(
    int g, const std::vector<double>& numeric_row) const {
  return BestLabelForGroup(g, numeric_row.data());
}

int GroupLabelProfile::BestLabelForGroup(int g,
                                         const double* numeric_row) const {
  double best = std::numeric_limits<double>::infinity();
  int best_label = -1;
  for (int y = 0; y < num_classes_; ++y) {
    const std::optional<ConstraintSet>& cs = cell(g, y);
    if (!cs.has_value()) continue;
    double v = cs->Violation(numeric_row);
    if (v < best) {
      best = v;
      best_label = y;
    }
  }
  return best_label;
}

bool GroupLabelProfile::GroupProfiled(int g) const {
  if (g < 0 || g >= num_groups_) return false;  // unprofiled, not UB
  for (int y = 0; y < num_classes_; ++y) {
    if (cell(g, y).has_value()) return true;
  }
  return false;
}

}  // namespace fairdrift
