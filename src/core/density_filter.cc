#include "core/density_filter.h"

#include <algorithm>
#include <cmath>

#include "kde/kde_cache.h"
#include "util/parallel.h"

namespace fairdrift {

namespace {

// One (group x label) cell's slice of the filtering work. Cells are
// independent, so they are ranked in parallel; the merge happens on the
// caller's thread in deterministic cell order.
struct CellTask {
  std::vector<size_t> indices;  // dataset row ids of the cell
  size_t keep = 0;              // how many of them to keep
  uint64_t cell_slot = 0;       // g * num_classes + y (fingerprint memo slot)
};

struct CellOutcome {
  std::vector<size_t> kept;
  Status status;
};

}  // namespace

Result<std::vector<size_t>> DensityFilterIndices(
    const Dataset& data, const DensityFilterOptions& options) {
  if (!data.has_labels() || !data.has_groups()) {
    return Status::FailedPrecondition(
        "DensityFilter: dataset needs labels and groups");
  }
  if (options.keep_fraction <= 0.0 || options.keep_fraction > 1.0) {
    return Status::InvalidArgument(
        "DensityFilter: keep_fraction must be in (0, 1]");
  }

  std::vector<size_t> kept;
  std::vector<CellTask> tasks;
  for (int g = 0; g < data.num_groups(); ++g) {
    for (int y = 0; y < data.num_classes(); ++y) {
      std::vector<size_t> cell = data.CellIndices(g, y);
      if (cell.empty()) continue;

      size_t k = static_cast<size_t>(std::ceil(
          options.keep_fraction * static_cast<double>(cell.size())));
      k = std::max(k, std::min(options.min_cell_size, cell.size()));
      if (k >= cell.size()) {
        kept.insert(kept.end(), cell.begin(), cell.end());
        continue;
      }
      uint64_t slot = static_cast<uint64_t>(g) *
                          static_cast<uint64_t>(data.num_classes()) +
                      static_cast<uint64_t>(y);
      tasks.push_back({std::move(cell), k, slot});
    }
  }

  // Rank each undersized cell by KDE density on the pool. The KDE's own
  // EvaluateAll is parallel too; entered from a worker it degrades to an
  // inline loop, so cell-level parallelism wins when there are many small
  // cells and query-level parallelism wins when there are few big ones.
  // DensityRanking resolves its fit through the global KdeCache, so
  // repeated filters over the same training split (tuning grids, repeated
  // bench trials) reuse one fitted estimator per cell.
  std::vector<CellOutcome> outcomes = ParallelMap<CellOutcome>(
      tasks.size(), [&](size_t t) -> CellOutcome {
        const CellTask& task = tasks[t];
        CellOutcome out;
        Matrix cell_numeric = data.Subset(task.indices).NumericMatrix();
        if (cell_numeric.cols() == 0) {
          // No numeric attributes to rank on: keep the cell whole.
          out.kept = task.indices;
          return out;
        }
        // The (dataset version, cell) hint lets the fit cache skip the
        // O(nd) content rehash when the same unmutated dataset is
        // profiled again (tuning grids, repeated trials).
        Result<std::vector<size_t>> ranking = DensityRankingWithHint(
            cell_numeric, options.kde,
            KdeCacheHint{data.version(), task.cell_slot,
                         kKdeHintSpaceDensityFilterCell});
        if (!ranking.ok()) {
          out.status = ranking.status();
          return out;
        }
        out.kept.reserve(task.keep);
        for (size_t i = 0; i < task.keep; ++i) {
          out.kept.push_back(task.indices[ranking.value()[i]]);
        }
        return out;
      });
  for (const CellOutcome& out : outcomes) {
    if (!out.status.ok()) return out.status;
    kept.insert(kept.end(), out.kept.begin(), out.kept.end());
  }

  if (kept.empty()) {
    return Status::InvalidArgument("DensityFilter: nothing kept");
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

Result<Dataset> ApplyDensityFilter(const Dataset& data,
                                   const DensityFilterOptions& options) {
  Result<std::vector<size_t>> idx = DensityFilterIndices(data, options);
  if (!idx.ok()) return idx.status();
  return data.Subset(idx.value());
}

}  // namespace fairdrift
