#include "core/density_filter.h"

#include <algorithm>
#include <cmath>

namespace fairdrift {

Result<std::vector<size_t>> DensityFilterIndices(
    const Dataset& data, const DensityFilterOptions& options) {
  if (!data.has_labels() || !data.has_groups()) {
    return Status::FailedPrecondition(
        "DensityFilter: dataset needs labels and groups");
  }
  if (options.keep_fraction <= 0.0 || options.keep_fraction > 1.0) {
    return Status::InvalidArgument(
        "DensityFilter: keep_fraction must be in (0, 1]");
  }

  std::vector<size_t> kept;
  for (int g = 0; g < data.num_groups(); ++g) {
    for (int y = 0; y < data.num_classes(); ++y) {
      std::vector<size_t> cell = data.CellIndices(g, y);
      if (cell.empty()) continue;

      size_t k = static_cast<size_t>(std::ceil(
          options.keep_fraction * static_cast<double>(cell.size())));
      k = std::max(k, std::min(options.min_cell_size, cell.size()));
      if (k >= cell.size()) {
        kept.insert(kept.end(), cell.begin(), cell.end());
        continue;
      }

      Matrix cell_numeric = data.Subset(cell).NumericMatrix();
      if (cell_numeric.cols() == 0) {
        // No numeric attributes to rank on: keep the cell whole.
        kept.insert(kept.end(), cell.begin(), cell.end());
        continue;
      }
      Result<std::vector<size_t>> ranking =
          DensityRanking(cell_numeric, options.kde);
      if (!ranking.ok()) return ranking.status();
      for (size_t i = 0; i < k; ++i) {
        kept.push_back(cell[ranking.value()[i]]);
      }
    }
  }
  if (kept.empty()) {
    return Status::InvalidArgument("DensityFilter: nothing kept");
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

Result<Dataset> ApplyDensityFilter(const Dataset& data,
                                   const DensityFilterOptions& options) {
  Result<std::vector<size_t>> idx = DensityFilterIndices(data, options);
  if (!idx.ok()) return idx.status();
  return data.Subset(idx.value());
}

}  // namespace fairdrift
