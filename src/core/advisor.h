// Drift-driven intervention advisor.
//
// The paper's closing future-work goal is "an end-to-end drift-driven
// repair system using techniques that detect internal drift and identify
// the relevant impacted subpopulations" (§VI). This module builds that
// loop from the library's own primitives:
//
//   1. *Detect* — profile every (group x label) cell with conformance
//      constraints and measure cross-group violation: how badly group g's
//      tuples violate group h's constraints compared to their own. The
//      gap is the drift-over-groups signal of §II (plus per-attribute
//      population-stability indices as an attribute-level view).
//   2. *Diagnose* — check the minority's representation: the §III-B
//      limitation of model splitting ("performance can degrade severely
//      under poor representation") is a data property measurable up
//      front: group size and per-cell label support.
//   3. *Recommend* — the paper's own experimental finding (Figs. 11-12):
//      severe drift with adequate representation favors DIFFAIR; mild
//      drift, or any representation deficit, favors CONFAIR.

#ifndef FAIRDRIFT_CORE_ADVISOR_H_
#define FAIRDRIFT_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "core/profile.h"
#include "data/dataset.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fairdrift {

/// Cross-group drift measurements over a profiled dataset.
struct DriftReport {
  /// cross_violation.At(g, h): mean violation of group g's tuples against
  /// group h's constraint cells (min over h's labels). The diagonal is
  /// each group's self-conformance.
  Matrix cross_violation;
  /// Mean over groups of (cross-group violation − self violation),
  /// weighted by group size; ≈ 0 for identically distributed groups and
  /// approaching 1 under maximal drift. Measures *covariate* drift: the
  /// groups occupy different regions of the attribute space.
  double drift_score = 0.0;
  /// Label-trend conflict (binary labels): each group's *trend* is the
  /// standardized direction from its negative to its positive class
  /// mean; the conflict is the worst pairwise misalignment
  /// (1 − cos θ) / 2 ∈ [0, 1] between group trends. 0 = parallel
  /// trends (one decision surface can serve every group), 0.5 =
  /// orthogonal, 1 = exactly opposing — the crossing-trends geometry of
  /// the paper's Fig. 10, where no single model can conform to all
  /// groups even though they overlap in space. Groups whose classes
  /// barely separate carry no trend and are skipped; 0 for non-binary
  /// targets.
  double trend_conflict = 0.0;
  /// Population stability index of each numeric attribute between the
  /// majority and minority groups (decile bins, epsilon-smoothed).
  /// > 0.25 is the conventional "significant shift" threshold.
  std::vector<double> attribute_psi;
  /// Representation diagnostics of the smallest group.
  double minority_fraction = 0.0;
  size_t smallest_cell = 0;   ///< tuples in the thinnest (group x label) cell
  double minority_positive_rate = 0.0;
};

/// Profiles `data` and measures drift over its groups. Requires labels,
/// groups, and at least one numeric attribute.
Result<DriftReport> MeasureGroupDrift(const Dataset& data,
                                      const ProfileOptions& options = {});

/// Population stability index between two samples of one attribute,
/// using `bins` quantile bins of the pooled sample. Symmetric and >= 0;
/// 0 when the distributions agree bin-by-bin.
double PopulationStabilityIndex(const std::vector<double>& reference,
                                const std::vector<double>& comparison,
                                int bins = 10);

/// Interventions the advisor can recommend.
enum class RecommendedMethod {
  kConfair,
  kDiffair,
};

const char* RecommendedMethodName(RecommendedMethod method);

/// Advisor thresholds (defaults calibrated on the library's Fig. 11/12
/// reproductions; see the advisor tests).
struct AdvisorOptions {
  ProfileOptions profile;
  /// Covariate-drift score at or above which model splitting becomes
  /// attractive even without trend conflict (disjoint group supports).
  double severe_drift_threshold = 0.25;
  /// Label-trend conflict at or above which a single model cannot
  /// conform to every group (the Fig. 10/11 regime). 0.5 = the trends
  /// form an obtuse angle. The library's Syn drift suite (120°-180°
  /// rotations) measures 0.73-1.00, matching the generative angles; the
  /// seven real-world simulators measure <= 0.11 (see the advisor
  /// tests).
  double trend_conflict_threshold = 0.5;
  /// Minimum minority fraction for a split model to be trainable.
  double min_minority_fraction = 0.10;
  /// Minimum tuples in every (group x label) cell for split training.
  size_t min_cell_support = 50;
};

/// The advisor's verdict.
struct Recommendation {
  RecommendedMethod method = RecommendedMethod::kConfair;
  /// Human-readable explanation referencing the measured evidence.
  std::string rationale;
  DriftReport report;
};

/// Measures drift and representation on `data` and recommends the
/// intervention the paper's evaluation supports for that regime.
Result<Recommendation> RecommendIntervention(const Dataset& data,
                                             const AdvisorOptions& options = {});

}  // namespace fairdrift

#endif  // FAIRDRIFT_CORE_ADVISOR_H_
