#include "core/tuning.h"

#include <limits>

#include "fairness/report.h"

namespace fairdrift {

Result<ConfairTuneResult> TuneConfairAlpha(const Dataset& train,
                                           const Dataset& val,
                                           const Classifier& prototype,
                                           const FeatureEncoder& encoder,
                                           const ConfairOptions& base,
                                           const ConfairTuneOptions& tune) {
  std::vector<double> grid = tune.alpha_grid;
  if (grid.empty()) {
    // Dense near zero where the response is steepest, then coarse: the
    // monotone fairness response makes a fine far grid unnecessary.
    grid = {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0};
  }
  Result<Matrix> x_train = encoder.Transform(train);
  if (!x_train.ok()) return x_train.status();
  Result<Matrix> x_val = encoder.Transform(val);
  if (!x_val.ok()) return x_val.status();

  // The conformance profile is alpha-independent: compute weights once per
  // alpha from the same profile by re-running only the boost step. For
  // clarity (and because profiling is cheap relative to training) we call
  // ComputeConfairWeights per candidate; it re-derives the profile, which
  // also mirrors the paper's reported runtime behaviour.
  ConfairTuneResult best;
  bool have_best = false;
  double best_gap = std::numeric_limits<double>::infinity();
  double best_balacc = 0.0;

  ConfairTuneResult best_any;
  bool have_any = false;
  double best_any_gap = std::numeric_limits<double>::infinity();

  int models_trained = 0;
  for (double alpha_u : grid) {
    ConfairOptions candidate = base;
    candidate.alpha_u = alpha_u;
    candidate.alpha_w =
        candidate.objective == FairnessObjective::kDisparateImpact
            ? tune.alpha_w_ratio * alpha_u
            : 0.0;

    Result<ConfairWeights> w = ComputeConfairWeights(train, candidate);
    if (!w.ok()) return w.status();

    std::unique_ptr<Classifier> learner = prototype.CloneUnfitted();
    Status st = learner->Fit(x_train.value(), train.labels(),
                             w.value().weights);
    ++models_trained;
    if (!st.ok()) continue;

    Result<std::vector<int>> pred = learner->Predict(x_val.value());
    if (!pred.ok()) continue;
    Result<FairnessReport> report =
        EvaluateFairness(val.labels(), pred.value(), val.groups());
    if (!report.ok()) continue;

    double gap = ObjectiveGap(report.value().stats, candidate.objective);
    double balacc = report.value().balanced_accuracy;

    if (gap < best_any_gap) {
      best_any_gap = gap;
      best_any.options = candidate;
      best_any.alpha_u = alpha_u;
      best_any.validation_gap = gap;
      have_any = true;
    }
    bool better = gap < best_gap - 1e-12 ||
                  (gap < best_gap + 1e-12 && balacc > best_balacc);
    if (balacc >= tune.accuracy_floor && better) {
      best_gap = gap;
      best_balacc = balacc;
      best.options = candidate;
      best.alpha_u = alpha_u;
      best.validation_gap = gap;
      have_best = true;
    }
  }

  if (!have_best) {
    if (!have_any) {
      return Status::NumericalError(
          "TuneConfairAlpha: no alpha produced a trainable model");
    }
    best_any.models_trained = models_trained;
    return best_any;
  }
  best.models_trained = models_trained;
  return best;
}

}  // namespace fairdrift
