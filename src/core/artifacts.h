// Artifact-centric training API: Fit once, then Evaluate and/or Freeze.
//
// The paper's operational loop is: measure drift, pick an intervention
// (CONFAIR / DIFFAIR / a baseline), train it, then either *evaluate* it
// (the offline experiment protocol of §IV) or *deploy* it (freeze the
// fitted state into an immutable ModelSnapshot a ScoringServer swaps in).
// Historically those two consumers each trained their own models; this
// module makes the fitted state a first-class artifact produced exactly
// once:
//
//   FittedArtifacts artifacts = Fit(split, spec);     // train once
//   FairnessReport  report    = Evaluate(artifacts, split.test);
//   auto            snapshot  = Freeze(std::move(artifacts));
//
// Fit handles every intervention of the evaluation (the unified `Method`
// enum below), the learner families, validation-split tuning (CONFAIR
// alpha, OMN lambda, decision thresholds), and the optional serving
// artifacts (conformance profile, KDE drift monitor). Evaluate and
// Freeze only consume — neither ever trains a model.
//
// Snapshots persist across processes via serve/snapshot_io.h
// (SaveSnapshot / LoadSnapshot), which closes the train/serve split: a
// training job Fits and saves; a serving job loads and swaps.

#ifndef FAIRDRIFT_CORE_ARTIFACTS_H_
#define FAIRDRIFT_CORE_ARTIFACTS_H_

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/capuchin.h"
#include "baselines/omnifair.h"
#include "core/confair.h"
#include "core/diffair.h"
#include "core/profile.h"
#include "core/tuning.h"
#include "data/encode.h"
#include "data/split.h"
#include "fairness/report.h"
#include "kde/kde.h"
#include "ml/model.h"
#include "serve/snapshot.h"
#include "util/rng.h"
#include "util/status.h"

namespace fairdrift {

/// Fairness interventions covered by the evaluation (paper §IV
/// "Methods") and by snapshot deployment. This is the library's single
/// method enum: the pipeline, the deployment builders, the CLI, and the
/// figure benches all speak it.
enum class Method {
  kNoIntervention,
  kMultiModel,
  kDiffair,
  kConfair,
  kKamiran,   ///< KAM
  kOmnifair,  ///< OMN
  kCapuchin,  ///< CAP
};

/// Display name ("NO-INT", "MULTI", "DIFFAIR", "CONFAIR", "KAM", "OMN",
/// "CAP").
const char* MethodName(Method method);

/// Everything Fit needs: the intervention, the learner, tuning knobs,
/// and which serving artifacts to attach.
struct TrainSpec {
  Method method = Method::kNoIntervention;
  /// Learner used for the final (deployed) model.
  LearnerKind learner = LearnerKind::kLogisticRegression;
  /// Learner used while calibrating weights (CONFAIR alpha search, OMN
  /// lambda search). Defaults to `learner`; the cross-model experiment of
  /// Fig. 7 sets it to the other family.
  std::optional<LearnerKind> calibration_learner;
  /// Seed for stochastic learners when Fit is called without an Rng.
  uint64_t learner_seed = 42;

  ConfairOptions confair;
  /// Auto-tune CONFAIR's alpha on validation (paper protocol). When false,
  /// `confair.alpha_u/alpha_w` are used as supplied (the paper's
  /// user-specified fast path).
  bool tune_confair = true;
  ConfairTuneOptions confair_tune;

  DiffairOptions diffair;
  OmnifairOptions omnifair;
  CapuchinOptions capuchin;

  /// Tune the final model's decision threshold on validation for balanced
  /// accuracy. Off by default: the paper's learners predict at the
  /// standard 0.5 threshold, and balanced-accuracy tuning would itself act
  /// as a (non-paper) bias correction.
  bool tune_threshold = false;

  // ------------------------------------------------- serving artifacts

  /// Attach the (group x label) conformance profile (margin monitoring
  /// for single-model methods; DIFFAIR always profiles — it routes by
  /// it). Requires training groups.
  bool include_profile = false;
  /// Profile configuration for the single-model methods (CONFAIR uses its
  /// own `confair.profile` so the attached profile matches the constraints
  /// the weights were derived from).
  ProfileOptions profile;

  /// Fit a KernelDensity on the training numeric attributes as the
  /// artifact's drift monitor (resolves through the global KdeCache).
  bool include_density = false;
  KdeOptions density_kde;
  /// Training-split log-density quantile below which a request is
  /// flagged density_outlier.
  double density_outlier_quantile = 0.01;

  /// How the frozen snapshot's density monitor runs at serve time
  /// (exact / bounded / sampled; serve/snapshot.h). Persisted with the
  /// snapshot from format v3 on; the exact default keeps historical
  /// behavior. Ignored without include_density.
  MonitorSpec monitor;

  /// Name of the categorical schema field carrying the sensitive group
  /// id at serve time. When set, Freeze resolves it to a schema index
  /// (snapshot format v4) and every ScoreResult reports the row's group,
  /// which is what lets the serving audit tier (serve/audit/) window
  /// fairness metrics without clients attaching group metadata. Empty =
  /// no serve-time group extraction.
  std::string audit_group_field;
};

/// A TrainSpec preconfigured for deployment: profile + density monitor
/// attached, no validation-split tuning (the historical BuildSnapshot
/// defaults).
TrainSpec ServingSpec(Method method = Method::kConfair);

/// How the fitted models dispatch a serving/evaluation tuple.
enum class ServingRoute {
  kSingleModel,       ///< one model serves everything
  kConformance,       ///< DIFFAIR: most-conforming profiled group's model
  kGroupMembership,   ///< MULTI: the tuple's own group's model
};

/// The product of one Fit call: everything Evaluate and Freeze consume.
/// Move-only (it owns the trained models).
struct FittedArtifacts {
  /// The resolved spec: tuned hyperparameters (CONFAIR alphas, OMN
  /// lambda) written back over the caller's values.
  TrainSpec spec;

  Schema schema;          ///< training-split feature schema
  FeatureEncoder encoder; ///< fitted on the training split

  /// Fitted model(s). Single-model methods put one entry at index
  /// `fallback_group`; the split-model methods hold one entry per group
  /// id (null for groups with no training data).
  std::vector<std::unique_ptr<Classifier>> models;
  ServingRoute route = ServingRoute::kSingleModel;
  int fallback_group = 0;

  /// (group x label) conformance profile; present when the method routes
  /// by conformance or the spec asked for it.
  GroupLabelProfile profile;
  bool has_profile = false;

  /// The per-tuple weights the final model(s) trained on (the paper's
  /// weight attribute S after the intervention; unit weights for the
  /// non-reweighing methods). Exportable via data/weights_io.h.
  std::vector<double> training_weights;

  double tuned_alpha = 0.0;   ///< CONFAIR alpha_u (when tuned)
  double tuned_lambda = 0.0;  ///< OMN lambda (when calibrated)
  int models_trained = 1;     ///< total learner fits (runtime driver)

  /// Drift monitor (when spec.include_density): the fitted density, the
  /// raw training matrix it was fitted on (training-side only — frozen
  /// snapshots persist the fitted tree instead of this copy), and the
  /// outlier floor.
  std::shared_ptr<const KernelDensity> density;
  Matrix density_train;
  double density_floor = -std::numeric_limits<double>::infinity();
};

/// Trains `spec.method` on `split.train`, tuning on `split.val` where the
/// spec asks for it (`split.test` is never touched — Fit is a pure
/// training step). When `rng` is supplied the learner seed is forked from
/// it (the experiment protocol); otherwise `spec.learner_seed` is used
/// (the deployment protocol, reproducible across processes).
Result<FittedArtifacts> Fit(const TrainValTest& split, const TrainSpec& spec,
                            Rng* rng = nullptr);

/// Same, without materializing a split: train/val by reference (`val`
/// may be empty — no validation-split tuning happens then). This is the
/// deployment path's entry; it never copies the training data.
Result<FittedArtifacts> Fit(const Dataset& train, const Dataset& val,
                            const TrainSpec& spec, Rng* rng = nullptr);

/// Scores `test` with the fitted models under the artifact's routing rule
/// and reports fairness + utility. Trains nothing.
Result<FairnessReport> Evaluate(const FittedArtifacts& artifacts,
                                const Dataset& test);

/// Freezes the artifacts into an immutable ModelSnapshot for the scoring
/// server (consumes the models — freeze last, after Evaluate/Save).
/// Group-membership routing cannot be frozen: serving requests carry no
/// group attribute (FailedPrecondition).
Result<std::shared_ptr<const ModelSnapshot>> Freeze(FittedArtifacts artifacts);

}  // namespace fairdrift

#endif  // FAIRDRIFT_CORE_ARTIFACTS_H_
