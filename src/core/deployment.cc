#include "core/deployment.h"

#include <utility>

namespace fairdrift {

Result<std::shared_ptr<const ModelSnapshot>> BuildSnapshot(
    const Dataset& train, const Dataset& val, const TrainSpec& spec) {
  if (spec.method == Method::kMultiModel) {
    // Statically unfreezable (membership routing needs the group
    // attribute, which serving requests don't carry) — reject before
    // spending the training work Freeze would discard.
    return Status::FailedPrecondition(
        "BuildSnapshot: MULTI deploys by group membership, which serving "
        "requests cannot provide (use DIFFAIR's conformance routing)");
  }
  Result<FittedArtifacts> artifacts = Fit(train, val, spec);
  if (!artifacts.ok()) return artifacts.status();
  return Freeze(std::move(artifacts).value());
}

Result<std::shared_ptr<const ModelSnapshot>> BuildSnapshot(
    const Dataset& train, const TrainSpec& spec) {
  // Reference overload: no validation split, and no copy of `train`.
  Dataset empty_val;
  return BuildSnapshot(train, empty_val, spec);
}

Result<std::shared_ptr<const ModelSnapshot>> BuildSnapshotFromRecommendation(
    const Dataset& train, const Recommendation& recommendation,
    TrainSpec spec) {
  spec.method = recommendation.method == RecommendedMethod::kDiffair
                    ? Method::kDiffair
                    : Method::kConfair;
  return BuildSnapshot(train, spec);
}

}  // namespace fairdrift
