#include "core/deployment.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "data/encode.h"
#include "kde/kde_cache.h"
#include "util/string_util.h"

namespace fairdrift {

namespace {

/// Fits the drift-monitor density on the training numeric attributes and
/// derives the outlier floor from the training split's own log-densities.
Status AttachDensityMonitor(const Dataset& train,
                            const SnapshotBuildOptions& options,
                            SnapshotParts* parts) {
  Matrix numeric = train.NumericMatrix();
  if (numeric.cols() == 0) return Status::OK();  // nothing to monitor
  std::shared_ptr<const KernelDensity> density;
  if (options.density_kde.use_fit_cache) {
    Result<std::shared_ptr<const KernelDensity>> fitted =
        GlobalKdeCache().FitOrGet(
            numeric, options.density_kde,
            KdeCacheHint{train.version(), 0, kKdeHintSpaceFullDataset});
    if (!fitted.ok()) return fitted.status();
    density = std::move(fitted).value();
  } else {
    Result<KernelDensity> fitted =
        KernelDensity::Fit(numeric, options.density_kde);
    if (!fitted.ok()) return fitted.status();
    density =
        std::make_shared<const KernelDensity>(std::move(fitted).value());
  }
  std::vector<double> logd = density->LogDensityAll(numeric);
  std::sort(logd.begin(), logd.end());
  double q = std::clamp(options.density_outlier_quantile, 0.0, 1.0);
  size_t idx = static_cast<size_t>(
      q * static_cast<double>(logd.size() == 0 ? 0 : logd.size() - 1));
  parts->density = std::move(density);
  parts->density_floor = logd.empty()
                             ? -std::numeric_limits<double>::infinity()
                             : logd[idx];
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const ModelSnapshot>> BuildSnapshot(
    const Dataset& train, const SnapshotBuildOptions& options) {
  if (train.empty() || !train.has_labels()) {
    return Status::InvalidArgument(
        "BuildSnapshot: training split needs rows and labels");
  }
  bool needs_groups = options.method != SnapshotMethod::kPlain ||
                      options.include_profile;
  if (needs_groups && !train.has_groups()) {
    return Status::FailedPrecondition(
        "BuildSnapshot: this method needs a group assignment");
  }

  Result<FeatureEncoder> encoder = FeatureEncoder::Fit(train);
  if (!encoder.ok()) return encoder.status();

  SnapshotParts parts;
  parts.schema = train.GetSchema();
  parts.encoder = encoder.value();

  switch (options.method) {
    case SnapshotMethod::kPlain:
    case SnapshotMethod::kConfair: {
      std::vector<double> weights = train.weights();
      if (options.method == SnapshotMethod::kConfair) {
        Result<ConfairWeights> confair =
            ComputeConfairWeights(train, options.confair);
        if (!confair.ok()) return confair.status();
        weights = std::move(confair).value().weights;
      }
      Result<Matrix> x = encoder.value().Transform(train);
      if (!x.ok()) return x.status();
      std::unique_ptr<Classifier> model =
          MakeLearner(options.learner, options.learner_seed);
      FAIRDRIFT_RETURN_IF_ERROR(model->Fit(x.value(), train.labels(), weights));
      parts.models.push_back(std::move(model));
      parts.routed = false;
      parts.fallback_group = 0;
      if (options.include_profile) {
        ProfileOptions profile_options =
            options.method == SnapshotMethod::kConfair
                ? options.confair.profile
                : options.profile;
        Result<GroupLabelProfile> profile =
            GroupLabelProfile::Profile(train, profile_options);
        if (!profile.ok()) return profile.status();
        parts.profile = std::move(profile).value();
        parts.has_profile = true;
      }
      break;
    }

    case SnapshotMethod::kDiffair: {
      // Per-group models exactly as DiffairModel::Train splits them
      // (Algorithm 1 lines 9-10), kept as released parts so the snapshot
      // can own them.
      Result<GroupLabelProfile> profile =
          GroupLabelProfile::Profile(train, options.diffair.profile);
      if (!profile.ok()) return profile.status();
      parts.profile = std::move(profile).value();
      parts.has_profile = true;
      parts.routed = true;

      std::unique_ptr<Classifier> prototype =
          MakeLearner(options.learner, options.learner_seed);
      parts.models.resize(static_cast<size_t>(train.num_groups()));
      size_t largest_group = 0;
      for (int g = 0; g < train.num_groups(); ++g) {
        std::vector<size_t> idx = train.GroupIndices(g);
        if (idx.empty()) continue;
        if (idx.size() > largest_group) {
          largest_group = idx.size();
          parts.fallback_group = g;
        }
        Dataset group_train = train.Subset(idx);
        Result<Matrix> x = encoder.value().Transform(group_train);
        if (!x.ok()) return x.status();
        std::unique_ptr<Classifier> model = prototype->CloneUnfitted();
        Status st =
            model->Fit(x.value(), group_train.labels(), group_train.weights());
        if (!st.ok()) {
          return Status(st.code(),
                        StrFormat("BuildSnapshot: group %d model: %s", g,
                                  st.message().c_str()));
        }
        parts.models[static_cast<size_t>(g)] = std::move(model);
      }
      break;
    }
  }

  if (options.include_density) {
    FAIRDRIFT_RETURN_IF_ERROR(AttachDensityMonitor(train, options, &parts));
  }
  return ModelSnapshot::Create(std::move(parts));
}

Result<std::shared_ptr<const ModelSnapshot>> BuildSnapshotFromRecommendation(
    const Dataset& train, const Recommendation& recommendation,
    SnapshotBuildOptions options) {
  options.method = recommendation.method == RecommendedMethod::kDiffair
                       ? SnapshotMethod::kDiffair
                       : SnapshotMethod::kConfair;
  return BuildSnapshot(train, options);
}

}  // namespace fairdrift
