#include "core/pipeline.h"

#include "util/timer.h"

namespace fairdrift {

Result<PipelineResult> RunPipelineOnSplit(const TrainValTest& split,
                                          const PipelineOptions& options,
                                          Rng* rng) {
  if (split.train.empty() || split.test.empty()) {
    return Status::InvalidArgument("RunPipeline: empty train or test split");
  }
  PipelineResult result;
  WallTimer timer;

  Result<FittedArtifacts> artifacts = Fit(split, options, rng);
  if (!artifacts.ok()) return artifacts.status();
  Result<FairnessReport> report = Evaluate(artifacts.value(), split.test);
  if (!report.ok()) return report.status();

  result.report = std::move(report).value();
  result.runtime_seconds = timer.ElapsedSeconds();
  result.tuned_alpha = artifacts.value().tuned_alpha;
  result.tuned_lambda = artifacts.value().tuned_lambda;
  result.models_trained = artifacts.value().models_trained;
  return result;
}

Result<PipelineResult> RunPipeline(const Dataset& data,
                                   const PipelineOptions& options, Rng* rng) {
  Result<TrainValTest> split =
      SplitTrainValTest(data, rng, options.train_frac, options.val_frac);
  if (!split.ok()) return split.status();
  return RunPipelineOnSplit(split.value(), options, rng);
}

}  // namespace fairdrift
