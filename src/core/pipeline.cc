#include "core/pipeline.h"

#include "baselines/kamiran.h"
#include "baselines/multimodel.h"
#include "ml/threshold.h"
#include "util/timer.h"

namespace fairdrift {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kNoIntervention:
      return "NO-INT";
    case Method::kMultiModel:
      return "MULTI";
    case Method::kDiffair:
      return "DIFFAIR";
    case Method::kConfair:
      return "CONFAIR";
    case Method::kKamiran:
      return "KAM";
    case Method::kOmnifair:
      return "OMN";
    case Method::kCapuchin:
      return "CAP";
  }
  return "?";
}

namespace {

/// Trains `learner` on (train, weights), optionally tunes its threshold on
/// val, and returns its test-split fairness report.
Result<FairnessReport> TrainAndEvaluate(const Dataset& train,
                                        const std::vector<double>& weights,
                                        const Dataset& val,
                                        const Dataset& test,
                                        const FeatureEncoder& encoder,
                                        Classifier* learner,
                                        bool tune_threshold) {
  Result<Matrix> x_train = encoder.Transform(train);
  if (!x_train.ok()) return x_train.status();
  FAIRDRIFT_RETURN_IF_ERROR(
      learner->Fit(x_train.value(), train.labels(), weights));

  if (tune_threshold && !val.empty()) {
    Result<Matrix> x_val = encoder.Transform(val);
    if (!x_val.ok()) return x_val.status();
    Result<std::vector<double>> proba = learner->PredictProba(x_val.value());
    if (!proba.ok()) return proba.status();
    Result<double> thr = TuneThreshold(val.labels(), proba.value());
    if (thr.ok()) learner->set_threshold(thr.value());
  }

  Result<Matrix> x_test = encoder.Transform(test);
  if (!x_test.ok()) return x_test.status();
  Result<std::vector<int>> pred = learner->Predict(x_test.value());
  if (!pred.ok()) return pred.status();
  return EvaluateFairness(test.labels(), pred.value(), test.groups());
}

}  // namespace

Result<PipelineResult> RunPipelineOnSplit(const TrainValTest& split,
                                          const PipelineOptions& options,
                                          Rng* rng) {
  const Dataset& train = split.train;
  const Dataset& val = split.val;
  const Dataset& test = split.test;
  if (train.empty() || test.empty()) {
    return Status::InvalidArgument("RunPipeline: empty train or test split");
  }

  Result<FeatureEncoder> encoder = FeatureEncoder::Fit(train);
  if (!encoder.ok()) return encoder.status();

  uint64_t learner_seed = rng->Fork().seed();
  std::unique_ptr<Classifier> learner =
      MakeLearner(options.learner, learner_seed);
  LearnerKind calib_kind = options.calibration_learner.value_or(options.learner);
  std::unique_ptr<Classifier> calibration_learner =
      MakeLearner(calib_kind, learner_seed);

  PipelineResult result;
  WallTimer timer;

  switch (options.method) {
    case Method::kNoIntervention: {
      Result<FairnessReport> report =
          TrainAndEvaluate(train, train.weights(), val, test, encoder.value(),
                           learner.get(), options.tune_threshold);
      if (!report.ok()) return report.status();
      result.report = std::move(report).value();
      break;
    }

    case Method::kKamiran: {
      Result<std::vector<double>> weights = KamiranWeights(train);
      if (!weights.ok()) return weights.status();
      Result<FairnessReport> report =
          TrainAndEvaluate(train, weights.value(), val, test, encoder.value(),
                           learner.get(), options.tune_threshold);
      if (!report.ok()) return report.status();
      result.report = std::move(report).value();
      break;
    }

    case Method::kConfair: {
      ConfairOptions confair = options.confair;
      if (options.tune_confair) {
        Result<ConfairTuneResult> tuned =
            TuneConfairAlpha(train, val, *calibration_learner, encoder.value(),
                             options.confair, options.confair_tune);
        if (!tuned.ok()) return tuned.status();
        confair = tuned.value().options;
        result.tuned_alpha = tuned.value().alpha_u;
        result.models_trained += tuned.value().models_trained;
      } else {
        result.tuned_alpha = confair.alpha_u;
      }
      Result<ConfairWeights> weights = ComputeConfairWeights(train, confair);
      if (!weights.ok()) return weights.status();
      Result<FairnessReport> report = TrainAndEvaluate(
          train, weights.value().weights, val, test, encoder.value(),
          learner.get(), options.tune_threshold);
      if (!report.ok()) return report.status();
      result.report = std::move(report).value();
      break;
    }

    case Method::kOmnifair: {
      Result<OmnifairResult> calibrated =
          OmnifairCalibrate(train, val, *calibration_learner, encoder.value(),
                            options.omnifair);
      if (!calibrated.ok()) return calibrated.status();
      result.tuned_lambda = calibrated.value().lambda;
      result.models_trained += calibrated.value().models_trained;
      Result<FairnessReport> report = TrainAndEvaluate(
          train, calibrated.value().weights, val, test, encoder.value(),
          learner.get(), options.tune_threshold);
      if (!report.ok()) return report.status();
      result.report = std::move(report).value();
      break;
    }

    case Method::kCapuchin: {
      Rng cap_rng = rng->Fork();
      Result<Dataset> repaired =
          CapuchinRepair(train, &cap_rng, options.capuchin);
      if (!repaired.ok()) return repaired.status();
      // The repaired data replaces the training set (invasive); the
      // encoder stays fitted on the original schema, which is unchanged.
      Result<FairnessReport> report = TrainAndEvaluate(
          repaired.value(), repaired.value().weights(), val, test,
          encoder.value(), learner.get(), options.tune_threshold);
      if (!report.ok()) return report.status();
      result.report = std::move(report).value();
      break;
    }

    case Method::kMultiModel: {
      Result<MultiModelBaseline> model = MultiModelBaseline::Train(
          train, val, *learner, encoder.value(), options.tune_threshold);
      if (!model.ok()) return model.status();
      result.models_trained = train.num_groups();
      Result<std::vector<int>> pred = model.value().Predict(test);
      if (!pred.ok()) return pred.status();
      Result<FairnessReport> report =
          EvaluateFairness(test.labels(), pred.value(), test.groups());
      if (!report.ok()) return report.status();
      result.report = std::move(report).value();
      break;
    }

    case Method::kDiffair: {
      Result<DiffairModel> model = DiffairModel::Train(
          train, val, *learner, encoder.value(), options.diffair);
      if (!model.ok()) return model.status();
      result.models_trained = train.num_groups();
      Result<std::vector<int>> pred = model.value().Predict(test);
      if (!pred.ok()) return pred.status();
      Result<FairnessReport> report =
          EvaluateFairness(test.labels(), pred.value(), test.groups());
      if (!report.ok()) return report.status();
      result.report = std::move(report).value();
      break;
    }
  }

  result.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

Result<PipelineResult> RunPipeline(const Dataset& data,
                                   const PipelineOptions& options, Rng* rng) {
  Result<TrainValTest> split =
      SplitTrainValTest(data, rng, options.train_frac, options.val_frac);
  if (!split.ok()) return split.status();
  return RunPipelineOnSplit(split.value(), options, rng);
}

}  // namespace fairdrift
